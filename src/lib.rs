//! # gpu-multifrontal
//!
//! A from-scratch Rust reproduction of *“Multifrontal Factorization of
//! Sparse SPD Matrices on GPUs”* (George, Saxena, Gupta, Singh, Choudhury —
//! IEEE IPDPS 2011): a supernodal multifrontal sparse Cholesky solver whose
//! factor-update operations are scheduled across a host CPU and a
//! (simulated, calibrated) GPU under four policies, with a cost-sensitive
//! auto-tuned policy classifier.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`dense`] — dense BLAS-3/LAPACK-style kernels (`potrf`/`trsm`/`syrk`/`gemm`),
//! * [`sparse`] — CSC storage, orderings, elimination trees, supernodes,
//!   symbolic factorization,
//! * [`gpusim`] — the calibrated Tesla-T10 device model (streams, PCIe,
//!   CUBLAS-like kernels computing real f32 numerics on simulated time),
//! * [`core`] — the hybrid multifrontal factorization, policies P1–P4,
//!   hybrid selectors, solves, iterative refinement, parallel scheduling,
//! * [`runtime`] — the work-stealing elimination-tree runtime backing the
//!   wall-clock parallel driver,
//! * [`autotune`] — the expected-cost policy classifier (paper Eq. 3),
//! * [`matgen`] — the synthetic matrix suite standing in for Table II.
//!
//! ```
//! use gpu_multifrontal::prelude::*;
//!
//! let a = gpu_multifrontal::matgen::laplacian_3d(8, 8, 8, gpu_multifrontal::matgen::Stencil::Faces);
//! let mut machine = Machine::paper_node();
//! let opts = SolverOptions {
//!     factor: FactorOptions {
//!         selector: PolicySelector::Baseline(BaselineThresholds::default()),
//!         ..Default::default()
//!     },
//!     ..Default::default()
//! };
//! let solver = SpdSolver::new(&a, &mut machine, &opts).unwrap();
//! let b = gpu_multifrontal::matgen::rhs_ones(&a);
//! let sol = solver.solve_refined(&b, 4, 1e-12).unwrap();
//! assert!(*sol.residual_history.last().unwrap() < 1e-11);
//! println!("factored in {:.3} simulated seconds", solver.factor_time());
//! ```

pub use mf_autotune as autotune;
pub use mf_core as core;
pub use mf_dense as dense;
pub use mf_gpusim as gpusim;
pub use mf_matgen as matgen;
pub use mf_runtime as runtime;
pub use mf_server as server;
pub use mf_sparse as sparse;

/// Glob-import of the user-facing solver API.
pub mod prelude {
    pub use mf_core::prelude::*;
    pub use mf_core::{FactorOptions, PolicySelector};
    pub use mf_gpusim::Machine;
    pub use mf_sparse::{OrderingKind, SymCsc, Triplet};
}
