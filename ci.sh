#!/usr/bin/env bash
# Repository CI gate: formatting, lints, and the tier-1 verify from
# ROADMAP.md (release build + full test suite). Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1 verify: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> workspace tests"
cargo test -q --workspace

echo "CI OK"
