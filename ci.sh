#!/usr/bin/env bash
# Repository CI gate: formatting, lints, and the tier-1 verify from
# ROADMAP.md (release build + full test suite). Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1 verify: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> workspace tests"
cargo test -q --workspace

# The parallel-driver determinism contracts (bitwise-identical factors AND
# solves at every worker count) must hold both with the test harness running
# cases concurrently (default) and fully serialized — the two schedules
# exercise different interleavings of the work-stealing runtime.
echo "==> determinism suite (default test threads)"
cargo test -q --release --test determinism

echo "==> determinism suite (RUST_TEST_THREADS=1)"
RUST_TEST_THREADS=1 cargo test -q --release --test determinism

echo "==> factor_parallel bench (writes BENCH_factor.json)"
cargo bench -p mf-bench --bench factor_parallel

echo "==> solve bench (writes BENCH_solve.json)"
cargo bench -p mf-bench --bench solve

echo "==> gpu_pipeline bench (writes BENCH_gpu.json)"
cargo bench -p mf-bench --bench gpu_pipeline

echo "CI OK"
