#!/usr/bin/env bash
# Repository CI gate: formatting, lints, and the tier-1 verify from
# ROADMAP.md (release build + full test suite). Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1 verify: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> workspace tests"
cargo test -q --workspace

# The parallel-driver determinism contracts (bitwise-identical factors AND
# solves at every worker count) must hold both with the test harness running
# cases concurrently (default) and fully serialized — the two schedules
# exercise different interleavings of the work-stealing runtime.
echo "==> determinism suite (default test threads)"
cargo test -q --release --test determinism

echo "==> determinism suite (RUST_TEST_THREADS=1)"
RUST_TEST_THREADS=1 cargo test -q --release --test determinism

# The server's concurrency contracts (batched responses bitwise identical to
# serial answers, typed rejections, LRU eviction accounting) must hold with
# test cases running concurrently and fully serialized — the schedules put
# very different load shapes through the worker pool.
echo "==> server suite (default test threads)"
cargo test -q --release -p mf-server

echo "==> server suite (RUST_TEST_THREADS=1)"
RUST_TEST_THREADS=1 cargo test -q --release -p mf-server

# The intra-front tiled task DAG has its own bitwise contract (serial vs
# 1/2/4/8 workers × f32/f64 × arena/heap with fronts forced to expand).
# Run the tiled tests by name and count them, so a filter typo or a renamed
# test cannot silently skip the suite.
echo "==> tiled determinism suite (explicit, default + single test thread)"
for t in "" "RUST_TEST_THREADS=1"; do
  out=$(env $t cargo test --release --test determinism tiled_expansion 2>&1) || {
    echo "$out"
    exit 1
  }
  echo "$out" | grep -q "2 passed" || {
    echo "expected exactly 2 tiled determinism tests to run:"
    echo "$out"
    exit 1
  }
done

# The analysis pipeline has its own bitwise contract: analyze_parallel must
# reproduce the serial analyze byte for byte (permutation, etree, supernode
# partition, row structures, fingerprint) at 1/2/4/8 workers, across matrix
# families and at both factor precisions. Run the analysis tests by name and
# count them, so a filter typo or a renamed test cannot silently skip them.
echo "==> analysis determinism suite (explicit, default + single test thread)"
for t in "" "RUST_TEST_THREADS=1"; do
  out=$(env $t cargo test --release --test determinism analysis_ 2>&1) || {
    echo "$out"
    exit 1
  }
  echo "$out" | grep -q "4 passed" || {
    echo "expected exactly 4 analysis determinism tests to run:"
    echo "$out"
    exit 1
  }
done

# The factor bench runs the tiled scheduler on every suite matrix and
# asserts critical_path <= makespan <= serial_time for the tree and tiled
# schedule models at every worker count — a violation panics the bench and
# fails this step.
echo "==> factor_parallel bench (tiled + tree schedulers, writes BENCH_factor.json)"
cargo bench -p mf-bench --bench factor_parallel

echo "==> solve bench (writes BENCH_solve.json)"
cargo bench -p mf-bench --bench solve

# The symbolic bench asserts, before timing anything, that analyze_parallel's
# fingerprint matches the serial analysis at 1/2/4/8 workers on every suite
# matrix, and that the supernodal task DAG admits a >1x simulated multi-worker
# speedup — either violation panics the bench and fails this step.
echo "==> symbolic bench (analysis fingerprint gate, writes BENCH_symbolic.json)"
cargo bench -p mf-bench --bench symbolic

# The multi-GPU driver's determinism contracts (bitwise-identical factors at
# every workers × devices combination, OOM-fallback parity with the serial
# drain driver, clean NotPositiveDefinite recovery) run by name and are
# counted, so a filter typo or a renamed test cannot silently skip them.
echo "==> multi-GPU determinism suite (explicit, default + single test thread)"
for t in "" "RUST_TEST_THREADS=1"; do
  out=$(env $t cargo test --release --test determinism multigpu_ 2>&1) || {
    echo "$out"
    exit 1
  }
  echo "$out" | grep -q "3 passed" || {
    echo "expected exactly 3 multi-GPU determinism tests to run:"
    echo "$out"
    exit 1
  }
done

# The out-of-core (memory-budgeted) driver's determinism contracts — ladder-off
# runs bitwise identical to in-core at every budget × worker count × precision,
# residency provably under budget, bf16 spill halving traffic without moving
# the eviction schedule, typed infeasible-budget errors, streaming solve parity
# and refinement through 16-bit spill storage — run by name and are counted,
# so a filter typo or a renamed test cannot silently skip them.
echo "==> out-of-core determinism suite (explicit, default + single test thread)"
for t in "" "RUST_TEST_THREADS=1"; do
  out=$(env $t cargo test --release --test determinism ooc_ 2>&1) || {
    echo "$out"
    exit 1
  }
  echo "$out" | grep -q "9 passed" || {
    echo "expected exactly 9 out-of-core determinism tests to run:"
    echo "$out"
    exit 1
  }
done

# Property tests for the out-of-core planner: residency never exceeds the
# budget at any event for arbitrary structures/budgets/ladders, and f64
# refinement converges through 16-bit spill storage.
echo "==> out-of-core property suite (explicit, counted)"
out=$(cargo test --release --test property ooc_ 2>&1) || {
  echo "$out"
  exit 1
}
echo "$out" | grep -q "2 passed" || {
  echo "expected exactly 2 out-of-core property tests to run:"
  echo "$out"
  exit 1
}

# Property tests for the peer-copy primitive the multi-GPU extend-add path
# rides on: event forward-progress/transitivity across arbitrary device
# chains, and bitwise h2d -> d2d -> d2h roundtrips over arbitrary shapes.
echo "==> gpusim peer-copy property suite"
cargo test -q --release -p mf-gpusim --test peer_properties

echo "==> gpu_pipeline bench (writes BENCH_gpu.json)"
cargo bench -p mf-bench --bench gpu_pipeline

# Multi-GPU strong scaling. Asserted inside the bench (panic fails this
# step): bitwise identity with the serial drain driver at 1/2/4/8 devices,
# 2 devices beating 1 on every suite matrix, and peer extend-add traffic
# appearing wherever the proportional mapping splits a subtree.
echo "==> multigpu bench (writes BENCH_multigpu.json)"
cargo bench -p mf-bench --bench multigpu

# Open-loop load bench for the service layer. Three invariants are asserted
# inside the bench and panic (failing this step) on violation: every response
# bitwise identical to the serial single-request answer, batched mode beating
# per-request dispatch on requests/sec at 8 concurrent callers, and overload
# bursts shedding load without corrupting accepted requests.
echo "==> server load bench (writes BENCH_server.json)"
cargo bench -p mf-bench --bench server

# Out-of-core traffic/wall-clock sweep over budget fractions and the spill
# ladder. Four invariants are asserted inside the bench and panic (failing
# this step) on violation: residency never over budget, ladder-off runs
# bitwise identical to in-core, bf16 cutting spill traffic >= 1.8x at the
# same schedule, and f64 refinement converging through bf16 spill storage.
echo "==> ooc bench (writes BENCH_ooc.json)"
cargo bench -p mf-bench --bench ooc

echo "CI OK"
