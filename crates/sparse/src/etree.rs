//! Elimination tree, postordering and column counts.
//!
//! The elimination tree of the Cholesky factor `L` drives everything in the
//! multifrontal method: the postorder traversal order, the update-matrix
//! stack discipline, and the parallel task DAG. We implement Liu's
//! algorithm with path compression, a stack-based postorder (safe for the
//! deep trees produced by band orderings), and the classic `O(|L|)`
//! row-subtree column-count algorithm.

use crate::csc::SymCsc;
use mf_dense::Scalar;

/// Sentinel for "no parent" (tree roots).
pub const NONE: usize = usize::MAX;

/// The elimination tree of a symmetric matrix, plus derived structures.
#[derive(Debug, Clone)]
pub struct EliminationTree {
    /// `parent[j]` is the parent column of `j`, or [`NONE`] for roots.
    pub parent: Vec<usize>,
}

impl EliminationTree {
    /// Number of columns.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` for the empty tree.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// First-child / next-sibling lists for traversals.
    pub fn children_lists(&self) -> ChildrenLists {
        let n = self.parent.len();
        let mut first_child = vec![NONE; n];
        let mut next_sibling = vec![NONE; n];
        let mut roots = Vec::new();
        // Iterate in reverse so children end up in increasing order.
        for j in (0..n).rev() {
            match self.parent[j] {
                NONE => roots.push(j),
                p => {
                    next_sibling[j] = first_child[p];
                    first_child[p] = j;
                }
            }
        }
        roots.reverse();
        ChildrenLists { first_child, next_sibling, roots }
    }

    /// Postorder permutation of the tree: returns `post` with
    /// `post[rank] = column`, children before parents.
    pub fn postorder(&self) -> Vec<usize> {
        let n = self.parent.len();
        let lists = self.children_lists();
        let mut post = Vec::with_capacity(n);
        let mut stack: Vec<(usize, bool)> = Vec::new();
        for &r in &lists.roots {
            stack.push((r, false));
            while let Some((v, expanded)) = stack.pop() {
                if expanded {
                    post.push(v);
                } else {
                    stack.push((v, true));
                    // Push children in reverse so they pop in order.
                    let mut kids = Vec::new();
                    let mut c = lists.first_child[v];
                    while c != NONE {
                        kids.push(c);
                        c = lists.next_sibling[c];
                    }
                    for &k in kids.iter().rev() {
                        stack.push((k, false));
                    }
                }
            }
        }
        assert_eq!(post.len(), n, "forest must cover all vertices");
        post
    }

    /// Depth of each node (roots at depth 0).
    pub fn depths(&self) -> Vec<usize> {
        let n = self.parent.len();
        let mut depth = vec![usize::MAX; n];
        for j in 0..n {
            // Walk up until a known depth, then unwind.
            let mut path = Vec::new();
            let mut v = j;
            while depth[v] == usize::MAX {
                path.push(v);
                if self.parent[v] == NONE {
                    depth[v] = 0;
                    break;
                }
                v = self.parent[v];
            }
            let mut d = depth[v];
            for &u in path.iter().rev() {
                if depth[u] == usize::MAX {
                    d += 1;
                    depth[u] = d;
                } else {
                    d = depth[u];
                }
            }
        }
        depth
    }
}

/// First-child / next-sibling representation of a forest.
#[derive(Debug, Clone)]
pub struct ChildrenLists {
    /// `first_child[v]` — lowest-numbered child of `v`, or [`NONE`].
    pub first_child: Vec<usize>,
    /// `next_sibling[v]` — next child of `v`'s parent, or [`NONE`].
    pub next_sibling: Vec<usize>,
    /// Tree roots in increasing order.
    pub roots: Vec<usize>,
}

/// Compute the elimination tree of a lower-stored symmetric matrix using
/// Liu's algorithm with path compression (`ancestor` array).
pub fn elimination_tree<T: Scalar>(a: &SymCsc<T>) -> EliminationTree {
    let n = a.order();
    let (uptr, urows) = a.upper_pattern();
    let mut parent = vec![NONE; n];
    let mut ancestor = vec![NONE; n];
    for j in 0..n {
        for &i in &urows[uptr[j]..uptr[j + 1]] {
            // i < j is a nonzero of row j's strict upper column — walk from i
            // towards the root, compressing paths.
            let mut v = i;
            while v != NONE && v < j {
                let next = ancestor[v];
                ancestor[v] = j;
                if next == NONE {
                    parent[v] = j;
                    break;
                }
                v = next;
            }
        }
    }
    EliminationTree { parent }
}

/// Column counts `cc[j] = |{i : L[i,j] ≠ 0}|` (diagonal included) via the
/// `O(|L|)` row-subtree traversal.
pub fn column_counts<T: Scalar>(a: &SymCsc<T>, etree: &EliminationTree) -> Vec<usize> {
    let n = a.order();
    let (uptr, urows) = a.upper_pattern();
    let mut cc = vec![1usize; n]; // diagonal
    let mut mark = vec![NONE; n];
    for i in 0..n {
        mark[i] = i;
        // Row i of L: walk each row subtree rooted at the entries of row i.
        for &j0 in &urows[uptr[i]..uptr[i + 1]] {
            let mut j = j0;
            while j < i && mark[j] != i {
                cc[j] += 1;
                mark[j] = i;
                j = etree.parent[j];
                if j == NONE {
                    break;
                }
            }
        }
    }
    cc
}

/// Parallel column counts, bitwise identical to [`column_counts`] at every
/// worker count.
///
/// Rows are independent in the row-subtree algorithm: row `i` walks the
/// etree from each entry of its strict upper row and bumps every column on
/// the path, guarded by a per-row mark. Contiguous row chunks therefore run
/// as independent tasks that accumulate into per-worker count arrays; the
/// final merge sums `usize` contributions per column, which is commutative
/// and exact, so the result does not depend on which worker ran which chunk.
pub fn column_counts_parallel<T: Scalar>(
    a: &SymCsc<T>,
    etree: &EliminationTree,
    workers: usize,
) -> Vec<usize> {
    let n = a.order();
    let (uptr, urows) = a.upper_pattern();
    // Chunk rows contiguously, a few chunks per worker so the stealing
    // runtime can balance the skewed per-row costs near the dense tail.
    let workers = workers.max(1);
    let chunk = (n / (workers * 4)).max(64);
    let ntasks = n.div_ceil(chunk);
    let rt = mf_runtime::Runtime::new(workers.min(ntasks.max(1)));
    let graph = mf_runtime::TaskGraph::new(ntasks);
    // Per-worker state: a local count accumulator (increments only, the
    // shared `+1` diagonal is added at merge time) and a row-stamped mark.
    let states: Vec<(Vec<usize>, Vec<usize>)> =
        (0..rt.workers()).map(|_| (vec![0usize; n], vec![NONE; n])).collect();
    let (states, _errs) = rt.run(&graph, states, |(cc, mark), t| -> Result<(), ()> {
        let lo = t * chunk;
        let hi = ((t + 1) * chunk).min(n);
        for i in lo..hi {
            mark[i] = i;
            for &j0 in &urows[uptr[i]..uptr[i + 1]] {
                let mut j = j0;
                while j < i && mark[j] != i {
                    cc[j] += 1;
                    mark[j] = i;
                    j = etree.parent[j];
                    if j == NONE {
                        break;
                    }
                }
            }
        }
        Ok(())
    });
    let mut cc = vec![1usize; n]; // diagonal
    for (local, _) in &states {
        for (c, l) in cc.iter_mut().zip(local) {
            *c += l;
        }
    }
    cc
}

/// Number of children of every node.
pub fn child_counts(etree: &EliminationTree) -> Vec<usize> {
    let mut nc = vec![0usize; etree.len()];
    for &p in &etree.parent {
        if p != NONE {
            nc[p] += 1;
        }
    }
    nc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csc::Triplet;

    fn tridiag(n: usize) -> SymCsc<f64> {
        let mut t = Triplet::new(n);
        for i in 0..n {
            t.push(i, i, 2.0);
            if i + 1 < n {
                t.push(i + 1, i, -1.0);
            }
        }
        t.assemble()
    }

    fn arrow(n: usize) -> SymCsc<f64> {
        let mut t = Triplet::new(n);
        for i in 0..n {
            t.push(i, i, 4.0);
            if i + 1 < n {
                t.push(n - 1, i, -1.0);
            }
        }
        t.assemble()
    }

    #[test]
    fn tridiagonal_etree_is_a_chain() {
        let a = tridiag(6);
        let t = elimination_tree(&a);
        for j in 0..5 {
            assert_eq!(t.parent[j], j + 1);
        }
        assert_eq!(t.parent[5], NONE);
    }

    #[test]
    fn arrow_etree_is_a_star() {
        let a = arrow(6);
        let t = elimination_tree(&a);
        for j in 0..5 {
            assert_eq!(t.parent[j], 5, "col {j}");
        }
        assert_eq!(t.parent[5], NONE);
    }

    #[test]
    fn diagonal_matrix_is_a_forest_of_singletons() {
        let mut tp = Triplet::new(4);
        for i in 0..4 {
            tp.push(i, i, 1.0);
        }
        let t = elimination_tree(&tp.assemble());
        assert!(t.parent.iter().all(|&p| p == NONE));
        let post = t.postorder();
        assert_eq!(post, vec![0, 1, 2, 3]);
    }

    #[test]
    fn postorder_children_before_parents() {
        let a = arrow(8);
        let t = elimination_tree(&a);
        let post = t.postorder();
        let mut rank = [0usize; 8];
        for (r, &v) in post.iter().enumerate() {
            rank[v] = r;
        }
        for j in 0..8 {
            if t.parent[j] != NONE {
                assert!(rank[j] < rank[t.parent[j]], "child {j} after parent");
            }
        }
    }

    #[test]
    fn postorder_handles_deep_chain_without_overflow() {
        // A 200_000-long chain would overflow a recursive postorder.
        let n = 200_000;
        let t = EliminationTree {
            parent: (0..n).map(|j| if j + 1 < n { j + 1 } else { NONE }).collect(),
        };
        let post = t.postorder();
        assert_eq!(post.len(), n);
        assert_eq!(post[0], 0);
        assert_eq!(post[n - 1], n - 1);
    }

    #[test]
    fn column_counts_tridiagonal() {
        // L of a tridiagonal matrix is bidiagonal: cc = 2,…,2,1.
        let a = tridiag(5);
        let t = elimination_tree(&a);
        let cc = column_counts(&a, &t);
        assert_eq!(cc, vec![2, 2, 2, 2, 1]);
    }

    #[test]
    fn column_counts_arrow_no_fill() {
        // Arrow with dense last row: L has the same pattern, no fill.
        let a = arrow(5);
        let t = elimination_tree(&a);
        let cc = column_counts(&a, &t);
        assert_eq!(cc, vec![2, 2, 2, 2, 1]);
    }

    #[test]
    fn column_counts_reverse_arrow_full_fill() {
        // Dense FIRST column ⇒ complete fill: cc[j] = n − j.
        let n = 5;
        let mut tp = Triplet::new(n);
        for i in 0..n {
            tp.push(i, i, 4.0);
            if i > 0 {
                tp.push(i, 0, -1.0);
            }
        }
        let a = tp.assemble();
        let t = elimination_tree(&a);
        let cc = column_counts(&a, &t);
        for (j, &c) in cc.iter().enumerate() {
            assert_eq!(c, n - j, "col {j}");
        }
    }

    #[test]
    fn parallel_column_counts_match_serial() {
        let mats = [tridiag(300), arrow(257), {
            let n = 129;
            let mut tp = Triplet::new(n);
            for i in 0..n {
                tp.push(i, i, 4.0);
                if i > 0 {
                    tp.push(i, 0, -1.0); // dense first column ⇒ full fill
                }
            }
            tp.assemble()
        }];
        for a in &mats {
            let t = elimination_tree(a);
            let serial = column_counts(a, &t);
            for w in [1, 2, 4, 8] {
                assert_eq!(column_counts_parallel(a, &t, w), serial, "workers={w}");
            }
        }
    }

    #[test]
    fn depths_and_children() {
        let a = arrow(5);
        let t = elimination_tree(&a);
        let d = t.depths();
        assert_eq!(d[4], 0);
        assert!(d[..4].iter().all(|&x| x == 1));
        assert_eq!(child_counts(&t), vec![0, 0, 0, 0, 4]);
        let lists = t.children_lists();
        assert_eq!(lists.roots, vec![4]);
        // Children of 4 enumerate 0..3 in increasing order.
        let mut kids = Vec::new();
        let mut c = lists.first_child[4];
        while c != NONE {
            kids.push(c);
            c = lists.next_sibling[c];
        }
        assert_eq!(kids, vec![0, 1, 2, 3]);
    }
}
