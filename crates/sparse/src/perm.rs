//! Permutations and symmetric permutation of sparse matrices.

use crate::csc::{SymCsc, Triplet};
use mf_dense::Scalar;

/// A permutation of `{0, …, n−1}` together with its inverse.
///
/// Convention: `perm[new] = old` — `perm` lists the original indices in
/// their new order, so applying the permutation to a matrix `A` produces
/// `B[i, j] = A[perm[i], perm[j]]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    perm: Vec<usize>,
    inv: Vec<usize>,
}

impl Permutation {
    /// Identity permutation of order `n`.
    pub fn identity(n: usize) -> Self {
        let perm: Vec<usize> = (0..n).collect();
        Permutation { inv: perm.clone(), perm }
    }

    /// Build from `perm[new] = old`.
    ///
    /// # Panics
    /// Panics if `perm` is not a permutation of `0..n`.
    pub fn from_vec(perm: Vec<usize>) -> Self {
        let n = perm.len();
        let mut inv = vec![usize::MAX; n];
        for (new, &old) in perm.iter().enumerate() {
            assert!(old < n, "index {old} out of range");
            assert!(inv[old] == usize::MAX, "duplicate index {old}");
            inv[old] = new;
        }
        Permutation { perm, inv }
    }

    /// Order of the permutation.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// `true` for the empty permutation.
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// `perm[new] = old`.
    pub fn old_of(&self, new: usize) -> usize {
        self.perm[new]
    }

    /// `inv[old] = new`.
    pub fn new_of(&self, old: usize) -> usize {
        self.inv[old]
    }

    /// The forward array (`perm[new] = old`).
    pub fn as_slice(&self) -> &[usize] {
        &self.perm
    }

    /// The inverse array (`inv[old] = new`).
    pub fn inv_slice(&self) -> &[usize] {
        &self.inv
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Permutation {
        Permutation { perm: self.inv.clone(), inv: self.perm.clone() }
    }

    /// Compose: apply `self` first, then `other` — `result[new] =
    /// self.perm[other.perm[new]]`.
    pub fn compose(&self, other: &Permutation) -> Permutation {
        assert_eq!(self.len(), other.len());
        Permutation::from_vec(other.perm.iter().map(|&mid| self.perm[mid]).collect())
    }

    /// Permute a vector from old ordering to new: `out[new] = x[perm[new]]`.
    pub fn permute_vec<T: Copy>(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.len());
        self.perm.iter().map(|&old| x[old]).collect()
    }

    /// Inverse-permute a vector from new ordering back to old:
    /// `out[old] = x[inv[old]]`.
    pub fn unpermute_vec<T: Copy>(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.len());
        self.inv.iter().map(|&new| x[new]).collect()
    }

    /// Symmetric permutation `B = P·A·Pᵀ` of a lower-stored symmetric
    /// matrix: `B[i, j] = A[perm[i], perm[j]]`.
    pub fn permute_sym<T: Scalar>(&self, a: &SymCsc<T>) -> SymCsc<T> {
        let n = a.order();
        assert_eq!(n, self.len());
        let mut t = Triplet::with_capacity(n, a.nnz_lower());
        for j in 0..n {
            for (&i, &v) in a.col_rows(j).iter().zip(a.col_vals(j)) {
                t.push(self.inv[i], self.inv[j], v);
            }
        }
        t.assemble()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tridiag(n: usize) -> SymCsc<f64> {
        let mut t = Triplet::new(n);
        for i in 0..n {
            t.push(i, i, 2.0);
            if i + 1 < n {
                t.push(i + 1, i, -1.0);
            }
        }
        t.assemble()
    }

    #[test]
    fn identity_is_noop() {
        let a = tridiag(5);
        let p = Permutation::identity(5);
        assert_eq!(p.permute_sym(&a), a);
    }

    #[test]
    fn inverse_roundtrip() {
        let p = Permutation::from_vec(vec![2, 0, 3, 1]);
        let q = p.inverse();
        let x = vec![10, 20, 30, 40];
        assert_eq!(q.permute_vec(&p.permute_vec(&x)), x);
        assert_eq!(p.unpermute_vec(&p.permute_vec(&x)), x);
    }

    #[test]
    fn permute_sym_values_follow() {
        let a = tridiag(4);
        let p = Permutation::from_vec(vec![3, 1, 0, 2]);
        let b = p.permute_sym(&a);
        for inew in 0..4 {
            for jnew in 0..4 {
                assert_eq!(
                    b.get(inew, jnew),
                    a.get(p.old_of(inew), p.old_of(jnew)),
                    "entry ({inew},{jnew})"
                );
            }
        }
    }

    #[test]
    fn compose_applies_in_order() {
        let p = Permutation::from_vec(vec![1, 2, 0]);
        let q = Permutation::from_vec(vec![2, 0, 1]);
        let pq = p.compose(&q);
        for new in 0..3 {
            assert_eq!(pq.old_of(new), p.old_of(q.old_of(new)));
        }
    }

    #[test]
    #[should_panic(expected = "duplicate index")]
    fn rejects_non_permutation() {
        Permutation::from_vec(vec![0, 0, 1]);
    }

    #[test]
    fn permuted_matvec_consistent() {
        // (P A Pᵀ)·(P x) must equal P·(A x).
        let a = tridiag(6);
        let p = Permutation::from_vec(vec![5, 3, 1, 0, 2, 4]);
        let b = p.permute_sym(&a);
        let x: Vec<f64> = (0..6).map(|i| (i * i) as f64 - 2.0).collect();
        let px = p.permute_vec(&x);
        let mut bpx = vec![0.0; 6];
        b.matvec(&px, &mut bpx);
        let mut ax = vec![0.0; 6];
        a.matvec(&x, &mut ax);
        let pax = p.permute_vec(&ax);
        for i in 0..6 {
            assert!((bpx[i] - pax[i]).abs() < 1e-12);
        }
    }
}
