//! Compressed sparse column storage for symmetric matrices.
//!
//! SPD inputs are stored as their **lower triangle including the diagonal**
//! in CSC format with sorted row indices — the convention of most sparse
//! Cholesky packages. [`Triplet`] is the mutable builder; [`SymCsc`] is the
//! immutable assembled form consumed by the symbolic and numeric phases.

use mf_dense::Scalar;

/// Coordinate-format builder for a symmetric matrix. Entries may be given
/// for either triangle (they are mirrored into the lower one) and duplicates
/// are summed on assembly, which makes finite-element-style assembly easy.
#[derive(Debug, Clone)]
pub struct Triplet<T> {
    n: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<T>,
}

impl<T: Scalar> Triplet<T> {
    /// An empty builder for an `n × n` symmetric matrix.
    pub fn new(n: usize) -> Self {
        Triplet { n, rows: Vec::new(), cols: Vec::new(), vals: Vec::new() }
    }

    /// With pre-allocated capacity for `nnz` entries.
    pub fn with_capacity(n: usize, nnz: usize) -> Self {
        Triplet {
            n,
            rows: Vec::with_capacity(nnz),
            cols: Vec::with_capacity(nnz),
            vals: Vec::with_capacity(nnz),
        }
    }

    /// Matrix order.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Number of raw (possibly duplicate) entries pushed so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no entries have been pushed.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Add `v` at `(i, j)`. Either triangle is accepted; the entry is stored
    /// at `(max(i,j), min(i,j))`. Duplicates accumulate.
    pub fn push(&mut self, i: usize, j: usize, v: T) {
        assert!(i < self.n && j < self.n, "entry ({i},{j}) out of range for order {}", self.n);
        let (r, c) = if i >= j { (i, j) } else { (j, i) };
        self.rows.push(r);
        self.cols.push(c);
        self.vals.push(v);
    }

    /// Assemble into sorted, duplicate-summed lower-triangular CSC.
    pub fn assemble(&self) -> SymCsc<T> {
        let n = self.n;
        // Counting sort by column.
        let mut colptr = vec![0usize; n + 1];
        for &c in &self.cols {
            colptr[c + 1] += 1;
        }
        for j in 0..n {
            colptr[j + 1] += colptr[j];
        }
        let mut next = colptr[..n].to_vec();
        let nnz_raw = self.rows.len();
        let mut rowind = vec![0usize; nnz_raw];
        let mut values = vec![T::ZERO; nnz_raw];
        for e in 0..nnz_raw {
            let c = self.cols[e];
            let slot = next[c];
            next[c] += 1;
            rowind[slot] = self.rows[e];
            values[slot] = self.vals[e];
        }
        // Sort each column by row and sum duplicates, compacting in place.
        let mut out_colptr = vec![0usize; n + 1];
        let mut out_rows = Vec::with_capacity(nnz_raw);
        let mut out_vals = Vec::with_capacity(nnz_raw);
        let mut scratch: Vec<(usize, T)> = Vec::new();
        for j in 0..n {
            scratch.clear();
            for p in colptr[j]..colptr[j + 1] {
                scratch.push((rowind[p], values[p]));
            }
            scratch.sort_unstable_by_key(|e| e.0);
            let mut idx = 0;
            while idx < scratch.len() {
                let (r, mut v) = scratch[idx];
                idx += 1;
                while idx < scratch.len() && scratch[idx].0 == r {
                    v += scratch[idx].1;
                    idx += 1;
                }
                out_rows.push(r);
                out_vals.push(v);
            }
            out_colptr[j + 1] = out_rows.len();
        }
        SymCsc { n, colptr: out_colptr, rowind: out_rows, values: out_vals }
    }
}

/// A symmetric matrix stored as its lower triangle (diagonal included) in
/// CSC with strictly increasing row indices within every column.
#[derive(Debug, Clone, PartialEq)]
pub struct SymCsc<T> {
    n: usize,
    colptr: Vec<usize>,
    rowind: Vec<usize>,
    values: Vec<T>,
}

impl<T: Scalar> SymCsc<T> {
    /// Construct from raw lower-triangular CSC arrays.
    ///
    /// # Panics
    /// Panics if the structure is malformed: wrong `colptr` length,
    /// non-monotone `colptr`, unsorted/duplicate row indices, entries above
    /// the diagonal, or indices out of range.
    pub fn from_parts(n: usize, colptr: Vec<usize>, rowind: Vec<usize>, values: Vec<T>) -> Self {
        assert_eq!(colptr.len(), n + 1, "colptr must have n+1 entries");
        assert_eq!(colptr[0], 0);
        assert_eq!(*colptr.last().unwrap(), rowind.len());
        assert_eq!(rowind.len(), values.len());
        for j in 0..n {
            assert!(colptr[j] <= colptr[j + 1], "colptr must be non-decreasing");
            let mut prev = None;
            for &r in &rowind[colptr[j]..colptr[j + 1]] {
                assert!(r >= j, "entry ({r},{j}) above the diagonal");
                assert!(r < n, "row index {r} out of range");
                if let Some(pr) = prev {
                    assert!(r > pr, "row indices must be strictly increasing in column {j}");
                }
                prev = Some(r);
            }
        }
        SymCsc { n, colptr, rowind, values }
    }

    /// Matrix order.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Stored entries (lower triangle only).
    pub fn nnz_lower(&self) -> usize {
        self.rowind.len()
    }

    /// Entries of the full symmetric matrix: `2·nnz_lower − n_diag`.
    pub fn nnz_full(&self) -> usize {
        let diag = (0..self.n).filter(|&j| self.get(j, j).is_some()).count();
        2 * self.rowind.len() - diag
    }

    /// Column pointer array (`n + 1` entries).
    pub fn colptr(&self) -> &[usize] {
        &self.colptr
    }

    /// Row indices, column-concatenated.
    pub fn rowind(&self) -> &[usize] {
        &self.rowind
    }

    /// Numeric values, aligned with [`Self::rowind`].
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Row indices of column `j` (lower triangle).
    pub fn col_rows(&self, j: usize) -> &[usize] {
        &self.rowind[self.colptr[j]..self.colptr[j + 1]]
    }

    /// Values of column `j`, aligned with [`Self::col_rows`].
    pub fn col_vals(&self, j: usize) -> &[T] {
        &self.values[self.colptr[j]..self.colptr[j + 1]]
    }

    /// Whether `other` has exactly this matrix's sparsity pattern (same
    /// order, column pointers, and row indices) — the precondition for
    /// reusing a symbolic analysis across numeric refactorizations.
    pub fn same_pattern<U: Scalar>(&self, other: &SymCsc<U>) -> bool {
        self.n == other.n && self.colptr == other.colptr && self.rowind == other.rowind
    }

    /// A 64-bit structural fingerprint of the sparsity pattern: a fixed
    /// FNV-1a hash over `n`, `colptr`, and `rowind`, independent of the
    /// numeric values, the scalar type, how the matrix was assembled, and
    /// the process (no per-run hasher seed) — so it is a stable cache key
    /// across submissions, threads, and runs.
    ///
    /// Two matrices with the same pattern always fingerprint identically;
    /// the converse is probabilistic, so a fingerprint match is only a
    /// *candidate* — [`Self::same_pattern`] remains the authoritative gate
    /// before any symbolic analysis is reused.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        fn eat(mut h: u64, v: u64) -> u64 {
            for b in v.to_le_bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(PRIME);
            }
            h
        }
        let mut h = eat(OFFSET, self.n as u64);
        for &p in &self.colptr {
            h = eat(h, p as u64);
        }
        for &r in &self.rowind {
            h = eat(h, r as u64);
        }
        h
    }

    /// Look up entry `(i, j)`; either triangle may be queried.
    pub fn get(&self, i: usize, j: usize) -> Option<T> {
        let (r, c) = if i >= j { (i, j) } else { (j, i) };
        let rows = self.col_rows(c);
        rows.binary_search(&r).ok().map(|k| self.col_vals(c)[k])
    }

    /// Convert the pattern to an adjacency structure of the full symmetric
    /// graph, excluding the diagonal — the input to ordering algorithms.
    pub fn to_adjacency(&self) -> Adjacency {
        let n = self.n;
        let mut deg = vec![0usize; n];
        for j in 0..n {
            for &i in self.col_rows(j) {
                if i != j {
                    deg[i] += 1;
                    deg[j] += 1;
                }
            }
        }
        let mut xadj = vec![0usize; n + 1];
        for v in 0..n {
            xadj[v + 1] = xadj[v] + deg[v];
        }
        let mut next = xadj[..n].to_vec();
        let mut adj = vec![0usize; xadj[n]];
        for j in 0..n {
            for &i in self.col_rows(j) {
                if i != j {
                    adj[next[i]] = j;
                    next[i] += 1;
                    adj[next[j]] = i;
                    next[j] += 1;
                }
            }
        }
        for v in 0..n {
            adj[xadj[v]..xadj[v + 1]].sort_unstable();
        }
        Adjacency { xadj, adj }
    }

    /// The strict **upper** triangle pattern as CSC (i.e. the transpose of
    /// the strict lower pattern) — the form consumed by the elimination-tree
    /// and column-count algorithms.
    pub fn upper_pattern(&self) -> (Vec<usize>, Vec<usize>) {
        let n = self.n;
        let mut cnt = vec![0usize; n + 1];
        for j in 0..n {
            for &i in self.col_rows(j) {
                if i != j {
                    cnt[i + 1] += 1;
                }
            }
        }
        for v in 0..n {
            cnt[v + 1] += cnt[v];
        }
        let mut next = cnt[..n].to_vec();
        let mut rows = vec![0usize; cnt[n]];
        // Iterating columns j in increasing order yields sorted row lists
        // (each upper column i receives indices j < i in increasing order).
        for j in 0..n {
            for &i in self.col_rows(j) {
                if i != j {
                    rows[next[i]] = j;
                    next[i] += 1;
                }
            }
        }
        (cnt, rows)
    }

    /// Symmetric matrix-vector product `y = A·x` using the lower storage.
    pub fn matvec(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        y.fill(T::ZERO);
        for j in 0..self.n {
            let xj = x[j];
            let mut acc = T::ZERO;
            for (&i, &v) in self.col_rows(j).iter().zip(self.col_vals(j)) {
                if i == j {
                    acc += v * xj;
                } else {
                    y[i] += v * xj;
                    acc += v * x[i];
                }
            }
            y[j] += acc;
        }
    }

    /// Residual `r = b − A·x` in the scalar type `T`.
    pub fn residual(&self, x: &[T], b: &[T]) -> Vec<T> {
        let mut ax = vec![T::ZERO; self.n];
        self.matvec(x, &mut ax);
        b.iter().zip(&ax).map(|(&bv, &av)| bv - av).collect()
    }

    /// Infinity norm of the full symmetric matrix.
    pub fn norm_inf(&self) -> f64 {
        let mut rowsum = vec![0.0f64; self.n];
        for j in 0..self.n {
            for (&i, &v) in self.col_rows(j).iter().zip(self.col_vals(j)) {
                let a = v.to_f64().abs();
                rowsum[i] += a;
                if i != j {
                    rowsum[j] += a;
                }
            }
        }
        rowsum.into_iter().fold(0.0, f64::max)
    }

    /// Map values to another scalar type (e.g. `f64 → f32` before a
    /// single-precision factorization).
    pub fn cast<U: Scalar>(&self) -> SymCsc<U> {
        SymCsc {
            n: self.n,
            colptr: self.colptr.clone(),
            rowind: self.rowind.clone(),
            values: self.values.iter().map(|v| U::from_f64(v.to_f64())).collect(),
        }
    }
}

/// Adjacency structure of an undirected graph (CSR-like, sorted neighbor
/// lists, no self loops).
#[derive(Debug, Clone)]
pub struct Adjacency {
    /// Offsets into [`Self::adj`] (`n + 1` entries).
    pub xadj: Vec<usize>,
    /// Concatenated neighbor lists.
    pub adj: Vec<usize>,
}

impl Adjacency {
    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.xadj.len() - 1
    }

    /// `true` when the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Neighbors of vertex `v`.
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adj[self.xadj[v]..self.xadj[v + 1]]
    }

    /// Degree of vertex `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.xadj[v + 1] - self.xadj[v]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arrow(n: usize) -> SymCsc<f64> {
        // Arrow matrix: dense last row/col + diagonal.
        let mut t = Triplet::new(n);
        for i in 0..n {
            t.push(i, i, 4.0);
            if i + 1 < n {
                t.push(n - 1, i, -1.0);
            }
        }
        t.assemble()
    }

    #[test]
    fn triplet_mirrors_and_sums_duplicates() {
        let mut t = Triplet::new(3);
        t.push(0, 0, 1.0);
        t.push(0, 2, 5.0); // upper → stored at (2,0)
        t.push(2, 0, 1.0); // duplicate of the same logical entry
        t.push(1, 1, 2.0);
        t.push(2, 2, 3.0);
        let a = t.assemble();
        assert_eq!(a.nnz_lower(), 4);
        assert_eq!(a.get(2, 0), Some(6.0));
        assert_eq!(a.get(0, 2), Some(6.0));
        assert_eq!(a.get(1, 0), None);
    }

    #[test]
    fn from_parts_validates() {
        // Valid 2x2 identity.
        let a = SymCsc::from_parts(2, vec![0, 1, 2], vec![0, 1], vec![1.0, 1.0]);
        assert_eq!(a.get(0, 0), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "above the diagonal")]
    fn from_parts_rejects_upper_entries() {
        SymCsc::from_parts(2, vec![0, 1, 2], vec![0, 0], vec![1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_parts_rejects_duplicates() {
        SymCsc::from_parts(2, vec![0, 2, 3], vec![0, 0, 1], vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn matvec_matches_dense() {
        let a = arrow(5);
        let x: Vec<f64> = (0..5).map(|i| i as f64 + 1.0).collect();
        let mut y = vec![0.0; 5];
        a.matvec(&x, &mut y);
        // Dense reference.
        let mut dense = [[0.0f64; 5]; 5];
        #[allow(clippy::needless_range_loop)]
        for j in 0..5 {
            for (&i, &v) in a.col_rows(j).iter().zip(a.col_vals(j)) {
                dense[i][j] = v;
                dense[j][i] = v;
            }
        }
        for i in 0..5 {
            let want: f64 = (0..5).map(|j| dense[i][j] * x[j]).sum();
            assert!((y[i] - want).abs() < 1e-12, "row {i}");
        }
    }

    #[test]
    fn adjacency_symmetric_sorted() {
        let a = arrow(6);
        let g = a.to_adjacency();
        assert_eq!(g.len(), 6);
        // Vertex 5 is connected to all others.
        assert_eq!(g.neighbors(5), &[0, 1, 2, 3, 4]);
        for v in 0..5 {
            assert_eq!(g.neighbors(v), &[5]);
            assert_eq!(g.degree(v), 1);
        }
    }

    #[test]
    fn upper_pattern_is_transpose() {
        let a = arrow(4);
        let (ptr, rows) = a.upper_pattern();
        // Upper column 3 holds rows 0,1,2 (the mirrored arrow entries).
        assert_eq!(&rows[ptr[3]..ptr[4]], &[0, 1, 2]);
        assert_eq!(ptr[1] - ptr[0], 0); // column 0 has nothing above diagonal
    }

    #[test]
    fn norm_inf_of_arrow() {
        let a = arrow(4);
        // Last row: |-1|*3 + 4 = 7.
        assert!((a.norm_inf() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn cast_to_f32_roundtrips_values() {
        let a = arrow(4);
        let a32: SymCsc<f32> = a.cast();
        assert_eq!(a32.get(3, 1), Some(-1.0f32));
        assert_eq!(a32.nnz_lower(), a.nnz_lower());
    }

    #[test]
    fn residual_of_exact_solution_is_zero() {
        let a = arrow(5);
        let x = vec![1.0; 5];
        let mut b = vec![0.0; 5];
        a.matvec(&x, &mut b);
        let r = a.residual(&x, &b);
        assert!(r.iter().all(|v| v.abs() < 1e-12));
    }

    #[test]
    fn fingerprint_ignores_values_and_scalar_type() {
        let a = arrow(6);
        let scaled = SymCsc::from_parts(
            a.order(),
            a.colptr().to_vec(),
            a.rowind().to_vec(),
            a.values().iter().map(|&v| v * 3.5).collect(),
        );
        assert_eq!(a.fingerprint(), scaled.fingerprint(), "values must not affect the key");
        let a32: SymCsc<f32> = a.cast();
        assert_eq!(a.fingerprint(), a32.fingerprint(), "scalar type must not affect the key");
        assert!(a.same_pattern(&scaled) && a.same_pattern(&a32));
    }

    #[test]
    fn fingerprint_distinguishes_one_entry_patterns() {
        // Patterns differing in exactly one structural entry must hash apart
        // (for every choice of the extra entry on a small matrix), and
        // `same_pattern` must agree with the distinction.
        let base = arrow(8);
        let mut seen = vec![base.fingerprint()];
        for j in 0..7 {
            for i in (j + 1)..7 {
                if base.get(i, j).is_some() {
                    continue;
                }
                let mut t = Triplet::new(8);
                for c in 0..8 {
                    for (&r, &v) in base.col_rows(c).iter().zip(base.col_vals(c)) {
                        t.push(r, c, v);
                    }
                }
                t.push(i, j, -0.25);
                let extended = t.assemble();
                assert!(!extended.same_pattern(&base));
                let fp = extended.fingerprint();
                assert!(
                    !seen.contains(&fp),
                    "pattern with extra entry ({i},{j}) collided structurally"
                );
                seen.push(fp);
            }
        }
    }

    #[test]
    fn fingerprint_distinguishes_order_padding() {
        // Same entries, larger order (trailing empty columns are a distinct
        // pattern): n participates in the hash.
        let a = SymCsc::from_parts(2, vec![0, 1, 2], vec![0, 1], vec![1.0, 1.0]);
        let b = SymCsc::from_parts(3, vec![0, 1, 2, 2], vec![0, 1], vec![1.0, 1.0]);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert!(!a.same_pattern(&b));
    }

    #[test]
    fn nnz_full_counts_mirrored() {
        let a = arrow(5); // 5 diag + 4 off-diag lower
        assert_eq!(a.nnz_lower(), 9);
        assert_eq!(a.nnz_full(), 13);
    }
}
