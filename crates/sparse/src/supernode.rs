//! Supernode detection and relaxed amalgamation.
//!
//! A *supernode* is a maximal block of consecutive columns of `L` with the
//! same sub-diagonal sparsity pattern; the multifrontal method factors one
//! supernode per frontal matrix (paper §II-A, "supernodal variant"). Relaxed
//! amalgamation merges small children into parents, accepting a bounded
//! amount of explicit-zero fill to get larger, more BLAS-friendly fronts —
//! this is what produces the moderate/large `(m, k)` calls on which the GPU
//! policies pay off.

use crate::etree::{child_counts, EliminationTree, NONE};

/// A partition of the columns `0..n` into supernodes of consecutive columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupernodePartition {
    /// `starts[s]..starts[s+1]` are the columns of supernode `s`;
    /// `starts.len() == num_supernodes + 1`, `starts[0] == 0`.
    pub starts: Vec<usize>,
}

impl SupernodePartition {
    /// Number of supernodes.
    pub fn len(&self) -> usize {
        self.starts.len() - 1
    }

    /// `true` when there are no columns.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Columns of supernode `s`.
    pub fn cols(&self, s: usize) -> std::ops::Range<usize> {
        self.starts[s]..self.starts[s + 1]
    }

    /// Width (`k`) of supernode `s`.
    pub fn width(&self, s: usize) -> usize {
        self.starts[s + 1] - self.starts[s]
    }

    /// Map from column to its supernode.
    pub fn col_to_sn(&self) -> Vec<usize> {
        let n = *self.starts.last().unwrap();
        let mut map = vec![0usize; n];
        for s in 0..self.len() {
            for c in self.cols(s) {
                map[c] = s;
            }
        }
        map
    }

    /// Supernodal elimination tree: parent supernode of `s` is the supernode
    /// containing `parent(last column of s)`, or [`NONE`] for roots.
    pub fn supernode_etree(&self, etree: &EliminationTree) -> Vec<usize> {
        let col2sn = self.col_to_sn();
        (0..self.len())
            .map(|s| {
                let last = self.starts[s + 1] - 1;
                match etree.parent[last] {
                    NONE => NONE,
                    p => col2sn[p],
                }
            })
            .collect()
    }

    fn validate(&self) {
        assert!(!self.starts.is_empty() && self.starts[0] == 0);
        assert!(self.starts.windows(2).all(|w| w[0] < w[1]), "empty supernode");
    }
}

/// Children lists (ascending) and postorder (children before parents) of a
/// supernodal forest given by its parent array ([`NONE`] marks roots).
///
/// Shared by the serial and parallel symbolic factorizations so both walk
/// exactly the same traversal — the postorder is part of the bitwise
/// determinism contract on [`crate::symbolic::SymbolicFactor`].
pub fn supernode_forest(sn_parent: &[usize]) -> (Vec<Vec<usize>>, Vec<usize>) {
    let nsn = sn_parent.len();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); nsn];
    let mut roots = Vec::new();
    for (s, &p) in sn_parent.iter().enumerate() {
        match p {
            NONE => roots.push(s),
            p => children[p].push(s),
        }
    }
    let mut postorder = Vec::with_capacity(nsn);
    let mut stack: Vec<(usize, bool)> = roots.iter().rev().map(|&r| (r, false)).collect();
    while let Some((s, expanded)) = stack.pop() {
        if expanded {
            postorder.push(s);
        } else {
            stack.push((s, true));
            for &c in children[s].iter().rev() {
                stack.push((c, false));
            }
        }
    }
    assert_eq!(postorder.len(), nsn, "supernodal forest must cover all supernodes");
    (children, postorder)
}

/// Detect **fundamental supernodes** from the elimination tree and column
/// counts: column `j+1` joins `j`'s supernode iff `parent(j) == j+1`,
/// `cc[j+1] == cc[j] − 1`, and `j+1` has exactly one etree child.
pub fn fundamental_supernodes(etree: &EliminationTree, colcount: &[usize]) -> SupernodePartition {
    let n = etree.len();
    assert_eq!(colcount.len(), n);
    let nchild = child_counts(etree);
    let mut starts = vec![0usize];
    for j in 1..n {
        let merge =
            etree.parent[j - 1] == j && colcount[j] + 1 == colcount[j - 1] && nchild[j] == 1;
        if !merge {
            starts.push(j);
        }
    }
    starts.push(n);
    let p = SupernodePartition { starts };
    p.validate();
    p
}

/// Options for relaxed amalgamation.
#[derive(Debug, Clone)]
pub struct AmalgamationOptions {
    /// Merge a child into its parent when the child's width is at most this
    /// (small supernodes are never worth a separate front).
    pub small: usize,
    /// Otherwise merge when the fraction of explicit zeros introduced in the
    /// merged front stays at or below this bound.
    pub zero_fraction: f64,
    /// Upper bound on merged supernode width (0 = unbounded).
    pub max_width: usize,
}

impl Default for AmalgamationOptions {
    fn default() -> Self {
        AmalgamationOptions { small: 8, zero_fraction: 0.12, max_width: 0 }
    }
}

/// Relaxed amalgamation: greedily merge supernodes with their parents where
/// profitable, bottom-up. `colcount` are per-column counts of `L` (used to
/// estimate the zero fill a merge introduces).
///
/// Returns the coarsened partition.
pub fn amalgamate(
    part: &SupernodePartition,
    etree: &EliminationTree,
    colcount: &[usize],
    opts: &AmalgamationOptions,
) -> SupernodePartition {
    let nsn = part.len();
    let sn_parent = part.supernode_etree(etree);
    // Work bottom-up (supernodes are already in ascending column order, and
    // parents always have higher indices). Union-find onto parents keeps the
    // "merged into" chain; a merge is only allowed between a supernode and
    // its *immediate* next column neighbor chain — merging sn s into parent p
    // requires the columns be consecutive, i.e. p starts where s ends after
    // previous merges along that chain.
    let mut merged_into: Vec<usize> = (0..nsn).collect();
    // Path-halving find: every link on the walk is re-pointed at its
    // grandparent, keeping chains logarithmic even on the deep elimination
    // chains where amalgamation fires most (a plain chain-walk is worst-case
    // quadratic there). Halving only shortcuts within a group, so group
    // roots — and therefore the resulting partition — are unchanged.
    fn find(mi: &mut [usize], mut s: usize) -> usize {
        while mi[s] != s {
            mi[s] = mi[mi[s]];
            s = mi[s];
        }
        s
    }
    // Track, for each live group, its column span and an estimate of its
    // structural row count (rows of the front = colcount of its first col).
    let mut span: Vec<(usize, usize)> =
        (0..nsn).map(|s| (part.starts[s], part.starts[s + 1])).collect();

    for (s, &p) in sn_parent.iter().enumerate() {
        if p == NONE {
            continue;
        }
        let sroot = find(&mut merged_into, s);
        let proot = find(&mut merged_into, p);
        if sroot == proot {
            continue;
        }
        let (s0, s1) = span[sroot];
        let (p0, p1) = span[proot];
        if s1 != p0 {
            // Not column-consecutive (a sibling sits in between) — cannot
            // amalgamate without breaking the contiguous-column invariant.
            continue;
        }
        let merged_width = p1 - s0;
        if opts.max_width != 0 && merged_width > opts.max_width {
            continue;
        }
        let child_width = s1 - s0;
        // Estimate: the merged front has rows(colcount[s0] extended to the
        // parent's structure). Zeros introduced ≈ columns of the child gain
        // rows they did not have: (rows_parent_front + parent_width) vs
        // child's own counts.
        let rows_merged = colcount[s0].max(child_width + colcount[p0]);
        // Explicit zeros introduced anywhere in the merged trapezoid: column
        // at offset i would hold rows_merged − i entries vs. its own count.
        let mut zeros = 0usize;
        for (off, &have) in colcount[s0..p1].iter().enumerate() {
            let would = rows_merged - off;
            zeros += would.saturating_sub(have);
        }
        let total: usize = (0..merged_width).map(|i| rows_merged - i).sum();
        let frac = zeros as f64 / total.max(1) as f64;
        if child_width <= opts.small || frac <= opts.zero_fraction {
            merged_into[sroot] = proot;
            span[proot] = (s0, p1);
        }
    }

    // Collect surviving group spans in column order.
    let mut starts: Vec<usize> =
        (0..nsn).filter(|&s| find(&mut merged_into, s) == s).map(|s| span[s].0).collect();
    starts.sort_unstable();
    starts.push(*part.starts.last().unwrap());
    let out = SupernodePartition { starts };
    out.validate();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csc::Triplet;
    use crate::etree::{column_counts, elimination_tree};

    fn dense_lower_chain(n: usize) -> (EliminationTree, Vec<usize>) {
        // Fully dense matrix: single supernode of width n.
        let parent = (0..n).map(|j| if j + 1 < n { j + 1 } else { NONE }).collect();
        let t = EliminationTree { parent };
        let cc = (0..n).map(|j| n - j).collect();
        (t, cc)
    }

    #[test]
    fn dense_matrix_is_one_supernode() {
        let (t, cc) = dense_lower_chain(6);
        let p = fundamental_supernodes(&t, &cc);
        assert_eq!(p.starts, vec![0, 6]);
        assert_eq!(p.len(), 1);
        assert_eq!(p.width(0), 6);
    }

    #[test]
    fn tridiagonal_supernodes_are_pairs_or_singletons() {
        // Tridiagonal: cc = [2,2,...,2,1], parent chain. Fundamental
        // supernodes: columns j and j+1 merge only when cc[j+1]=cc[j]-1,
        // which holds only for the last pair.
        let n = 5;
        let mut t = Triplet::new(n);
        for i in 0..n {
            t.push(i, i, 2.0);
            if i + 1 < n {
                t.push(i + 1, i, -1.0);
            }
        }
        let a = t.assemble();
        let et = elimination_tree(&a);
        let cc = column_counts(&a, &et);
        let p = fundamental_supernodes(&et, &cc);
        // Last two columns form one supernode (pattern {j, j+1} ⊃ {j+1}).
        assert_eq!(*p.starts.last().unwrap(), n);
        assert_eq!(p.width(p.len() - 1), 2);
    }

    #[test]
    fn supernode_etree_points_to_containing_supernode() {
        let (t, cc) = dense_lower_chain(4);
        let p = fundamental_supernodes(&t, &cc);
        let se = p.supernode_etree(&t);
        assert_eq!(se, vec![NONE]);
    }

    #[test]
    fn col_to_sn_roundtrip() {
        let p = SupernodePartition { starts: vec![0, 2, 3, 7] };
        let map = p.col_to_sn();
        assert_eq!(map, vec![0, 0, 1, 2, 2, 2, 2]);
        for s in 0..p.len() {
            for c in p.cols(s) {
                assert_eq!(map[c], s);
            }
        }
    }

    #[test]
    fn amalgamation_merges_small_children() {
        // Chain etree with singleton supernodes: amalgamation with small=2
        // must coarsen the partition.
        let n = 8;
        let parent: Vec<usize> = (0..n).map(|j| if j + 1 < n { j + 1 } else { NONE }).collect();
        let et = EliminationTree { parent };
        // Column counts decreasing by 2 — no fundamental merges.
        let cc: Vec<usize> = (0..n).map(|j| 2 * (n - j)).collect();
        let fund = fundamental_supernodes(&et, &cc);
        assert_eq!(fund.len(), n, "no fundamental merges expected");
        let am = amalgamate(
            &fund,
            &et,
            &cc,
            &AmalgamationOptions { small: 2, zero_fraction: 0.0, max_width: 0 },
        );
        assert!(am.len() < n, "amalgamation must coarsen: {:?}", am.starts);
        // Still a valid partition of 0..n.
        assert_eq!(*am.starts.last().unwrap(), n);
    }

    #[test]
    fn amalgamation_respects_max_width() {
        let n = 16;
        let parent: Vec<usize> = (0..n).map(|j| if j + 1 < n { j + 1 } else { NONE }).collect();
        let et = EliminationTree { parent };
        let cc: Vec<usize> = (0..n).map(|j| n - j).collect();
        // Start from singleton supernodes (a dense chain would otherwise be
        // one fundamental supernode already) and amalgamate aggressively.
        let singletons = SupernodePartition { starts: (0..=n).collect() };
        let am = amalgamate(
            &singletons,
            &et,
            &cc,
            &AmalgamationOptions { small: 16, zero_fraction: 1.0, max_width: 4 },
        );
        for s in 0..am.len() {
            assert!(am.width(s) <= 4, "supernode {s} too wide: {}", am.width(s));
        }
    }

    #[test]
    fn deep_chain_amalgamation_is_fast_and_valid() {
        // A long elimination chain of singleton supernodes exercises the
        // union-find chains that path halving keeps short: every merge
        // extends one group, so without halving `find` walks O(n) links.
        let n = 4096;
        let parent: Vec<usize> = (0..n).map(|j| if j + 1 < n { j + 1 } else { NONE }).collect();
        let et = EliminationTree { parent };
        let cc: Vec<usize> = (0..n).map(|j| n - j).collect();
        let singletons = SupernodePartition { starts: (0..=n).collect() };
        let am = amalgamate(
            &singletons,
            &et,
            &cc,
            &AmalgamationOptions { small: n, zero_fraction: 1.0, max_width: 64 },
        );
        assert_eq!(*am.starts.last().unwrap(), n);
        for s in 0..am.len() {
            assert!(am.width(s) <= 64);
        }
        // The dense chain amalgamates into exactly ⌈n/64⌉ max-width groups.
        assert_eq!(am.len(), n.div_ceil(64));
    }

    #[test]
    fn zero_tolerance_blocks_wasteful_merges() {
        // Two supernodes where merging would add zeros: with zero_fraction=0
        // and small=0 nothing merges.
        let n = 4;
        let parent: Vec<usize> = (0..n).map(|j| if j + 1 < n { j + 1 } else { NONE }).collect();
        let et = EliminationTree { parent };
        let cc = vec![4, 2, 2, 1]; // col 0 pattern ⊅ col 1's + 1
        let fund = fundamental_supernodes(&et, &cc);
        let am = amalgamate(
            &fund,
            &et,
            &cc,
            &AmalgamationOptions { small: 0, zero_fraction: 0.0, max_width: 0 },
        );
        assert_eq!(am.starts, fund.starts);
    }
}
