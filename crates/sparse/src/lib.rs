//! # mf-sparse — sparse symmetric matrix substrate
//!
//! Everything the multifrontal factorization needs *before* any numbers are
//! touched: compressed sparse column storage for symmetric matrices
//! ([`SymCsc`]), fill-reducing orderings (natural, reverse Cuthill-McKee,
//! minimum degree, nested dissection), the elimination tree (Liu's
//! algorithm), postordering, column counts, fundamental and relaxed
//! supernodes, and the full supernodal symbolic factorization that determines
//! the `(m, k)` shape of every frontal matrix — the quantities the paper's
//! policies and auto-tuner key on.
//!
//! The symbolic pipeline mirrors the one in WSMP-style supernodal
//! multifrontal codes (paper refs [3], [13]):
//!
//! ```text
//! A (lower CSC) → ordering P → P·A·Pᵀ → etree → postorder → column counts
//!              → fundamental supernodes → relaxed amalgamation
//!              → per-supernode row structures (m, k per front)
//! ```

pub mod csc;
pub mod etree;
pub mod io;
pub mod ordering;
pub mod perm;
pub mod supernode;
pub mod symbolic;

pub use csc::{SymCsc, Triplet};
pub use etree::{column_counts, column_counts_parallel, elimination_tree, EliminationTree};
pub use ordering::{nested_dissection_parallel, order, order_parallel, OrderingKind};
pub use perm::Permutation;
pub use supernode::{
    amalgamate, fundamental_supernodes, supernode_forest, AmalgamationOptions, SupernodePartition,
};
pub use symbolic::{
    analyze, analyze_parallel, symbolic_factor, symbolic_factor_parallel, Analysis, AnalyzeError,
    SymbolicFactor,
};
