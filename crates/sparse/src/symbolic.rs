//! Supernodal symbolic factorization.
//!
//! Computes, for every supernode, the sorted row structure of its frontal
//! matrix — hence the `(m, k)` pair of every factor-update call, the flop
//! counts `N_P, N_T, N_S`, and the factor's storage map. This is the
//! analysis phase that precedes numeric factorization and is reused across
//! repeated factorizations with the same pattern.

use crate::csc::SymCsc;
use crate::etree::{column_counts, column_counts_parallel, elimination_tree, EliminationTree};
use crate::ordering::{order, order_parallel, OrderingKind};
use crate::perm::Permutation;
use crate::supernode::{
    amalgamate, fundamental_supernodes, supernode_forest, AmalgamationOptions, SupernodePartition,
};
use mf_dense::{FuFlops, Scalar};
use mf_runtime::{Runtime, TaskGraph};
use std::sync::OnceLock;

/// Per-supernode symbolic information.
#[derive(Debug, Clone)]
pub struct SupernodeInfo {
    /// First column of the supernode.
    pub col_start: usize,
    /// One past the last column (`k = col_end − col_start`).
    pub col_end: usize,
    /// Sorted row indices of the front. The first `k` entries are exactly
    /// `col_start..col_end`; the remaining `m` are the update rows.
    pub rows: Vec<usize>,
    /// Parent supernode in the supernodal elimination tree, or
    /// [`crate::etree::NONE`].
    pub parent: usize,
}

impl SupernodeInfo {
    /// Pivot-block width `k`.
    pub fn k(&self) -> usize {
        self.col_end - self.col_start
    }

    /// Update-matrix size `m`.
    pub fn m(&self) -> usize {
        self.rows.len() - self.k()
    }

    /// Front order `s = m + k`.
    pub fn front_size(&self) -> usize {
        self.rows.len()
    }

    /// Update rows (the last `m` entries of [`Self::rows`]).
    pub fn update_rows(&self) -> &[usize] {
        &self.rows[self.k()..]
    }

    /// Factor-update flop counts for this front.
    pub fn flops(&self) -> FuFlops {
        FuFlops::new(self.m(), self.k())
    }
}

/// The complete symbolic factorization.
#[derive(Debug, Clone)]
pub struct SymbolicFactor {
    /// Matrix order.
    pub n: usize,
    /// Per-supernode structures, in ascending column order.
    pub supernodes: Vec<SupernodeInfo>,
    /// Postorder over supernodes (children before parents).
    pub postorder: Vec<usize>,
    /// Children lists per supernode (ascending).
    pub children: Vec<Vec<usize>>,
    /// Map column → supernode.
    pub col_to_sn: Vec<usize>,
}

impl SymbolicFactor {
    /// Number of supernodes.
    pub fn num_supernodes(&self) -> usize {
        self.supernodes.len()
    }

    /// Nonzeros of `L` (including explicit zeros from amalgamation):
    /// Σ over supernodes of the panel trapezoid.
    pub fn factor_nnz(&self) -> usize {
        self.supernodes
            .iter()
            .map(|s| {
                let k = s.k();
                let rows = s.front_size();
                // Column i of the panel holds rows − i entries.
                (0..k).map(|i| rows - i).sum::<usize>()
            })
            .sum()
    }

    /// Total factorization flops (sum of all factor-update operations).
    pub fn total_flops(&self) -> f64 {
        self.supernodes.iter().map(|s| s.flops().total()).sum()
    }

    /// Largest front order `s = m + k`.
    pub fn max_front(&self) -> usize {
        self.supernodes.iter().map(|s| s.front_size()).max().unwrap_or(0)
    }

    /// Factor storage map: offsets of each supernode's panel into one
    /// contiguous factor slab. Panel `s` occupies
    /// `panel_ptr[s]..panel_ptr[s + 1]`, an `s × k` column-major block
    /// (leading dimension `s = front_size`), in ascending supernode order.
    /// `panel_ptr.len() == num_supernodes + 1`; the last entry is the slab
    /// length in scalars.
    pub fn panel_ptr(&self) -> Vec<usize> {
        let mut ptr = Vec::with_capacity(self.num_supernodes() + 1);
        let mut off = 0usize;
        ptr.push(0);
        for info in &self.supernodes {
            off += info.front_size() * info.k();
            ptr.push(off);
        }
        ptr
    }

    /// Length in scalars of the contiguous factor slab (`panel_ptr` last
    /// entry): Σ over supernodes of the full `s × k` panel rectangle.
    pub fn factor_slab_len(&self) -> usize {
        self.supernodes.iter().map(|s| s.front_size() * s.k()).sum()
    }

    /// Per-subtree working-storage bounds, in scalars: `peaks[s]` is the
    /// peak LIFO-stack size needed to factor the subtree rooted at `s`
    /// (fronts plus live child updates) starting from an empty stack —
    /// exactly the quantity a worker that owns the whole subtree needs to
    /// size its arena. Generalizes [`Self::update_stack_peak`], which equals
    /// the maximum of `peaks` over the forest roots.
    pub fn subtree_update_peaks(&self) -> Vec<usize> {
        let nsn = self.num_supernodes();
        let mut peaks = vec![0usize; nsn];
        for &s in &self.postorder {
            let info = &self.supernodes[s];
            let front = info.front_size() * info.front_size();
            let upd = info.m() * info.m();
            // Children run sequentially: child i starts with the finished
            // updates of children 0..i already on the stack.
            let mut prefix = 0usize;
            let mut peak = 0usize;
            for &c in &self.children[s] {
                peak = peak.max(prefix + peaks[c]);
                let cm = self.supernodes[c].m();
                prefix += cm * cm;
            }
            // All child updates live while the front is assembled, then the
            // front coexists with the supernode's own update.
            peak = peak.max(prefix + front);
            peak = peak.max(upd + front);
            peaks[s] = peak;
        }
        peaks
    }

    /// Peak size (in scalars) of the update-matrix stack under the postorder
    /// traversal — useful to pre-size arenas and check device memory fits.
    pub fn update_stack_peak(&self) -> usize {
        // Simulate the LIFO stack: on visiting a supernode all children
        // updates are live plus its own front.
        let mut live = vec![0usize; self.num_supernodes()];
        let mut peak = 0usize;
        let mut cur = 0usize;
        for &s in &self.postorder {
            let info = &self.supernodes[s];
            let front = info.front_size() * info.front_size();
            peak = peak.max(cur + front);
            // Children updates are consumed by the extend-add into s.
            for &c in &self.children[s] {
                cur -= live[c];
                live[c] = 0;
            }
            let upd = info.m() * info.m();
            live[s] = upd;
            cur += upd;
            peak = peak.max(cur + front);
        }
        peak
    }
}

/// Sorted row structure of one supernode's front: the pivot columns
/// `c0..c1` followed by the merged, deduplicated, sorted update rows from
/// the matrix pattern and the children's update rows. Shared by the serial
/// and parallel drivers so both compute byte-identical structures; `mark`
/// is an `n`-length scratch stamped with the supernode id (safe to reuse
/// across calls because every supernode is processed exactly once).
fn supernode_row_structure<'a, T: Scalar>(
    a: &SymCsc<T>,
    part: &SupernodePartition,
    s: usize,
    children: &[usize],
    mark: &mut [usize],
    child_rows: impl Fn(usize) -> &'a [usize],
) -> Vec<usize> {
    let c0 = part.starts[s];
    let c1 = part.starts[s + 1];
    let mut rows: Vec<usize> = Vec::new();
    // Pivot rows first (always present).
    for m in &mut mark[c0..c1] {
        *m = s;
    }
    // Pattern of A in the supernode's columns, below c0.
    for c in c0..c1 {
        for &i in a.col_rows(c) {
            if i >= c1 && mark[i] != s {
                mark[i] = s;
                rows.push(i);
            }
        }
    }
    // Children update rows (all ≥ c0 by the etree parent property).
    for &ch in children {
        let chk = part.width(ch);
        for &i in &child_rows(ch)[chk..] {
            debug_assert!(i >= c0);
            if i >= c1 && mark[i] != s {
                mark[i] = s;
                rows.push(i);
            }
        }
    }
    rows.sort_unstable();
    let mut full = Vec::with_capacity(c1 - c0 + rows.len());
    full.extend(c0..c1);
    full.extend(rows);
    full
}

/// Compute the supernodal symbolic factorization given a partition.
pub fn symbolic_factor<T: Scalar>(
    a: &SymCsc<T>,
    etree: &EliminationTree,
    part: &SupernodePartition,
) -> SymbolicFactor {
    let n = a.order();
    let nsn = part.len();
    let sn_parent = part.supernode_etree(etree);
    let col_to_sn = part.col_to_sn();
    let (children, postorder) = supernode_forest(&sn_parent);

    // Row structures, bottom-up.
    let mut rows_of: Vec<Vec<usize>> = vec![Vec::new(); nsn];
    let mut mark = vec![usize::MAX; n];
    for &s in &postorder {
        let full =
            supernode_row_structure(a, part, s, &children[s], &mut mark, |ch| &rows_of[ch][..]);
        rows_of[s] = full;
    }

    let supernodes: Vec<SupernodeInfo> = (0..nsn)
        .map(|s| SupernodeInfo {
            col_start: part.starts[s],
            col_end: part.starts[s + 1],
            rows: std::mem::take(&mut rows_of[s]),
            parent: sn_parent[s],
        })
        .collect();

    SymbolicFactor { n, supernodes, postorder, children, col_to_sn }
}

/// Parallel supernodal symbolic factorization, bitwise identical to
/// [`symbolic_factor`] at every worker count.
///
/// The per-supernode row structure depends only on the matrix pattern and
/// the children's structures, so the supernodal elimination tree *is* the
/// task DAG: [`TaskGraph::from_parents`] releases a parent only after all
/// of its children completed, and the runtime's release/acquire on the
/// dependency counters makes every child's published rows visible. Each
/// structure is written exactly once into a [`OnceLock`] slot; per-worker
/// mark scratch is stamped by supernode id, which never repeats.
pub fn symbolic_factor_parallel<T: Scalar>(
    a: &SymCsc<T>,
    etree: &EliminationTree,
    part: &SupernodePartition,
    workers: usize,
) -> SymbolicFactor {
    let n = a.order();
    let nsn = part.len();
    let sn_parent = part.supernode_etree(etree);
    let col_to_sn = part.col_to_sn();
    let (children, postorder) = supernode_forest(&sn_parent);

    let slots: Vec<OnceLock<Vec<usize>>> = (0..nsn).map(|_| OnceLock::new()).collect();
    let graph = TaskGraph::from_parents(&sn_parent);
    let rt = Runtime::new(workers.max(1).min(nsn.max(1)));
    let states: Vec<Vec<usize>> = (0..rt.workers()).map(|_| vec![usize::MAX; n]).collect();
    let (_, errs) = rt.run(&graph, states, |mark, s| -> Result<(), ()> {
        let full = supernode_row_structure(a, part, s, &children[s], mark, |ch| {
            slots[ch].get().expect("child row structure must be published").as_slice()
        });
        let _ = slots[s].set(full);
        Ok(())
    });
    debug_assert!(errs.is_empty(), "symbolic tasks are infallible");

    let supernodes: Vec<SupernodeInfo> = slots
        .into_iter()
        .enumerate()
        .map(|(s, slot)| SupernodeInfo {
            col_start: part.starts[s],
            col_end: part.starts[s + 1],
            rows: slot.into_inner().expect("every supernode task must run"),
            parent: sn_parent[s],
        })
        .collect();

    SymbolicFactor { n, supernodes, postorder, children, col_to_sn }
}

/// Typed failure of the analysis pipeline on hostile input.
///
/// The analysis path must never panic on untrusted matrices — mf-server
/// admits caller-supplied patterns directly into [`analyze`], so every
/// structural precondition is checked up front and surfaced as a variant
/// here instead of tripping an `unwrap` deep inside ordering or numeric
/// code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnalyzeError {
    /// Column `col` has no structural diagonal entry. An SPD matrix always
    /// has a nonzero diagonal; without it the ordering and pivot paths
    /// would index a missing entry.
    MissingDiagonal {
        /// Offending column (0-based, in the input numbering).
        col: usize,
    },
}

impl std::fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalyzeError::MissingDiagonal { col } => {
                write!(f, "structurally missing diagonal entry in column {col}")
            }
        }
    }
}

impl std::error::Error for AnalyzeError {}

/// Verify every column has a structural diagonal entry. Rows within a
/// column are sorted and ≥ the column index, so the diagonal is present
/// iff it is the first stored row (an empty column has no diagonal).
fn check_diagonal<T: Scalar>(a: &SymCsc<T>) -> Result<(), AnalyzeError> {
    for j in 0..a.order() {
        if a.col_rows(j).first() != Some(&j) {
            return Err(AnalyzeError::MissingDiagonal { col: j });
        }
    }
    Ok(())
}

/// Result of the full analysis pipeline.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Fill-reducing permutation applied (`perm[new] = old`).
    pub perm: Permutation,
    /// Permuted matrix `P·A·Pᵀ`.
    pub permuted: SymCscF64Holder,
    /// Elimination tree of the permuted matrix.
    pub etree: EliminationTree,
    /// Symbolic factorization of the permuted matrix.
    pub symbolic: SymbolicFactor,
}

impl Analysis {
    /// FNV-1a fingerprint over everything the bitwise-determinism contract
    /// covers: the permutation, the permuted pattern and value bits, the
    /// elimination tree, and the full supernodal structure (spans, parents,
    /// row structures, postorder). Two analyses agree on this fingerprint
    /// iff every byte a downstream numeric phase consumes is identical —
    /// the CI invariant asserted by the `symbolic` bench and the
    /// determinism suite for [`analyze_parallel`].
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        fn mix(mut h: u64, x: u64) -> u64 {
            for b in x.to_le_bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(PRIME);
            }
            h
        }
        let mut h = OFFSET;
        h = mix(h, self.symbolic.n as u64);
        for &p in self.perm.as_slice() {
            h = mix(h, p as u64);
        }
        for &p in &self.etree.parent {
            h = mix(h, p as u64);
        }
        let pa = &self.permuted.0;
        for j in 0..pa.order() {
            for (&i, &v) in pa.col_rows(j).iter().zip(pa.col_vals(j)) {
                h = mix(h, i as u64);
                h = mix(h, v.to_bits());
            }
        }
        for s in &self.symbolic.supernodes {
            h = mix(h, s.col_start as u64);
            h = mix(h, s.col_end as u64);
            h = mix(h, s.parent as u64);
            for &r in &s.rows {
                h = mix(h, r as u64);
            }
        }
        for &s in &self.symbolic.postorder {
            h = mix(h, s as u64);
        }
        h
    }
}

/// Holder newtype so `Analysis` stays scalar-agnostic at the API boundary
/// (the numeric phase may cast to `f32` for GPU policies).
#[derive(Debug, Clone)]
pub struct SymCscF64Holder(pub SymCsc<f64>);

/// One-call analysis: order, permute, etree, column counts, fundamental
/// supernodes, relaxed amalgamation, symbolic factorization.
pub fn analyze(
    a: &SymCsc<f64>,
    ordering: OrderingKind,
    amalg: Option<&AmalgamationOptions>,
) -> Result<Analysis, AnalyzeError> {
    check_diagonal(a)?;
    let perm = order(a, ordering);
    let pa = perm.permute_sym(a);
    let et = elimination_tree(&pa);
    let cc = column_counts(&pa, &et);
    let fund = fundamental_supernodes(&et, &cc);
    let part = match amalg {
        Some(opts) => amalgamate(&fund, &et, &cc, opts),
        None => fund,
    };
    let symbolic = symbolic_factor(&pa, &et, &part);
    Ok(Analysis { perm, permuted: SymCscF64Holder(pa), etree: et, symbolic })
}

/// Parallel analysis on the mf-runtime pool, bitwise identical to
/// [`analyze`] at every worker count.
///
/// Three pipeline stages run on the work-stealing pool: nested-dissection
/// recursion over disjoint parts
/// ([`crate::ordering::nested_dissection_parallel`]), column counts over
/// row chunks ([`column_counts_parallel`]), and per-supernode row
/// structures over the supernodal elimination tree
/// ([`symbolic_factor_parallel`]). Each stage merges its partial results
/// in a schedule-independent order, so the returned [`Analysis`] — and
/// its [`Analysis::fingerprint`] — matches the serial pipeline byte for
/// byte. `workers == 1` still exercises the parallel drivers (on the
/// calling thread), which keeps single-worker runs meaningful in the
/// determinism suite.
pub fn analyze_parallel(
    a: &SymCsc<f64>,
    ordering: OrderingKind,
    amalg: Option<&AmalgamationOptions>,
    workers: usize,
) -> Result<Analysis, AnalyzeError> {
    check_diagonal(a)?;
    let perm = order_parallel(a, ordering, workers);
    let pa = perm.permute_sym(a);
    let et = elimination_tree(&pa);
    let cc = column_counts_parallel(&pa, &et, workers);
    let fund = fundamental_supernodes(&et, &cc);
    let part = match amalg {
        Some(opts) => amalgamate(&fund, &et, &cc, opts),
        None => fund,
    };
    let symbolic = symbolic_factor_parallel(&pa, &et, &part, workers);
    Ok(Analysis { perm, permuted: SymCscF64Holder(pa), etree: et, symbolic })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csc::Triplet;
    use crate::etree::NONE;

    fn tridiag(n: usize) -> SymCsc<f64> {
        let mut t = Triplet::new(n);
        for i in 0..n {
            t.push(i, i, 2.0);
            if i + 1 < n {
                t.push(i + 1, i, -1.0);
            }
        }
        t.assemble()
    }

    fn grid2d(nx: usize, ny: usize) -> SymCsc<f64> {
        let n = nx * ny;
        let mut t = Triplet::new(n);
        let idx = |x: usize, y: usize| y * nx + x;
        for y in 0..ny {
            for x in 0..nx {
                t.push(idx(x, y), idx(x, y), 4.0);
                if x + 1 < nx {
                    t.push(idx(x + 1, y), idx(x, y), -1.0);
                }
                if y + 1 < ny {
                    t.push(idx(x, y + 1), idx(x, y), -1.0);
                }
            }
        }
        t.assemble()
    }

    fn symbolic_of(a: &SymCsc<f64>) -> SymbolicFactor {
        let et = elimination_tree(a);
        let cc = column_counts(a, &et);
        let part = fundamental_supernodes(&et, &cc);
        symbolic_factor(a, &et, &part)
    }

    #[test]
    fn tridiagonal_structure() {
        let a = tridiag(6);
        let sym = symbolic_of(&a);
        // Factor of a tridiagonal matrix is bidiagonal: nnz = 2n−1.
        assert_eq!(sym.factor_nnz(), 11);
        // Every front: k columns with one update row except the root.
        for (idx, s) in sym.supernodes.iter().enumerate() {
            if s.parent == NONE {
                assert_eq!(s.m(), 0, "root supernode {idx} must have m = 0");
            } else {
                assert_eq!(s.m(), 1);
            }
        }
    }

    #[test]
    fn rows_sorted_and_prefixed_by_pivots() {
        let a = grid2d(7, 6);
        let analysis = analyze(&a, OrderingKind::NestedDissection, None).unwrap();
        for s in &analysis.symbolic.supernodes {
            let k = s.k();
            for (i, c) in (s.col_start..s.col_end).enumerate() {
                assert_eq!(s.rows[i], c);
            }
            for w in s.rows[k..].windows(2) {
                assert!(w[0] < w[1], "update rows must be strictly increasing");
            }
            if let Some(&first) = s.rows[k..].first() {
                assert!(first >= s.col_end);
            }
        }
    }

    #[test]
    fn factor_nnz_matches_column_counts_without_amalgamation() {
        // With fundamental supernodes (no relaxation), the supernodal factor
        // nnz equals Σ column counts exactly.
        let a = grid2d(8, 8);
        let et = elimination_tree(&a);
        let cc = column_counts(&a, &et);
        let part = fundamental_supernodes(&et, &cc);
        let sym = symbolic_factor(&a, &et, &part);
        let cc_total: usize = cc.iter().sum();
        assert_eq!(sym.factor_nnz(), cc_total);
    }

    #[test]
    fn first_update_row_lands_in_parent() {
        let a = grid2d(9, 9);
        let sym = symbolic_of(&a);
        for s in &sym.supernodes {
            if s.parent != NONE {
                let first = s.update_rows()[0];
                let p = &sym.supernodes[s.parent];
                assert!(
                    first >= p.col_start && first < p.col_end,
                    "first update row {first} outside parent cols {}..{}",
                    p.col_start,
                    p.col_end
                );
            }
        }
    }

    #[test]
    fn update_rows_subset_of_parent_front() {
        let a = grid2d(10, 7);
        let sym = symbolic_of(&a);
        for s in &sym.supernodes {
            if s.parent == NONE {
                continue;
            }
            let p = &sym.supernodes[s.parent];
            for &r in s.update_rows() {
                assert!(
                    p.rows.binary_search(&r).is_ok(),
                    "update row {r} of supernode missing from parent front"
                );
            }
        }
    }

    #[test]
    fn amalgamation_only_adds_nnz() {
        let a = grid2d(12, 12);
        let et = elimination_tree(&a);
        let cc = column_counts(&a, &et);
        let fund = fundamental_supernodes(&et, &cc);
        let sym_f = symbolic_factor(&a, &et, &fund);
        let am = amalgamate(&fund, &et, &cc, &AmalgamationOptions::default());
        let sym_a = symbolic_factor(&a, &et, &am);
        assert!(sym_a.num_supernodes() <= sym_f.num_supernodes());
        assert!(sym_a.factor_nnz() >= sym_f.factor_nnz());
        // Flops can only grow with explicit zeros.
        assert!(sym_a.total_flops() >= sym_f.total_flops());
    }

    #[test]
    fn update_stack_peak_positive_and_bounded() {
        let a = grid2d(10, 10);
        let sym = symbolic_of(&a);
        let peak = sym.update_stack_peak();
        let max_front = sym.max_front();
        assert!(peak >= max_front * max_front);
        // Crude upper bound: sum of all update sizes + biggest front.
        let total: usize = sym.supernodes.iter().map(|s| s.m() * s.m()).sum();
        assert!(peak <= total + max_front * max_front);
    }

    #[test]
    fn panel_ptr_is_the_prefix_sum_of_panel_rectangles() {
        let a = grid2d(9, 8);
        let analysis = analyze(&a, OrderingKind::NestedDissection, None).unwrap();
        let sym = &analysis.symbolic;
        let ptr = sym.panel_ptr();
        assert_eq!(ptr.len(), sym.num_supernodes() + 1);
        assert_eq!(ptr[0], 0);
        for (s, info) in sym.supernodes.iter().enumerate() {
            assert_eq!(ptr[s + 1] - ptr[s], info.front_size() * info.k());
        }
        assert_eq!(*ptr.last().unwrap(), sym.factor_slab_len());
        // The slab stores full s×k rectangles, so it is at least as large
        // as the trapezoidal nnz count and contains every panel.
        assert!(sym.factor_slab_len() >= sym.factor_nnz());
    }

    #[test]
    fn subtree_peaks_match_the_global_stack_simulation() {
        for a in [grid2d(10, 10), grid2d(13, 4), tridiag(40)] {
            let sym = symbolic_of(&a);
            let peaks = sym.subtree_update_peaks();
            // Roots: parent == NONE. The global postorder simulation runs
            // the root subtrees back to back on an empty stack (roots leave
            // no update behind), so the forest peak is the max root peak.
            let root_max = sym
                .supernodes
                .iter()
                .enumerate()
                .filter(|(_, s)| s.parent == NONE)
                .map(|(i, _)| peaks[i])
                .max()
                .unwrap_or(0);
            assert_eq!(root_max, sym.update_stack_peak());
            // Every subtree bound covers at least its own front, and a
            // child's subtree never needs more than its parent's.
            for (s, info) in sym.supernodes.iter().enumerate() {
                assert!(peaks[s] >= info.front_size() * info.front_size());
                if info.parent != NONE {
                    assert!(peaks[s] <= peaks[info.parent]);
                }
            }
        }
    }

    #[test]
    fn missing_diagonal_is_a_typed_error_not_a_panic() {
        // No (1,1) entry; column 1 still has sub-diagonal structure.
        let mut t = Triplet::new(3);
        t.push(0, 0, 2.0);
        t.push(2, 2, 2.0);
        t.push(2, 1, -1.0);
        let a = t.assemble();
        for kind in [OrderingKind::Natural, OrderingKind::NestedDissection] {
            assert_eq!(
                analyze(&a, kind, None).unwrap_err(),
                AnalyzeError::MissingDiagonal { col: 1 }
            );
            assert_eq!(
                analyze_parallel(&a, kind, None, 4).unwrap_err(),
                AnalyzeError::MissingDiagonal { col: 1 }
            );
        }
        // Completely empty column (no entries at all) is caught too.
        let mut t = Triplet::new(2);
        t.push(1, 1, 1.0);
        let b = t.assemble();
        assert_eq!(
            analyze(&b, OrderingKind::Natural, None).unwrap_err(),
            AnalyzeError::MissingDiagonal { col: 0 }
        );
    }

    #[test]
    fn parallel_analysis_is_bitwise_identical_to_serial() {
        let a = grid2d(13, 11);
        let amalg = AmalgamationOptions::default();
        let serial = analyze(&a, OrderingKind::NestedDissection, Some(&amalg)).unwrap();
        for workers in [1, 2, 4, 8] {
            let par = analyze_parallel(&a, OrderingKind::NestedDissection, Some(&amalg), workers)
                .unwrap();
            assert_eq!(par.perm.as_slice(), serial.perm.as_slice(), "workers={workers}");
            assert_eq!(par.etree.parent, serial.etree.parent, "workers={workers}");
            assert_eq!(par.symbolic.postorder, serial.symbolic.postorder, "workers={workers}");
            for (ps, ss) in par.symbolic.supernodes.iter().zip(&serial.symbolic.supernodes) {
                assert_eq!(ps.col_start, ss.col_start);
                assert_eq!(ps.col_end, ss.col_end);
                assert_eq!(ps.parent, ss.parent);
                assert_eq!(ps.rows, ss.rows);
            }
            assert_eq!(par.fingerprint(), serial.fingerprint(), "workers={workers}");
        }
    }

    #[test]
    fn postorder_covers_children_first() {
        let a = grid2d(11, 5);
        let sym = symbolic_of(&a);
        let mut rank = vec![0usize; sym.num_supernodes()];
        for (r, &s) in sym.postorder.iter().enumerate() {
            rank[s] = r;
        }
        for (s, info) in sym.supernodes.iter().enumerate() {
            if info.parent != NONE {
                assert!(rank[s] < rank[info.parent]);
            }
        }
    }
}
