//! Matrix Market I/O for symmetric matrices.
//!
//! Reads and writes the `coordinate real symmetric` flavor of the Matrix
//! Market exchange format, enough to ingest SuiteSparse matrices (e.g. the
//! paper's audikw_1) when available and to persist generated test problems.

use crate::csc::{SymCsc, Triplet};
use mf_dense::Scalar;
use std::io::{BufRead, Write};

/// Errors from Matrix Market parsing.
#[derive(Debug)]
pub enum MmError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural or syntactic problem, with a human-readable description.
    Parse(String),
}

impl std::fmt::Display for MmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MmError::Io(e) => write!(f, "I/O error: {e}"),
            MmError::Parse(m) => write!(f, "matrix market parse error: {m}"),
        }
    }
}

impl std::error::Error for MmError {}

impl From<std::io::Error> for MmError {
    fn from(e: std::io::Error) -> Self {
        MmError::Io(e)
    }
}

/// Read a `matrix coordinate real symmetric` Matrix Market stream.
pub fn read_matrix_market<T: Scalar, R: BufRead>(reader: R) -> Result<SymCsc<T>, MmError> {
    let mut lines = reader.lines();
    let header = lines.next().ok_or_else(|| MmError::Parse("empty input".into()))??;
    let h = header.to_ascii_lowercase();
    if !h.starts_with("%%matrixmarket") {
        return Err(MmError::Parse("missing %%MatrixMarket header".into()));
    }
    if !h.contains("coordinate") || !h.contains("real") {
        return Err(MmError::Parse(format!("unsupported format: {header}")));
    }
    if !h.contains("symmetric") {
        return Err(MmError::Parse("only symmetric matrices are supported".into()));
    }
    // Skip comments, find the size line.
    let size_line = loop {
        let line = lines.next().ok_or_else(|| MmError::Parse("missing size line".into()))??;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        break t.to_string();
    };
    let mut it = size_line.split_whitespace();
    let nrows: usize = parse_tok(it.next(), "rows")?;
    let ncols: usize = parse_tok(it.next(), "cols")?;
    let nnz: usize = parse_tok(it.next(), "nnz")?;
    if nrows != ncols {
        return Err(MmError::Parse(format!("matrix not square: {nrows}×{ncols}")));
    }
    let mut t = Triplet::with_capacity(nrows, nnz);
    let mut count = 0usize;
    for line in lines {
        let line = line?;
        let s = line.trim();
        if s.is_empty() || s.starts_with('%') {
            continue;
        }
        let mut it = s.split_whitespace();
        let i: usize = parse_tok(it.next(), "row index")?;
        let j: usize = parse_tok(it.next(), "col index")?;
        let v: f64 = it
            .next()
            .ok_or_else(|| MmError::Parse("missing value".into()))?
            .parse()
            .map_err(|e| MmError::Parse(format!("bad value: {e}")))?;
        if i == 0 || j == 0 || i > nrows || j > nrows {
            return Err(MmError::Parse(format!("entry ({i},{j}) out of range")));
        }
        // NaN/Inf parse fine as f64 but poison the factorization deep
        // inside the numeric phase — reject them at the boundary.
        if !v.is_finite() {
            return Err(MmError::Parse(format!("non-finite value {v} at entry ({i},{j})")));
        }
        t.push(i - 1, j - 1, T::from_f64(v));
        count += 1;
    }
    if count != nnz {
        return Err(MmError::Parse(format!("expected {nnz} entries, found {count}")));
    }
    Ok(t.assemble())
}

fn parse_tok(tok: Option<&str>, what: &str) -> Result<usize, MmError> {
    tok.ok_or_else(|| MmError::Parse(format!("missing {what}")))?
        .parse()
        .map_err(|e| MmError::Parse(format!("bad {what}: {e}")))
}

/// Write the lower triangle in Matrix Market `coordinate real symmetric`.
pub fn write_matrix_market<T: Scalar, W: Write>(a: &SymCsc<T>, mut w: W) -> std::io::Result<()> {
    writeln!(w, "%%MatrixMarket matrix coordinate real symmetric")?;
    writeln!(w, "% written by mf-sparse")?;
    writeln!(w, "{} {} {}", a.order(), a.order(), a.nnz_lower())?;
    for j in 0..a.order() {
        for (&i, &v) in a.col_rows(j).iter().zip(a.col_vals(j)) {
            writeln!(w, "{} {} {:.17e}", i + 1, j + 1, v.to_f64())?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csc::Triplet;
    use std::io::BufReader;

    fn sample() -> SymCsc<f64> {
        let mut t = Triplet::new(4);
        t.push(0, 0, 4.0);
        t.push(1, 1, 5.0);
        t.push(2, 2, 6.0);
        t.push(3, 3, 7.0);
        t.push(2, 0, -1.5);
        t.push(3, 1, 2.25);
        t.assemble()
    }

    #[test]
    fn roundtrip() {
        let a = sample();
        let mut buf = Vec::new();
        write_matrix_market(&a, &mut buf).unwrap();
        let b: SymCsc<f64> = read_matrix_market(BufReader::new(&buf[..])).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn accepts_comments_and_blank_lines() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n% comment\n\n2 2 2\n1 1 3.0\n2 1 -1.0\n";
        let a: SymCsc<f64> = read_matrix_market(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(a.get(0, 0), Some(3.0));
        assert_eq!(a.get(1, 0), Some(-1.0));
    }

    #[test]
    fn rejects_general_matrices() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 3.0\n";
        let r: Result<SymCsc<f64>, _> = read_matrix_market(BufReader::new(text.as_bytes()));
        assert!(r.is_err());
    }

    #[test]
    fn rejects_truncated_entries() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n2 2 3\n1 1 3.0\n2 1 -1.0\n";
        let r: Result<SymCsc<f64>, _> = read_matrix_market(BufReader::new(text.as_bytes()));
        assert!(matches!(r, Err(MmError::Parse(_))));
    }

    #[test]
    fn rejects_out_of_range_indices() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n3 1 3.0\n";
        let r: Result<SymCsc<f64>, _> = read_matrix_market(BufReader::new(text.as_bytes()));
        assert!(r.is_err());
    }

    #[test]
    fn upper_triangle_entries_accepted_as_symmetric() {
        // Some writers emit the upper triangle; Triplet mirrors them.
        let text = "%%MatrixMarket matrix coordinate real symmetric\n2 2 2\n1 1 3.0\n1 2 -1.0\n";
        let a: SymCsc<f64> = read_matrix_market(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(a.get(1, 0), Some(-1.0));
    }

    #[test]
    fn rejects_non_finite_values() {
        for bad in ["nan", "NaN", "inf", "-inf", "Infinity", "1e999"] {
            let text = format!(
                "%%MatrixMarket matrix coordinate real symmetric\n2 2 2\n1 1 3.0\n2 1 {bad}\n"
            );
            let r: Result<SymCsc<f64>, _> = read_matrix_market(BufReader::new(text.as_bytes()));
            assert!(matches!(r, Err(MmError::Parse(_))), "{bad} must be rejected");
        }
    }

    #[test]
    fn rejects_truncated_size_line() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n2 2\n1 1 3.0\n";
        let r: Result<SymCsc<f64>, _> = read_matrix_market(BufReader::new(text.as_bytes()));
        assert!(matches!(r, Err(MmError::Parse(_))));
    }

    #[test]
    fn rejects_nnz_overcount() {
        // Declares 1 entry, provides 2.
        let text = "%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n1 1 3.0\n2 2 4.0\n";
        let r: Result<SymCsc<f64>, _> = read_matrix_market(BufReader::new(text.as_bytes()));
        assert!(matches!(r, Err(MmError::Parse(_))));
    }

    #[test]
    fn upper_triangle_file_roundtrips_through_mirroring() {
        // An upper-triangle-stored symmetric file must assemble (Triplet
        // mirrors the entries) and survive a write→read roundtrip as the
        // equivalent lower-stored matrix.
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    3 3 5\n1 1 4.0\n2 2 5.0\n3 3 6.0\n1 2 -1.5\n2 3 2.25\n";
        let a: SymCsc<f64> = read_matrix_market(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(a.get(1, 0), Some(-1.5));
        assert_eq!(a.get(2, 1), Some(2.25));
        let mut buf = Vec::new();
        write_matrix_market(&a, &mut buf).unwrap();
        let b: SymCsc<f64> = read_matrix_market(BufReader::new(&buf[..])).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn reads_f32() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n1 1 1\n1 1 0.5\n";
        let a: SymCsc<f32> = read_matrix_market(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(a.get(0, 0), Some(0.5f32));
    }
}
