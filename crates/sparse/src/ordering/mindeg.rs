//! Quotient-graph minimum-degree ordering.
//!
//! A compact exact-external-degree minimum-degree implementation using the
//! quotient-graph (element/variable) representation with element absorption.
//! It favors clarity over the full AMD bag of tricks (no supervariables, no
//! approximate degrees), which makes it ideal for the moderate subproblems
//! where we use it: standalone small matrices and the leaf blocks of nested
//! dissection. Asymptotically heavier than AMD on large 3-D problems — use
//! [`super::nested_dissection`] there.

use crate::csc::Adjacency;
use crate::perm::Permutation;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Minimum-degree ordering of the graph. Returns `perm[new] = old`
/// (elimination order).
pub fn minimum_degree(g: &Adjacency) -> Permutation {
    let n = g.len();
    let mut vnbrs: Vec<Vec<usize>> = (0..n).map(|v| g.neighbors(v).to_vec()).collect();
    let mut enbrs: Vec<Vec<usize>> = vec![Vec::new(); n];
    // After elimination, slot v is reused as element v with boundary evars.
    let mut evars: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut degree: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
    let mut eliminated = vec![false; n];
    let mut absorbed = vec![false; n];

    // Lazy min-heap keyed by (degree, vertex); stale entries skipped on pop.
    let mut heap: BinaryHeap<Reverse<(usize, usize)>> =
        (0..n).map(|v| Reverse((degree[v], v))).collect();

    // Stamp-based set membership scratch.
    let mut stamp = vec![0u64; n];
    let mut cur = 0u64;

    let mut order = Vec::with_capacity(n);
    while order.len() < n {
        let p = loop {
            let Reverse((d, v)) = heap.pop().expect("heap exhausted before all pivots chosen");
            if !eliminated[v] && degree[v] == d {
                break v;
            }
        };
        order.push(p);
        eliminated[p] = true;

        // Reachable set Lp = vnbrs[p] ∪ ⋃_{e ∈ enbrs[p]} evars[e] \ {p}.
        cur += 1;
        stamp[p] = cur;
        let mut lp: Vec<usize> = Vec::new();
        for &v in &vnbrs[p] {
            if !eliminated[v] && stamp[v] != cur {
                stamp[v] = cur;
                lp.push(v);
            }
        }
        for &e in &enbrs[p] {
            if absorbed[e] {
                continue;
            }
            for &v in &evars[e] {
                if !eliminated[v] && stamp[v] != cur {
                    stamp[v] = cur;
                    lp.push(v);
                }
            }
            // Element e is fully contained in the new element p: absorb it.
            absorbed[e] = true;
            evars[e].clear();
        }
        evars[p] = lp.clone();
        vnbrs[p].clear();
        enbrs[p].clear();

        // Update every boundary variable: prune quotient-graph lists and
        // recompute its exact external degree. The `lp` stamp is still live.
        let lp_stamp = cur;
        for &v in &lp {
            // Variable neighbors now covered by element p are removed.
            vnbrs[v].retain(|&w| !eliminated[w] && stamp[w] != lp_stamp);
            enbrs[v].retain(|&e| !absorbed[e]);
            enbrs[v].push(p);
            // Exact external degree via a fresh stamp union.
            cur += 1;
            stamp[v] = cur;
            let mut d = 0usize;
            for &w in &vnbrs[v] {
                if stamp[w] != cur {
                    stamp[w] = cur;
                    d += 1;
                }
            }
            for &e in &enbrs[v] {
                for &w in &evars[e] {
                    if !eliminated[w] && stamp[w] != cur {
                        stamp[w] = cur;
                        d += 1;
                    }
                }
            }
            degree[v] = d;
            heap.push(Reverse((d, v)));
        }
    }
    Permutation::from_vec(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csc::Triplet;
    use crate::ordering::tests::{fill_of, grid2d};
    use crate::ordering::{order, OrderingKind};

    #[test]
    fn star_graph_eliminates_leaves_first() {
        // Star: hub 0, leaves 1..6. MD must eliminate all leaves before the hub.
        let mut t = Triplet::new(7);
        t.push(0, 0, 1.0);
        for i in 1..7 {
            t.push(i, i, 1.0);
            t.push(i, 0, 1.0);
        }
        let g = t.assemble().to_adjacency();
        let p = minimum_degree(&g);
        // The hub's degree stays above the minimum until only one leaf
        // remains (then it ties at degree 1), so it cannot be among the
        // first five pivots.
        assert!(p.new_of(0) >= 5, "hub eliminated at position {}", p.new_of(0));
    }

    #[test]
    fn path_graph_causes_no_fill() {
        // MD on a path keeps fill at the tridiagonal minimum: Σ cc = 2n−1.
        let n = 30;
        let mut t = Triplet::new(n);
        for i in 0..n {
            t.push(i, i, 2.0);
            if i + 1 < n {
                t.push(i + 1, i, -1.0);
            }
        }
        let a = t.assemble();
        let p = minimum_degree(&a.to_adjacency());
        assert_eq!(fill_of(&a, &p), 2 * n - 1);
    }

    #[test]
    fn grid_fill_close_to_known_good() {
        let a = grid2d(12, 12);
        let md = fill_of(&a, &order(&a, OrderingKind::MinimumDegree));
        let natural = fill_of(&a, &order(&a, OrderingKind::Natural));
        // Natural ordering of an n×n grid fills ~n·bandwidth; MD should cut
        // it substantially.
        assert!(md * 3 < natural * 2, "md={md} natural={natural}");
    }

    #[test]
    fn complete_graph_any_order_works() {
        let n = 6;
        let mut t = Triplet::new(n);
        for i in 0..n {
            t.push(i, i, 1.0);
            for j in 0..i {
                t.push(i, j, 1.0);
            }
        }
        let a = t.assemble();
        let p = minimum_degree(&a.to_adjacency());
        assert_eq!(p.len(), n);
        // Complete graph: fill is the full lower triangle regardless.
        assert_eq!(fill_of(&a, &p), n * (n + 1) / 2);
    }

    #[test]
    fn empty_graph() {
        let mut t = Triplet::new(3);
        for i in 0..3 {
            t.push(i, i, 1.0);
        }
        let p = minimum_degree(&t.assemble().to_adjacency());
        assert_eq!(p.len(), 3);
    }
}
