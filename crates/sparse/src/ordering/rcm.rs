//! Reverse Cuthill-McKee ordering.

use crate::csc::Adjacency;
use crate::perm::Permutation;

/// Find a pseudo-peripheral vertex of the component containing `start`
/// by repeated BFS to the farthest vertex (George-Liu heuristic).
pub(crate) fn pseudo_peripheral(g: &Adjacency, start: usize, work: &mut BfsWork) -> usize {
    let mut v = start;
    let mut ecc = 0usize;
    loop {
        let levels = work.bfs(g, v);
        let (far, far_ecc) = work.farthest_min_degree(g, levels);
        if far_ecc <= ecc {
            return v;
        }
        ecc = far_ecc;
        v = far;
    }
}

/// Reusable BFS scratch space.
pub(crate) struct BfsWork {
    /// `level[v]` for the most recent BFS, `usize::MAX` = unreached.
    pub level: Vec<usize>,
    /// Visit stamp per vertex to avoid clearing `level` between runs.
    stamp: Vec<u64>,
    cur_stamp: u64,
    queue: Vec<usize>,
    /// Restrict traversal to vertices with `mask[v] == true` (empty = all).
    pub mask: Vec<bool>,
}

impl BfsWork {
    pub fn new(n: usize) -> Self {
        BfsWork {
            level: vec![usize::MAX; n],
            stamp: vec![0; n],
            cur_stamp: 0,
            queue: Vec::with_capacity(n),
            mask: Vec::new(),
        }
    }

    fn allowed(&self, v: usize) -> bool {
        self.mask.is_empty() || self.mask[v]
    }

    /// BFS from `root`; returns the number of levels. Levels readable via
    /// [`Self::levels_of`] until the next BFS.
    pub fn bfs(&mut self, g: &Adjacency, root: usize) -> usize {
        self.cur_stamp += 1;
        self.queue.clear();
        self.queue.push(root);
        self.stamp[root] = self.cur_stamp;
        self.level[root] = 0;
        let mut head = 0;
        let mut max_level = 0;
        while head < self.queue.len() {
            let v = self.queue[head];
            head += 1;
            let lv = self.level[v];
            for &w in g.neighbors(v) {
                if self.stamp[w] != self.cur_stamp && self.allowed(w) {
                    self.stamp[w] = self.cur_stamp;
                    self.level[w] = lv + 1;
                    self.queue.push(w);
                    max_level = max_level.max(lv + 1);
                }
            }
        }
        max_level + 1
    }

    /// Vertices visited by the most recent BFS, in visit order.
    pub fn visited(&self) -> &[usize] {
        &self.queue
    }

    /// Among vertices in the last BFS level, the one of minimum degree
    /// (classic pseudo-peripheral tie-break); returns `(vertex, ecc)`.
    fn farthest_min_degree(&self, g: &Adjacency, nlevels: usize) -> (usize, usize) {
        let last = nlevels - 1;
        let mut best = usize::MAX;
        let mut best_deg = usize::MAX;
        for &v in &self.queue {
            if self.level[v] == last && g.degree(v) < best_deg {
                best_deg = g.degree(v);
                best = v;
            }
        }
        (best, last)
    }
}

/// Reverse Cuthill-McKee ordering of the whole graph (all components).
///
/// Returns a [`Permutation`] with `perm[new] = old`.
pub fn reverse_cuthill_mckee(g: &Adjacency) -> Permutation {
    let n = g.len();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    let mut work = BfsWork::new(n);
    let mut nbrs: Vec<usize> = Vec::new();
    for seed in 0..n {
        if placed[seed] {
            continue;
        }
        let root = pseudo_peripheral(g, seed, &mut work);
        // Cuthill-McKee: BFS from root, neighbors in increasing-degree order.
        let start_len = order.len();
        order.push(root);
        placed[root] = true;
        let mut head = start_len;
        while head < order.len() {
            let v = order[head];
            head += 1;
            nbrs.clear();
            nbrs.extend(g.neighbors(v).iter().copied().filter(|&w| !placed[w]));
            nbrs.sort_unstable_by_key(|&w| g.degree(w));
            for &w in &nbrs {
                if !placed[w] {
                    placed[w] = true;
                    order.push(w);
                }
            }
        }
        // Reverse this component's segment.
        order[start_len..].reverse();
    }
    Permutation::from_vec(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csc::Triplet;

    fn path_graph(n: usize) -> Adjacency {
        let mut t = Triplet::new(n);
        for i in 0..n {
            t.push(i, i, 1.0);
            if i + 1 < n {
                t.push(i + 1, i, 1.0);
            }
        }
        t.assemble().to_adjacency()
    }

    #[test]
    fn path_graph_stays_banded() {
        let g = path_graph(10);
        let p = reverse_cuthill_mckee(&g);
        // Bandwidth of the reordered path must remain 1.
        for v in 0..10 {
            for &w in g.neighbors(v) {
                let d = p.new_of(v).abs_diff(p.new_of(w));
                assert_eq!(d, 1, "edge ({v},{w}) stretched to {d}");
            }
        }
    }

    #[test]
    fn pseudo_peripheral_of_path_is_an_end() {
        let g = path_graph(9);
        let mut work = BfsWork::new(9);
        let v = pseudo_peripheral(&g, 4, &mut work);
        assert!(v == 0 || v == 8, "got {v}");
    }

    #[test]
    fn handles_disconnected_graphs() {
        // Two disjoint triangles.
        let mut t = Triplet::new(6);
        for base in [0, 3] {
            for i in 0..3 {
                t.push(base + i, base + i, 1.0);
                t.push(base + i, base + (i + 1) % 3, 1.0);
            }
        }
        let g = t.assemble().to_adjacency();
        let p = reverse_cuthill_mckee(&g);
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn reduces_bandwidth_of_shuffled_grid() {
        // Build a 2-D grid, shuffle it, and check RCM restores a small
        // bandwidth compared to the shuffled labeling.
        let (nx, ny) = (8, 8);
        let n = nx * ny;
        let shuffle = Permutation::from_vec({
            let mut v: Vec<usize> = (0..n).collect();
            // Deterministic shuffle.
            let mut s = 0xDEADBEEFu64;
            for i in (1..n).rev() {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                let j = (s % (i as u64 + 1)) as usize;
                v.swap(i, j);
            }
            v
        });
        let mut t = Triplet::new(n);
        let idx = |x: usize, y: usize| shuffle.new_of(y * nx + x);
        for y in 0..ny {
            for x in 0..nx {
                t.push(idx(x, y), idx(x, y), 4.0);
                if x + 1 < nx {
                    t.push(idx(x + 1, y), idx(x, y), -1.0);
                }
                if y + 1 < ny {
                    t.push(idx(x, y + 1), idx(x, y), -1.0);
                }
            }
        }
        let g = t.assemble().to_adjacency();
        let bandwidth = |p: &Permutation| {
            let mut bw = 0usize;
            for v in 0..n {
                for &w in g.neighbors(v) {
                    bw = bw.max(p.new_of(v).abs_diff(p.new_of(w)));
                }
            }
            bw
        };
        let rcm = reverse_cuthill_mckee(&g);
        assert!(
            bandwidth(&rcm) <= 12,
            "RCM bandwidth {} should be near grid width",
            bandwidth(&rcm)
        );
    }
}
