//! Fill-reducing orderings.
//!
//! The paper's matrices come from 3-D structural analysis and are ordered by
//! WSMP's nested-dissection-style ordering; the shape of the resulting
//! frontal-size distribution (many tiny fronts at the leaves, a handful of
//! huge fronts near the root) is what drives the policy crossovers. We
//! implement:
//!
//! * [`OrderingKind::Natural`] — the identity (for tests and banded inputs),
//! * [`OrderingKind::Rcm`] — reverse Cuthill-McKee (bandwidth reduction),
//! * [`OrderingKind::MinimumDegree`] — quotient-graph minimum degree with
//!   element absorption and an AMD-style degree bound,
//! * [`OrderingKind::NestedDissection`] — recursive level-set vertex
//!   separators with minimum-degree-ordered leaves (the default).

mod mindeg;
mod nd;
mod rcm;

pub use mindeg::minimum_degree;
pub use nd::{nested_dissection, nested_dissection_parallel, NdOptions};
pub use rcm::reverse_cuthill_mckee;

use crate::csc::SymCsc;
use crate::perm::Permutation;
use mf_dense::Scalar;

/// Selector for the ordering algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OrderingKind {
    /// Identity ordering.
    Natural,
    /// Reverse Cuthill-McKee.
    Rcm,
    /// Quotient-graph minimum degree.
    MinimumDegree,
    /// Recursive nested dissection (default; best for the 3-D suite).
    #[default]
    NestedDissection,
}

/// Compute a fill-reducing permutation for a lower-stored symmetric matrix.
pub fn order<T: Scalar>(a: &SymCsc<T>, kind: OrderingKind) -> Permutation {
    let g = a.to_adjacency();
    match kind {
        OrderingKind::Natural => Permutation::identity(a.order()),
        OrderingKind::Rcm => reverse_cuthill_mckee(&g),
        OrderingKind::MinimumDegree => minimum_degree(&g),
        OrderingKind::NestedDissection => nested_dissection(&g, &NdOptions::default()),
    }
}

/// Parallel variant of [`order`], bitwise identical at every worker count.
///
/// Nested dissection — the default and by far the most expensive ordering
/// on the paper's 3-D suite — runs its disjoint recursions on the
/// mf-runtime pool ([`nested_dissection_parallel`]); the remaining kinds
/// are cheap or inherently sequential and fall through to the serial
/// implementation (which is already deterministic).
pub fn order_parallel<T: Scalar>(a: &SymCsc<T>, kind: OrderingKind, workers: usize) -> Permutation {
    match kind {
        OrderingKind::NestedDissection => {
            nested_dissection_parallel(&a.to_adjacency(), &NdOptions::default(), workers)
        }
        _ => order(a, kind),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csc::Triplet;
    use crate::etree::{column_counts, elimination_tree};

    /// 2-D 5-point Laplacian on an `nx × ny` grid (test workhorse).
    pub(crate) fn grid2d(nx: usize, ny: usize) -> SymCsc<f64> {
        let n = nx * ny;
        let mut t = Triplet::new(n);
        let idx = |x: usize, y: usize| y * nx + x;
        for y in 0..ny {
            for x in 0..nx {
                t.push(idx(x, y), idx(x, y), 4.0);
                if x + 1 < nx {
                    t.push(idx(x + 1, y), idx(x, y), -1.0);
                }
                if y + 1 < ny {
                    t.push(idx(x, y + 1), idx(x, y), -1.0);
                }
            }
        }
        t.assemble()
    }

    pub(crate) fn fill_of<T: Scalar>(a: &SymCsc<T>, p: &Permutation) -> usize {
        let pa = p.permute_sym(a);
        let et = elimination_tree(&pa);
        column_counts(&pa, &et).iter().sum()
    }

    #[test]
    fn all_orderings_are_valid_permutations() {
        let a = grid2d(9, 7);
        for kind in [
            OrderingKind::Natural,
            OrderingKind::Rcm,
            OrderingKind::MinimumDegree,
            OrderingKind::NestedDissection,
        ] {
            let p = order(&a, kind);
            assert_eq!(p.len(), 63);
            // from_vec validates permutation-ness; also check a roundtrip.
            for v in 0..p.len() {
                assert_eq!(p.new_of(p.old_of(v)), v);
            }
        }
    }

    #[test]
    fn fill_reducing_orderings_beat_natural_on_grids() {
        let a = grid2d(20, 20);
        let natural = fill_of(&a, &order(&a, OrderingKind::Natural));
        let md = fill_of(&a, &order(&a, OrderingKind::MinimumDegree));
        let nd = fill_of(&a, &order(&a, OrderingKind::NestedDissection));
        assert!(md < natural, "MD fill {md} must beat natural {natural}");
        assert!(nd < natural, "ND fill {nd} must beat natural {natural}");
    }

    #[test]
    fn orderings_preserve_solvability_structure() {
        // Permuted matrix keeps the same row-sum spectrum (sanity on values).
        let a = grid2d(6, 5);
        let p = order(&a, OrderingKind::NestedDissection);
        let b = p.permute_sym(&a);
        assert_eq!(b.nnz_lower(), a.nnz_lower());
        let mut da: Vec<f64> = (0..a.order()).map(|i| a.get(i, i).unwrap()).collect();
        let mut db: Vec<f64> = (0..b.order()).map(|i| b.get(i, i).unwrap()).collect();
        da.sort_by(f64::total_cmp);
        db.sort_by(f64::total_cmp);
        assert_eq!(da, db);
    }
}
