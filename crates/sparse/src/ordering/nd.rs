//! Recursive nested dissection with level-set vertex separators.
//!
//! The classic recipe for mesh-like graphs: find a pseudo-peripheral vertex,
//! run BFS, pick the thinnest level set near the middle as the separator,
//! recurse on the two halves, and number the separator last. Leaves are
//! ordered by the exact minimum-degree algorithm, giving good fronts at the
//! bottom of the elimination tree. On 3-D grids this yields the
//! characteristic frontal-size distribution the paper's policy analysis
//! depends on (Section IV-A): ~97 % of fronts tiny, a few huge near the root.

use super::mindeg::minimum_degree;
use super::rcm::{pseudo_peripheral, BfsWork};
use crate::csc::Adjacency;
use crate::perm::Permutation;

/// Tuning knobs for nested dissection.
#[derive(Debug, Clone)]
pub struct NdOptions {
    /// Subgraphs at or below this size are ordered by minimum degree.
    pub leaf_size: usize,
    /// Candidate separator levels are searched within the middle
    /// `separator_band` fraction of the BFS levels.
    pub separator_band: f64,
}

impl Default for NdOptions {
    fn default() -> Self {
        NdOptions { leaf_size: 96, separator_band: 0.5 }
    }
}

/// Nested-dissection ordering; returns `perm[new] = old`.
pub fn nested_dissection(g: &Adjacency, opts: &NdOptions) -> Permutation {
    let n = g.len();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut work = BfsWork::new(n);
    work.mask = vec![true; n];
    let mut assigned = vec![false; n];
    // Collect top-level connected components first.
    let mut top_comps = Vec::new();
    for seed in 0..n {
        if assigned[seed] {
            continue;
        }
        let _ = work.bfs(g, seed);
        let comp: Vec<usize> = work.visited().to_vec();
        for &v in &comp {
            assigned[v] = true;
        }
        top_comps.push(comp);
    }
    // The recursion masks in the vertices of each part it inspects, so the
    // baseline mask state is all-false.
    work.mask.fill(false);
    for comp in top_comps {
        dissect(g, comp, opts, &mut work, &mut order);
    }
    debug_assert_eq!(order.len(), n);
    Permutation::from_vec(order)
}

/// Parallel nested dissection on the mf-runtime pool, bitwise identical to
/// [`nested_dissection`] at every worker count.
///
/// The serial recursion composes: `dissect` on a part either orders it as a
/// leaf, or recurses on disjoint sub-parts and appends each sub-order
/// contiguously (A, B, separator). The driver exploits that by expanding
/// the dissection front *serially* — always splitting the largest pending
/// part, exactly as `dissect` would — until there are a few parts per
/// worker, then runs each part's full serial `dissect` as an independent
/// task and splices the per-part orders back in the serial emission order.
/// Scheduling cannot perturb the result: `split`, `components`,
/// `order_leaf`, and `dissect` depend only on the graph and the part (BFS
/// scratch is stamp-guarded and the mask baseline is restored to all-false
/// after every use), and the merge order is fixed by the plan, not by task
/// completion order.
pub fn nested_dissection_parallel(g: &Adjacency, opts: &NdOptions, workers: usize) -> Permutation {
    let n = g.len();
    let mut work = BfsWork::new(n);
    work.mask = vec![true; n];
    let mut assigned = vec![false; n];
    let mut top_comps = Vec::new();
    for seed in 0..n {
        if assigned[seed] {
            continue;
        }
        let _ = work.bfs(g, seed);
        let comp: Vec<usize> = work.visited().to_vec();
        for &v in &comp {
            assigned[v] = true;
        }
        top_comps.push(comp);
    }
    work.mask.fill(false);

    // Plan tree: `Part` runs as one task, `Seq` splices children in
    // emission order, `Lit` is a separator emitted verbatim.
    enum Node {
        Part(Vec<usize>),
        Seq(Vec<usize>),
        Lit(Vec<usize>),
    }
    let mut nodes: Vec<Node> = Vec::new();
    let mut roots = Vec::new();
    // Max-heap on (size, id): always expand the largest pending part, so
    // task granularity evens out quickly.
    let mut heap = std::collections::BinaryHeap::new();
    for comp in top_comps {
        let id = nodes.len();
        heap.push((comp.len(), id));
        nodes.push(Node::Part(comp));
        roots.push(id);
    }
    let target = workers.max(1) * 4;
    let mut nparts = heap.len();
    while nparts < target {
        let Some((len, id)) = heap.pop() else { break };
        if len <= opts.leaf_size {
            // The largest pending part is already a leaf: nothing to split.
            heap.push((len, id));
            break;
        }
        let Node::Part(vs) = std::mem::replace(&mut nodes[id], Node::Seq(Vec::new())) else {
            unreachable!("heap only references Part nodes")
        };
        // Mirror `dissect` exactly: components first, then split.
        let comps = components(g, &vs, &mut work);
        let mut seq = Vec::new();
        if comps.len() > 1 {
            for comp in comps {
                let cid = nodes.len();
                heap.push((comp.len(), cid));
                nodes.push(Node::Part(comp));
                seq.push(cid);
                nparts += 1;
            }
        } else {
            match split(g, &vs, opts, &mut work) {
                None => {
                    // Unsplittable: leave it as one leaf task (off the heap).
                    nodes[id] = Node::Part(vs);
                    continue;
                }
                Some((a, b, sep)) => {
                    for half in [a, b] {
                        if half.is_empty() {
                            continue;
                        }
                        let cid = nodes.len();
                        heap.push((half.len(), cid));
                        nodes.push(Node::Part(half));
                        seq.push(cid);
                        nparts += 1;
                    }
                    let lid = nodes.len();
                    nodes.push(Node::Lit(sep));
                    seq.push(lid);
                }
            }
        }
        nparts -= 1;
        nodes[id] = Node::Seq(seq);
    }

    // Flatten the plan in emission order into task parts + literal runs.
    enum Seg {
        Task(usize),
        Lit(Vec<usize>),
    }
    let mut tasks: Vec<Vec<usize>> = Vec::new();
    let mut schedule: Vec<Seg> = Vec::new();
    let mut stack: Vec<usize> = roots.iter().rev().copied().collect();
    while let Some(id) = stack.pop() {
        match std::mem::replace(&mut nodes[id], Node::Seq(Vec::new())) {
            Node::Part(vs) => {
                schedule.push(Seg::Task(tasks.len()));
                tasks.push(vs);
            }
            Node::Lit(sep) => schedule.push(Seg::Lit(sep)),
            Node::Seq(seq) => stack.extend(seq.iter().rev()),
        }
    }

    // Run every part's full serial dissection as an independent task; the
    // graph is edgeless (parts are vertex-disjoint by construction).
    let ntasks = tasks.len();
    let graph = mf_runtime::TaskGraph::new(ntasks);
    let rt = mf_runtime::Runtime::new(workers.max(1).min(ntasks.max(1)));
    // Per-worker scratch plus the (task id, emitted order) pairs it ran.
    type NdWorkerState = (BfsWork, Vec<(usize, Vec<usize>)>);
    let states: Vec<NdWorkerState> = (0..rt.workers())
        .map(|_| {
            let mut w = BfsWork::new(n);
            w.mask = vec![false; n];
            (w, Vec::new())
        })
        .collect();
    let tasks_ref = &tasks;
    let (states, _errs) = rt.run(&graph, states, |st, t| -> Result<(), ()> {
        let mut out = Vec::with_capacity(tasks_ref[t].len());
        dissect(g, tasks_ref[t].clone(), opts, &mut st.0, &mut out);
        st.1.push((t, out));
        Ok(())
    });
    let mut results: Vec<Vec<usize>> = vec![Vec::new(); ntasks];
    for (_, done) in states {
        for (t, out) in done {
            results[t] = out;
        }
    }
    let mut order: Vec<usize> = Vec::with_capacity(n);
    for seg in schedule {
        match seg {
            Seg::Task(t) => order.append(&mut results[t]),
            Seg::Lit(sep) => order.extend(sep),
        }
    }
    debug_assert_eq!(order.len(), n);
    Permutation::from_vec(order)
}

/// Recursively order the connected vertex set `verts` (mask-restricted),
/// appending to `order`. Uses an explicit work stack with a post-step to
/// append separators after both halves — written iteratively so deep
/// recursions on elongated meshes cannot overflow the stack.
fn dissect(
    g: &Adjacency,
    verts: Vec<usize>,
    opts: &NdOptions,
    work: &mut BfsWork,
    order: &mut Vec<usize>,
) {
    enum Item {
        Part(Vec<usize>),
        EmitSep(Vec<usize>),
    }
    let mut stack = vec![Item::Part(verts)];
    while let Some(item) = stack.pop() {
        match item {
            Item::EmitSep(sep) => order.extend(sep),
            Item::Part(vs) => {
                if vs.len() <= opts.leaf_size {
                    order_leaf(g, &vs, order);
                    continue;
                }
                // A part left over from a previous split may be disconnected;
                // dissect each connected component independently.
                let comps = components(g, &vs, work);
                if comps.len() > 1 {
                    for comp in comps.into_iter().rev() {
                        stack.push(Item::Part(comp));
                    }
                    continue;
                }
                match split(g, &vs, opts, work) {
                    None => order_leaf(g, &vs, order),
                    Some((a, b, sep)) => {
                        // Emit order: A, B, then separator ⇒ push sep first.
                        stack.push(Item::EmitSep(sep));
                        if !b.is_empty() {
                            stack.push(Item::Part(b));
                        }
                        if !a.is_empty() {
                            stack.push(Item::Part(a));
                        }
                    }
                }
            }
        }
    }
}

/// Connected components of the subgraph induced by `vs`.
fn components(g: &Adjacency, vs: &[usize], work: &mut BfsWork) -> Vec<Vec<usize>> {
    for &v in vs {
        work.mask[v] = true;
    }
    let mut comps = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for &v in vs {
        if seen.contains(&v) {
            continue;
        }
        let _ = work.bfs(g, v);
        let comp: Vec<usize> = work.visited().to_vec();
        seen.extend(comp.iter().copied());
        comps.push(comp);
    }
    for &v in vs {
        work.mask[v] = false;
    }
    comps
}

/// Order a leaf subgraph by minimum degree on the extracted subgraph.
fn order_leaf(g: &Adjacency, vs: &[usize], order: &mut Vec<usize>) {
    if vs.len() <= 2 {
        order.extend_from_slice(vs);
        return;
    }
    // Extract the induced subgraph with local indices.
    let mut local = std::collections::HashMap::with_capacity(vs.len());
    for (li, &v) in vs.iter().enumerate() {
        local.insert(v, li);
    }
    let mut xadj = vec![0usize; vs.len() + 1];
    let mut adj = Vec::new();
    for (li, &v) in vs.iter().enumerate() {
        for &w in g.neighbors(v) {
            if let Some(&lw) = local.get(&w) {
                adj.push(lw);
            }
        }
        xadj[li + 1] = adj.len();
    }
    let sub = Adjacency { xadj, adj };
    let p = minimum_degree(&sub);
    order.extend(p.as_slice().iter().map(|&li| vs[li]));
}

/// Split a connected vertex set into (A, B, separator) via BFS level sets.
/// Returns `None` when no useful split exists (e.g. near-clique).
fn split(
    g: &Adjacency,
    vs: &[usize],
    opts: &NdOptions,
    work: &mut BfsWork,
) -> Option<(Vec<usize>, Vec<usize>, Vec<usize>)> {
    // Restrict traversal to this part.
    for &v in vs {
        work.mask[v] = true;
    }
    let result = split_masked(g, vs, opts, work);
    for &v in vs {
        work.mask[v] = false;
    }
    result
}

fn split_masked(
    g: &Adjacency,
    vs: &[usize],
    opts: &NdOptions,
    work: &mut BfsWork,
) -> Option<(Vec<usize>, Vec<usize>, Vec<usize>)> {
    let root = pseudo_peripheral_masked(g, vs[0], work);
    let nlevels = work.bfs(g, root);
    if nlevels < 3 {
        return None; // graph is (near-)complete; treat as leaf
    }
    // Level populations.
    let mut pop = vec![0usize; nlevels];
    for &v in work.visited() {
        pop[work.level[v]] += 1;
    }
    debug_assert_eq!(work.visited().len(), vs.len(), "part must be connected");
    // Search the middle band for the thinnest level, balancing halves:
    // cost = |level| + imbalance penalty.
    let half_band = (nlevels as f64 * opts.separator_band / 2.0).max(1.0) as usize;
    let mid = nlevels / 2;
    let lo = mid.saturating_sub(half_band).max(1);
    let hi = (mid + half_band).min(nlevels - 2);
    let mut below = vec![0usize; nlevels + 1];
    for l in 0..nlevels {
        below[l + 1] = below[l] + pop[l];
    }
    let total = vs.len();
    let mut best_level = lo;
    let mut best_cost = f64::INFINITY;
    for l in lo..=hi {
        let na = below[l];
        let nb = total - below[l + 1];
        let imbalance = (na as f64 - nb as f64).abs() / total as f64;
        let cost = pop[l] as f64 * (1.0 + 2.0 * imbalance);
        if cost < best_cost {
            best_cost = cost;
            best_level = l;
        }
    }
    let mut a = Vec::new();
    let mut b = Vec::new();
    let mut sep = Vec::new();
    for &v in work.visited() {
        match work.level[v].cmp(&best_level) {
            std::cmp::Ordering::Less => a.push(v),
            std::cmp::Ordering::Equal => sep.push(v),
            std::cmp::Ordering::Greater => b.push(v),
        }
    }
    if a.is_empty() && b.is_empty() {
        return None;
    }
    Some((a, b, sep))
}

/// Pseudo-peripheral vertex within the current mask.
fn pseudo_peripheral_masked(g: &Adjacency, start: usize, work: &mut BfsWork) -> usize {
    pseudo_peripheral(g, start, work)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ordering::tests::{fill_of, grid2d};

    #[test]
    fn orders_every_vertex_exactly_once() {
        let a = grid2d(15, 13);
        let p = nested_dissection(&a.to_adjacency(), &NdOptions::default());
        assert_eq!(p.len(), 15 * 13);
    }

    #[test]
    fn separator_numbered_last_dominates_tail() {
        // On a 2-D grid the final vertices of an ND order form the top-level
        // separator — they should cut the grid, i.e. removing them leaves no
        // edge between the two halves.
        let (nx, ny) = (16, 16);
        let a = grid2d(nx, ny);
        let g = a.to_adjacency();
        let p = nested_dissection(&g, &NdOptions::default());
        let n = nx * ny;
        // Take the last ~sqrt(n) vertices as separator candidates.
        let tail = nx;
        let sep: std::collections::HashSet<usize> =
            (n - tail..n).map(|new| p.old_of(new)).collect();
        // BFS in the complement must not reach everything (graph is cut or
        // at least the tail is a plausible separator region). Weak check:
        // the tail vertices form a connected, low-degree-structure — we
        // simply verify the ordering put *some* grid line last.
        assert_eq!(sep.len(), tail);
    }

    #[test]
    fn beats_natural_ordering_on_square_grid() {
        let a = grid2d(24, 24);
        let g = a.to_adjacency();
        let nd = nested_dissection(&g, &NdOptions::default());
        let natural = Permutation::identity(a.order());
        let f_nd = fill_of(&a, &nd);
        let f_nat = fill_of(&a, &natural);
        assert!(f_nd < f_nat, "nd fill {f_nd} vs natural {f_nat}");
    }

    #[test]
    fn leaf_size_one_still_valid() {
        let a = grid2d(6, 6);
        let opts = NdOptions { leaf_size: 1, ..Default::default() };
        let p = nested_dissection(&a.to_adjacency(), &opts);
        assert_eq!(p.len(), 36);
    }

    #[test]
    fn handles_disconnected_graph() {
        use crate::csc::Triplet;
        let mut t = Triplet::new(8);
        // Two paths of 4.
        for base in [0usize, 4] {
            for i in 0..4 {
                t.push(base + i, base + i, 2.0);
                if i + 1 < 4 {
                    t.push(base + i + 1, base + i, -1.0);
                }
            }
        }
        let p = nested_dissection(&t.assemble().to_adjacency(), &NdOptions::default());
        assert_eq!(p.len(), 8);
    }

    #[test]
    fn parallel_matches_serial_bitwise_at_every_worker_count() {
        let grids = [grid2d(23, 19), grid2d(400, 3), grid2d(6, 6)];
        for a in &grids {
            let g = a.to_adjacency();
            let serial = nested_dissection(&g, &NdOptions::default());
            for workers in [1, 2, 4, 8] {
                let par = nested_dissection_parallel(&g, &NdOptions::default(), workers);
                assert_eq!(par.as_slice(), serial.as_slice(), "workers={workers}");
            }
        }
    }

    #[test]
    fn parallel_matches_serial_on_disconnected_graph() {
        use crate::csc::Triplet;
        let mut t = Triplet::new(600);
        // Three disjoint paths of 200 — big enough to expand past the
        // top-level components.
        for base in [0usize, 200, 400] {
            for i in 0..200 {
                t.push(base + i, base + i, 2.0);
                if i + 1 < 200 {
                    t.push(base + i + 1, base + i, -1.0);
                }
            }
        }
        let g = t.assemble().to_adjacency();
        let serial = nested_dissection(&g, &NdOptions::default());
        for workers in [1, 2, 4, 8] {
            let par = nested_dissection_parallel(&g, &NdOptions::default(), workers);
            assert_eq!(par.as_slice(), serial.as_slice(), "workers={workers}");
        }
    }

    #[test]
    fn elongated_mesh_no_stack_overflow() {
        // 400×3 strip forces many recursion levels; iterative dissection
        // must handle it.
        let a = grid2d(400, 3);
        let p = nested_dissection(&a.to_adjacency(), &NdOptions::default());
        assert_eq!(p.len(), 1200);
    }
}
