//! Wall-clock benchmark of the solve path: batched multi-RHS triangular
//! solves vs looping the single-RHS solve, and the tree-parallel sweeps vs
//! the serial postorder traversal.
//!
//! `BENCH_solve.json` reports, per matrix:
//!
//! * **looped_ms / batched_ms** at several RHS counts — the batched path
//!   amortises the factor-panel traversal over all columns and routes the
//!   trailing updates through one multi-RHS GEMM per supernode, so it must
//!   win once the RHS block is wide enough (the acceptance gate checks
//!   `nrhs = 8`), and
//! * **parallel_ms** at several worker counts for the widest block —
//!   wall-clock of the elimination-tree-parallel forward/backward sweeps,
//!   which are bitwise identical to the serial solve by construction.

use criterion::{criterion_group, BenchmarkId, Criterion};
use mf_core::{factor_permuted, BaselineThresholds, CholeskyFactor, FactorOptions, PolicySelector};
use mf_gpusim::Machine;
use mf_matgen::PaperMatrix;
use mf_sparse::symbolic::analyze;
use mf_sparse::{AmalgamationOptions, OrderingKind, SymCsc};

const RHS_COUNTS: [usize; 3] = [1, 8, 32];
const WORKER_COUNTS: [usize; 2] = [2, 4];
const PAR_NRHS: usize = 8;

fn suite() -> Vec<(&'static str, SymCsc<f64>)> {
    let scale =
        std::env::var("MF_BENCH_SCALE").ok().and_then(|s| s.parse::<f64>().ok()).unwrap_or(0.30);
    vec![
        ("sgi_1M", PaperMatrix::Sgi1M.generate_scaled(scale)),
        ("audikw_1", PaperMatrix::Audikw1.generate_scaled(scale)),
    ]
}

fn factor_of(a: &SymCsc<f64>) -> CholeskyFactor<f64> {
    let an =
        analyze(a, OrderingKind::NestedDissection, Some(&AmalgamationOptions::default())).unwrap();
    let opts = FactorOptions {
        selector: PolicySelector::Baseline(BaselineThresholds::default()),
        ..Default::default()
    };
    let mut machine = Machine::paper_node();
    factor_permuted(&an.permuted.0, &an.symbolic, &an.perm, &mut machine, &opts).unwrap().0
}

fn rhs_block(n: usize, nrhs: usize) -> Vec<f64> {
    (0..n * nrhs)
        .map(|i| {
            let (r, c) = (i % n, i / n);
            ((r * 31 + c * 17 + 7) % 13) as f64 / 13.0 - 0.4
        })
        .collect()
}

fn bench_solve(c: &mut Criterion) {
    let mut g = c.benchmark_group("solve");
    for (name, a) in suite() {
        let f = factor_of(&a);
        let n = a.order();
        for nrhs in RHS_COUNTS {
            let b = rhs_block(n, nrhs);
            g.bench_with_input(BenchmarkId::new(format!("looped_r{nrhs}"), name), &(), |be, _| {
                be.iter(|| {
                    let mut x = Vec::with_capacity(n * nrhs);
                    for j in 0..nrhs {
                        x.extend_from_slice(&f.solve(&b[j * n..(j + 1) * n]));
                    }
                    x
                })
            });
            g.bench_with_input(BenchmarkId::new(format!("batched_r{nrhs}"), name), &(), |be, _| {
                be.iter(|| f.solve_many(&b, nrhs))
            });
        }
        let b = rhs_block(n, PAR_NRHS);
        for w in WORKER_COUNTS {
            g.bench_with_input(
                BenchmarkId::new(format!("parallel_w{w}_r{PAR_NRHS}"), name),
                &w,
                |be, &w| be.iter(|| f.solve_many_parallel(&b, PAR_NRHS, w)),
            );
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_solve
}

/// Write `BENCH_solve.json`: per matrix, looped-vs-batched times and speedup
/// at each RHS count, plus parallel-sweep times at `PAR_NRHS` RHS.
fn write_bench_json() {
    let recs = criterion::records();
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"hardware_threads\": {threads},\n"));
    out.push_str(
        "  \"note\": \"batched_speedup = looped_ms / batched_ms; both paths are bitwise \
         identical per column, so this is a pure scheduling win\",\n",
    );
    out.push_str("  \"matrices\": [\n");
    let mut blocks: Vec<String> = Vec::new();
    for (name, a) in suite() {
        let mean_of = |id: String| {
            recs.iter().find(|r| r.group == "solve" && r.id == id).map(|r| r.mean_ns / 1.0e6)
        };
        let mut rhs_rows: Vec<String> = Vec::new();
        for nrhs in RHS_COUNTS {
            let (Some(looped), Some(batched)) = (
                mean_of(format!("looped_r{nrhs}/{name}")),
                mean_of(format!("batched_r{nrhs}/{name}")),
            ) else {
                continue;
            };
            rhs_rows.push(format!(
                "        {{\"nrhs\": {nrhs}, \"looped_ms\": {looped:.3}, \
                 \"batched_ms\": {batched:.3}, \"batched_speedup\": {:.3}}}",
                looped / batched
            ));
        }
        let mut par_rows: Vec<String> = Vec::new();
        let serial_ms = mean_of(format!("batched_r{PAR_NRHS}/{name}"));
        for w in WORKER_COUNTS {
            let (Some(par_ms), Some(serial)) =
                (mean_of(format!("parallel_w{w}_r{PAR_NRHS}/{name}")), serial_ms)
            else {
                continue;
            };
            par_rows.push(format!(
                "        {{\"workers\": {w}, \"nrhs\": {PAR_NRHS}, \"parallel_ms\": {par_ms:.3}, \
                 \"speedup_vs_serial\": {:.3}}}",
                serial / par_ms
            ));
        }
        blocks.push(format!(
            "    {{\"name\": \"{name}\", \"order\": {}, \"batched\": [\n{}\n      ], \
             \"parallel\": [\n{}\n      ]}}",
            a.order(),
            rhs_rows.join(",\n"),
            par_rows.join(",\n")
        ));
    }
    out.push_str(&blocks.join(",\n"));
    out.push_str("\n  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_solve.json");
    if let Err(e) = std::fs::write(path, &out) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("wrote BENCH_solve.json ({} hardware threads)", threads);
    }
}

fn main() {
    benches();
    write_bench_json();
}
