//! Pipelined vs drain-per-front GPU dispatch on the paper matrices.
//!
//! Both drivers run the same f32 numeric factorization through the GPU
//! simulator; the metric is the *simulated* makespan (`FactorStats::
//! total_time`) plus the GPU engine busy/idle accounting the dispatch layer
//! now surfaces (`FactorStats::gpu`), so the comparison is deterministic and
//! hardware-independent. Per matrix × GPU policy (P2/P3/P4) the report
//! records the drain and pipelined makespans, the speedup, both engines'
//! utilization under each driver, and the bitwise check that pipelining
//! changed no factor entry. Written to `BENCH_gpu.json`.
//!
//! `copy_optimized` stays at its default (off) so the batched small-front
//! dispatch path is exercised — the copy-optimized P4 transfer plan issues
//! per-panel transfers that are ineligible for batching.

use mf_core::{factor_permuted, FactorOptions, PipelineOptions, PolicyKind, PolicySelector};
use mf_gpusim::{GpuUtilization, Machine};
use mf_matgen::PaperMatrix;
use mf_sparse::symbolic::{analyze, Analysis};
use mf_sparse::{AmalgamationOptions, OrderingKind, SymCsc};

const POLICIES: [PolicyKind; 3] = [PolicyKind::P2, PolicyKind::P3, PolicyKind::P4];

/// The five paper stand-ins, shrunk to bench-friendly orders.
fn suite() -> Vec<(&'static str, SymCsc<f64>)> {
    let scale =
        std::env::var("MF_BENCH_SCALE").ok().and_then(|s| s.parse::<f64>().ok()).unwrap_or(0.30);
    PaperMatrix::ALL.iter().map(|m| (m.name(), m.generate_scaled(scale))).collect()
}

fn analysis_of(a: &SymCsc<f64>) -> Analysis {
    analyze(a, OrderingKind::NestedDissection, Some(&AmalgamationOptions::default())).unwrap()
}

struct Run {
    makespan: f64,
    gpu: GpuUtilization,
    bits: Vec<u64>,
}

fn run(an: &Analysis, a32: &SymCsc<f32>, opts: &FactorOptions) -> Run {
    let mut machine = Machine::paper_node();
    let (f, stats) =
        factor_permuted(a32, &an.symbolic, &an.perm, &mut machine, opts).expect("SPD stand-in");
    Run {
        makespan: stats.total_time,
        gpu: stats.gpu.expect("paper node has a GPU"),
        bits: f.slab.iter().map(|x| x.to_bits() as u64).collect(),
    }
}

fn gpu_json(u: &GpuUtilization) -> String {
    format!(
        "{{\"compute_util\": {:.4}, \"copy_util\": {:.4}, \"busy_fraction\": {:.4}, \
         \"compute_idle\": {:.4}}}",
        u.compute_utilization(),
        u.copy_utilization(),
        u.busy_fraction(),
        u.compute_idle_fraction()
    )
}

fn main() {
    let mut blocks: Vec<String> = Vec::new();
    // Matrices that came out ahead: no policy cell regressed (the rehearsal
    // cost model guarantees ties via drain fallback) and at least one cell
    // won strictly.
    let mut winning_matrices = 0usize;
    for (name, a) in suite() {
        let an = analysis_of(&a);
        let a32: SymCsc<f32> = an.permuted.0.cast();
        let mut rows: Vec<String> = Vec::new();
        let mut strict_wins = 0usize;
        let mut losses = 0usize;
        for p in POLICIES {
            let drain =
                FactorOptions { selector: PolicySelector::Fixed(p), ..FactorOptions::default() };
            let piped = FactorOptions { pipeline: PipelineOptions::pipelined(), ..drain.clone() };
            let rd = run(&an, &a32, &drain);
            let rp = run(&an, &a32, &piped);
            assert_eq!(
                rd.bits, rp.bits,
                "{name}/{p}: pipelined dispatch must not change a single factor bit"
            );
            // The pipelined entry rehearses both schedules and falls back
            // to the drain schedule when pipelining is predicted not to
            // win, so a cell either wins strictly or ties the drain
            // makespan exactly.
            if rp.makespan < rd.makespan {
                strict_wins += 1;
            } else if rp.makespan > rd.makespan {
                losses += 1;
            }
            rows.push(format!(
                "        {{\"policy\": \"{p}\", \"drain_makespan_s\": {:.6e}, \
                 \"pipelined_makespan_s\": {:.6e}, \"speedup\": {:.4}, \
                 \"fell_back_to_drain\": {}, \
                 \"drain_gpu\": {}, \"pipelined_gpu\": {}, \"bitwise_identical\": true}}",
                rd.makespan,
                rp.makespan,
                rd.makespan / rp.makespan,
                rp.makespan == rd.makespan,
                gpu_json(&rd.gpu),
                gpu_json(&rp.gpu),
            ));
            println!(
                "{name:>10} {p}: drain {:.4e}s -> pipelined {:.4e}s ({:.3}x), \
                 compute idle {:.1}% -> {:.1}%",
                rd.makespan,
                rp.makespan,
                rd.makespan / rp.makespan,
                rd.gpu.compute_idle_fraction() * 100.0,
                rp.gpu.compute_idle_fraction() * 100.0,
            );
        }
        assert_eq!(
            losses, 0,
            "{name}: the rehearsal cost model must keep the pipelined entry from ever losing \
             to drain (it can tie by falling back, never regress)"
        );
        if strict_wins > 0 {
            winning_matrices += 1;
        }
        blocks.push(format!(
            "    {{\"name\": \"{name}\", \"order\": {}, \"policies\": [\n{}\n      ]}}",
            a.order(),
            rows.join(",\n"),
        ));
    }
    assert_eq!(
        winning_matrices, 5,
        "with the rehearsal cost model, every paper matrix must come out ahead: no policy cell \
         may regress and at least one must win strictly per matrix (got {winning_matrices}/5)"
    );
    let out = format!(
        "{{\n  \"note\": \"simulated makespan of the f32 numeric factorization under \
         drain-per-front vs pipelined (event-chained, look-ahead, batched) GPU dispatch; \
         utilizations are engine-busy fractions of the makespan\",\n  \
         \"matrices_where_pipelining_wins_all_policies\": {winning_matrices},\n  \
         \"matrices\": [\n{}\n  ]\n}}\n",
        blocks.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_gpu.json");
    if let Err(e) = std::fs::write(path, &out) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("wrote BENCH_gpu.json");
    }
}
