//! Open-loop load benchmark of the mf-server service layer: cross-request
//! RHS batching vs per-request dispatch under concurrent callers.
//!
//! The driver is open-loop: every caller thread *issues* its whole request
//! schedule through `solve_many_async` without waiting on completions, so
//! service time cannot throttle the offered load. Completion latency is
//! stamped by the worker at reply time (`wait_with_latency`), so a tardy
//! waiter never inflates it.
//!
//! `BENCH_server.json` reports, per matrix, requests/sec and latency
//! percentiles for the same offered load served two ways:
//!
//! * **per_request** — `max_batch_rhs = 1`: every request is its own
//!   triangular sweep (per-request dispatch), and
//! * **batched** — `max_batch_rhs = 32`: pending RHS from independent
//!   callers are aggregated into blocked `solve_many` sweeps.
//!
//! Three invariants are *asserted* (a violation panics and fails CI):
//!
//! 1. every response, batched or not, is bitwise identical to the serial
//!    single-request answer from a standalone solver;
//! 2. batched mode beats per-request dispatch on requests/sec at the
//!    8-concurrent-caller load point;
//! 3. an overload burst against a tiny queue yields typed `Overloaded`
//!    rejections while every *accepted* request still completes with the
//!    bitwise-exact answer — rejected requests never corrupt a session.

use std::sync::Arc;
use std::time::{Duration, Instant};

use mf_core::{Precision, SolverOptions, SpdSolver};
use mf_gpusim::Machine;
use mf_matgen::PaperMatrix;
use mf_server::{ServeError, Server, ServerConfig, SessionId};
use mf_sparse::SymCsc;

const CALLERS: usize = 8;
const REQS_PER_CALLER: usize = 48;
const DISTINCT_RHS: usize = 16;
const BATCH_WINDOW: usize = 32;

fn opts() -> SolverOptions {
    SolverOptions { precision: Precision::F64, ..Default::default() }
}

fn suite() -> Vec<(&'static str, SymCsc<f64>)> {
    let scale =
        std::env::var("MF_BENCH_SCALE").ok().and_then(|s| s.parse::<f64>().ok()).unwrap_or(0.30);
    vec![
        ("sgi_1M", PaperMatrix::Sgi1M.generate_scaled(scale)),
        ("audikw_1", PaperMatrix::Audikw1.generate_scaled(scale)),
    ]
}

fn rhs(n: usize, seed: u64) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let x = (i as u64 ^ seed).wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(seed) >> 33;
            (x as f64 / (1u64 << 31) as f64) - 0.5
        })
        .collect()
}

fn assert_bitwise(got: &[f64], want: &[f64], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    assert!(
        got.iter().zip(want).all(|(g, w)| g.to_bits() == w.to_bits()),
        "{what}: response diverged bitwise from the serial single-request answer"
    );
}

struct LoadResult {
    wall: Duration,
    latencies: Vec<Duration>,
    batches: u64,
    max_batch_rhs: u64,
}

impl LoadResult {
    fn requests_per_sec(&self) -> f64 {
        self.latencies.len() as f64 / self.wall.as_secs_f64()
    }

    fn percentile_ms(&self, p: f64) -> f64 {
        let mut sorted = self.latencies.clone();
        sorted.sort();
        let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
        sorted[idx].as_secs_f64() * 1e3
    }
}

/// Drive `CALLERS` threads issuing `REQS_PER_CALLER` single-RHS requests
/// each against one shared session, open-loop; wait for every completion
/// and assert each response bitwise against its precomputed serial answer.
fn drive(server: &Arc<Server>, session: SessionId, expected: &[Vec<f64>]) -> LoadResult {
    let before = server.stats();
    let start = Instant::now();
    let latencies: Vec<Duration> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CALLERS)
            .map(|c| {
                let server = server.clone();
                s.spawn(move || {
                    // Issue the full schedule first (open loop)...
                    let tickets: Vec<_> = (0..REQS_PER_CALLER)
                        .map(|i| {
                            let which = (c * 31 + i) % DISTINCT_RHS;
                            let b = rhs(expected[which].len(), which as u64);
                            let t = server
                                .solve_many_async(session, b, 1)
                                .expect("queue_depth covers the whole schedule");
                            (which, t)
                        })
                        .collect();
                    // ...then collect completions and check every answer.
                    tickets
                        .into_iter()
                        .map(|(which, t)| {
                            let (x, latency) = t.wait_with_latency();
                            let x = x.expect("accepted requests complete");
                            assert_bitwise(&x, &expected[which], "load response");
                            latency
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("caller thread")).collect()
    });
    let wall = start.elapsed();
    let after = server.stats();
    LoadResult {
        wall,
        latencies,
        batches: after.batches - before.batches,
        max_batch_rhs: after.max_batch_rhs,
    }
}

fn run_mode(a: &SymCsc<f64>, max_batch_rhs: usize, expected: &[Vec<f64>]) -> LoadResult {
    let server = Arc::new(Server::start(ServerConfig {
        solver: opts(),
        workers: 2,
        max_batch_rhs,
        queue_depth: CALLERS * REQS_PER_CALLER + 64,
        ..Default::default()
    }));
    let session = server.submit("bench", a).expect("bench matrix is SPD");
    // Warm-up outside the timed window.
    for (which, want) in expected.iter().enumerate().take(4) {
        let x = server.solve(session, rhs(a.order(), which as u64)).expect("warm-up");
        assert_bitwise(&x, want, "warm-up response");
    }
    drive(&server, session, expected)
}

/// Overload burst: a tiny queue under a hot submission loop must produce
/// typed rejections, and every accepted request must still come back
/// bitwise exact.
fn overload_burst(a: &SymCsc<f64>, expected: &[Vec<f64>]) -> (usize, usize) {
    let server = Server::start(ServerConfig {
        solver: opts(),
        workers: 1,
        max_batch_rhs: 4,
        queue_depth: 8,
        ..Default::default()
    });
    let session = server.submit("burst", a).expect("bench matrix is SPD");
    let mut tickets = Vec::new();
    let mut rejected = 0usize;
    for i in 0..4000 {
        let which = i % DISTINCT_RHS;
        match server.solve_many_async(session, rhs(a.order(), which as u64), 1) {
            Ok(t) => tickets.push((which, t)),
            Err(ServeError::Overloaded { .. }) => {
                rejected += 1;
                if rejected >= 64 && !tickets.is_empty() {
                    break;
                }
            }
            Err(e) => panic!("unexpected rejection during burst: {e}"),
        }
    }
    assert!(rejected > 0, "a queue_depth=8 server under a hot loop must shed load");
    let accepted = tickets.len();
    for (which, t) in tickets {
        let x = t.wait().expect("accepted requests complete despite the burst");
        assert_bitwise(&x, &expected[which], "burst response");
    }
    // The session survived the burst intact.
    let x = server.solve(session, rhs(a.order(), 0)).expect("post-burst solve");
    assert_bitwise(&x, &expected[0], "post-burst response");
    (accepted, rejected)
}

fn main() {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut blocks: Vec<String> = Vec::new();
    let mut burst_block = String::new();

    for (name, a) in suite() {
        let n = a.order();
        // Serial single-request reference answers on a standalone solver.
        let expected: Vec<Vec<f64>> = {
            let mut machine = Machine::paper_node();
            let solver = SpdSolver::new(&a, &mut machine, &opts()).expect("SPD");
            (0..DISTINCT_RHS)
                .map(|which| solver.solve_many(&rhs(n, which as u64), 1).expect("well-formed"))
                .collect()
        };

        let per_request = run_mode(&a, 1, &expected);
        let batched = run_mode(&a, BATCH_WINDOW, &expected);
        let gain = batched.requests_per_sec() / per_request.requests_per_sec();

        assert!(per_request.max_batch_rhs <= 1, "window 1 must disable batching");
        assert!(
            batched.max_batch_rhs > 1,
            "saturated 8-caller load must actually form cross-request batches"
        );
        // The acceptance gate: batching must win throughput at 8 callers.
        assert!(
            gain > 1.0,
            "{name}: batched mode ({:.1} req/s) did not beat per-request dispatch \
             ({:.1} req/s) at {CALLERS} concurrent callers",
            batched.requests_per_sec(),
            per_request.requests_per_sec()
        );
        println!(
            "{name}: per_request {:.1} req/s, batched {:.1} req/s ({gain:.2}x), \
             widest batch {} RHS over {} sweeps",
            per_request.requests_per_sec(),
            batched.requests_per_sec(),
            batched.max_batch_rhs,
            batched.batches,
        );

        let mode_json = |m: &LoadResult| {
            format!(
                "{{\"requests_per_sec\": {:.1}, \"wall_ms\": {:.1}, \"p50_ms\": {:.3}, \
                 \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, \"sweeps\": {}, \"widest_batch_rhs\": {}}}",
                m.requests_per_sec(),
                m.wall.as_secs_f64() * 1e3,
                m.percentile_ms(0.50),
                m.percentile_ms(0.95),
                m.percentile_ms(0.99),
                m.batches,
                m.max_batch_rhs
            )
        };
        blocks.push(format!(
            "    {{\"name\": \"{name}\", \"order\": {n},\n      \"per_request\": {},\n      \
             \"batched\": {},\n      \"batched_throughput_gain\": {gain:.3}}}",
            mode_json(&per_request),
            mode_json(&batched)
        ));

        if burst_block.is_empty() {
            let (accepted, rejected) = overload_burst(&a, &expected);
            burst_block = format!(
                "{{\"matrix\": \"{name}\", \"queue_depth\": 8, \"accepted\": {accepted}, \
                 \"rejected\": {rejected}, \"accepted_all_bitwise_identical\": true}}"
            );
            println!(
                "{name}: overload burst shed {rejected} requests, \
                 {accepted} accepted all bitwise-exact"
            );
        }
    }

    let out = format!(
        "{{\n  \"hardware_threads\": {threads},\n  \"callers\": {CALLERS},\n  \
         \"requests_per_caller\": {REQS_PER_CALLER},\n  \"note\": \"open-loop driver; every \
         response asserted bitwise identical to the serial single-request answer; \
         batched_throughput_gain > 1 is asserted at {CALLERS} concurrent callers\",\n  \
         \"matrices\": [\n{}\n  ],\n  \"overload_burst\": {burst_block}\n}}\n",
        blocks.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_server.json");
    if let Err(e) = std::fs::write(path, &out) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("wrote BENCH_server.json ({threads} hardware threads)");
    }
}
