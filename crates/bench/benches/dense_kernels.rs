//! Criterion benchmarks of the dense kernels (wall-clock of the real Rust
//! implementations — distinct from the *simulated* times the experiments
//! report; useful for tracking regressions in the compute substrate).
//!
//! Every kernel/shape is measured twice: `packed/…` runs the packed,
//! register-tiled engine behind the public API, `seed/…` runs the original
//! loop-nest kernels preserved in `mf_dense::naive`. Throughput annotations
//! carry the flop count, so GF/s and packed-vs-seed speedups drop out of
//! the records; `main` writes them to `BENCH_dense.json` after the run.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use mf_dense::{
    gemm, matrix::random_spd, naive, potrf, syrk_lower, trsm_right_lower_trans, DenseMat, Transpose,
};

fn rand_mat(rows: usize, cols: usize, seed: u64) -> DenseMat<f64> {
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    DenseMat::from_fn(rows, cols, |_, _| {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    })
}

fn bench_potrf(c: &mut Criterion) {
    let mut g = c.benchmark_group("potrf");
    for n in [64usize, 128, 256] {
        let a0 = random_spd::<f64>(n, 7);
        g.throughput(Throughput::Elements((n * n * n / 3) as u64));
        g.bench_with_input(BenchmarkId::new("packed", n), &n, |b, &n| {
            b.iter_batched(
                || a0.clone(),
                |mut a| potrf(n, a.as_mut_slice(), n).unwrap(),
                criterion::BatchSize::SmallInput,
            )
        });
        g.bench_with_input(BenchmarkId::new("seed", n), &n, |b, &n| {
            b.iter_batched(
                || a0.clone(),
                |mut a| naive::potrf(n, a.as_mut_slice(), n).unwrap(),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_syrk(c: &mut Criterion) {
    let mut g = c.benchmark_group("syrk");
    // (512, 64) is the acceptance shape; (2048, 32) is the tall-skinny
    // extend-add profile of large frontal updates (m ≫ k).
    for (n, k) in [(128usize, 64usize), (256, 128), (512, 64), (2048, 32)] {
        let a = rand_mat(n, k, 3);
        let c0 = rand_mat(n, n, 4);
        g.throughput(Throughput::Elements((n * n * k) as u64));
        g.bench_with_input(
            BenchmarkId::new("packed", format!("{n}x{k}")),
            &(n, k),
            |b, &(n, k)| {
                b.iter_batched(
                    || c0.clone(),
                    |mut cc| syrk_lower(n, k, -1.0, a.as_slice(), n, 1.0, cc.as_mut_slice(), n),
                    criterion::BatchSize::SmallInput,
                )
            },
        );
        g.bench_with_input(BenchmarkId::new("seed", format!("{n}x{k}")), &(n, k), |b, &(n, k)| {
            b.iter_batched(
                || c0.clone(),
                |mut cc| naive::syrk_lower(n, k, -1.0, a.as_slice(), n, 1.0, cc.as_mut_slice(), n),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_trsm(c: &mut Criterion) {
    let mut g = c.benchmark_group("trsm");
    for (m, k) in [(256usize, 64usize), (512, 128), (2048, 64)] {
        let mut l = random_spd::<f64>(k, 5);
        potrf(k, l.as_mut_slice(), k).unwrap();
        let b0 = rand_mat(m, k, 6);
        g.throughput(Throughput::Elements((m * k * k) as u64));
        g.bench_with_input(
            BenchmarkId::new("packed", format!("{m}x{k}")),
            &(m, k),
            |b, &(m, k)| {
                b.iter_batched(
                    || b0.clone(),
                    |mut x| trsm_right_lower_trans(m, k, l.as_slice(), k, x.as_mut_slice(), m),
                    criterion::BatchSize::SmallInput,
                )
            },
        );
        g.bench_with_input(BenchmarkId::new("seed", format!("{m}x{k}")), &(m, k), |b, &(m, k)| {
            b.iter_batched(
                || b0.clone(),
                |mut x| naive::trsm_right_lower_trans(m, k, l.as_slice(), k, x.as_mut_slice(), m),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm");
    // Square panels plus the acceptance shape (512×512×256) and tall-skinny
    // panel products (m ≫ k) from the solve/panel phases.
    for (m, n, k) in [
        (128usize, 128usize, 128usize),
        (256, 256, 256),
        (512, 512, 256),
        (4096, 64, 64),
        (2048, 32, 32),
    ] {
        let a = rand_mat(m, k, 8);
        let b = rand_mat(n, k, 9);
        let c0 = rand_mat(m, n, 10);
        let shape = format!("{m}x{n}x{k}");
        g.throughput(Throughput::Elements((2 * m * n * k) as u64));
        g.bench_with_input(BenchmarkId::new("packed", &shape), &m, |bch, _| {
            bch.iter_batched(
                || c0.clone(),
                |mut cc| {
                    gemm(
                        Transpose::No,
                        Transpose::Yes,
                        m,
                        n,
                        k,
                        -1.0,
                        a.as_slice(),
                        m,
                        b.as_slice(),
                        n,
                        1.0,
                        cc.as_mut_slice(),
                        m,
                    )
                },
                criterion::BatchSize::SmallInput,
            )
        });
        g.bench_with_input(BenchmarkId::new("seed", &shape), &m, |bch, _| {
            bch.iter_batched(
                || c0.clone(),
                |mut cc| {
                    naive::gemm(
                        Transpose::No,
                        Transpose::Yes,
                        m,
                        n,
                        k,
                        -1.0,
                        a.as_slice(),
                        m,
                        b.as_slice(),
                        n,
                        1.0,
                        cc.as_mut_slice(),
                        m,
                    )
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(12).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(400));
    targets = bench_potrf, bench_syrk, bench_trsm, bench_gemm
}

/// GF/s for one record (throughput elements are flop counts here).
fn gflops(r: &criterion::BenchRecord) -> Option<f64> {
    r.throughput_elements.map(|e| e as f64 / r.mean_ns)
}

/// Write `BENCH_dense.json`: GF/s per kernel/shape/variant plus the
/// packed-over-seed speedup for every shape measured both ways.
fn write_bench_json() {
    let recs = criterion::records();
    let mut out = String::from("{\n  \"benches\": [\n");
    for (i, r) in recs.iter().enumerate() {
        let sep = if i + 1 == recs.len() { "" } else { "," };
        let gf = gflops(r).unwrap_or(0.0);
        out.push_str(&format!(
            "    {{\"group\": \"{}\", \"id\": \"{}\", \"mean_ns\": {:.1}, \"median_ns\": {:.1}, \"gflops\": {gf:.3}}}{sep}\n",
            r.group, r.id, r.mean_ns, r.median_ns
        ));
    }
    out.push_str("  ],\n  \"speedups\": [\n");
    let mut pairs: Vec<String> = Vec::new();
    for r in recs.iter().filter(|r| r.id.starts_with("packed/")) {
        let shape = &r.id["packed/".len()..];
        let seed_id = format!("seed/{shape}");
        if let Some(s) = recs.iter().find(|q| q.group == r.group && q.id == seed_id) {
            let (pg, sg) = (gflops(r).unwrap_or(0.0), gflops(s).unwrap_or(0.0));
            pairs.push(format!(
                "    {{\"kernel\": \"{}\", \"shape\": \"{shape}\", \"packed_gflops\": {pg:.3}, \"seed_gflops\": {sg:.3}, \"speedup\": {:.3}}}",
                r.group,
                s.mean_ns / r.mean_ns
            ));
        }
    }
    out.push_str(&pairs.join(",\n"));
    out.push_str("\n  ]\n}\n");
    // Benches run with CWD = crates/bench; put the report at the repo root.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dense.json");
    if let Err(e) = std::fs::write(path, &out) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("wrote BENCH_dense.json ({} records)", recs.len());
    }
}

fn main() {
    benches();
    write_bench_json();
}
