//! Criterion benchmarks of the dense kernels (wall-clock of the real Rust
//! implementations — distinct from the *simulated* times the experiments
//! report; useful for tracking regressions in the compute substrate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mf_dense::{
    gemm, matrix::random_spd, potrf, syrk_lower, trsm_right_lower_trans, DenseMat, Transpose,
};

fn rand_mat(rows: usize, cols: usize, seed: u64) -> DenseMat<f64> {
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    DenseMat::from_fn(rows, cols, |_, _| {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    })
}

fn bench_potrf(c: &mut Criterion) {
    let mut g = c.benchmark_group("potrf");
    for n in [64usize, 128, 256] {
        let a0 = random_spd::<f64>(n, 7);
        g.throughput(Throughput::Elements((n * n * n / 3) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter_batched(
                || a0.clone(),
                |mut a| potrf(n, a.as_mut_slice(), n).unwrap(),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_syrk(c: &mut Criterion) {
    let mut g = c.benchmark_group("syrk");
    for (n, k) in [(128usize, 64usize), (256, 128), (512, 64)] {
        let a = rand_mat(n, k, 3);
        let c0 = rand_mat(n, n, 4);
        g.throughput(Throughput::Elements((n * n * k) as u64));
        g.bench_with_input(BenchmarkId::new("nk", format!("{n}x{k}")), &(n, k), |b, &(n, k)| {
            b.iter_batched(
                || c0.clone(),
                |mut cc| syrk_lower(n, k, -1.0, a.as_slice(), n, 1.0, cc.as_mut_slice(), n),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_trsm(c: &mut Criterion) {
    let mut g = c.benchmark_group("trsm");
    for (m, k) in [(256usize, 64usize), (512, 128)] {
        let mut l = random_spd::<f64>(k, 5);
        potrf(k, l.as_mut_slice(), k).unwrap();
        let b0 = rand_mat(m, k, 6);
        g.throughput(Throughput::Elements((m * k * k) as u64));
        g.bench_with_input(BenchmarkId::new("mk", format!("{m}x{k}")), &(m, k), |b, &(m, k)| {
            b.iter_batched(
                || b0.clone(),
                |mut x| trsm_right_lower_trans(m, k, l.as_slice(), k, x.as_mut_slice(), m),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm_nt");
    for n in [64usize, 128, 256] {
        let a = rand_mat(n, n, 8);
        let b = rand_mat(n, n, 9);
        let c0 = rand_mat(n, n, 10);
        g.throughput(Throughput::Elements((n * n * n) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, &n| {
            bch.iter_batched(
                || c0.clone(),
                |mut cc| {
                    gemm(
                        Transpose::No,
                        Transpose::Yes,
                        n,
                        n,
                        n,
                        -1.0,
                        a.as_slice(),
                        n,
                        b.as_slice(),
                        n,
                        1.0,
                        cc.as_mut_slice(),
                        n,
                    )
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(12).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(400));
    targets = bench_potrf, bench_syrk, bench_trsm, bench_gemm
}
criterion_main!(benches);
