//! Wall-clock benchmark of the analysis (symbolic) phase against the
//! numeric factorization, plus the parallel-analysis scaling study.
//!
//! `BENCH_symbolic.json` reports, per matrix:
//!
//! * **symbolic_ms / numeric_ms / symbolic_share** — how much of an
//!   analyze-then-factor run the symbolic phase costs. This is the share
//!   Amdahl charges a one-shot solve when only the numeric phase is
//!   parallel, i.e. the motivation for `analyze_parallel`.
//! * **measured** — wall-clock of `analyze_parallel` at several worker
//!   counts, with the speedup over the serial `analyze`.
//! * **simulated** — a deterministic critical-path model of the supernodal
//!   task DAG (the same `TaskGraph::from_parents` shape the parallel
//!   symbolic factorization runs on): speedup at `w` workers is
//!   `T_total / max(T_critical, T_total / w)`.
//!
//! The bench doubles as a CI gate: `main` asserts, before any timing, that
//! `analyze_parallel` produces a fingerprint byte-identical to the serial
//! analysis at 1/2/4/8 workers on every suite matrix, and the JSON writer
//! asserts the simulated multi-worker speedup exceeds 1×. Either failure
//! panics, which fails the `cargo bench` step in ci.sh.

use criterion::{criterion_group, BenchmarkId, Criterion};
use mf_core::{factor_permuted, BaselineThresholds, FactorOptions, PolicySelector};
use mf_gpusim::Machine;
use mf_matgen::PaperMatrix;
use mf_sparse::symbolic::{analyze, analyze_parallel, Analysis, SymbolicFactor};
use mf_sparse::{AmalgamationOptions, OrderingKind, SymCsc};

const WORKER_COUNTS: [usize; 2] = [2, 4];
const FINGERPRINT_WORKERS: [usize; 4] = [1, 2, 4, 8];

fn suite() -> Vec<(&'static str, SymCsc<f64>)> {
    let scale =
        std::env::var("MF_BENCH_SCALE").ok().and_then(|s| s.parse::<f64>().ok()).unwrap_or(0.30);
    vec![
        ("sgi_1M", PaperMatrix::Sgi1M.generate_scaled(scale)),
        ("audikw_1", PaperMatrix::Audikw1.generate_scaled(scale)),
    ]
}

fn analysis_of(a: &SymCsc<f64>) -> Analysis {
    analyze(a, OrderingKind::NestedDissection, Some(&AmalgamationOptions::default()))
        .expect("suite matrices have full diagonals")
}

fn bench_symbolic(c: &mut Criterion) {
    let mut g = c.benchmark_group("symbolic");
    for (name, a) in suite() {
        g.bench_with_input(BenchmarkId::new("analyze_serial", name), &(), |be, _| {
            be.iter(|| analysis_of(&a))
        });
        for w in WORKER_COUNTS {
            g.bench_with_input(
                BenchmarkId::new(format!("analyze_parallel_w{w}"), name),
                &w,
                |be, &w| {
                    be.iter(|| {
                        analyze_parallel(
                            &a,
                            OrderingKind::NestedDissection,
                            Some(&AmalgamationOptions::default()),
                            w,
                        )
                        .expect("suite matrices have full diagonals")
                    })
                },
            );
        }
        // The numeric phase the symbolic share is measured against.
        let an = analysis_of(&a);
        let opts = FactorOptions {
            selector: PolicySelector::Baseline(BaselineThresholds::default()),
            ..Default::default()
        };
        g.bench_with_input(BenchmarkId::new("numeric_factor", name), &(), |be, _| {
            be.iter(|| {
                let mut machine = Machine::paper_node();
                factor_permuted(&an.permuted.0, &an.symbolic, &an.perm, &mut machine, &opts)
                    .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_symbolic
}

/// Deterministic critical-path model of the parallel symbolic
/// factorization's task DAG. Each supernode's task cost is the rows it
/// touches (its own structure plus its children's update rows — the inputs
/// `supernode_row_structure` merges); the DAG is the supernodal etree, so
/// the makespan at `w` workers is bounded below by both the critical path
/// and `T_total / w`.
fn simulated_analysis_speedup(sym: &SymbolicFactor, workers: usize) -> f64 {
    let nsn = sym.num_supernodes();
    let cost: Vec<f64> = (0..nsn)
        .map(|s| {
            let child_rows: usize =
                sym.children[s].iter().map(|&c| sym.supernodes[c].rows.len()).sum();
            (sym.supernodes[s].rows.len() + child_rows + 1) as f64
        })
        .collect();
    let total: f64 = cost.iter().sum();
    let mut path = vec![0.0f64; nsn];
    for &s in &sym.postorder {
        let longest_child = sym.children[s].iter().map(|&c| path[c]).fold(0.0f64, f64::max);
        path[s] = cost[s] + longest_child;
    }
    let critical = path.iter().cloned().fold(0.0, f64::max);
    total / critical.max(total / workers as f64)
}

/// Write `BENCH_symbolic.json`: per matrix, the symbolic-vs-numeric time
/// share, measured parallel-analysis speedups, and the simulated
/// critical-path speedups. Panics (failing CI) if the simulated
/// multi-worker speedup does not exceed 1×.
fn write_bench_json() {
    let recs = criterion::records();
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"hardware_threads\": {threads},\n"));
    out.push_str(
        "  \"note\": \"symbolic_share = symbolic_ms / (symbolic_ms + numeric_ms); \
         analyze_parallel is bitwise identical to analyze at every worker count \
         (asserted before timing), so measured_speedup is a pure scheduling win\",\n",
    );
    out.push_str("  \"matrices\": [\n");
    let mut blocks: Vec<String> = Vec::new();
    for (name, a) in suite() {
        let mean_of = |id: String| {
            recs.iter().find(|r| r.group == "symbolic" && r.id == id).map(|r| r.mean_ns / 1.0e6)
        };
        let serial_ms = mean_of(format!("analyze_serial/{name}"));
        let numeric_ms = mean_of(format!("numeric_factor/{name}"));
        let share = match (serial_ms, numeric_ms) {
            (Some(s), Some(f)) if s + f > 0.0 => s / (s + f),
            _ => 0.0,
        };
        let mut measured: Vec<String> = Vec::new();
        for w in WORKER_COUNTS {
            let (Some(par_ms), Some(serial)) =
                (mean_of(format!("analyze_parallel_w{w}/{name}")), serial_ms)
            else {
                continue;
            };
            measured.push(format!(
                "        {{\"workers\": {w}, \"parallel_ms\": {par_ms:.3}, \
                 \"measured_speedup\": {:.3}}}",
                serial / par_ms
            ));
        }
        let sym = analysis_of(&a).symbolic;
        let mut simulated: Vec<String> = Vec::new();
        for w in FINGERPRINT_WORKERS {
            let s = simulated_analysis_speedup(&sym, w);
            simulated.push(format!("        {{\"workers\": {w}, \"simulated_speedup\": {s:.3}}}"));
        }
        let sim4 = simulated_analysis_speedup(&sym, 4);
        assert!(
            sim4 > 1.0,
            "{name}: supernodal task DAG must admit multi-worker parallelism \
             (simulated 4-worker speedup {sim4:.3} ≤ 1)"
        );
        blocks.push(format!(
            "    {{\"name\": \"{name}\", \"order\": {}, \"supernodes\": {}, \
             \"symbolic_ms\": {:.3}, \"numeric_ms\": {:.3}, \"symbolic_share\": {share:.4}, \
             \"measured\": [\n{}\n      ], \"simulated\": [\n{}\n      ]}}",
            a.order(),
            sym.num_supernodes(),
            serial_ms.unwrap_or(0.0),
            numeric_ms.unwrap_or(0.0),
            measured.join(",\n"),
            simulated.join(",\n")
        ));
    }
    out.push_str(&blocks.join(",\n"));
    out.push_str("\n  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_symbolic.json");
    if let Err(e) = std::fs::write(path, &out) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("wrote BENCH_symbolic.json ({} hardware threads)", threads);
    }
}

fn main() {
    // CI invariant, checked before any timing: the parallel analysis is
    // byte-identical to the serial one at every worker count.
    for (name, a) in suite() {
        let amalg = AmalgamationOptions::default();
        let serial = analyze(&a, OrderingKind::NestedDissection, Some(&amalg))
            .expect("suite matrices have full diagonals");
        for w in FINGERPRINT_WORKERS {
            let par = analyze_parallel(&a, OrderingKind::NestedDissection, Some(&amalg), w)
                .expect("suite matrices have full diagonals");
            assert_eq!(
                par.fingerprint(),
                serial.fingerprint(),
                "{name}: analyze_parallel({w}) fingerprint diverged from serial analyze"
            );
        }
        println!("fingerprint identity: {name} ok at workers {FINGERPRINT_WORKERS:?}");
    }
    benches();
    write_bench_json();
}
