//! Criterion benchmarks of the symbolic phase: ordering, elimination tree,
//! supernode detection, symbolic factorization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mf_matgen::{laplacian_3d, Stencil};
use mf_sparse::symbolic::analyze;
use mf_sparse::{column_counts, elimination_tree, order, AmalgamationOptions, OrderingKind};

fn bench_orderings(c: &mut Criterion) {
    let a = laplacian_3d(16, 16, 16, Stencil::Faces);
    let mut g = c.benchmark_group("ordering");
    for kind in [OrderingKind::Rcm, OrderingKind::NestedDissection] {
        g.bench_with_input(BenchmarkId::from_parameter(format!("{kind:?}")), &kind, |b, &k| {
            b.iter(|| order(&a, k))
        });
    }
    g.finish();
}

fn bench_etree_and_counts(c: &mut Criterion) {
    let a = laplacian_3d(18, 18, 18, Stencil::Faces);
    c.bench_function("etree+colcounts", |b| {
        b.iter(|| {
            let t = elimination_tree(&a);
            column_counts(&a, &t)
        })
    });
}

fn bench_full_analysis(c: &mut Criterion) {
    let a = laplacian_3d(14, 14, 14, Stencil::Full);
    c.bench_function("full_analysis_nd_amalgamated", |b| {
        b.iter(|| {
            analyze(&a, OrderingKind::NestedDissection, Some(&AmalgamationOptions::default()))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_orderings, bench_etree_and_counts, bench_full_analysis
}
criterion_main!(benches);
