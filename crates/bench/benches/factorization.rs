//! Criterion benchmarks of the end-to-end numeric factorization (wall
//! clock) and of the timing-only policy estimator used by the map figures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mf_core::{estimate_fu_time, factor_permuted, FactorOptions, PolicyKind, PolicySelector};
use mf_gpusim::Machine;
use mf_matgen::{laplacian_3d, Stencil};
use mf_sparse::symbolic::analyze;
use mf_sparse::{AmalgamationOptions, OrderingKind, SymCsc};

fn bench_factor(c: &mut Criterion) {
    let mut g = c.benchmark_group("numeric_factorization");
    for nx in [10usize, 14] {
        let a = laplacian_3d(nx, nx, nx, Stencil::Faces);
        let analysis =
            analyze(&a, OrderingKind::NestedDissection, Some(&AmalgamationOptions::default()))
                .unwrap();
        let a32: SymCsc<f32> = analysis.permuted.0.cast();
        for p in [PolicyKind::P1, PolicyKind::P4] {
            g.bench_with_input(BenchmarkId::new(format!("{p}"), nx * nx * nx), &p, |b, &p| {
                b.iter(|| {
                    let mut machine = Machine::paper_node();
                    let opts =
                        FactorOptions { selector: PolicySelector::Fixed(p), ..Default::default() };
                    factor_permuted(&a32, &analysis.symbolic, &analysis.perm, &mut machine, &opts)
                        .unwrap()
                })
            });
        }
    }
    g.finish();
}

fn bench_estimator(c: &mut Criterion) {
    let mut g = c.benchmark_group("policy_time_estimator");
    let mut machine = Machine::paper_node();
    for (m, k) in [(500usize, 200usize), (5000, 2000)] {
        g.bench_with_input(BenchmarkId::new("P4", format!("{m}x{k}")), &(m, k), |b, &(m, k)| {
            b.iter(|| estimate_fu_time(&mut machine, m, k, PolicyKind::P4, 64, false))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_factor, bench_estimator
}
criterion_main!(benches);
