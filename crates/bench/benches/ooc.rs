//! Out-of-core (memory-budgeted) factorization bench (DESIGN.md §4.14).
//!
//! Runs every paper suite matrix plus the `sgi_4M` huge-N stand-in under
//! residency budgets of 100%/60%/30% of the symbolic in-core bound
//! (clamped up to the min-feasible floor), with the spill-precision ladder
//! off and at bf16, and writes `BENCH_ooc.json`: spill traffic per tier,
//! eviction/reload counts, and the simulated wall-clock versus the budget
//! fraction, plus streaming-solve stats and the f64 iterative-refinement
//! tail. All numbers are simulated and deterministic.
//!
//! Four invariants are asserted per matrix and panic the bench (failing
//! CI) on violation:
//!
//! 1. **Budget compliance** — peak residency never exceeds the budget, at
//!    any budget × ladder configuration.
//! 2. **Ladder-off bitwise identity** — every budgeted run with the ladder
//!    off reproduces the in-core factor slab bit for bit, and a sub-100%
//!    budget actually moves spill traffic.
//! 3. **Ladder pays** — bf16 spill storage cuts traffic ≥ 1.8× versus the
//!    ladder-off run at the same budget, without changing the eviction
//!    schedule (same eviction and reload counts).
//! 4. **Refinement absorbs the ladder** — an f32 factor under a 30% budget
//!    with bf16 spill storage still refines to f64 accuracy.

use mf_core::{
    factor_permuted, in_core_bytes, min_feasible_budget, FactorOptions, Precision, PrecisionLadder,
    SolverOptions, SpdSolver,
};
use mf_gpusim::{Machine, TierParams, DEFAULT_DEVICE_BUDGET};
use mf_matgen::{rhs_for_solution, HugeMatrix, PaperMatrix};
use mf_sparse::symbolic::{analyze, Analysis};
use mf_sparse::{AmalgamationOptions, OrderingKind, SymCsc};

/// (budget fraction, spill-storage ladder) grid. The 100% row is the
/// no-spill control; 60% is the acceptance budget; 30% stresses the
/// Belady scheduler (clamped to min-feasible where the root front
/// dominates).
const CONFIGS: [(f64, PrecisionLadder); 5] = [
    (1.0, PrecisionLadder::Off),
    (0.6, PrecisionLadder::Off),
    (0.3, PrecisionLadder::Off),
    (0.6, PrecisionLadder::Bf16),
    (0.3, PrecisionLadder::Bf16),
];
const STREAM_NRHS: usize = 4;

fn bench_scale() -> f64 {
    std::env::var("MF_BENCH_SCALE").ok().and_then(|s| s.parse::<f64>().ok()).unwrap_or(0.30)
}

fn suite() -> Vec<(&'static str, SymCsc<f64>)> {
    let scale = bench_scale();
    let mut v: Vec<(&'static str, SymCsc<f64>)> =
        PaperMatrix::ALL.iter().map(|m| (m.name(), m.generate_scaled(scale))).collect();
    // The huge-N family rides at a proportionally reduced scale: 0.25 at
    // the default MF_BENCH_SCALE keeps the f32 bound past device + pinned
    // host while the numeric factorization stays bench-affordable.
    v.push((HugeMatrix::Sgi4M.name(), HugeMatrix::Sgi4M.generate_scaled(scale * 0.25 / 0.30)));
    v
}

fn analysis_of(a: &SymCsc<f64>) -> Analysis {
    analyze(a, OrderingKind::NestedDissection, Some(&AmalgamationOptions::default())).unwrap()
}

fn ladder_name(l: PrecisionLadder) -> &'static str {
    match l {
        PrecisionLadder::Off => "off",
        PrecisionLadder::Bf16 => "bf16",
        PrecisionLadder::F16 => "f16",
    }
}

fn rhs_block(n: usize, nrhs: usize) -> Vec<f32> {
    (0..n * nrhs)
        .map(|i| {
            let (r, c) = (i % n, i / n);
            ((r * 31 + c * 17 + 7) % 13) as f32 / 13.0 - 0.4
        })
        .collect()
}

struct Run {
    budget: usize,
    stats: mf_core::FactorStats,
    bits: Vec<u32>,
    factor: mf_core::CholeskyFactor<f32>,
}

fn run_budgeted(an: &Analysis, a32: &SymCsc<f32>, budget: usize, ladder: PrecisionLadder) -> Run {
    let mut machine = Machine::paper_node();
    let opts = FactorOptions { memory_budget: Some(budget), ladder, ..FactorOptions::default() };
    let (f, stats) =
        factor_permuted(a32, &an.symbolic, &an.perm, &mut machine, &opts).expect("SPD stand-in");
    let bits = f.slab.iter().map(|x| x.to_bits()).collect();
    Run { budget, stats, bits, factor: f }
}

fn main() {
    let scale = bench_scale();
    let tiers = TierParams::default();
    let mut blocks: Vec<String> = Vec::new();
    for (name, a) in suite() {
        let an = analysis_of(&a);
        let a32: SymCsc<f32> = an.permuted.0.cast();
        let bound = in_core_bytes(&an.symbolic, 4);
        let min_feasible = min_feasible_budget(&an.symbolic, 4);
        if name == "sgi_4M" && scale >= 0.29 {
            assert!(
                bound > DEFAULT_DEVICE_BUDGET + tiers.host_capacity,
                "sgi_4M: f32 bound {bound} must exceed the default device + pinned-host \
                 budgets — that is what makes it the out-of-core acceptance matrix"
            );
        }

        // Ground truth: the in-core factor's bits and simulated wall-clock.
        let (reference, in_core_time) = {
            let mut machine = Machine::paper_node();
            let (f, stats) = factor_permuted(
                &a32,
                &an.symbolic,
                &an.perm,
                &mut machine,
                &FactorOptions::default(),
            )
            .expect("SPD stand-in");
            (f.slab.iter().map(|x| x.to_bits()).collect::<Vec<u32>>(), stats.total_time)
        };

        let runs: Vec<(f64, PrecisionLadder, Run)> = CONFIGS
            .iter()
            .map(|&(frac, ladder)| {
                let budget = ((bound as f64 * frac) as usize).max(min_feasible);
                (frac, ladder, run_budgeted(&an, &a32, budget, ladder))
            })
            .collect();

        let mut rows: Vec<String> = Vec::new();
        for (frac, ladder, r) in &runs {
            let ooc = r.stats.ooc.as_ref().expect("budgeted runs report OOC stats");
            assert!(
                ooc.resident_peak_bytes <= r.budget,
                "{name}@{frac}/{ladder:?}: residency {} exceeded budget {}",
                ooc.resident_peak_bytes,
                r.budget
            );
            if *ladder == PrecisionLadder::Off {
                assert_eq!(
                    r.bits, reference,
                    "{name}@{frac}: ladder-off budgeted factor must be bitwise in-core"
                );
                if *frac < 1.0 {
                    assert!(
                        ooc.traffic_bytes() > 0,
                        "{name}@{frac}: a sub-100% budget must actually spill"
                    );
                    assert!(
                        r.stats.total_time >= in_core_time,
                        "{name}@{frac}: spill traffic must cost simulated time"
                    );
                }
            }
            rows.push(format!(
                "        {{\"budget_frac\": {frac}, \"ladder\": \"{}\", \"budget_bytes\": {}, \
                 \"effective_frac\": {:.4}, \"resident_peak_bytes\": {}, \"traffic_bytes\": {}, \
                 \"host_bytes_out\": {}, \"disk_bytes_out\": {}, \"evictions\": {}, \
                 \"loads\": {}, \"sim_time_s\": {:.6e}, \"slowdown_vs_in_core\": {:.4}, \
                 \"bitwise_in_core\": {}}}",
                ladder_name(*ladder),
                r.budget,
                r.budget as f64 / bound as f64,
                ooc.resident_peak_bytes,
                ooc.traffic_bytes(),
                ooc.host_bytes_out,
                ooc.disk_bytes_out,
                ooc.evictions,
                ooc.loads,
                r.stats.total_time,
                r.stats.total_time / in_core_time,
                r.bits == reference,
            ));
            println!(
                "{name:>12} budget {:>4.0}% ladder {:>4}: traffic {:>12} B, evict {:>5}, \
                 load {:>5}, sim {:.4e}s ({:.3}x in-core)",
                frac * 100.0,
                ladder_name(*ladder),
                ooc.traffic_bytes(),
                ooc.evictions,
                ooc.loads,
                r.stats.total_time,
                r.stats.total_time / in_core_time,
            );
        }

        // Invariant 3: at each spilling budget, bf16 storage must cut
        // traffic >= 1.8x without changing the eviction schedule.
        let mut ladder_rows: Vec<String> = Vec::new();
        for frac in [0.6f64, 0.3] {
            let off = runs
                .iter()
                .find(|(f, l, _)| *f == frac && *l == PrecisionLadder::Off)
                .map(|(_, _, r)| r.stats.ooc.as_ref().unwrap())
                .unwrap();
            let bf16 = runs
                .iter()
                .find(|(f, l, _)| *f == frac && *l == PrecisionLadder::Bf16)
                .map(|(_, _, r)| r.stats.ooc.as_ref().unwrap())
                .unwrap();
            let ratio = off.traffic_bytes() as f64 / bf16.traffic_bytes() as f64;
            assert!(
                ratio >= 1.8,
                "{name}@{frac}: bf16 must cut spill traffic >= 1.8x (got {ratio:.3})"
            );
            assert_eq!(
                (off.evictions, off.loads),
                (bf16.evictions, bf16.loads),
                "{name}@{frac}: the ladder must not change the eviction schedule"
            );
            ladder_rows.push(format!(
                "        {{\"budget_frac\": {frac}, \"off_traffic_bytes\": {}, \
                 \"bf16_traffic_bytes\": {}, \"traffic_reduction\": {ratio:.4}}}",
                off.traffic_bytes(),
                bf16.traffic_bytes(),
            ));
        }

        // Streaming solve on the tightest bf16 factor: bitwise identical to
        // the fully-resident sweep, panels re-promoted on load.
        let stream = {
            let (_, _, r) =
                runs.iter().find(|(f, l, _)| *f == 0.3 && *l == PrecisionLadder::Bf16).unwrap();
            let b = rhs_block(a.order(), STREAM_NRHS);
            let resident = r.factor.solve_many(&b, STREAM_NRHS);
            let mut machine = Machine::paper_node();
            let (x, st) = r
                .factor
                .solve_many_streamed(
                    &b,
                    STREAM_NRHS,
                    r.budget,
                    PrecisionLadder::Bf16,
                    &tiers,
                    &mut machine,
                )
                .expect("the factor budget is feasible for the solve sweeps");
            assert_eq!(
                resident.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{name}: streamed solve must be bitwise identical to the resident sweep"
            );
            assert!(st.resident_peak_bytes <= r.budget, "{name}: solve residency over budget");
            format!(
                "{{\"nrhs\": {}, \"loads\": {}, \"bytes_in\": {}, \"forward_s\": {:.6e}, \
                 \"backward_s\": {:.6e}, \"compute_s\": {:.6e}, \"io_s\": {:.6e}}}",
                st.nrhs,
                st.loads,
                st.bytes_in,
                st.forward_seconds,
                st.backward_seconds,
                st.compute_seconds,
                st.io_seconds,
            )
        };

        // Invariant 4: f64 refinement absorbs both the f32 compute error
        // and the bf16 spill-storage error under the tightest budget.
        let refine = {
            let budget = ((bound as f64 * 0.3) as usize).max(min_feasible);
            let opts = SolverOptions {
                ordering: OrderingKind::NestedDissection,
                amalgamation: Some(AmalgamationOptions::default()),
                factor: FactorOptions {
                    memory_budget: Some(budget),
                    ladder: PrecisionLadder::Bf16,
                    ..FactorOptions::default()
                },
                precision: Precision::F32,
                analysis_workers: 0,
            };
            let mut machine = Machine::paper_node();
            let s = SpdSolver::new(&a, &mut machine, &opts).expect("SPD stand-in");
            let (_, b) = rhs_for_solution(&a, 13);
            let refined = s.solve_refined(&b, 12, 1e-12).unwrap();
            assert!(
                refined.converged,
                "{name}: refinement must reach f64 accuracy through bf16 spill storage \
                 (history {:?})",
                refined.residual_history
            );
            let final_res = refined.residual_history.last().copied().unwrap_or(f64::NAN);
            println!(
                "{name:>12} refine: {} iters to {final_res:.3e} (bf16 spill, 30% budget)",
                refined.iterations
            );
            format!(
                "{{\"iterations\": {}, \"final_relative_residual\": {final_res:.6e}, \
                 \"converged\": true}}",
                refined.iterations
            )
        };

        blocks.push(format!(
            "    {{\"name\": \"{name}\", \"order\": {}, \"in_core_bound_bytes\": {bound}, \
             \"min_feasible_bytes\": {min_feasible}, \"in_core_sim_time_s\": {in_core_time:.6e}, \
             \"budgets\": [\n{}\n      ],\n      \"ladder_traffic\": [\n{}\n      ],\n      \
             \"stream_solve\": {stream},\n      \"refinement\": {refine}}}",
            a.order(),
            rows.join(",\n"),
            ladder_rows.join(",\n"),
        ));
    }
    let out = format!(
        "{{\n  \"note\": \"memory-budgeted (out-of-core) factorization on the paper suite \
         plus the sgi_4M huge-N stand-in: Belady eviction over device/pinned-host/disk \
         tiers at 100/60/30% of the symbolic bound (clamped to the min-feasible floor), \
         spill-precision ladder off vs bf16; budget compliance, ladder-off bitwise \
         identity, >=1.8x bf16 traffic reduction, and f64 refinement convergence are \
         asserted on every matrix\",\n  \"matrices\": [\n{}\n  ]\n}}\n",
        blocks.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ooc.json");
    if let Err(e) = std::fs::write(path, &out) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("wrote BENCH_ooc.json");
    }
}
