//! Multi-GPU strong scaling on the paper stand-ins (beyond Table VII).
//!
//! The paper's evaluation stops at one GPU; this bench runs the multi-GPU
//! driver (proportional subtree mapping, peer-copy extend-add, cross-device
//! look-ahead — DESIGN.md §4.13) on every suite matrix at 1/2/4/8 simulated
//! devices and records the simulated makespan, the speedup over the
//! single-device pipelined driver, per-device engine utilization, and the
//! peer-link traffic the extend-add path moved. All numbers are simulated
//! and deterministic.
//!
//! Three invariants are asserted per matrix and panic the bench (failing
//! CI) on violation:
//!
//! 1. **Bitwise identity** — every device count reproduces the serial drain
//!    driver's factor slab bit for bit.
//! 2. **Two devices win** — the 2-device makespan beats the 1-device
//!    pipelined makespan (the suite matrices all have enough independent
//!    subtree work for one extra device to pay).
//! 3. **Look-ahead sanity** — scaling never collapses: the best multi-device
//!    makespan stays ahead of 1 device, and peer traffic appears exactly
//!    when peer extend-add is on and the mapping splits a parent from a
//!    child (sgi_1M's broad forest always does).

use mf_core::{
    factor_permuted, FactorOptions, MultiGpuOptions, PipelineOptions, PolicyKind, PolicySelector,
};
use mf_gpusim::Machine;
use mf_matgen::PaperMatrix;
use mf_sparse::symbolic::{analyze, Analysis};
use mf_sparse::{AmalgamationOptions, OrderingKind, SymCsc};

const DEVICE_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn suite() -> Vec<(&'static str, SymCsc<f64>)> {
    let scale =
        std::env::var("MF_BENCH_SCALE").ok().and_then(|s| s.parse::<f64>().ok()).unwrap_or(0.30);
    PaperMatrix::ALL.iter().map(|m| (m.name(), m.generate_scaled(scale))).collect()
}

fn analysis_of(a: &SymCsc<f64>) -> Analysis {
    analyze(a, OrderingKind::NestedDissection, Some(&AmalgamationOptions::default())).unwrap()
}

struct Run {
    makespan: f64,
    bits: Vec<u32>,
    peer_bytes: usize,
    device_busy: Vec<f64>,
}

fn run(an: &Analysis, a32: &SymCsc<f32>, ndev: usize) -> Run {
    let mut machine = Machine::paper_node();
    let opts = FactorOptions {
        selector: PolicySelector::Fixed(PolicyKind::P4),
        pipeline: PipelineOptions::pipelined(),
        devices: MultiGpuOptions::devices(ndev),
        ..FactorOptions::default()
    };
    let (f, stats) =
        factor_permuted(a32, &an.symbolic, &an.perm, &mut machine, &opts).expect("SPD stand-in");
    Run {
        makespan: stats.total_time,
        bits: f.slab.iter().map(|x| x.to_bits()).collect(),
        peer_bytes: stats.peer_bytes,
        device_busy: stats.gpu_devices.iter().map(|u| u.busy_fraction()).collect(),
    }
}

fn main() {
    let mut blocks: Vec<String> = Vec::new();
    for (name, a) in suite() {
        let an = analysis_of(&a);
        let a32: SymCsc<f32> = an.permuted.0.cast();
        // Ground truth: the serial drain driver's bits.
        let reference = {
            let mut machine = Machine::paper_node();
            let opts = FactorOptions {
                selector: PolicySelector::Fixed(PolicyKind::P4),
                ..FactorOptions::default()
            };
            let (f, _) = factor_permuted(&a32, &an.symbolic, &an.perm, &mut machine, &opts)
                .expect("SPD stand-in");
            f.slab.iter().map(|x| x.to_bits()).collect::<Vec<u32>>()
        };
        let runs: Vec<Run> = DEVICE_COUNTS.iter().map(|&d| run(&an, &a32, d)).collect();
        for (d, r) in DEVICE_COUNTS.iter().zip(&runs) {
            assert_eq!(
                r.bits, reference,
                "{name}/{d} devices: multi-GPU driver must not change a single factor bit"
            );
        }
        let base = runs[0].makespan;
        assert!(
            runs[1].makespan < base,
            "{name}: 2 devices ({:.4e}s) must beat 1 device ({:.4e}s)",
            runs[1].makespan,
            base
        );
        let best = runs.iter().map(|r| r.makespan).fold(f64::INFINITY, f64::min);
        assert!(best < base, "{name}: the best device count must improve on a single device");
        if name == "sgi_1M" {
            assert!(
                runs[1..].iter().all(|r| r.peer_bytes > 0),
                "sgi_1M: the proportional mapping splits subtrees across devices, so peer \
                 extend-add traffic must appear at every multi-device count"
            );
        }
        let mut rows: Vec<String> = Vec::new();
        for (d, r) in DEVICE_COUNTS.iter().zip(&runs) {
            let busy =
                r.device_busy.iter().map(|b| format!("{b:.4}")).collect::<Vec<_>>().join(", ");
            rows.push(format!(
                "        {{\"devices\": {d}, \"makespan_s\": {:.6e}, \"speedup_vs_1gpu\": \
                 {:.4}, \"peer_bytes\": {}, \"device_busy_fractions\": [{busy}]}}",
                r.makespan,
                base / r.makespan,
                r.peer_bytes,
            ));
            println!(
                "{name:>10} D={d}: {:.4e}s ({:.3}x vs 1 GPU), peer {:>9} B, busy [{busy}]",
                r.makespan,
                base / r.makespan,
                r.peer_bytes,
            );
        }
        blocks.push(format!(
            "    {{\"name\": \"{name}\", \"order\": {}, \"scaling\": [\n{}\n      ]}}",
            a.order(),
            rows.join(",\n"),
        ));
    }
    let out = format!(
        "{{\n  \"note\": \"simulated strong scaling of the multi-GPU pipelined driver \
         (fixed P4, proportional subtree mapping, peer-copy extend-add, cross-device \
         look-ahead) over 1/2/4/8 identically-configured devices; bitwise identity with \
         the serial drain driver is asserted at every count\",\n  \
         \"matrices\": [\n{}\n  ]\n}}\n",
        blocks.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_multigpu.json");
    if let Err(e) = std::fs::write(path, &out) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("wrote BENCH_multigpu.json");
    }
}
