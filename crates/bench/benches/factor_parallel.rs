//! Wall-clock benchmark of the parallel factorization driver: serial
//! `factor_permuted` vs `factor_permuted_parallel` at 2/4/8 workers, on the
//! paper's 3-D stand-ins (scaled down for bench runtimes).
//!
//! Two distinct speedup numbers come out of this, deliberately side by
//! side in `BENCH_factor.json`:
//!
//! * **measured** — real elapsed seconds on this host, which depends on the
//!   machine's hardware thread count (`hardware_threads` in the report; on
//!   a single-core container the measured speedup is necessarily ≈ 1), and
//! * **simulated** — the `simulate_tree_schedule` makespan prediction from
//!   a recorded serial run, which models the paper's multi-worker node and
//!   is hardware-independent.
//!
//! The per-worker delta between the two validates the schedule model
//! against the real runtime wherever the host has threads to spare.
//!
//! A third pair of numbers compares the two *scheduling granularities* on
//! the same recorded CPU (P1) run: tree-only list scheduling (one task per
//! supernode — speedup plateaus at the critical path through the root
//! chain) against the intra-front tiled task DAG, which splits every large
//! front into `potrf`/`trsm`/`syrk`/`gemm` tile tasks and keeps all workers
//! busy inside the root fronts. `tiled_vs_tree_speedup` in the JSON is the
//! ratio of the two makespans at each worker count.
//!
//! The bench also compares the two front-storage backends — the arena
//! (default) against the per-front heap reference — at w=1 (serial) and
//! w=4, and reports the arena's memory contract per matrix: peak front
//! bytes vs the symbolic working-storage bound, front allocation events,
//! and the process-global heap allocation count of one numeric phase
//! (measured by a counting global allocator).

use criterion::{criterion_group, BenchmarkId, Criterion};
use mf_core::{
    durations_by_supernode, factor_permuted, factor_permuted_parallel, simulate_tiled_schedule,
    simulate_tree_schedule, BaselineThresholds, FactorOptions, FrontStorage, MoldableModel,
    ParallelOptions, PolicyKind, PolicySelector, TilingOptions,
};
use mf_gpusim::{xeon_5160_core, Machine};
use mf_matgen::{elasticity_3d, laplacian_3d, PaperMatrix, Stencil};
use mf_sparse::symbolic::{analyze, Analysis};
use mf_sparse::{AmalgamationOptions, OrderingKind, SymCsc};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation and reallocation the process performs, so the
/// report can demonstrate the numeric phase's O(1) heap traffic under the
/// arena backend against the per-front traffic of the heap backend.
struct CountingAlloc;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn global_allocs() -> u64 {
    ALLOC_EVENTS.load(Ordering::Relaxed)
}

const WORKER_COUNTS: [usize; 3] = [2, 4, 8];
/// Worker count at which the storage backends are compared in parallel.
const COMPARE_WORKERS: usize = 4;

/// Matrices: the largest 3-D stand-in (sgi_1M) plus a vector-FE stand-in
/// (audikw_1), both shrunk to bench-friendly orders, followed by three
/// larger root-heavy configs — bench-tractable stand-ins for ≥10⁵-DoF 3-D
/// Poisson/elasticity problems whose nested-dissection root separators
/// produce fronts of 1000–2300 columns (far above the 256-column tiling
/// threshold), so intra-front tile parallelism has real work to win.
fn suite() -> Vec<(&'static str, SymCsc<f64>)> {
    let scale =
        std::env::var("MF_BENCH_SCALE").ok().and_then(|s| s.parse::<f64>().ok()).unwrap_or(0.30);
    let large = std::env::var("MF_BENCH_LARGE_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(1.0);
    let g = |base: usize| ((base as f64 * large).round() as usize).max(4);
    vec![
        ("sgi_1M", PaperMatrix::Sgi1M.generate_scaled(scale)),
        ("audikw_1", PaperMatrix::Audikw1.generate_scaled(scale)),
        ("poisson3d_L", laplacian_3d(g(20), g(20), g(20), Stencil::Full)),
        ("elasticity3d_L", elasticity_3d(g(13), g(13), g(13))),
        ("elasticity3d_M", elasticity_3d(g(11), g(11), g(11))),
    ]
}

fn analysis_of(a: &SymCsc<f64>) -> Analysis {
    analyze(a, OrderingKind::NestedDissection, Some(&AmalgamationOptions::default())).unwrap()
}

fn opts() -> FactorOptions {
    FactorOptions {
        selector: PolicySelector::Baseline(BaselineThresholds::default()),
        ..Default::default()
    }
}

fn heap_opts() -> FactorOptions {
    FactorOptions { front_storage: FrontStorage::Heap, ..opts() }
}

fn bench_factor(c: &mut Criterion) {
    let mut g = c.benchmark_group("factor_parallel");
    for (name, a) in suite() {
        let an = analysis_of(&a);
        let opts = opts();
        g.bench_with_input(BenchmarkId::new("serial", name), &(), |b, _| {
            b.iter(|| {
                let mut machine = Machine::paper_node();
                factor_permuted(&an.permuted.0, &an.symbolic, &an.perm, &mut machine, &opts)
                    .unwrap()
            })
        });
        for w in WORKER_COUNTS {
            g.bench_with_input(BenchmarkId::new(format!("w{w}"), name), &w, |b, &w| {
                b.iter(|| {
                    let mut machines: Vec<Machine> =
                        (0..w).map(|_| Machine::paper_node()).collect();
                    factor_permuted_parallel(
                        &an.permuted.0,
                        &an.symbolic,
                        &an.perm,
                        &mut machines,
                        &opts,
                        &ParallelOptions::default(),
                    )
                    .unwrap()
                })
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_factor
}

/// Simulated tree-schedule speedups for one matrix, from a recorded serial
/// run (molding on — the analogue of the runtime's kernel-width widening).
fn simulated_speedups(a: &SymCsc<f64>) -> Vec<(usize, f64)> {
    let an = analysis_of(a);
    let mut machine = Machine::paper_node();
    let ropts = FactorOptions { record_stats: true, ..opts() };
    let (_, stats) =
        factor_permuted(&an.permuted.0, &an.symbolic, &an.perm, &mut machine, &ropts).unwrap();
    let (durations, ops) = durations_by_supernode(&an.symbolic, &stats);
    WORKER_COUNTS
        .iter()
        .map(|&w| {
            let r = simulate_tree_schedule(
                &an.symbolic,
                &durations,
                &ops,
                w,
                Some(MoldableModel::default()),
            );
            (w, r.speedup())
        })
        .collect()
}

/// Simulated makespans of tree-only list scheduling vs the intra-front
/// tiled task DAG on the same recorded CPU-only (fixed P1) run. Both
/// schedulers use width-1 tasks (no molding), so the ratio isolates what
/// scheduling granularity alone buys. Returns per worker count
/// `(workers, tiled_speedup_vs_serial, tree_makespan / tiled_makespan)`,
/// and asserts the schedule-model invariant
/// `critical_path ≤ makespan ≤ serial_time` for every result — the CI gate
/// that the critical-path accounting and the simulated makespan cannot
/// disagree by construction.
fn tiled_speedups(a: &SymCsc<f64>) -> Vec<(usize, f64, f64)> {
    let an = analysis_of(a);
    let mut machine = Machine::paper_node();
    let ropts = FactorOptions {
        selector: PolicySelector::Fixed(PolicyKind::P1),
        record_stats: true,
        ..Default::default()
    };
    let (_, stats) =
        factor_permuted(&an.permuted.0, &an.symbolic, &an.perm, &mut machine, &ropts).unwrap();
    let (durations, ops) = durations_by_supernode(&an.symbolic, &stats);
    let tiling = TilingOptions::tiled();
    let cpu = xeon_5160_core();
    WORKER_COUNTS
        .iter()
        .map(|&w| {
            let tree = simulate_tree_schedule(&an.symbolic, &durations, &ops, w, None);
            let tiled = simulate_tiled_schedule(&an.symbolic, &stats, &tiling, &cpu, w);
            for (which, r) in [("tree", &tree), ("tiled", &tiled)] {
                assert!(
                    r.critical_path <= r.makespan * (1.0 + 1e-9)
                        && r.makespan <= r.serial_time * (1.0 + 1e-9),
                    "{which} schedule at w={w}: critical path {}, makespan {}, serial {} \
                     violate cp ≤ makespan ≤ serial",
                    r.critical_path,
                    r.makespan,
                    r.serial_time
                );
            }
            (w, tiled.speedup(), tree.makespan / tiled.makespan)
        })
        .collect()
}

/// Interleaved A/B timing of the arena backend against the per-front heap
/// reference at `workers` (1 = serial driver). Alternating the two backends
/// every iteration cancels the slow host drift that sequential benchmark
/// groups pick up on shared machines; the median over paired samples
/// resists the scheduler outliers an oversubscribed host produces. Returns
/// median `(arena_ms, heap_ms)`.
fn compare_backends(an: &Analysis, workers: usize, reps: usize) -> (f64, f64) {
    let variants = [opts(), heap_opts()];
    let warm = 3;
    let mut samples: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
    for rep in 0..reps + warm {
        for (i, o) in variants.iter().enumerate() {
            let t0 = std::time::Instant::now();
            if workers == 1 {
                let mut machine = Machine::paper_node();
                std::hint::black_box(
                    factor_permuted(&an.permuted.0, &an.symbolic, &an.perm, &mut machine, o)
                        .unwrap(),
                );
            } else {
                let mut machines: Vec<Machine> =
                    (0..workers).map(|_| Machine::paper_node()).collect();
                std::hint::black_box(
                    factor_permuted_parallel(
                        &an.permuted.0,
                        &an.symbolic,
                        &an.perm,
                        &mut machines,
                        o,
                        &ParallelOptions::default(),
                    )
                    .unwrap(),
                );
            }
            if rep >= warm {
                samples[i].push(t0.elapsed().as_secs_f64());
            }
        }
    }
    let median = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.total_cmp(b));
        v[v.len() / 2] * 1e3
    };
    (median(&mut samples[0]), median(&mut samples[1]))
}

/// One warmed serial run per backend with the counting allocator snapshot
/// around it, plus the driver's own storage accounting. Returns a JSON
/// `"memory"` object for the matrix block.
fn memory_report(a: &SymCsc<f64>) -> String {
    let an = analysis_of(a);
    let bound_bytes = an.symbolic.update_stack_peak() * std::mem::size_of::<f64>();
    let run = |o: &FactorOptions| {
        let mut machine = Machine::paper_node();
        // Warm thread-local kernel scratch so the measured pass sees the
        // steady state a refactorization loop would see.
        factor_permuted(&an.permuted.0, &an.symbolic, &an.perm, &mut machine, o).unwrap();
        let before = global_allocs();
        let (_, stats) =
            factor_permuted(&an.permuted.0, &an.symbolic, &an.perm, &mut machine, o).unwrap();
        (stats, global_allocs() - before)
    };
    let (sa, ga) = run(&opts());
    let (sh, gh) = run(&heap_opts());
    assert!(
        sa.peak_front_bytes <= bound_bytes,
        "arena high-water {} exceeds symbolic bound {bound_bytes}",
        sa.peak_front_bytes
    );
    format!(
        "\"memory\": {{\"working_storage_bound_bytes\": {bound_bytes}, \
         \"arena\": {{\"peak_front_bytes\": {}, \"front_alloc_events\": {}, \
         \"global_alloc_events\": {ga}}}, \
         \"heap\": {{\"peak_front_bytes\": {}, \"front_alloc_events\": {}, \
         \"global_alloc_events\": {gh}}}}}",
        sa.peak_front_bytes, sa.front_alloc_events, sh.peak_front_bytes, sh.front_alloc_events
    )
}

/// Write `BENCH_factor.json`: per matrix, the serial mean plus — per worker
/// count — measured wall-clock speedup, simulated makespan speedup, and
/// their difference; then the arena-vs-heap storage comparison (w=1 and
/// w=4) and the memory accounting of both backends.
fn write_bench_json() {
    let recs = criterion::records();
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"hardware_threads\": {threads},\n"));
    out.push_str(
        "  \"note\": \"measured = real wall-clock on this host (bounded by hardware_threads; \
         on a single-core host parallel wall-clock speedup stays near 1 by necessity); \
         simulated = tree-schedule model of the paper's multi-worker node (molded kernels); \
         tiled_speedup = simulated makespan speedup of the intra-front tiled task DAG vs serial \
         on a recorded CPU P1 run; tiled_vs_tree_speedup = tree-only makespan / tiled makespan \
         at the same worker count (both width-1); arena_speedup_vs_heap \
         = per-front heap allocation baseline time / arena time, interleaved A/B timing\",\n",
    );
    out.push_str("  \"matrices\": [\n");
    let mut blocks: Vec<String> = Vec::new();
    for (name, a) in suite() {
        let mean_of = |id: String| {
            recs.iter()
                .find(|r| r.group == "factor_parallel" && r.id == id)
                .map(|r| r.mean_ns / 1.0e6)
        };
        let Some(serial_ms) = mean_of(format!("serial/{name}")) else { continue };
        let sim = simulated_speedups(&a);
        let tiled = tiled_speedups(&a);
        let mut rows: Vec<String> = Vec::new();
        for &w in &WORKER_COUNTS {
            let Some(par_ms) = mean_of(format!("w{w}/{name}")) else { continue };
            let measured = serial_ms / par_ms;
            let simulated = sim.iter().find(|&&(sw, _)| sw == w).map(|&(_, s)| s).unwrap_or(1.0);
            let (tiled_sp, tiled_vs_tree) = tiled
                .iter()
                .find(|&&(tw, _, _)| tw == w)
                .map(|&(_, s, r)| (s, r))
                .unwrap_or((1.0, 1.0));
            rows.push(format!(
                "        {{\"workers\": {w}, \"measured_ms\": {par_ms:.3}, \
                 \"measured_speedup\": {measured:.3}, \"simulated_speedup\": {simulated:.3}, \
                 \"sim_minus_measured\": {:.3}, \"tiled_speedup\": {tiled_sp:.3}, \
                 \"tiled_vs_tree_speedup\": {tiled_vs_tree:.3}}}",
                simulated - measured
            ));
        }
        let an = analysis_of(&a);
        // The larger root-heavy matrices would spend most of the bench's
        // wall budget in the 31-rep A/B storage loop; fewer pairs still
        // give a stable median at their ≥50 ms per-run times.
        let cmp_reps = if a.order() > 3000 { 9 } else { 31 };
        let mut cmp_rows: Vec<String> = Vec::new();
        for w in [1usize, COMPARE_WORKERS] {
            let (arena_ms, heap_ms) = compare_backends(&an, w, cmp_reps);
            cmp_rows.push(format!(
                "        {{\"workers\": {w}, \"arena_ms\": {arena_ms:.3}, \
                 \"heap_ms\": {heap_ms:.3}, \"arena_speedup_vs_heap\": {:.3}}}",
                heap_ms / arena_ms
            ));
        }
        blocks.push(format!(
            "    {{\"name\": \"{name}\", \"order\": {}, \"serial_ms\": {serial_ms:.3}, \
             \"runs\": [\n{}\n      ],\n      \"storage_compare\": [\n{}\n      ],\n      {}}}",
            a.order(),
            rows.join(",\n"),
            cmp_rows.join(",\n"),
            memory_report(&a)
        ));
    }
    out.push_str(&blocks.join(",\n"));
    out.push_str("\n  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_factor.json");
    if let Err(e) = std::fs::write(path, &out) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("wrote BENCH_factor.json ({} hardware threads)", threads);
    }
}

fn main() {
    benches();
    write_bench_json();
}
