//! Wall-clock benchmark of the parallel factorization driver: serial
//! `factor_permuted` vs `factor_permuted_parallel` at 2/4/8 workers, on the
//! paper's 3-D stand-ins (scaled down for bench runtimes).
//!
//! Two distinct speedup numbers come out of this, deliberately side by
//! side in `BENCH_factor.json`:
//!
//! * **measured** — real elapsed seconds on this host, which depends on the
//!   machine's hardware thread count (`hardware_threads` in the report; on
//!   a single-core container the measured speedup is necessarily ≈ 1), and
//! * **simulated** — the `simulate_tree_schedule` makespan prediction from
//!   a recorded serial run, which models the paper's multi-worker node and
//!   is hardware-independent.
//!
//! The per-worker delta between the two validates the schedule model
//! against the real runtime wherever the host has threads to spare.

use criterion::{criterion_group, BenchmarkId, Criterion};
use mf_core::{
    durations_by_supernode, factor_permuted, factor_permuted_parallel, simulate_tree_schedule,
    BaselineThresholds, FactorOptions, MoldableModel, ParallelOptions, PolicySelector,
};
use mf_gpusim::Machine;
use mf_matgen::PaperMatrix;
use mf_sparse::symbolic::{analyze, Analysis};
use mf_sparse::{AmalgamationOptions, OrderingKind, SymCsc};

const WORKER_COUNTS: [usize; 3] = [2, 4, 8];

/// Matrices: the largest 3-D stand-in (sgi_1M) plus a vector-FE stand-in
/// (audikw_1), both shrunk to bench-friendly orders.
fn suite() -> Vec<(&'static str, SymCsc<f64>)> {
    let scale =
        std::env::var("MF_BENCH_SCALE").ok().and_then(|s| s.parse::<f64>().ok()).unwrap_or(0.30);
    vec![
        ("sgi_1M", PaperMatrix::Sgi1M.generate_scaled(scale)),
        ("audikw_1", PaperMatrix::Audikw1.generate_scaled(scale)),
    ]
}

fn analysis_of(a: &SymCsc<f64>) -> Analysis {
    analyze(a, OrderingKind::NestedDissection, Some(&AmalgamationOptions::default()))
}

fn opts() -> FactorOptions {
    FactorOptions {
        selector: PolicySelector::Baseline(BaselineThresholds::default()),
        ..Default::default()
    }
}

fn bench_factor(c: &mut Criterion) {
    let mut g = c.benchmark_group("factor_parallel");
    for (name, a) in suite() {
        let an = analysis_of(&a);
        let opts = opts();
        g.bench_with_input(BenchmarkId::new("serial", name), &(), |b, _| {
            b.iter(|| {
                let mut machine = Machine::paper_node();
                factor_permuted(&an.permuted.0, &an.symbolic, &an.perm, &mut machine, &opts)
                    .unwrap()
            })
        });
        for w in WORKER_COUNTS {
            g.bench_with_input(BenchmarkId::new(format!("w{w}"), name), &w, |b, &w| {
                b.iter(|| {
                    let mut machines: Vec<Machine> =
                        (0..w).map(|_| Machine::paper_node()).collect();
                    factor_permuted_parallel(
                        &an.permuted.0,
                        &an.symbolic,
                        &an.perm,
                        &mut machines,
                        &opts,
                        &ParallelOptions::default(),
                    )
                    .unwrap()
                })
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_factor
}

/// Simulated tree-schedule speedups for one matrix, from a recorded serial
/// run (molding on — the analogue of the runtime's kernel-width widening).
fn simulated_speedups(a: &SymCsc<f64>) -> Vec<(usize, f64)> {
    let an = analysis_of(a);
    let mut machine = Machine::paper_node();
    let ropts = FactorOptions { record_stats: true, ..opts() };
    let (_, stats) =
        factor_permuted(&an.permuted.0, &an.symbolic, &an.perm, &mut machine, &ropts).unwrap();
    let (durations, ops) = durations_by_supernode(&an.symbolic, &stats);
    WORKER_COUNTS
        .iter()
        .map(|&w| {
            let r = simulate_tree_schedule(
                &an.symbolic,
                &durations,
                &ops,
                w,
                Some(MoldableModel::default()),
            );
            (w, r.speedup())
        })
        .collect()
}

/// Write `BENCH_factor.json`: per matrix, the serial mean plus — per worker
/// count — measured wall-clock speedup, simulated makespan speedup, and
/// their difference.
fn write_bench_json() {
    let recs = criterion::records();
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"hardware_threads\": {threads},\n"));
    out.push_str(
        "  \"note\": \"measured = real wall-clock on this host (bounded by hardware_threads); \
         simulated = tree-schedule model of the paper's multi-worker node\",\n",
    );
    out.push_str("  \"matrices\": [\n");
    let mut blocks: Vec<String> = Vec::new();
    for (name, a) in suite() {
        let mean_of = |id: String| {
            recs.iter()
                .find(|r| r.group == "factor_parallel" && r.id == id)
                .map(|r| r.mean_ns / 1.0e6)
        };
        let Some(serial_ms) = mean_of(format!("serial/{name}")) else { continue };
        let sim = simulated_speedups(&a);
        let mut rows: Vec<String> = Vec::new();
        for &w in &WORKER_COUNTS {
            let Some(par_ms) = mean_of(format!("w{w}/{name}")) else { continue };
            let measured = serial_ms / par_ms;
            let simulated = sim.iter().find(|&&(sw, _)| sw == w).map(|&(_, s)| s).unwrap_or(1.0);
            rows.push(format!(
                "        {{\"workers\": {w}, \"measured_ms\": {par_ms:.3}, \
                 \"measured_speedup\": {measured:.3}, \"simulated_speedup\": {simulated:.3}, \
                 \"sim_minus_measured\": {:.3}}}",
                simulated - measured
            ));
        }
        blocks.push(format!(
            "    {{\"name\": \"{name}\", \"order\": {}, \"serial_ms\": {serial_ms:.3}, \
             \"runs\": [\n{}\n      ]}}",
            a.order(),
            rows.join(",\n")
        ));
    }
    out.push_str(&blocks.join(",\n"));
    out.push_str("\n  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_factor.json");
    if let Err(e) = std::fs::write(path, &out) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("wrote BENCH_factor.json ({} hardware threads)", threads);
    }
}

fn main() {
    benches();
    write_bench_json();
}
