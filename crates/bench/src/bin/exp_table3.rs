//! Reproduces the corresponding paper artifact; see DESIGN.md §3.
fn main() {
    let cfg = mf_bench::ExpConfig::from_env();
    let mut cache = None;
    mf_bench::experiments::exp_table3(&cfg, &mut cache).finish(&cfg.out_dir);
}
