//! Runs every experiment in sequence, sharing one suite build.

type ExpFn = fn(&mf_bench::ExpConfig, &mut Option<mf_bench::SuiteData>) -> mf_bench::Report;

fn main() {
    let cfg = mf_bench::ExpConfig::from_env();
    let mut cache = None;
    use mf_bench::experiments as e;
    let funcs: Vec<(&str, ExpFn)> = vec![
        ("setup", e::exp_setup),
        ("fig2", e::exp_fig2),
        ("table3", e::exp_table3),
        ("fig3", e::exp_fig3),
        ("fig4", e::exp_fig4),
        ("fig56", e::exp_fig56),
        ("table4", e::exp_table4),
        ("fig78", e::exp_fig78),
        ("table5", e::exp_table5),
        ("fig1011", e::exp_fig1011),
        ("fig1213", e::exp_fig1213),
        ("fig14", e::exp_fig14),
        ("table7", e::exp_table7),
        ("tile_ablation", e::exp_tile_ablation),
        ("ablations", e::exp_ablations),
    ];
    for (name, f) in funcs {
        eprintln!("[all_experiments] running {name}…");
        f(&cfg, &mut cache).finish(&cfg.out_dir);
    }
}
