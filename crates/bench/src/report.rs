//! Report accumulation and output.

use std::fmt::Write as _;
use std::io::Write as _;

/// A text report that prints to stdout and lands in the output directory.
#[derive(Debug)]
pub struct Report {
    name: String,
    body: String,
}

impl Report {
    /// Start a report named `name` (becomes `<out>/<name>.txt`).
    pub fn new(name: &str) -> Self {
        let mut r = Report { name: name.to_string(), body: String::new() };
        r.line(&format!("==== {name} ===="));
        r
    }

    /// Append a line.
    pub fn line(&mut self, s: &str) {
        self.body.push_str(s);
        self.body.push('\n');
    }

    /// Append a formatted section header.
    pub fn section(&mut self, s: &str) {
        self.line("");
        self.line(&format!("-- {s} --"));
    }

    /// Append a simple aligned table: `header` then `rows`.
    pub fn table(&mut self, header: &[&str], rows: &[Vec<String>]) {
        let ncol = header.len();
        let mut width = vec![0usize; ncol];
        for (i, h) in header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut line = String::new();
        for (i, h) in header.iter().enumerate() {
            let _ = write!(line, "{:>w$}  ", h, w = width[i]);
        }
        self.line(line.trim_end());
        for row in rows {
            let mut line = String::new();
            for (i, c) in row.iter().enumerate() {
                let _ = write!(line, "{:>w$}  ", c, w = width[i]);
            }
            self.line(line.trim_end());
        }
    }

    /// The accumulated text.
    pub fn text(&self) -> &str {
        &self.body
    }

    /// Print to stdout and write to `<out_dir>/<name>.txt`.
    pub fn finish(&self, out_dir: &str) {
        println!("{}", self.body);
        if std::fs::create_dir_all(out_dir).is_ok() {
            let path = format!("{}/{}.txt", out_dir, self.name);
            if let Ok(mut f) = std::fs::File::create(&path) {
                let _ = f.write_all(self.body.as_bytes());
                eprintln!("[report written to {path}]");
            }
        }
    }
}

/// Format seconds with an engineering suffix.
pub fn fmt_time(t: f64) -> String {
    if t >= 1.0 {
        format!("{t:.2} s")
    } else if t >= 1e-3 {
        format!("{:.2} ms", t * 1e3)
    } else if t >= 1e-6 {
        format!("{:.2} µs", t * 1e6)
    } else {
        format!("{:.0} ns", t * 1e9)
    }
}

/// Format a rate in GFlop/s.
pub fn fmt_gf(rate: f64) -> String {
    format!("{:.2}", rate / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut r = Report::new("t");
        r.table(&["a", "bbb"], &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]]);
        assert!(r.text().contains("333"));
        assert!(r.text().lines().count() >= 4);
    }

    #[test]
    fn time_formats() {
        assert_eq!(fmt_time(2.5), "2.50 s");
        assert_eq!(fmt_time(2.5e-3), "2.50 ms");
        assert_eq!(fmt_time(2.5e-6), "2.50 µs");
        assert_eq!(fmt_time(3e-9), "3 ns");
    }
}
