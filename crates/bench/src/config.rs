//! Experiment configuration from environment variables.

/// Global experiment configuration.
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// Linear matrix-suite scale (1.0 = full stand-in sizes).
    pub scale: f64,
    /// Fast smoke mode (small grids, fewer sweep points).
    pub quick: bool,
    /// Output directory for reports.
    pub out_dir: String,
}

impl ExpConfig {
    /// Read configuration from `MF_SCALE`, `MF_QUICK`, `MF_OUT`.
    pub fn from_env() -> Self {
        let quick = std::env::var("MF_QUICK").map(|v| v == "1").unwrap_or(false);
        let scale = std::env::var("MF_SCALE")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(if quick { 0.3 } else { 0.5 });
        let out_dir = std::env::var("MF_OUT").unwrap_or_else(|_| "reports".to_string());
        ExpConfig { scale, quick, out_dir }
    }

    /// A small configuration for tests.
    pub fn test_small() -> Self {
        ExpConfig { scale: 0.22, quick: true, out_dir: std::env::temp_dir().display().to_string() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ExpConfig::test_small();
        assert!(c.scale > 0.0 && c.scale <= 1.0);
        assert!(c.quick);
    }
}
