//! # mf-bench — the paper-reproduction experiment harness
//!
//! One binary per table/figure of the paper's evaluation (see DESIGN.md §3
//! for the index). All binaries accept the environment variables:
//!
//! * `MF_SCALE` — linear scale factor of the matrix suite (default 0.5;
//!   1.0 = the full stand-in sizes of `mf-matgen::paper`),
//! * `MF_QUICK` — set to `1` for a fast smoke configuration,
//! * `MF_OUT` — report output directory (default `reports/`).
//!
//! Experiments report *simulated* time on the calibrated Tesla-T10/Xeon-5160
//! machine model; see EXPERIMENTS.md for the paper-vs-measured comparison.

pub mod config;
pub mod experiments;
pub mod maps;
pub mod report;
pub mod suite;

pub use config::ExpConfig;
pub use report::Report;
pub use suite::{MatrixRuns, SuiteData};
