//! One function per paper table/figure. Each returns a [`Report`]; the
//! `src/bin/exp_*` binaries are thin wrappers. See DESIGN.md §3 for the
//! experiment index and EXPERIMENTS.md for measured-vs-paper commentary.

use crate::config::ExpConfig;
use crate::maps::{map_agreement, render_map, TimeGrid};
use crate::report::{fmt_gf, fmt_time, Report};
use crate::suite::SuiteData;
use mf_autotune::{train, Objective, TrainOptions};
use mf_core::{
    durations_by_supernode, estimate_fu_time, simulate_tiled_schedule, simulate_tree_schedule,
    BaselineThresholds, MoldableModel, PolicyKind, PolicySelector, TaskKind, TilingOptions,
};
use mf_dense::FuFlops;
use mf_gpusim::{exact_ops, fermi_like, tesla_t10, xeon_5160_core, KernelKind, Machine};

/// Fit baseline-hybrid thresholds from our own calibration's policy sweep —
/// the counterpart of the paper reading its transition points off Figures
/// 10/11. (The paper's literal 2e6/1.5e7/9e10 values encode *their* T10 +
/// CUBLAS-2.3 behaviour; a baseline hybrid is only meaningful with
/// thresholds fitted to the machine at hand.)
pub fn fitted_baseline(machine: &mut Machine) -> BaselineThresholds {
    let mut samples = Vec::new();
    for i in 0..70 {
        let ops_target = 10f64.powf(3.5 + i as f64 * 0.11);
        let k = ((ops_target / 20.33).powf(1.0 / 3.0)).max(1.0) as usize;
        let m = 4 * k;
        let mut times = [0.0f64; 4];
        for p in PolicyKind::ALL {
            times[p.index()] = estimate_fu_time(machine, m, k, p, 64, false);
        }
        samples.push((FuFlops::new(m, k).total(), times));
    }
    BaselineThresholds::fit(&samples)
}

/// Lazily build the suite once per process.
pub fn suite<'a>(cfg: &ExpConfig, cache: &'a mut Option<SuiteData>) -> &'a SuiteData {
    if cache.is_none() {
        *cache = Some(SuiteData::build(cfg));
    }
    cache.as_ref().unwrap()
}

// ---------------------------------------------------------------- exp_setup

/// Tables I & II: machine model constants and the matrix suite.
pub fn exp_setup(cfg: &ExpConfig, cache: &mut Option<SuiteData>) -> Report {
    let mut r = Report::new("exp_setup");
    let gpu = tesla_t10();
    let cpu = xeon_5160_core();
    r.section("Table I analogue — simulated device");
    r.line(&format!("GPU: {}", gpu.name));
    r.line(&format!(
        "  peak SP {:.0} GF/s, peak DP {:.0} GF/s",
        gpu.peak_sp / 1e9,
        gpu.peak_dp / 1e9
    ));
    r.line(&format!("  memory {} GB, tile {}", gpu.mem_bytes >> 30, gpu.tile));
    r.line(&format!(
        "  PCIe: pageable {:.1} GB/s (paper's β ≈ 1.4), pinned {:.1} GB/s, latency {:.0} µs",
        gpu.pcie.pageable_bw / 1e9,
        gpu.pcie.pinned_bw / 1e9,
        gpu.pcie.latency * 1e6
    ));
    r.line(&format!("CPU: {} — peak DP {:.0} GF/s", cpu.name, cpu.peak_dp / 1e9));

    r.section("Table II — matrix suite (paper dims vs stand-ins)");
    let s = suite(cfg, cache);
    let rows: Vec<Vec<String>> = s
        .matrices
        .iter()
        .map(|m| {
            let (pn, pnnz) = m.which.paper_dims();
            vec![
                m.name().to_string(),
                pn.to_string(),
                pnnz.to_string(),
                m.a.order().to_string(),
                m.a.nnz_lower().to_string(),
                m.analysis.symbolic.num_supernodes().to_string(),
                format!("{:.2e}", m.analysis.symbolic.total_flops()),
            ]
        })
        .collect();
    r.table(
        &["matrix", "N(paper)", "NNZ(paper)", "N(ours)", "NNZ(ours)", "supernodes", "flops"],
        &rows,
    );
    r
}

// ---------------------------------------------------------------- exp_fig2

/// Figure 2: fraction of F-U time per (m, k) bin for the CPU run and the
/// basic GPU run with/without copy time.
pub fn exp_fig2(cfg: &ExpConfig, cache: &mut Option<SuiteData>) -> Report {
    let mut r = Report::new("exp_fig2");
    let s = suite(cfg, cache);
    // Merge per-supernode records across the suite.
    let bins = 8usize;
    let max_dim = s
        .matrices
        .iter()
        .flat_map(|m| m.stats[0].records.iter())
        .map(|rec| rec.m.max(rec.k))
        .max()
        .unwrap_or(1)
        + 1;
    let cell = max_dim.div_ceil(bins);
    let mut grid_cpu = vec![vec![0.0f64; bins]; bins];
    let mut grid_gpu_w = vec![vec![0.0f64; bins]; bins];
    let mut grid_gpu_wo = vec![vec![0.0f64; bins]; bins];
    let (mut tot_c, mut tot_w, mut tot_wo) = (0.0, 0.0, 0.0);
    for m in &s.matrices {
        for (rc, rg) in m.stats[0].records.iter().zip(&m.stats[2].records) {
            let im = (rc.m / cell).min(bins - 1);
            let ik = (rc.k / cell).min(bins - 1);
            grid_cpu[im][ik] += rc.total;
            tot_c += rc.total;
            grid_gpu_w[im][ik] += rg.total;
            tot_w += rg.total;
            let wo = (rg.total - rg.t_copy).max(0.0);
            grid_gpu_wo[im][ik] += wo;
            tot_wo += wo;
        }
    }
    for (name, grid, tot) in [
        ("(a) host CPU implementation", &mut grid_cpu, tot_c),
        ("(b) basic GPU incl. copy", &mut grid_gpu_w, tot_w),
        ("(c) basic GPU excl. copy", &mut grid_gpu_wo, tot_wo),
    ] {
        r.section(&format!("{name} — % of F-U time per {cell}×{cell} (m,k) bin"));
        for ik in (0..bins).rev() {
            let mut line = format!("k≈{:>5} |", ik * cell + cell / 2);
            for row in grid.iter().take(bins) {
                line.push_str(&format!(" {:5.1}", 100.0 * row[ik] / tot.max(1e-300)));
            }
            r.line(&line);
        }
        r.line("           (m grows →)");
    }
    // The paper's observation: ~97 % of calls are small.
    let total_calls: usize = s.matrices.iter().map(|m| m.stats[0].records.len()).sum();
    let small_calls: usize = s
        .matrices
        .iter()
        .flat_map(|m| m.stats[0].records.iter())
        .filter(|rec| rec.k <= 500 && rec.m <= 1000)
        .count();
    r.section("call-count concentration (paper: ~97 % with k ≤ 500, m ≤ 1000)");
    r.line(&format!(
        "{} of {} calls ({:.1} %) have k ≤ 500 and m ≤ 1000",
        small_calls,
        total_calls,
        100.0 * small_calls as f64 / total_calls as f64
    ));
    r
}

// -------------------------------------------------------------- exp_table3

/// Table III: stabilized flop rates and utilization.
pub fn exp_table3(_cfg: &ExpConfig, _cache: &mut Option<SuiteData>) -> Report {
    let mut r = Report::new("exp_table3");
    let cpu = xeon_5160_core();
    let gpu = tesla_t10();
    let big = 1e13;
    r.section("average stabilized flop rates (GF/s : % of peak)");
    let rows = vec![
        vec![
            "GFlops/s".to_string(),
            fmt_gf(cpu.kernels.potrf.rate(big)),
            fmt_gf(cpu.kernels.trsm.rate(big)),
            fmt_gf(cpu.kernels.syrk.rate(big)),
            fmt_gf(gpu.kernels.trsm.rate(big)),
            fmt_gf(gpu.kernels.syrk.rate(big)),
        ],
        vec![
            "%Peak".to_string(),
            format!("{:.1}", 100.0 * cpu.kernels.potrf.rate(big) / cpu.peak_dp),
            format!("{:.1}", 100.0 * cpu.kernels.trsm.rate(big) / cpu.peak_dp),
            format!("{:.1}", 100.0 * cpu.kernels.syrk.rate(big) / cpu.peak_dp),
            format!("{:.1}", 100.0 * gpu.kernels.trsm.rate(big) / gpu.peak_sp),
            format!("{:.1}", 100.0 * gpu.kernels.syrk.rate(big) / gpu.peak_sp),
        ],
    ];
    r.table(&["", "potrf(CPU)", "trsm(CPU)", "syrk(CPU)", "trsm(GPU)", "syrk(GPU)"], &rows);
    r.line("");
    r.line("paper Table III: 8.84 / 9.24 / 10.02 / 153.7 / 159.69 GF/s");
    r.line("paper %peak:     73.7 / 76.99 / 83.49 / 24.63 / 25.59");
    r
}

// ---------------------------------------------------------------- exp_fig3

/// Figure 3: theoretical (Eqs. 1–2) vs observed basic-GPU speedup.
pub fn exp_fig3(cfg: &ExpConfig, cache: &mut Option<SuiteData>) -> Report {
    let mut r = Report::new("exp_fig3");
    let s = suite(cfg, cache);
    let cpu = xeon_5160_core();
    let gpu = tesla_t10();
    let big = 1e13;
    let (a_p, a_t, a_s) =
        (cpu.kernels.potrf.rate(big), cpu.kernels.trsm.rate(big), cpu.kernels.syrk.rate(big));
    let (g_t, g_s) = (gpu.kernels.trsm.rate(big), gpu.kernels.syrk.rate(big));
    let beta = gpu.pcie.pageable_bw;
    r.section("theoretical (Eq. 1/2, asymptotic rates) vs observed speedup per ops decade");
    let mut bins: Vec<(f64, Vec<f64>, Vec<f64>)> =
        (4..12).map(|e| (10f64.powi(e), Vec::new(), Vec::new())).collect();
    for m in &s.matrices {
        for (rc, rg) in m.stats[0].records.iter().zip(&m.stats[2].records) {
            let f = FuFlops::new(rc.m, rc.k);
            let ops = f.total();
            // Eq. 1 & 2 (data sizes in f32 bytes).
            let t_cpu = f.potrf / a_p + f.trsm / a_t + f.syrk / a_s;
            let nd1 = 4.0 * ((rc.k * rc.k + 2 * rc.m * rc.k) as f64);
            let nd2 = 4.0 * ((rc.m * rc.m) as f64);
            let t_gpu = f.potrf / a_p + f.trsm / g_t + f.syrk / g_s + (nd1 + nd2) / beta;
            let theo = t_cpu / t_gpu;
            let obs = rc.total / rg.total;
            for (hi, ts, os) in bins.iter_mut() {
                if ops <= *hi {
                    ts.push(theo);
                    os.push(obs);
                    break;
                }
            }
        }
    }
    let rows: Vec<Vec<String>> = bins
        .iter()
        .filter(|(_, t, _)| !t.is_empty())
        .map(|(hi, t, o)| {
            let avg = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
            vec![
                format!("≤{hi:.0e}"),
                t.len().to_string(),
                format!("{:.2}", avg(t)),
                format!("{:.2}", avg(o)),
            ]
        })
        .collect();
    r.table(&["ops bin", "calls", "theoretical ×", "observed ×"], &rows);
    r.line("");
    r.line("(observed trails theory for small/moderate calls — rates are far");
    r.line(" from asymptotic there, exactly the paper's point in Fig. 3)");
    r
}

// ---------------------------------------------------------------- exp_fig4

/// Figure 4: flop-rate ramp vs op count for large trsm/syrk calls.
pub fn exp_fig4(_cfg: &ExpConfig, _cache: &mut Option<SuiteData>) -> Report {
    let mut r = Report::new("exp_fig4");
    let cpu = xeon_5160_core();
    let gpu = tesla_t10();
    r.section("achieved rate (GF/s) vs op count");
    let mut rows = Vec::new();
    for e in 2..12 {
        let ops = 10f64.powi(e);
        rows.push(vec![
            format!("1e{e}"),
            fmt_gf(cpu.kernels.syrk.rate(ops)),
            fmt_gf(cpu.kernels.trsm.rate(ops)),
            fmt_gf(gpu.kernels.syrk.rate(ops)),
            fmt_gf(gpu.kernels.trsm.rate(ops)),
        ]);
    }
    r.table(&["ops", "syrk-CPU", "trsm-CPU", "syrk-GPU", "trsm-GPU"], &rows);
    r.line("");
    r.line("(GPU curves ramp much later than CPU — the shape of Fig. 4)");
    r
}

// --------------------------------------------------------------- exp_fig56

/// Figures 5 & 6: component timings and fractional timings vs total ops.
pub fn exp_fig56(cfg: &ExpConfig, cache: &mut Option<SuiteData>) -> Report {
    let mut r = Report::new("exp_fig56");
    let s = suite(cfg, cache);
    for (variant, pidx) in [("host CPU (P1)", 0usize), ("basic GPU (P3)", 2usize)] {
        r.section(&format!("{variant}: mean component time (µs) per ops decade"));
        let mut bins: Vec<(f64, Vec<[f64; 4]>)> =
            (3..12).map(|e| (10f64.powi(e), Vec::new())).collect();
        for m in &s.matrices {
            for rec in &m.stats[pidx].records {
                let ops = FuFlops::new(rec.m, rec.k).total();
                for (hi, v) in bins.iter_mut() {
                    if ops <= *hi {
                        v.push([rec.t_potrf, rec.t_trsm, rec.t_syrk, rec.t_copy]);
                        break;
                    }
                }
            }
        }
        let mut rows = Vec::new();
        for (hi, v) in &bins {
            if v.is_empty() {
                continue;
            }
            let n = v.len() as f64;
            let sum: [f64; 4] = v.iter().fold([0.0; 4], |mut a, x| {
                for i in 0..4 {
                    a[i] += x[i];
                }
                a
            });
            let total: f64 = sum.iter().sum();
            rows.push(vec![
                format!("≤{hi:.0e}"),
                v.len().to_string(),
                format!("{:.1}", sum[0] / n * 1e6),
                format!("{:.1}", sum[1] / n * 1e6),
                format!("{:.1}", sum[2] / n * 1e6),
                format!("{:.1}", sum[3] / n * 1e6),
                format!(
                    "{:.0}/{:.0}/{:.0}/{:.0}",
                    100.0 * sum[0] / total.max(1e-300),
                    100.0 * sum[1] / total.max(1e-300),
                    100.0 * sum[2] / total.max(1e-300),
                    100.0 * sum[3] / total.max(1e-300)
                ),
            ]);
        }
        r.table(&["ops bin", "calls", "potrf", "trsm", "syrk", "copy", "%frac p/t/s/c"], &rows);
    }
    r
}

// -------------------------------------------------------------- exp_table4

/// Table IV: total potrf time and its share of the three variants.
pub fn exp_table4(cfg: &ExpConfig, cache: &mut Option<SuiteData>) -> Report {
    let mut r = Report::new("exp_table4");
    let s = suite(cfg, cache);
    r.section("potrf totals and share of all F-U time (cf. paper Table IV)");
    let mut rows = Vec::new();
    for m in &s.matrices {
        let potrf_cpu: f64 = m.stats[0].records.iter().map(|x| x.t_potrf).sum();
        let host_total: f64 = m.stats[0].records.iter().map(|x| x.total).sum();
        let gpu_total_w: f64 = m.stats[2].records.iter().map(|x| x.total).sum();
        let gpu_total_wo: f64 =
            m.stats[2].records.iter().map(|x| (x.total - x.t_copy).max(0.0)).sum();
        let potrf_gpu_run: f64 = m.stats[2].records.iter().map(|x| x.t_potrf).sum();
        rows.push(vec![
            m.name().to_string(),
            fmt_time(potrf_cpu),
            format!("{:.2}", 100.0 * potrf_cpu / host_total),
            format!("{:.2}", 100.0 * potrf_gpu_run / gpu_total_wo),
            format!("{:.2}", 100.0 * potrf_gpu_run / gpu_total_w),
        ]);
    }
    r.table(&["matrix", "potrf time", "%Host", "%GPU w/o copy", "%GPU w/ copy"], &rows);
    r.line("");
    r.line("paper: %Host 5–8, %GPU w/o copy 40–56, %GPU w/ copy 24–46");
    // Root-heavy concentration of potrf time.
    r.section("potrf concentration near the root (paper: top-10 calls ≈ 96 % for kyushu)");
    for m in &s.matrices {
        let mut p: Vec<f64> = m.stats[0].records.iter().map(|x| x.t_potrf).collect();
        p.sort_by(|a, b| b.total_cmp(a));
        let total: f64 = p.iter().sum();
        let top10: f64 = p.iter().take(10).sum();
        r.line(&format!(
            "{}: top-10 potrf calls hold {:.1} % of potrf time",
            m.name(),
            100.0 * top10 / total.max(1e-300)
        ));
    }
    r
}

// ---------------------------------------------------------------- exp_fig7/8

/// Figures 7 & 8: per-kernel CPU/GPU rate curves with transition points.
pub fn exp_fig78(_cfg: &ExpConfig, _cache: &mut Option<SuiteData>) -> Report {
    let mut r = Report::new("exp_fig78");
    let cpu = xeon_5160_core();
    let gpu = tesla_t10();

    // trsm: shapes with m = 8k (typical panel aspect).
    r.section("Fig. 7 — trsm flop rate (GF/s), shapes m = 8k");
    let mut rows = Vec::new();
    let mut cross_wo = None;
    let mut cross_w = None;
    let mut prev: Option<(bool, bool)> = None;
    for i in 0..60 {
        let ops = 10f64.powf(3.0 + i as f64 * 0.15);
        let k = (ops / 8.0).powf(1.0 / 3.0);
        let m = 8.0 * k;
        let t_cpu = cpu.kernels.trsm.time(ops);
        let t_gpu = gpu.kernels.trsm.time(ops);
        let bytes = (4.0 * (k * k + 2.0 * m * k)) as usize;
        let t_gpu_w = t_gpu + gpu.pcie.time(bytes, false);
        let state = (t_gpu < t_cpu, t_gpu_w < t_cpu);
        if let Some(p) = prev {
            if state.0 != p.0 && cross_wo.is_none() {
                cross_wo = Some(ops);
            }
            if state.1 != p.1 && cross_w.is_none() {
                cross_w = Some(ops);
            }
        }
        prev = Some(state);
        if i % 6 == 0 {
            rows.push(vec![
                format!("{ops:.1e}"),
                fmt_gf(ops / t_cpu),
                fmt_gf(ops / t_gpu_w),
                fmt_gf(ops / t_gpu),
            ]);
        }
    }
    r.table(&["ops", "CPU", "GPU w/ copy", "GPU w/o copy"], &rows);
    r.line(&format!(
        "transition points: w/o copy ≈ {:.1e} (paper ~4e5), w/ copy ≈ {:.1e} (paper ~3e6)",
        cross_wo.unwrap_or(f64::NAN),
        cross_w.unwrap_or(f64::NAN)
    ));

    // syrk: shapes n × k with k = n/4.
    r.section("Fig. 8 — syrk flop rate (GF/s), shapes k = n/4");
    let mut rows = Vec::new();
    let mut cross_wo = None;
    let mut prev: Option<bool> = None;
    for i in 0..60 {
        let ops = 10f64.powf(3.0 + i as f64 * 0.15);
        // ops = n²k with k = n/4 ⇒ n = (4·ops)^(1/3)
        let n = (4.0 * ops).powf(1.0 / 3.0);
        let t_cpu = cpu.kernels.syrk.time(ops);
        let t_gpu = gpu.kernels.syrk.time(ops);
        let bytes = (4.0 * n * n) as usize;
        let t_gpu_w = t_gpu + gpu.pcie.time(bytes, false);
        if let Some(p) = prev {
            if (t_gpu < t_cpu) != p && cross_wo.is_none() {
                cross_wo = Some(ops);
            }
        }
        prev = Some(t_gpu < t_cpu);
        if i % 6 == 0 {
            rows.push(vec![
                format!("{ops:.1e}"),
                fmt_gf(ops / t_cpu),
                fmt_gf(ops / t_gpu_w),
                fmt_gf(ops / t_gpu),
            ]);
        }
    }
    r.table(&["ops", "CPU", "GPU w/ copy", "GPU w/o copy"], &rows);
    r.line(&format!("transition w/o copy ≈ {:.1e} (paper ~1.5e5)", cross_wo.unwrap_or(f64::NAN)));
    // The ambiguous with-copy band: winner depends on aspect ratio.
    let ops = 3.0e6;
    let t_cpu = cpu.kernels.syrk.time(ops);
    let thin = {
        let n = (ops / 8.0).sqrt();
        gpu.kernels.syrk.time(ops) + gpu.pcie.time((4.0 * n * n) as usize, false)
    };
    let fat = {
        let n = (ops / 128.0).sqrt();
        gpu.kernels.syrk.time(ops) + gpu.pcie.time((4.0 * n * n) as usize, false)
    };
    r.line(&format!(
        "w/ copy at 3e6 ops: CPU {} | GPU thin-k {} | GPU fat-k {}  (no clear winner in 1e6–1e7, as in the paper)",
        fmt_time(t_cpu),
        fmt_time(thin),
        fmt_time(fat)
    ));
    r
}

// -------------------------------------------------------------- exp_table5

/// Table V: potrf-on-GPU (panel algorithm) speedup at root fronts (m = 0).
pub fn exp_table5(cfg: &ExpConfig, cache: &mut Option<SuiteData>) -> Report {
    let mut r = Report::new("exp_table5");
    let s = suite(cfg, cache);
    let mut machine = Machine::paper_node();
    r.section("root-front potrf (m = 0): CPU vs GPU panel algorithm (cf. Table V)");
    let mut rows = Vec::new();
    for m in &s.matrices {
        // Largest m = 0 front of the matrix (the elimination-tree root).
        let k = m
            .analysis
            .symbolic
            .supernodes
            .iter()
            .filter(|sn| sn.m() == 0)
            .map(|sn| sn.k())
            .max()
            .unwrap_or(0);
        let ops = exact_ops(KernelKind::Potrf, 0, k, 0);
        let t_cpu = estimate_fu_time(&mut machine, 0, k, PolicyKind::P1, 64, false);
        let t_gpu = estimate_fu_time(&mut machine, 0, k, PolicyKind::P4, 64, false);
        rows.push(vec![
            m.name().to_string(),
            k.to_string(),
            fmt_gf(ops / t_cpu),
            fmt_gf(ops / t_gpu),
            format!("{:.2}", t_cpu / t_gpu),
        ]);
    }
    r.table(&["matrix", "k (m=0)", "CPU GF/s", "GPU GF/s", "speedup"], &rows);
    r.line("");
    r.line("paper: CPU ~9 GF/s, GPU 68–124 GF/s, speedup 7.7–13.1");
    r
}

// ------------------------------------------------------------- exp_fig1011

/// Figures 10 & 11: flop rate and speedup of P1–P4 vs total ops.
pub fn exp_fig1011(_cfg: &ExpConfig, _cache: &mut Option<SuiteData>) -> Report {
    let mut r = Report::new("exp_fig1011");
    let mut machine = Machine::paper_node();
    r.section("per-policy F-U flop rate (GF/s) and speedup vs P1, shapes m = 4k");
    let mut rows = Vec::new();
    let mut best_switches: Vec<(f64, PolicyKind)> = Vec::new();
    let mut last_best = None;
    for i in 0..40 {
        let ops = 10f64.powf(4.0 + i as f64 * 0.2);
        // ops ≈ k³/3 + 4k·k² + 16k²·k = k³(1/3 + 4 + 16) ⇒ k = (ops/20.33)^(1/3)
        let k = ((ops / 20.33).powf(1.0 / 3.0)).max(1.0) as usize;
        let m = 4 * k;
        let t: Vec<f64> = PolicyKind::ALL
            .iter()
            .map(|&p| estimate_fu_time(&mut machine, m, k, p, 64, false))
            .collect();
        let actual_ops = FuFlops::new(m, k).total();
        let best = PolicyKind::from_index((0..4).min_by(|&a, &b| t[a].total_cmp(&t[b])).unwrap());
        if last_best != Some(best) {
            best_switches.push((actual_ops, best));
            last_best = Some(best);
        }
        if i % 4 == 0 {
            rows.push(vec![
                format!("{actual_ops:.1e}"),
                fmt_gf(actual_ops / t[0]),
                fmt_gf(actual_ops / t[1]),
                fmt_gf(actual_ops / t[2]),
                fmt_gf(actual_ops / t[3]),
                format!("{:.2}", t[0] / t[1]),
                format!("{:.2}", t[0] / t[2]),
                format!("{:.2}", t[0] / t[3]),
            ]);
        }
    }
    r.table(&["ops", "P1 GF", "P2 GF", "P3 GF", "P4 GF", "×P2", "×P3", "×P4"], &rows);
    r.section("best-policy transitions along the sweep (basis of the baseline hybrid)");
    for (ops, p) in &best_switches {
        r.line(&format!("  {p} from ≈ {ops:.2e} ops"));
    }
    let fitted = fitted_baseline(&mut machine);
    r.line(&format!(
        "fitted thresholds (ours): P1 < {:.1e} ≤ P2 < {:.1e} ≤ P3 < {:.1e} ≤ P4",
        fitted.t12, fitted.t23, fitted.t34
    ));
    r.line("");
    r.line("paper: P1 < 2e6 < P2 < 1.5e7 < P3 < 9e10 < P4");
    r
}

// ------------------------------------------------------------- exp_fig1213

/// Figures 12 & 13: ideal / model / baseline policy maps.
pub fn exp_fig1213(cfg: &ExpConfig, cache: &mut Option<SuiteData>) -> Report {
    let mut r = Report::new("exp_fig1213");
    let s = suite(cfg, cache);
    let mut machine = Machine::paper_node();
    for (title, cell, cells) in [
        ("Fig. 12 — 0 ≤ m,k ≤ 1000", 1000 / 25, 25usize),
        ("Fig. 13 — 0 ≤ m,k ≤ 10000", 10_000 / 25, 25usize),
    ] {
        let grid = TimeGrid::compute(&mut machine, cell, cells, false);
        let ideal = grid.ideal_map();
        let model = grid.model_map(&s.model);
        let fitted = fitted_baseline(&mut machine);
        let baseline = grid.baseline_map(&fitted);
        r.section(&format!("{title} — ideal map"));
        r.line(&render_map(&ideal));
        r.section(&format!("{title} — model map"));
        r.line(&render_map(&model));
        r.section(&format!("{title} — baseline map"));
        r.line(&render_map(&baseline));
        r.line(&format!(
            "agreement with ideal: model {:.1} %, baseline {:.1} %",
            100.0 * map_agreement(&ideal, &model),
            100.0 * map_agreement(&ideal, &baseline)
        ));
        r.line(&format!(
            "density-weighted expected time: ideal {:.3e}, model {:.3e}, baseline {:.3e}",
            grid.weighted_time(&ideal),
            grid.weighted_time(&model),
            grid.weighted_time(&baseline)
        ));
    }
    r
}

// --------------------------------------------------------------- exp_fig14

/// Figure 14: speedup (vs P1) heatmaps of the three hybrids.
pub fn exp_fig14(cfg: &ExpConfig, cache: &mut Option<SuiteData>) -> Report {
    let mut r = Report::new("exp_fig14");
    let s = suite(cfg, cache);
    let mut machine = Machine::paper_node();
    let cells = 20usize;
    let cell = 10_000 / cells;
    let grid = TimeGrid::compute(&mut machine, cell, cells, false);
    let fitted = fitted_baseline(&mut machine);
    let maps = [
        ("ideal", grid.ideal_map()),
        ("model", grid.model_map(&s.model)),
        ("baseline", grid.baseline_map(&fitted)),
    ];
    for (name, map) in &maps {
        let sp = grid.speedup_map(map);
        r.section(&format!("{name} hybrid — speedup vs P1 per (m,k) cell"));
        for ik in (0..cells).rev() {
            let mut line = format!("k≈{:>5} |", ik * cell + cell / 2);
            for row in sp.iter().take(cells) {
                line.push_str(&format!(" {:4.1}", row[ik]));
            }
            r.line(&line);
        }
        r.line("          (m grows →)");
        let max = sp.iter().flatten().fold(0.0f64, |a, &b| a.max(b));
        r.line(&format!("max speedup {max:.1}× (paper: 12–13× at the largest fronts)"));
    }
    r
}

// -------------------------------------------------------------- exp_table7

/// Table VII: end-to-end factorization speedups, every column.
pub fn exp_table7(cfg: &ExpConfig, cache: &mut Option<SuiteData>) -> Report {
    let mut r = Report::new("exp_table7");
    let s = suite(cfg, cache);
    r.section("speedup w.r.t. single-thread CPU factorization (cf. paper Table VII)");
    let mut rows = Vec::new();
    // Copy-optimized model: retrain on copy-optimized P4 timings.
    for m in &s.matrices {
        let t1 = m.t_serial();
        let sp = |t: f64| format!("{:.2}", t1 / t);

        let t2 = m.stats[1].total_time;
        let t3 = m.stats[2].total_time;
        let t4 = m.stats[3].total_time;
        let ideal = m.run_ideal().total_time;
        let model = m.run_with(PolicySelector::Model(s.model.clone()), false).total_time;
        let mut fit_machine = Machine::paper_node();
        let fitted = fitted_baseline(&mut fit_machine);
        let baseline = m.run_with(PolicySelector::Baseline(fitted), false).total_time;
        let baseline_paper_thr =
            m.run_with(PolicySelector::Baseline(BaselineThresholds::default()), false).total_time;

        // 4-thread CPU: list schedule of P1 per-supernode durations.
        let (d_by_sn, o_by_sn) = durations_by_supernode(&m.analysis.symbolic, &m.stats[0]);
        let sched4 = simulate_tree_schedule(
            &m.analysis.symbolic,
            &d_by_sn,
            &o_by_sn,
            4,
            Some(MoldableModel::default()),
        );

        // Copy-optimized single-GPU model hybrid.
        let co_stats: Vec<_> = {
            // Re-run P4 with copy optimization to rebuild the dataset column.
            let p4co = m.run_with(PolicySelector::Fixed(PolicyKind::P4), true);
            let runs = [&m.stats[0], &m.stats[1], &m.stats[2], &p4co];
            let ds = mf_autotune::Dataset::from_policy_runs(&runs);
            let co_model = train(&ds, &TrainOptions { iterations: 400, ..Default::default() });
            vec![
                m.run_with(PolicySelector::Model(co_model.clone()), true),
                // 2-GPU: schedule the copy-optimized model durations on two
                // GPU-equipped workers.
                m.run_with(PolicySelector::Model(co_model), true),
            ]
        };
        let co_1gpu = co_stats[0].total_time;
        let (d2, o2) = durations_by_supernode(&m.analysis.symbolic, &co_stats[1]);
        let sched2g = simulate_tree_schedule(
            &m.analysis.symbolic,
            &d2,
            &o2,
            2,
            Some(MoldableModel::default()),
        );

        // Real multi-device runs (not a schedule-model estimate): the
        // multi-GPU driver on 2 and 4 simulated devices under the model
        // hybrid, with peer-copy extend-add and cross-device look-ahead.
        let mg2 = m.run_multigpu(PolicySelector::Model(s.model.clone()), 2).total_time;
        let mg4 = m.run_multigpu(PolicySelector::Model(s.model.clone()), 4).total_time;

        rows.push(vec![
            m.name().to_string(),
            sp(t2),
            sp(t3),
            sp(t4),
            sp(ideal),
            sp(model),
            sp(baseline),
            sp(baseline_paper_thr),
            format!("{:.2}", sched4.speedup()),
            sp(co_1gpu),
            format!("{:.2}", t1 / sched2g.makespan),
            sp(mg2),
            sp(mg4),
        ]);
    }
    r.table(
        &[
            "matrix",
            "P2",
            "P3",
            "P4",
            "Ideal",
            "Model",
            "Baseline",
            "Base(paper-thr)",
            "4-Thread",
            "CO-1GPU",
            "CO-2GPU",
            "MG-2GPU",
            "MG-4GPU",
        ],
        &rows,
    );
    r.line("");
    r.line("paper ranges: P2 2.3–2.6 | P3 3.9–6.1 | P4 3.2–7.3 | Ideal 5.4–9.6 |");
    r.line("  Model 5.3–9.5 | Baseline 4.9–8.7 | 4-Thread 2.7–4.3 | CO-1GPU 5.9–9.9 | CO-2GPU 10.7–25.6");
    r.line("Baseline uses thresholds fitted to OUR calibration (the paper's method);");
    r.line("Base(paper-thr) shows the paper's literal 2e6/1.5e7/9e10 thresholds, which");
    r.line("encode their hardware's crossovers and never reach P4 at our scale.");
    r.line("CO-2GPU is the paper's estimate style (copy-optimized durations on a 2-worker");
    r.line("schedule model); MG-2GPU/MG-4GPU run the actual multi-GPU driver — proportional");
    r.line("subtree mapping, peer-copy extend-add, cross-device look-ahead (DESIGN.md §4.13).");

    // The columns above are all *simulated* quantities (virtual machine
    // clocks / schedule-model makespans). This section runs the real
    // work-stealing runtime and reports measured elapsed seconds — a
    // host-dependent number, bounded by the hardware thread count.
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    r.section(&format!(
        "measured wall-clock of the work-stealing runtime ({threads} hardware thread(s) on this host)"
    ));
    let mut wrows = Vec::new();
    for m in &s.matrices {
        let serial = m.measured_serial_wall();
        let mut row = vec![m.name().to_string(), format!("{:.1}", serial * 1e3)];
        for w in [2usize, 4] {
            let par = m.measured_parallel_wall(w);
            row.push(format!("{:.1} ({:.2}x)", par * 1e3, serial / par));
        }
        wrows.push(row);
    }
    r.table(&["matrix", "serial ms", "2 workers ms", "4 workers ms"], &wrows);
    r.line("measured speedups track the simulated 4-Thread column only when the host");
    r.line("has free hardware threads; on a single-core host they stay near 1x.");

    // GPU engine accounting: how busy the simulated device is under the
    // drain-per-front P4 driver vs the pipelined dispatch layer — makespan
    // alongside compute/copy utilization, per matrix.
    r.section("GPU utilization — drain-per-front vs pipelined dispatch (fixed P4)");
    let mut urows = Vec::new();
    for m in &s.matrices {
        let drain = m.run_with(PolicySelector::Fixed(PolicyKind::P4), false);
        let piped = m.run_pipelined(PolicySelector::Fixed(PolicyKind::P4), false);
        let (gd, gp) =
            (drain.gpu.expect("paper node has a GPU"), piped.gpu.expect("paper node has a GPU"));
        urows.push(vec![
            m.name().to_string(),
            format!("{:.2}", drain.total_time * 1e3),
            format!(
                "{:.0}%/{:.0}%",
                gd.compute_utilization() * 100.0,
                gd.copy_utilization() * 100.0
            ),
            format!("{:.2}", piped.total_time * 1e3),
            format!(
                "{:.0}%/{:.0}%",
                gp.compute_utilization() * 100.0,
                gp.copy_utilization() * 100.0
            ),
            format!("{:.2}", drain.total_time / piped.total_time),
        ]);
    }
    r.table(
        &["matrix", "drain ms", "drain cu/cp", "pipelined ms", "piped cu/cp", "speedup"],
        &urows,
    );
    r.line("cu/cp = compute / copy engine busy fraction of the makespan; the pipelined");
    r.line("driver keeps the factor bitwise identical while shrinking engine idle gaps.");

    // Intra-front tiled scheduling: the same recorded CPU (P1) run list-
    // scheduled at supernode granularity (tree-only — speedup plateaus at
    // the critical path through the root chain) vs expanded into per-tile
    // potrf/trsm/syrk/gemm tasks. Both schedulers use width-1 tasks so the
    // comparison isolates what granularity alone buys.
    r.section("tiled task DAG vs tree-only scheduling (CPU P1, simulated speedup vs serial)");
    let tiling = TilingOptions::tiled();
    let cpu = xeon_5160_core();
    let mut trows = Vec::new();
    for m in &s.matrices {
        let (d, o) = durations_by_supernode(&m.analysis.symbolic, &m.stats[0]);
        let mut row = vec![m.name().to_string()];
        for w in [2usize, 4, 8] {
            let tree = simulate_tree_schedule(&m.analysis.symbolic, &d, &o, w, None);
            let tiled =
                simulate_tiled_schedule(&m.analysis.symbolic, &m.stats[0], &tiling, &cpu, w);
            for sr in [&tree, &tiled] {
                assert!(
                    sr.critical_path <= sr.makespan * (1.0 + 1e-9)
                        && sr.makespan <= sr.serial_time * (1.0 + 1e-9),
                    "schedule invariant cp ≤ makespan ≤ serial violated on {} at w={w}",
                    m.name()
                );
            }
            row.push(format!("{:.2} / {:.2}", tree.speedup(), tiled.speedup()));
        }
        trows.push(row);
    }
    r.table(&["matrix", "w=2 tree/tiled", "w=4 tree/tiled", "w=8 tree/tiled"], &trows);
    r.line("the tile DAG keeps workers busy inside the large root fronts where the");
    r.line("tree-only schedule has a single task left (DESIGN.md §4.10).");

    // A real 4-worker run through the work-stealing driver with tiling on:
    // per-task records at tile granularity keep per-worker accounting
    // truthful when several workers cooperate inside one front.
    r.section("work-stealing runtime @ 4 workers, tiled (fixed P1) — per-task accounting");
    let mut urows2 = Vec::new();
    for m in &s.matrices {
        let st = m.run_parallel_tiled(4);
        let mut busy = [0.0f64; 4];
        let (mut tiles, mut wholes) = (0usize, 0usize);
        for t in &st.tasks {
            busy[t.worker] += t.duration;
            match t.kind {
                TaskKind::Potrf | TaskKind::Trsm | TaskKind::Syrk | TaskKind::Gemm => tiles += 1,
                TaskKind::Whole => wholes += 1,
                TaskKind::Assemble | TaskKind::Extract => {}
            }
        }
        let total: f64 = busy.iter().sum();
        let max = busy.iter().fold(0.0f64, |a, &b| a.max(b));
        urows2.push(vec![
            m.name().to_string(),
            wholes.to_string(),
            tiles.to_string(),
            format!("{:.2}", max * 1e3),
            format!("{:.0}%", 100.0 * total / (4.0 * max.max(1e-300))),
        ]);
    }
    r.table(&["matrix", "whole tasks", "tile tasks", "max-worker ms", "balance"], &urows2);
    r.line("balance = Σ per-worker busy / (4 × max worker busy) over the per-task records;");
    r.line("100 % means perfectly even simulated kernel load across the four workers.");
    r
}

// -------------------------------------------------------- exp_tile_ablation

/// §V-A3: tuning BLAS tile parameters gains little.
pub fn exp_tile_ablation(_cfg: &ExpConfig, _cache: &mut Option<SuiteData>) -> Report {
    let mut r = Report::new("exp_tile_ablation");
    r.section("GPU tile-size sensitivity of a large syrk (paper: < 0.5 % over 17 configs)");
    let mut rows = Vec::new();
    let base = {
        let gpu = tesla_t10();
        let eff = gpu.effective_ops(KernelKind::Syrk, 0, 4000, 500);
        gpu.kernels.syrk.time(eff)
    };
    for tile in [8usize, 16, 32, 64, 96, 128] {
        let mut gpu = tesla_t10();
        gpu.tile = tile;
        let eff = gpu.effective_ops(KernelKind::Syrk, 0, 4000, 500);
        let t = gpu.kernels.syrk.time(eff);
        rows.push(vec![
            tile.to_string(),
            fmt_time(t),
            format!("{:+.2}", 100.0 * (t - base) / base),
        ]);
    }
    r.table(&["tile", "syrk(4000,500)", "% vs tile=32"], &rows);
    r
}

// ------------------------------------------------------------ exp_ablations

/// Design-choice ablations beyond the paper's tables.
pub fn exp_ablations(cfg: &ExpConfig, cache: &mut Option<SuiteData>) -> Report {
    let mut r = Report::new("exp_ablations");
    let s = suite(cfg, cache);
    let m = &s.matrices[0];

    r.section("pinned-buffer reuse (§V-A2) vs allocate-per-call");
    let with_reuse = m.run_with(PolicySelector::Fixed(PolicyKind::P3), false);
    let no_reuse = {
        let mut machine = Machine::paper_node();
        let a32: mf_sparse::SymCsc<f32> = m.analysis.permuted.0.cast();
        let opts = mf_core::FactorOptions {
            selector: PolicySelector::Fixed(PolicyKind::P3),
            pinned_reuse: false,
            record_stats: true,
            ..Default::default()
        };
        let (_, st) = mf_core::factor_permuted(
            &a32,
            &m.analysis.symbolic,
            &m.analysis.perm,
            &mut machine,
            &opts,
        )
        .unwrap();
        st
    };
    r.line(&format!(
        "P3 on {}: reuse {} vs allocate-per-call {} ({:.2}× slower without reuse)",
        m.name(),
        fmt_time(with_reuse.total_time),
        fmt_time(no_reuse.total_time),
        no_reuse.total_time / with_reuse.total_time
    ));

    r.section("cost-sensitive (Eq. 3) vs cross-entropy training");
    let ce_model = train(
        &s.merged,
        &TrainOptions { objective: Objective::CrossEntropy, iterations: 800, ..Default::default() },
    );
    let t_ec = s.merged.predictor_time(|mm, kk| s.model.predict(mm, kk));
    let t_ce = s.merged.predictor_time(|mm, kk| ce_model.predict(mm, kk));
    let t_id = s.merged.ideal_time();
    r.line(&format!(
        "dataset expected time: ideal {}, expected-cost {} ({:+.1} % vs ideal), cross-entropy {} ({:+.1} %)",
        fmt_time(t_id),
        fmt_time(t_ec),
        100.0 * (t_ec / t_id - 1.0),
        fmt_time(t_ce),
        100.0 * (t_ce / t_id - 1.0)
    ));

    r.section("feature ablation: ops-threshold only vs full feature vector");
    let best_threshold = {
        // Fit a single P1→P3 switch by sweep (1-D baseline-style selector).
        let mut best = (f64::INFINITY, 0.0);
        for e in 0..60 {
            let thr = 10f64.powf(3.0 + e as f64 * 0.15);
            let t = s.merged.predictor_time(|mm, kk| {
                if FuFlops::new(mm, kk).total() < thr {
                    PolicyKind::P1
                } else {
                    PolicyKind::P3
                }
            });
            if t < best.0 {
                best = (t, thr);
            }
        }
        best
    };
    r.line(&format!(
        "best single threshold (P1/P3 at {:.1e} ops): {} vs model {} — model {:+.1} % better",
        best_threshold.1,
        fmt_time(best_threshold.0),
        fmt_time(t_ec),
        100.0 * (1.0 - t_ec / best_threshold.0)
    ));

    r.section("adaptation to a different device (Fermi-like preset)");
    let mut fermi = Machine::with_gpu(xeon_5160_core(), fermi_like());
    let mut t10 = Machine::paper_node();
    let grid_f = TimeGrid::compute(&mut fermi, 50, 12, false);
    let grid_t = TimeGrid::compute(&mut t10, 50, 12, false);
    let ideal_f = grid_f.ideal_map();
    let ideal_t = grid_t.ideal_map();
    let moved = 1.0 - map_agreement(&ideal_f, &ideal_t);
    r.line(&format!(
        "ideal policy map changes on {:.1} % of cells when swapping T10 → Fermi-like — \
         retraining adapts automatically (the paper's portability claim)",
        100.0 * moved
    ));

    r.section("supernode amalgamation on/off");
    {
        let a = &m.a;
        let plain =
            mf_sparse::symbolic::analyze(a, mf_sparse::OrderingKind::NestedDissection, None)
                .unwrap();
        let amal = &m.analysis;
        r.line(&format!(
            "supernodes: {} (fundamental) → {} (amalgamated); factor nnz {} → {}",
            plain.symbolic.num_supernodes(),
            amal.symbolic.num_supernodes(),
            plain.symbolic.factor_nnz(),
            amal.symbolic.factor_nnz()
        ));
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cheap_experiments_produce_reports() {
        let cfg = ExpConfig::test_small();
        let mut cache = None;
        for f in [exp_table3, exp_fig4, exp_fig78, exp_tile_ablation] {
            let rep = f(&cfg, &mut cache);
            assert!(rep.text().len() > 100);
        }
    }

    #[test]
    fn fig78_reports_transitions_near_paper_values() {
        let cfg = ExpConfig::test_small();
        let mut cache = None;
        let rep = exp_fig78(&cfg, &mut cache);
        assert!(rep.text().contains("transition"));
    }
}
