//! Policy maps and speedup maps over the `(m, k)` plane (Figures 12–14).
//!
//! Uses `mf_core::estimate_fu_time` (timing-only execution of the real
//! policy code paths on a virtual device) to evaluate every cell — the
//! ranges go to `m = k = 10000`, far beyond feasible real numerics.

use mf_core::{estimate_fu_time, BaselineThresholds, LinearPolicyModel, PolicyKind};
use mf_dense::FuFlops;
use mf_gpusim::Machine;

/// A grid of per-policy time estimates over the `(m, k)` plane.
pub struct TimeGrid {
    /// Cell width in matrix-dimension units.
    pub cell: usize,
    /// Number of cells per axis.
    pub cells: usize,
    /// `times[im][ik][policy]`, seconds, at the cell-centre dims.
    pub times: Vec<Vec<[f64; 4]>>,
}

impl TimeGrid {
    /// Evaluate the grid with cell centres `(im·cell + cell/2, ik·cell +
    /// cell/2)` for `im, ik` in `0..cells`.
    pub fn compute(machine: &mut Machine, cell: usize, cells: usize, copy_optimized: bool) -> Self {
        let mut times = vec![vec![[0.0f64; 4]; cells]; cells];
        for (im, row) in times.iter_mut().enumerate() {
            let m = im * cell + cell / 2;
            for (ik, entry) in row.iter_mut().enumerate() {
                let k = (ik * cell + cell / 2).max(1);
                for p in PolicyKind::ALL {
                    entry[p.index()] = estimate_fu_time(machine, m, k, p, 64, copy_optimized);
                }
            }
        }
        TimeGrid { cell, cells, times }
    }

    /// Best policy per cell (the ideal map of Fig. 12(a)/13(a)).
    pub fn ideal_map(&self) -> Vec<Vec<PolicyKind>> {
        self.times
            .iter()
            .map(|row| {
                row.iter()
                    .map(|t| {
                        let mut b = 0;
                        for j in 1..4 {
                            if t[j] < t[b] {
                                b = j;
                            }
                        }
                        PolicyKind::from_index(b)
                    })
                    .collect()
            })
            .collect()
    }

    /// Map from a trained model (Fig. 12(b)/13(b)).
    pub fn model_map(&self, model: &LinearPolicyModel) -> Vec<Vec<PolicyKind>> {
        (0..self.cells)
            .map(|im| {
                let m = im * self.cell + self.cell / 2;
                (0..self.cells)
                    .map(|ik| {
                        let k = (ik * self.cell + self.cell / 2).max(1);
                        model.predict(m, k)
                    })
                    .collect()
            })
            .collect()
    }

    /// Map from op-count thresholds (Fig. 12(c)/13(c)).
    pub fn baseline_map(&self, thresholds: &BaselineThresholds) -> Vec<Vec<PolicyKind>> {
        (0..self.cells)
            .map(|im| {
                let m = im * self.cell + self.cell / 2;
                (0..self.cells)
                    .map(|ik| {
                        let k = (ik * self.cell + self.cell / 2).max(1);
                        thresholds.choose(FuFlops::new(m, k).total())
                    })
                    .collect()
            })
            .collect()
    }

    /// Speedup of a policy map relative to P1 per cell (Fig. 14).
    pub fn speedup_map(&self, map: &[Vec<PolicyKind>]) -> Vec<Vec<f64>> {
        self.times
            .iter()
            .zip(map)
            .map(|(trow, mrow)| trow.iter().zip(mrow).map(|(t, p)| t[0] / t[p.index()]).collect())
            .collect()
    }

    /// Expected total time of a map under a call-density weighting that
    /// mimics the real front distribution (many small, few large).
    pub fn weighted_time(&self, map: &[Vec<PolicyKind>]) -> f64 {
        let mut total = 0.0;
        for (im, row) in self.times.iter().enumerate() {
            let m = (im * self.cell + self.cell / 2) as f64;
            for (ik, t) in row.iter().enumerate() {
                let k = (ik * self.cell + self.cell / 2) as f64;
                // Density ∝ 1/(m·k): small fronts vastly outnumber large.
                let w = 1.0 / ((1.0 + m) * (1.0 + k));
                total += w * t[map[im][ik].index()];
            }
        }
        total
    }
}

/// Render a policy map as ASCII (rows = k descending, cols = m ascending) —
/// the textual analogue of Figures 12/13.
pub fn render_map(map: &[Vec<PolicyKind>]) -> String {
    let cells = map.len();
    let mut out = String::new();
    for ik in (0..cells).rev() {
        out.push_str("k| ");
        for row in map.iter().take(cells) {
            let c = match row[ik] {
                PolicyKind::P1 => '1',
                PolicyKind::P2 => '2',
                PolicyKind::P3 => '3',
                PolicyKind::P4 => '4',
            };
            out.push(c);
        }
        out.push('\n');
    }
    out.push_str("   ");
    for _ in 0..cells {
        out.push('-');
    }
    out.push_str("> m\n");
    out
}

/// Fraction of cells on which two maps agree.
pub fn map_agreement(a: &[Vec<PolicyKind>], b: &[Vec<PolicyKind>]) -> f64 {
    let mut same = 0usize;
    let mut total = 0usize;
    for (ra, rb) in a.iter().zip(b) {
        for (ca, cb) in ra.iter().zip(rb) {
            total += 1;
            if ca == cb {
                same += 1;
            }
        }
    }
    same as f64 / total.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_structure_and_small_cells_prefer_p1() {
        let mut machine = Machine::paper_node();
        let g = TimeGrid::compute(&mut machine, 100, 6, false);
        let ideal = g.ideal_map();
        assert_eq!(ideal.len(), 6);
        // The smallest cell (m=50, k=50) must prefer the CPU.
        assert_eq!(ideal[0][0], PolicyKind::P1);
        // The largest cell must prefer a GPU policy.
        assert_ne!(ideal[5][5], PolicyKind::P1);
    }

    #[test]
    fn speedup_of_p1_cells_is_one() {
        let mut machine = Machine::paper_node();
        let g = TimeGrid::compute(&mut machine, 100, 4, false);
        let ideal = g.ideal_map();
        let sp = g.speedup_map(&ideal);
        for (im, row) in ideal.iter().enumerate() {
            for (ik, p) in row.iter().enumerate() {
                if *p == PolicyKind::P1 {
                    assert!((sp[im][ik] - 1.0).abs() < 1e-12);
                } else {
                    assert!(sp[im][ik] >= 1.0);
                }
            }
        }
    }

    #[test]
    fn render_produces_one_row_per_cell() {
        let map = vec![vec![PolicyKind::P1; 3]; 3];
        let r = render_map(&map);
        assert_eq!(r.lines().count(), 4);
        assert!(r.contains("111"));
    }

    #[test]
    fn agreement_metric() {
        let a = vec![vec![PolicyKind::P1, PolicyKind::P2]];
        let b = vec![vec![PolicyKind::P1, PolicyKind::P3]];
        assert!((map_agreement(&a, &b) - 0.5).abs() < 1e-12);
    }
}
