//! Shared experiment pipeline: factor the matrix suite under every policy,
//! build the timing dataset, train the model hybrid — the data every
//! figure/table binary consumes.

use crate::config::ExpConfig;
use mf_autotune::{train, Dataset, TrainOptions};
use mf_core::{
    factor_permuted, factor_permuted_parallel, BaselineThresholds, FactorOptions, FactorStats,
    LinearPolicyModel, ParallelOptions, PolicyKind, PolicySelector, TilingOptions,
};
use mf_gpusim::Machine;
use mf_matgen::paper::{paper_suite, PaperMatrix};
use mf_sparse::symbolic::{analyze, Analysis};
use mf_sparse::{AmalgamationOptions, OrderingKind, SymCsc};

/// One matrix with its analysis and per-policy factorization statistics.
pub struct MatrixRuns {
    /// Paper matrix this stands in for.
    pub which: PaperMatrix,
    /// The matrix (original ordering, f64 values).
    pub a: SymCsc<f64>,
    /// Ordering + symbolic factorization.
    pub analysis: Analysis,
    /// Per-policy stats from single-precision runs (index = policy index).
    pub stats: [FactorStats; 4],
    /// Per-supernode timing dataset joined across the four runs.
    pub dataset: Dataset,
}

impl MatrixRuns {
    /// Display name.
    pub fn name(&self) -> &'static str {
        self.which.name()
    }

    /// Serial (P1) factorization time.
    pub fn t_serial(&self) -> f64 {
        self.stats[0].total_time
    }

    /// Run the factorization once more under an arbitrary selector,
    /// returning its stats. Uses a fresh paper-node machine.
    pub fn run_with(&self, selector: PolicySelector, copy_optimized: bool) -> FactorStats {
        let mut machine = Machine::paper_node();
        let a32: SymCsc<f32> = self.analysis.permuted.0.cast();
        let opts =
            FactorOptions { selector, copy_optimized, record_stats: true, ..Default::default() };
        let (_, stats) = factor_permuted(
            &a32,
            &self.analysis.symbolic,
            &self.analysis.perm,
            &mut machine,
            &opts,
        )
        .expect("suite matrices are SPD");
        stats
    }

    /// Ideal-hybrid stats (per-supernode oracle from the dataset).
    pub fn run_ideal(&self) -> FactorStats {
        self.run_with(PolicySelector::Oracle(self.dataset.oracle_table()), false)
    }

    /// Like [`Self::run_with`], but through the pipelined GPU dispatch
    /// driver (event-chained downloads, look-ahead uploads, batched small
    /// fronts) instead of the drain-per-front driver.
    pub fn run_pipelined(&self, selector: PolicySelector, copy_optimized: bool) -> FactorStats {
        let mut machine = Machine::paper_node();
        let a32: SymCsc<f32> = self.analysis.permuted.0.cast();
        let opts = FactorOptions {
            selector,
            copy_optimized,
            pipeline: mf_core::PipelineOptions::pipelined(),
            ..Default::default()
        };
        let (_, stats) = factor_permuted(
            &a32,
            &self.analysis.symbolic,
            &self.analysis.perm,
            &mut machine,
            &opts,
        )
        .expect("suite matrices are SPD");
        stats
    }

    /// Like [`Self::run_pipelined`], but across `ndev` simulated devices
    /// through the multi-GPU driver (proportional subtree mapping,
    /// peer-copy extend-add, cross-device look-ahead — DESIGN.md §4.13).
    pub fn run_multigpu(&self, selector: PolicySelector, ndev: usize) -> FactorStats {
        let mut machine = Machine::paper_node();
        let a32: SymCsc<f32> = self.analysis.permuted.0.cast();
        let opts = FactorOptions {
            selector,
            pipeline: mf_core::PipelineOptions::pipelined(),
            devices: mf_core::MultiGpuOptions::devices(ndev),
            ..Default::default()
        };
        let (_, stats) = factor_permuted(
            &a32,
            &self.analysis.symbolic,
            &self.analysis.perm,
            &mut machine,
            &opts,
        )
        .expect("suite matrices are SPD");
        stats
    }

    /// *Measured* wall-clock seconds of one serial baseline-hybrid
    /// factorization on this host — real elapsed time, not the simulated
    /// `total_time` the other columns report.
    pub fn measured_serial_wall(&self) -> f64 {
        let mut machine = Machine::paper_node();
        let a32: SymCsc<f32> = self.analysis.permuted.0.cast();
        let opts = FactorOptions {
            selector: PolicySelector::Baseline(BaselineThresholds::default()),
            ..Default::default()
        };
        let (_, stats) = factor_permuted(
            &a32,
            &self.analysis.symbolic,
            &self.analysis.perm,
            &mut machine,
            &opts,
        )
        .expect("suite matrices are SPD");
        stats.wall_time
    }

    /// CPU-only (fixed P1) run through the work-stealing parallel driver
    /// with per-task records on: large fronts expand into tiled
    /// `potrf`/`trsm`/`syrk`/`gemm` tasks, and `stats.tasks` carries one
    /// [`mf_core::TaskRecord`] per scheduled task — the data behind the
    /// tile-granular utilization table of `exp_table7`.
    pub fn run_parallel_tiled(&self, workers: usize) -> FactorStats {
        let mut machines: Vec<Machine> = (0..workers).map(|_| Machine::paper_node()).collect();
        let a32: SymCsc<f32> = self.analysis.permuted.0.cast();
        let opts = FactorOptions {
            selector: PolicySelector::Fixed(PolicyKind::P1),
            record_stats: true,
            tiling: TilingOptions::tiled(),
            ..Default::default()
        };
        let (_, stats) = factor_permuted_parallel(
            &a32,
            &self.analysis.symbolic,
            &self.analysis.perm,
            &mut machines,
            &opts,
            &ParallelOptions::default(),
        )
        .expect("suite matrices are SPD");
        stats
    }

    /// *Measured* wall-clock seconds of the real work-stealing parallel
    /// driver at `workers` tree-level workers (same baseline-hybrid
    /// configuration as [`Self::measured_serial_wall`]).
    pub fn measured_parallel_wall(&self, workers: usize) -> f64 {
        let mut machines: Vec<Machine> = (0..workers).map(|_| Machine::paper_node()).collect();
        let a32: SymCsc<f32> = self.analysis.permuted.0.cast();
        let opts = FactorOptions {
            selector: PolicySelector::Baseline(BaselineThresholds::default()),
            ..Default::default()
        };
        let (_, stats) = factor_permuted_parallel(
            &a32,
            &self.analysis.symbolic,
            &self.analysis.perm,
            &mut machines,
            &opts,
            &ParallelOptions::default(),
        )
        .expect("suite matrices are SPD");
        stats.wall_time
    }
}

/// The full suite plus the trained model.
pub struct SuiteData {
    /// Per-matrix runs.
    pub matrices: Vec<MatrixRuns>,
    /// All datasets merged.
    pub merged: Dataset,
    /// The cost-sensitive model trained on the merged dataset.
    pub model: LinearPolicyModel,
}

/// Factor one matrix under all four fixed policies (f32, stats recorded).
pub fn run_all_policies(analysis: &Analysis) -> [FactorStats; 4] {
    let a32: SymCsc<f32> = analysis.permuted.0.cast();
    let mut out: Vec<FactorStats> = Vec::with_capacity(4);
    for p in PolicyKind::ALL {
        let mut machine = Machine::paper_node();
        let opts = FactorOptions {
            selector: PolicySelector::Fixed(p),
            record_stats: true,
            ..Default::default()
        };
        let (_, stats) =
            factor_permuted(&a32, &analysis.symbolic, &analysis.perm, &mut machine, &opts)
                .expect("suite matrices are SPD");
        out.push(stats);
    }
    out.try_into().expect("exactly four runs")
}

impl SuiteData {
    /// Build the suite: generate matrices, analyze, run all policies, train.
    pub fn build(cfg: &ExpConfig) -> SuiteData {
        Self::build_subset(cfg, &PaperMatrix::ALL)
    }

    /// Build a subset of the suite (for quicker single-experiment runs).
    pub fn build_subset(cfg: &ExpConfig, which: &[PaperMatrix]) -> SuiteData {
        let all = paper_suite(cfg.scale);
        let mut matrices = Vec::new();
        for (pm, a) in all {
            if !which.contains(&pm) {
                continue;
            }
            eprintln!(
                "[suite] {}: N = {}, NNZ = {} (scale {})",
                pm.name(),
                a.order(),
                a.nnz_lower(),
                cfg.scale
            );
            let analysis =
                analyze(&a, OrderingKind::NestedDissection, Some(&AmalgamationOptions::default()))
                    .unwrap();
            let stats = run_all_policies(&analysis);
            let dataset = Dataset::from_policy_runs(&[&stats[0], &stats[1], &stats[2], &stats[3]]);
            matrices.push(MatrixRuns { which: pm, a, analysis, stats, dataset });
        }
        let merged = Dataset::merge(matrices.iter().map(|m| m.dataset.clone()));
        let train_opts =
            TrainOptions { iterations: if cfg.quick { 400 } else { 1200 }, ..Default::default() };
        let model = train(&merged, &train_opts);
        SuiteData { matrices, merged, model }
    }

    /// The default baseline hybrid thresholds.
    pub fn baseline(&self) -> BaselineThresholds {
        BaselineThresholds::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_suite_builds_and_policies_differ() {
        let cfg = ExpConfig::test_small();
        let suite = SuiteData::build_subset(&cfg, &[PaperMatrix::Kyushu]);
        assert_eq!(suite.matrices.len(), 1);
        let m = &suite.matrices[0];
        // All four runs cover the same supernodes.
        let n = m.stats[0].records.len();
        assert!(n > 10);
        for s in &m.stats {
            assert_eq!(s.records.len(), n);
        }
        // P1 and P4 must differ in total time.
        assert!(m.stats[0].total_time != m.stats[3].total_time);
        assert_eq!(m.dataset.len(), n);
    }

    #[test]
    fn paper_stand_ins_have_pairwise_distinct_fingerprints() {
        // Guards against grid-size rounding collisions (audikw_1 and
        // nastran-b once collapsed to the same 7³ elasticity grid at the
        // default bench scale, producing byte-identical BENCH rows).
        for scale in [ExpConfig::test_small().scale, 0.3, 0.5, 1.0] {
            let suite = paper_suite(scale);
            for i in 0..suite.len() {
                for j in i + 1..suite.len() {
                    assert_ne!(
                        suite[i].1.fingerprint(),
                        suite[j].1.fingerprint(),
                        "{} and {} share a fingerprint at scale {scale}",
                        suite[i].0.name(),
                        suite[j].0.name()
                    );
                }
            }
        }
    }

    #[test]
    fn hybrid_run_beats_worst_fixed_policy() {
        let cfg = ExpConfig::test_small();
        let suite = SuiteData::build_subset(&cfg, &[PaperMatrix::Kyushu]);
        let m = &suite.matrices[0];
        let ideal = m.run_ideal();
        let worst = m.stats.iter().map(|s| s.total_time).fold(0.0f64, f64::max);
        assert!(ideal.total_time <= worst);
    }
}
