//! Integration tests for the multi-tenant solver service.
//!
//! The headline test is `concurrent_multi_tenant_bitwise_identical`: N
//! threads submit a mix of fresh-pattern, same-pattern, and refactor
//! traffic, and every response must be bitwise identical to the serial
//! single-request answer computed on a standalone solver — batching,
//! analysis caching, and width arbitration may change scheduling, never
//! answers. The remaining tests pin the admission-control contract:
//! typed overload / budget / invalid rejections, LRU eviction, and
//! session-close semantics.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use mf_core::{Precision, SolveError, SolverOptions, SpdSolver};
use mf_gpusim::Machine;
use mf_matgen::{elasticity_3d, laplacian_2d, laplacian_3d, random_spd_sparse, Stencil};
use mf_server::{ServeError, Server, ServerConfig, SubmitError};
use mf_sparse::SymCsc;

fn opts() -> SolverOptions {
    SolverOptions { precision: Precision::F64, ..Default::default() }
}

fn cfg() -> ServerConfig {
    ServerConfig { solver: opts(), validate_batches: true, ..Default::default() }
}

/// Same pattern, values scaled by `k` (> 0 preserves SPD).
fn scaled(a: &SymCsc<f64>, k: f64) -> SymCsc<f64> {
    SymCsc::from_parts(
        a.order(),
        a.colptr().to_vec(),
        a.rowind().to_vec(),
        a.values().iter().map(|v| v * k).collect(),
    )
}

/// Deterministic, finite right-hand-side block (n × nrhs, column-major).
fn rhs(n: usize, nrhs: usize, seed: u64) -> Vec<f64> {
    (0..n * nrhs)
        .map(|i| {
            let x = (i as u64 ^ seed).wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(seed) >> 33;
            (x as f64 / (1u64 << 31) as f64) - 0.5
        })
        .collect()
}

/// The serial single-request reference: a standalone solver with the same
/// options, one request, no batching, no cache.
fn serial_answer(a: &SymCsc<f64>, b: &[f64], nrhs: usize) -> Vec<f64> {
    let mut machine = Machine::paper_node();
    let solver = SpdSolver::new(a, &mut machine, &opts()).expect("test matrices are SPD");
    solver.solve_many(b, nrhs).expect("test requests are well-formed")
}

fn assert_bitwise(got: &[f64], want: &[f64], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(g.to_bits() == w.to_bits(), "{what}: entry {i} differs bitwise ({g:e} vs {w:e})");
    }
}

/// Four structurally distinct base patterns — more than the cache budget
/// used by the concurrency test, so LRU eviction runs under contention.
fn patterns() -> Vec<SymCsc<f64>> {
    vec![
        laplacian_3d(5, 5, 3, Stencil::Faces),
        laplacian_2d(10, 10, Stencil::Full),
        elasticity_3d(3, 3, 2),
        random_spd_sparse(80, 6, 42),
    ]
}

#[test]
fn concurrent_multi_tenant_bitwise_identical() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 3;
    const CACHE_BUDGET: usize = 3; // < number of distinct patterns

    let base = patterns();

    // Precompute every matrix, request, and serial reference answer before
    // the server exists: (submit matrix, solve) then (refactor matrix,
    // solve) per thread per round.
    struct Round {
        m1: SymCsc<f64>,
        b1: Vec<f64>,
        nrhs1: usize,
        e1: Vec<f64>,
        m2: SymCsc<f64>,
        b2: Vec<f64>,
        nrhs2: usize,
        e2: Vec<f64>,
    }
    let mut script: Vec<Vec<Round>> = Vec::new();
    for t in 0..THREADS {
        let mut rounds = Vec::new();
        for r in 0..ROUNDS {
            let p = &base[(t + r) % base.len()];
            let n = p.order();
            let k = 1.0 + 0.25 * (t * ROUNDS + r) as f64;
            let m1 = scaled(p, k);
            let m2 = scaled(p, k + 10.0);
            let nrhs1 = 1 + (t + r) % 3;
            let nrhs2 = 1 + (t + 2 * r) % 3;
            let b1 = rhs(n, nrhs1, (t * 1009 + r) as u64);
            let b2 = rhs(n, nrhs2, (t * 2003 + r) as u64);
            let e1 = serial_answer(&m1, &b1, nrhs1);
            let e2 = serial_answer(&m2, &b2, nrhs2);
            rounds.push(Round { m1, b1, nrhs1, e1, m2, b2, nrhs2, e2 });
        }
        script.push(rounds);
    }

    let server = Arc::new(Server::start(ServerConfig {
        workers: 3,
        thread_budget: 2,
        analysis_cache_entries: CACHE_BUDGET,
        ..cfg()
    }));

    thread::scope(|s| {
        for (t, rounds) in script.iter().enumerate() {
            let server = server.clone();
            s.spawn(move || {
                let tenant = format!("tenant-{t}");
                for (r, round) in rounds.iter().enumerate() {
                    // Fresh or same-pattern submission, depending on what
                    // other threads have pushed through the cache.
                    let id = server.submit(&tenant, &round.m1).expect("submit");
                    let x1 = server
                        .solve_many(id, round.b1.clone(), round.nrhs1)
                        .expect("solve before refactor");
                    assert_bitwise(&x1, &round.e1, &format!("t{t} r{r} pre-refactor"));

                    // Same-pattern refactor, then solve against the new
                    // values — FIFO ordering makes the expected answer
                    // unambiguous.
                    server.resubmit(id, round.m2.clone()).expect("refactor");
                    let x2 = server
                        .solve_many(id, round.b2.clone(), round.nrhs2)
                        .expect("solve after refactor");
                    assert_bitwise(&x2, &round.e2, &format!("t{t} r{r} post-refactor"));

                    server.close(id);
                }
            });
        }
    });

    let stats = server.stats();
    let submissions = (THREADS * ROUNDS) as u64;
    assert_eq!(stats.submissions, submissions);
    assert_eq!(stats.analysis_hits + stats.analysis_misses, submissions);
    assert!(stats.analysis_misses >= 1, "first submission of each pattern must miss");
    assert_eq!(stats.refactors, submissions);
    assert_eq!(stats.solve_requests, 2 * submissions);
    assert!(
        stats.cache_entries_peak <= CACHE_BUDGET,
        "analysis cache exceeded its entry budget: peak {} > {}",
        stats.cache_entries_peak,
        CACHE_BUDGET
    );
    assert_eq!(stats.active_sessions, 0, "every session was closed");
    assert_eq!(stats.resident_bytes, 0, "closed sessions release their memory charge");
}

#[test]
fn same_pattern_submissions_reuse_analysis() {
    let server = Server::start(cfg());
    let a = laplacian_3d(5, 4, 3, Stencil::Faces);
    let b = scaled(&a, 3.0);
    let n = a.order();

    let ia = server.submit("alpha", &a).unwrap();
    let ib = server.submit("beta", &b).unwrap();

    let stats = server.stats();
    assert_eq!(stats.analysis_misses, 1, "first submission analyzes");
    assert_eq!(stats.analysis_hits, 1, "same-pattern submission reuses the analysis");

    // A cached analysis must not change answers: both sessions agree
    // bitwise with standalone solvers.
    let r = rhs(n, 2, 7);
    let xa = server.solve_many(ia, r.clone(), 2).unwrap();
    let xb = server.solve_many(ib, r.clone(), 2).unwrap();
    assert_bitwise(&xa, &serial_answer(&a, &r, 2), "cache-miss session");
    assert_bitwise(&xb, &serial_answer(&b, &r, 2), "cache-hit session");
}

#[test]
fn overload_rejects_excess_load_without_corrupting_sessions() {
    let server =
        Server::start(ServerConfig { workers: 1, queue_depth: 2, max_batch_rhs: 4, ..cfg() });
    let a = laplacian_3d(6, 6, 4, Stencil::Faces);
    let n = a.order();
    let id = server.submit("flood", &a).unwrap();

    let b = rhs(n, 1, 99);
    let expected = serial_answer(&a, &b, 1);

    // Offered load far above the queue bound: some requests are accepted,
    // the rest get a typed Overloaded rejection — never a panic, never a
    // wrong answer for the accepted ones.
    let mut tickets = Vec::new();
    let mut rejected = 0usize;
    for _ in 0..2000 {
        match server.solve_many_async(id, b.clone(), 1) {
            Ok(t) => tickets.push(t),
            Err(ServeError::Overloaded { queue_depth }) => {
                assert_eq!(queue_depth, 2);
                rejected += 1;
                if rejected >= 16 && !tickets.is_empty() {
                    break;
                }
            }
            Err(e) => panic!("unexpected rejection: {e}"),
        }
    }
    assert!(rejected >= 1, "queue_depth=2 under a tight submission loop must reject");
    assert!(!tickets.is_empty(), "some requests must still be admitted");

    let accepted = tickets.len();
    for t in tickets {
        let (x, latency) = t.wait_with_latency();
        assert_bitwise(&x.expect("accepted requests complete"), &expected, "accepted");
        assert!(latency >= Duration::ZERO);
    }

    let stats = server.stats();
    assert_eq!(stats.rejected_overloaded, rejected as u64);
    assert_eq!(stats.solve_requests, accepted as u64);

    // The session survived the flood intact.
    let x = server.solve(id, b.clone()).unwrap();
    assert_bitwise(&x, &expected, "post-flood");
}

#[test]
fn tenant_budget_evicts_idle_sessions_lru_then_rejects() {
    let a = laplacian_3d(5, 5, 3, Stencil::Faces);
    let n = a.order();

    // Meter one session's working-storage charge on a server with an
    // effectively unbounded budget.
    let per_session = {
        let server = Server::start(cfg());
        server.submit("meter", &a).unwrap();
        server.stats().resident_bytes
    };
    assert!(per_session > 0);

    // Budget fits one session but not two: the second same-tenant
    // submission must evict the idle first one rather than be rejected.
    let server =
        Server::start(ServerConfig { tenant_memory_bytes: per_session + per_session / 2, ..cfg() });
    let first = server.submit("t", &a).unwrap();
    let b = rhs(n, 1, 5);
    let expected = serial_answer(&a, &b, 1);
    assert_bitwise(&server.solve(first, b.clone()).unwrap(), &expected, "first session");

    // The first session may still be flagged in-service for an instant
    // after its blocking solve returns; eviction only claims idle
    // sessions, so retry briefly.
    let second = {
        let mut last = Err(SubmitError::ShuttingDown);
        for _ in 0..200 {
            last = server.submit("t", &scaled(&a, 2.0));
            if last.is_ok() {
                break;
            }
            thread::sleep(Duration::from_millis(5));
        }
        last.expect("second submission fits after LRU eviction")
    };

    let stats = server.stats();
    assert_eq!(stats.evicted_sessions, 1, "the idle first session was evicted");
    assert_eq!(stats.active_sessions, 1);
    assert!(stats.resident_bytes <= per_session + per_session / 2);

    // The evicted session is closed; the new one answers correctly.
    assert_eq!(server.solve(first, b.clone()), Err(ServeError::SessionClosed));
    let expected2 = serial_answer(&scaled(&a, 2.0), &b, 1);
    assert_bitwise(&server.solve(second, b.clone()).unwrap(), &expected2, "second session");

    // Tenants are isolated: another tenant has its own budget.
    server.submit("u", &a).expect("other tenants are unaffected");

    // A system that cannot fit even in an empty budget gets the typed
    // rejection with the accounting attached.
    let tiny = Server::start(ServerConfig { tenant_memory_bytes: 1, ..cfg() });
    match tiny.submit("t", &a) {
        Err(SubmitError::BudgetExceeded { required, budget, resident }) => {
            assert!(required > budget);
            assert_eq!(budget, 1);
            assert_eq!(resident, 0);
        }
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }
    assert_eq!(tiny.stats().rejected_budget, 1);
}

#[test]
fn budgeted_sessions_reserve_the_cap_and_infeasible_caps_are_typed() {
    use mf_core::{min_feasible_budget, FactorError, FactorOptions};

    let a = laplacian_3d(6, 6, 6, Stencil::Faces);
    let n = a.order();

    // Meter the unbudgeted charge.
    let full_charge = {
        let server = Server::start(cfg());
        server.submit("meter", &a).unwrap();
        server.stats().resident_bytes
    };

    // A budgeted configuration: cap the numeric storage at 40% of the
    // symbolic bound (kept feasible via min_feasible_budget on a metering
    // analysis).
    let analysis = mf_sparse::analyze(&a, opts().ordering, opts().amalgamation.as_ref()).unwrap();
    let bound = (analysis.symbolic.factor_slab_len() + analysis.symbolic.update_stack_peak()) * 8;
    let budget = (bound * 2 / 5).max(min_feasible_budget(&analysis.symbolic, 8));
    let budgeted_cfg = ServerConfig {
        solver: SolverOptions {
            factor: FactorOptions { memory_budget: Some(budget), ..Default::default() },
            ..opts()
        },
        ..cfg()
    };
    let server = Server::start(budgeted_cfg.clone());
    let sess = server.submit("t", &a).unwrap();

    // The budgeted session reserves the cap, not the symbolic bound.
    let charged = server.stats().resident_bytes;
    assert!(
        charged < full_charge,
        "budgeted session must charge less than the in-core bound ({charged} vs {full_charge})"
    );
    assert_eq!(full_charge - charged, bound - budget, "the saving is exactly the trimmed bound");

    // And it still answers bitwise identically to the in-core serial
    // reference — spilling moves bytes, never bits (ladder off).
    let b = rhs(n, 2, 9);
    let expected = serial_answer(&a, &b, 2);
    assert_bitwise(&server.solve_many(sess, b, 2).unwrap(), &expected, "budgeted session");

    // An infeasible cap (smaller than the largest front's working set) is
    // rejected at admission with the typed factor error, before any bytes
    // are reserved.
    let tiny_cfg = ServerConfig {
        solver: SolverOptions {
            factor: FactorOptions { memory_budget: Some(256), ..Default::default() },
            ..opts()
        },
        ..cfg()
    };
    let tiny = Server::start(tiny_cfg);
    match tiny.submit("t", &a) {
        Err(SubmitError::Factor(FactorError::BudgetTooSmall { budget, required })) => {
            assert_eq!(budget, 256);
            assert!(required > 256);
        }
        other => panic!("expected BudgetTooSmall, got {other:?}"),
    }
    let stats = tiny.stats();
    assert_eq!(stats.rejected_budget, 1);
    assert_eq!(stats.resident_bytes, 0, "a rejected submission must not hold a reservation");
    assert_eq!(stats.active_sessions, 0);
}

#[test]
fn malformed_requests_get_typed_rejections_and_leave_sessions_intact() {
    let server = Server::start(cfg());
    let a = laplacian_2d(8, 8, Stencil::Faces);
    let n = a.order();
    let id = server.submit("v", &a).unwrap();

    // Wrong-length b.
    match server.solve(id, vec![1.0; n + 1]) {
        Err(ServeError::Invalid(SolveError::DimensionMismatch { expected, got })) => {
            assert_eq!(expected, n);
            assert_eq!(got, n + 1);
        }
        other => panic!("expected DimensionMismatch, got {other:?}"),
    }
    // Zero RHS.
    assert_eq!(server.solve_many(id, Vec::new(), 0), Err(ServeError::Invalid(SolveError::ZeroRhs)));
    // Non-finite entry, located by (column, row).
    let mut bad = vec![1.0; 2 * n];
    bad[n + 3] = f64::NAN;
    assert_eq!(
        server.solve_many(id, bad, 2),
        Err(ServeError::Invalid(SolveError::NonFinite { column: 1, row: 3 }))
    );

    let stats = server.stats();
    assert_eq!(stats.rejected_invalid, 3);
    assert_eq!(stats.solve_requests, 0, "rejected requests never consume queue slots");

    // The session still serves bitwise-correct answers.
    let b = rhs(n, 1, 11);
    assert_bitwise(&server.solve(id, b.clone()).unwrap(), &serial_answer(&a, &b, 1), "after");
}

#[test]
fn refactor_is_fifo_ordered_with_solves() {
    let server = Server::start(ServerConfig { workers: 1, ..cfg() });
    let a = elasticity_3d(3, 2, 2);
    let n = a.order();
    let a2 = scaled(&a, 5.0);
    let id = server.submit("w", &a).unwrap();

    let b = rhs(n, 2, 17);
    // Enqueue solve → refactor → solve without waiting in between: the
    // first must see the old values, the second the new ones.
    let t1 = server.solve_many_async(id, b.clone(), 2).unwrap();
    let tr = server.resubmit_async(id, a2.clone()).unwrap();
    let t2 = server.solve_many_async(id, b.clone(), 2).unwrap();

    assert_bitwise(&t1.wait().unwrap(), &serial_answer(&a, &b, 2), "pre-refactor");
    tr.wait().unwrap();
    assert_bitwise(&t2.wait().unwrap(), &serial_answer(&a2, &b, 2), "post-refactor");

    // A refactor with a different pattern is a typed error, and the
    // session keeps serving with its current values.
    let other = laplacian_2d(7, 8, Stencil::Faces);
    assert_eq!(server.resubmit(id, other), Err(SubmitError::PatternMismatch));
    assert_bitwise(
        &server.solve_many(id, b.clone(), 2).unwrap(),
        &serial_answer(&a2, &b, 2),
        "still new values",
    );
}

#[test]
fn closed_sessions_reject_and_release_memory() {
    let server = Server::start(cfg());
    let a = laplacian_3d(4, 4, 4, Stencil::Faces);
    let id = server.submit("z", &a).unwrap();
    assert!(server.stats().resident_bytes > 0);

    assert!(server.close(id));
    assert!(!server.close(id), "double close reports absence");
    assert_eq!(server.stats().resident_bytes, 0);
    assert_eq!(server.stats().active_sessions, 0);

    let n = a.order();
    assert_eq!(server.solve(id, vec![1.0; n]), Err(ServeError::SessionClosed));
    assert_eq!(server.resubmit(id, a.clone()), Err(SubmitError::SessionClosed));
}

#[test]
fn non_spd_submission_is_a_typed_factor_error_and_releases_reservation() {
    let server = Server::start(cfg());
    let a = laplacian_2d(6, 6, Stencil::Faces);
    // Flip the sign: -A is negative definite, so factorization must fail.
    let bad = scaled(&a, -1.0);
    match server.submit("neg", &bad) {
        Err(SubmitError::Factor(_)) => {}
        other => panic!("expected Factor error, got {other:?}"),
    }
    let stats = server.stats();
    assert_eq!(stats.active_sessions, 0);
    assert_eq!(stats.resident_bytes, 0, "failed factorization releases its reservation");

    // The tenant is not poisoned: a good submission still works.
    server.submit("neg", &a).expect("SPD submission after a failed one");
}

#[test]
fn missing_diagonal_is_rejected_at_admission_and_server_survives() {
    use mf_sparse::{AnalyzeError, Triplet};
    // Hostile structural input: column 1 carries off-diagonal entries but no
    // pivot. Admission must reject it with a typed error — serially and
    // through the parallel analysis path — not unwind the caller's thread.
    let mut t = Triplet::new(4);
    t.push(0, 0, 4.0);
    t.push(2, 2, 4.0);
    t.push(3, 3, 4.0);
    t.push(3, 1, -1.0);
    let hostile = t.assemble();
    for workers in [0, 4] {
        let server = Server::start(ServerConfig {
            solver: SolverOptions { analysis_workers: workers, ..opts() },
            ..cfg()
        });
        match server.submit("hostile", &hostile) {
            Err(SubmitError::Analyze(AnalyzeError::MissingDiagonal { col })) => {
                // The check runs on the caller's matrix, before any
                // permutation, so the reported column is the original one.
                assert_eq!(col, 1);
            }
            other => panic!("expected Analyze rejection, got {other:?}"),
        }
        let stats = server.stats();
        assert_eq!(stats.active_sessions, 0);
        assert_eq!(stats.resident_bytes, 0, "rejected submission charges nothing");
        // The server is not poisoned: a well-formed system still round-trips.
        let a = laplacian_2d(6, 5, Stencil::Faces);
        let sid = server.submit("hostile", &a).expect("good submission after rejection");
        let b = rhs(a.order(), 1, 7);
        let x = server.solve(sid, b.clone()).expect("solve after rejection");
        assert_bitwise(&x, &serial_answer(&a, &b, 1), "post-rejection solve");
    }
}

#[test]
fn parallel_analysis_answers_match_serial_configuration_bitwise() {
    let a = laplacian_3d(6, 5, 4, Stencil::Faces);
    let b = rhs(a.order(), 2, 99);
    let serial = {
        let server = Server::start(cfg());
        let sid = server.submit("t", &a).unwrap();
        server.solve_many(sid, b.clone(), 2).unwrap()
    };
    for workers in [2, 8] {
        let server = Server::start(ServerConfig {
            solver: SolverOptions { analysis_workers: workers, ..opts() },
            ..cfg()
        });
        let sid = server.submit("t", &a).unwrap();
        let x = server.solve_many(sid, b.clone(), 2).unwrap();
        assert_bitwise(&x, &serial, &format!("analysis_workers={workers}"));
    }
}
