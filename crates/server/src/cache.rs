//! Symbolic-analysis cache keyed by sparsity-pattern fingerprint.
//!
//! The symbolic phase (ordering, elimination tree, supernodes, symbolic
//! factorization) depends only on the sparsity pattern, and for the
//! refactor-heavy traffic a solver service sees — time-stepping, Newton
//! iterations, per-tenant model variants — the *same few patterns* arrive
//! over and over from independent callers. This cache lets every
//! same-pattern submission skip straight to the numeric factorization.
//!
//! Keying is two-level, exactly as the collision semantics demand:
//!
//! 1. [`SymCsc::fingerprint`] — a cheap stable structural hash — selects a
//!    bucket. A fingerprint match is only a *candidate*.
//! 2. [`SymCsc::same_pattern`] is the authoritative gate: the stored
//!    pattern is compared entry-for-entry before the analysis is reused, so
//!    a hash collision costs one comparison, never a wrong analysis.
//!
//! The cache holds at most `budget` entries (the *entry budget*) and evicts
//! the least-recently-used analysis when a new pattern arrives at capacity.
//! A zero budget disables caching entirely.

use std::collections::HashMap;
use std::sync::Arc;
use std::sync::Mutex;

use mf_sparse::symbolic::Analysis;
use mf_sparse::SymCsc;

/// One cached analysis: the exact pattern it was computed for (the
/// `same_pattern` gate operand) and the analysis itself, shared by `Arc` so
/// concurrent submissions can clone it without holding the cache lock.
struct Entry {
    pattern: SymCsc<f64>,
    analysis: Arc<Analysis>,
    last_used: u64,
}

struct CacheInner {
    /// Fingerprint → bucket of entries whose patterns hash to it. Buckets
    /// have more than one entry only on a genuine 64-bit collision.
    map: HashMap<u64, Vec<Entry>>,
    len: usize,
    peak: usize,
    clock: u64,
}

/// Thread-safe LRU cache of symbolic analyses, keyed by pattern fingerprint.
pub(crate) struct AnalysisCache {
    budget: usize,
    inner: Mutex<CacheInner>,
}

impl AnalysisCache {
    pub(crate) fn new(budget: usize) -> Self {
        AnalysisCache {
            budget,
            inner: Mutex::new(CacheInner { map: HashMap::new(), len: 0, peak: 0, clock: 0 }),
        }
    }

    /// Look up the analysis for `a`'s pattern. Returns `None` when no cached
    /// pattern passes the `same_pattern` gate. Hit/miss accounting belongs
    /// to the server's own atomic counters — keeping a second copy here
    /// invited drift between the two (lookups and counter reads are not one
    /// atomic step), so the cache tracks only what it owns: occupancy.
    pub(crate) fn lookup(&self, a: &SymCsc<f64>) -> Option<Arc<Analysis>> {
        let fp = a.fingerprint();
        let mut inner = lock(&self.inner);
        inner.clock += 1;
        let stamp = inner.clock;
        if let Some(bucket) = inner.map.get_mut(&fp) {
            if let Some(e) = bucket.iter_mut().find(|e| a.same_pattern(&e.pattern)) {
                e.last_used = stamp;
                return Some(e.analysis.clone());
            }
        }
        None
    }

    /// Insert a freshly computed analysis for `pattern`, evicting the
    /// least-recently-used entry if the cache is at its entry budget. With a
    /// zero budget this is a no-op.
    pub(crate) fn insert(&self, pattern: SymCsc<f64>, analysis: Arc<Analysis>) {
        if self.budget == 0 {
            return;
        }
        let fp = pattern.fingerprint();
        let mut inner = lock(&self.inner);
        inner.clock += 1;
        let stamp = inner.clock;
        if let Some(bucket) = inner.map.get(&fp) {
            if bucket.iter().any(|e| pattern.same_pattern(&e.pattern)) {
                return; // a concurrent submission already cached this pattern
            }
        }
        while inner.len >= self.budget {
            evict_lru(&mut inner);
        }
        inner.map.entry(fp).or_default().push(Entry { pattern, analysis, last_used: stamp });
        inner.len += 1;
        inner.peak = inner.peak.max(inner.len);
    }

    /// (current entries, peak entries).
    pub(crate) fn stats(&self) -> (usize, usize) {
        let inner = lock(&self.inner);
        (inner.len, inner.peak)
    }
}

/// Remove the globally least-recently-used entry. Linear in the number of
/// entries, which is bounded by the (small) entry budget.
fn evict_lru(inner: &mut CacheInner) {
    let mut victim: Option<(u64, usize, u64)> = None; // (fp, idx, stamp)
    for (&fp, bucket) in inner.map.iter() {
        for (i, e) in bucket.iter().enumerate() {
            if victim.is_none_or(|(_, _, s)| e.last_used < s) {
                victim = Some((fp, i, e.last_used));
            }
        }
    }
    let Some((fp, i, _)) = victim else { return };
    let bucket = inner.map.get_mut(&fp).expect("victim bucket exists");
    bucket.remove(i);
    if bucket.is_empty() {
        inner.map.remove(&fp);
    }
    inner.len -= 1;
}

/// Poison-tolerant lock: a worker that panicked mid-solve (e.g. a batch
/// validation assert) must not wedge every later request.
pub(crate) fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}
