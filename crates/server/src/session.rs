//! Sessions, their FIFO operation queues, and the one-shot reply channels
//! that deliver results back to blocked callers.
//!
//! A session is one factored system owned by one tenant. All mutation of a
//! session flows through its queue in submission order — solves *and*
//! refactors — and a session is drained by **at most one worker at a time**
//! (the `in_service` flag), so per-session semantics are strictly FIFO: a
//! solve enqueued before a refactor sees the old values, one enqueued after
//! sees the new ones, regardless of batching.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use mf_core::SpdSolver;
use mf_sparse::SymCsc;

use crate::cache::lock;
use crate::{ServeError, SubmitError};

/// Opaque handle to a submitted system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub(crate) u64);

/// A single-use reply slot: the worker `put`s exactly once, the caller
/// `wait`s. Completion is timestamped at `put` so open-loop load drivers can
/// measure service latency without the waiter being scheduled promptly.
pub(crate) struct OneShot<T> {
    slot: Mutex<Option<(T, Instant)>>,
    cv: Condvar,
}

impl<T> OneShot<T> {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(OneShot { slot: Mutex::new(None), cv: Condvar::new() })
    }

    pub(crate) fn put(&self, value: T) {
        let mut slot = lock(&self.slot);
        debug_assert!(slot.is_none(), "OneShot::put called twice");
        *slot = Some((value, Instant::now()));
        self.cv.notify_all();
    }

    fn wait(&self) -> (T, Instant) {
        let mut slot = lock(&self.slot);
        loop {
            if let Some(v) = slot.take() {
                return v;
            }
            slot = self.cv.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Handle to an in-flight solve request; see
/// [`crate::Server::solve_many_async`].
pub struct SolveTicket {
    pub(crate) shot: Arc<OneShot<Result<Vec<f64>, ServeError>>>,
    pub(crate) submitted: Instant,
}

impl SolveTicket {
    /// Block until the request completes (or is failed by shutdown).
    pub fn wait(self) -> Result<Vec<f64>, ServeError> {
        self.shot.wait().0
    }

    /// [`Self::wait`], also reporting the queue-to-completion latency (the
    /// completion side is stamped by the worker, so a tardy waiter does not
    /// inflate it).
    pub fn wait_with_latency(self) -> (Result<Vec<f64>, ServeError>, Duration) {
        let (value, done) = self.shot.wait();
        (value, done.saturating_duration_since(self.submitted))
    }
}

/// Handle to an in-flight refactor; see [`crate::Server::resubmit_async`].
pub struct RefactorTicket {
    pub(crate) shot: Arc<OneShot<Result<(), SubmitError>>>,
}

impl RefactorTicket {
    /// Block until the refactor completes.
    pub fn wait(self) -> Result<(), SubmitError> {
        self.shot.wait().0
    }
}

/// One queued operation. The worker consumes runs of `Solve`s as a batch
/// but always executes a `Refactor` alone, at its queue position.
pub(crate) enum Op {
    Solve { b: Vec<f64>, nrhs: usize, reply: Arc<OneShot<Result<Vec<f64>, ServeError>>> },
    Refactor { a: Box<SymCsc<f64>>, reply: Arc<OneShot<Result<(), SubmitError>>> },
}

/// Queue state guarded by one mutex; the flags encode the scheduling
/// protocol (a session is in the ready queue XOR being drained XOR idle).
pub(crate) struct SessionQueue {
    pub(crate) ops: VecDeque<Op>,
    /// Session sits in the server's ready queue awaiting a worker.
    pub(crate) scheduled: bool,
    /// A worker is currently draining this session (grants FIFO exclusivity).
    pub(crate) in_service: bool,
    /// Evicted or closed: rejects new enqueues; already-queued ops drain.
    pub(crate) closed: bool,
}

/// One tenant-owned factored system plus its request queue.
pub(crate) struct Session {
    pub(crate) tenant: String,
    pub(crate) n: usize,
    /// Resident bytes charged to the tenant while this session lives.
    pub(crate) mem_bytes: usize,
    pub(crate) q: Mutex<SessionQueue>,
    pub(crate) solver: Mutex<SpdSolver>,
    /// Logical LRU stamp (server clock) of the last submit/solve touch.
    pub(crate) last_used: AtomicU64,
}

impl Session {
    pub(crate) fn new(
        tenant: String,
        n: usize,
        mem_bytes: usize,
        solver: SpdSolver,
        stamp: u64,
    ) -> Arc<Self> {
        Arc::new(Session {
            tenant,
            n,
            mem_bytes,
            q: Mutex::new(SessionQueue {
                ops: VecDeque::new(),
                scheduled: false,
                in_service: false,
                closed: false,
            }),
            solver: Mutex::new(solver),
            last_used: AtomicU64::new(stamp),
        })
    }

    pub(crate) fn touch(&self, stamp: u64) {
        self.last_used.store(stamp, Ordering::Relaxed);
    }

    pub(crate) fn stamp(&self) -> u64 {
        self.last_used.load(Ordering::Relaxed)
    }
}
