//! The solve worker pool: drains session queues, batches pending RHS from
//! independent callers into one `solve_many` sweep, and scatters the
//! results back through each request's reply slot.
//!
//! ## Why batching is free accuracy-wise
//!
//! The solve path is RHS-count-invariant (PR 3): column `j` of a batched
//! `solve_many` is bitwise identical to a single-RHS solve of that column.
//! So the batch composition a request happens to land in — which depends on
//! arrival timing — can never change the answer a caller receives, only how
//! soon it arrives. `ServerConfig::validate_batches` re-solves every
//! request serially after the batched sweep and asserts exactly that.
//!
//! ## Why batching wins throughput-wise
//!
//! A batched sweep walks the factor's supernodal panels once for the whole
//! block and routes trailing updates through one multi-RHS GEMM per
//! supernode; `BENCH_solve.json` measures 1.9–2.4× over per-request
//! dispatch at 8–32 RHS. Aggregating *across callers* converts that kernel
//! win into service throughput.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use mf_core::RefactorError;
use mf_gpusim::Machine;

use crate::cache::lock;
use crate::session::{Op, Session};
use crate::{Inner, ServeError, SubmitError};

/// What a worker pulled from a session queue in one claim.
enum Batch {
    /// A run of consecutive solve ops, batched into one sweep.
    Solves(Vec<Op>),
    /// A refactor, executed alone at its queue position.
    Refactor(Op),
    Empty,
}

/// Worker main loop: block on the ready queue, drain one session, repeat.
/// On shutdown, keeps draining until the ready queue is empty so accepted
/// requests are answered rather than dropped.
pub(crate) fn worker_loop(inner: Arc<Inner>) {
    loop {
        let sess = {
            let mut ready = lock(&inner.ready);
            loop {
                if let Some(s) = ready.pop_front() {
                    break Some(s);
                }
                if inner.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                ready = inner.ready_cv.wait(ready).unwrap_or_else(|e| e.into_inner());
            }
        };
        let Some(sess) = sess else { return };
        service(&inner, &sess);
        // Re-arm: if the session accumulated more work while we drained it,
        // put it back so another (or this) worker picks it up.
        let rearm = {
            let mut q = lock(&sess.q);
            q.in_service = false;
            if !q.ops.is_empty() && !q.scheduled {
                q.scheduled = true;
                true
            } else {
                false
            }
        };
        if rearm {
            lock(&inner.ready).push_back(sess);
            inner.ready_cv.notify_one();
        }
    }
}

/// Claim a batch from the session under its queue lock: either the leading
/// refactor, or the longest run of solves whose combined RHS count stays
/// within the batching window (a first op wider than the window still runs,
/// alone — the window shapes batches, it does not reject work).
fn claim(sess: &Session, window: usize) -> Batch {
    let mut q = lock(&sess.q);
    q.scheduled = false;
    q.in_service = true;
    match q.ops.front() {
        None => Batch::Empty,
        Some(Op::Refactor { .. }) => Batch::Refactor(q.ops.pop_front().expect("front exists")),
        Some(Op::Solve { .. }) => {
            let mut ops = Vec::new();
            let mut total = 0usize;
            while let Some(Op::Solve { nrhs, .. }) = q.ops.front() {
                if !ops.is_empty() && total + nrhs > window {
                    break;
                }
                total += nrhs;
                ops.push(q.ops.pop_front().expect("front exists"));
            }
            Batch::Solves(ops)
        }
    }
}

/// Serve exactly one batch (or one refactor) per claim, then hand the
/// session back to the ready queue — round-robin across sessions, so one
/// deep queue cannot starve every other tenant.
fn service(inner: &Arc<Inner>, sess: &Arc<Session>) {
    match claim(sess, inner.cfg.max_batch_rhs) {
        Batch::Empty => {}
        Batch::Refactor(op) => run_refactor(inner, sess, op),
        Batch::Solves(ops) => run_solves(inner, sess, ops),
    }
}

fn run_refactor(inner: &Arc<Inner>, sess: &Arc<Session>, op: Op) {
    let Op::Refactor { a, reply } = op else { unreachable!("claim returned a refactor") };
    let mut machine = Machine::paper_node();
    let result = {
        let mut solver = lock(&sess.solver);
        solver.refactor(&a, &mut machine).map_err(|e| match e {
            RefactorError::PatternMismatch => SubmitError::PatternMismatch,
            RefactorError::Factor(f) => SubmitError::Factor(f),
        })
    };
    inner.stats.refactors.fetch_add(1, Ordering::Relaxed);
    sess.touch(inner.tick());
    inner.pending_ops.fetch_sub(1, Ordering::AcqRel);
    reply.put(result);
}

fn run_solves(inner: &Arc<Inner>, sess: &Arc<Session>, ops: Vec<Op>) {
    let n = sess.n;
    let total: usize = ops
        .iter()
        .map(|op| match op {
            Op::Solve { nrhs, .. } => *nrhs,
            Op::Refactor { .. } => unreachable!("claim batches only solves"),
        })
        .sum();
    let mut block = Vec::with_capacity(n * total);
    for op in &ops {
        if let Op::Solve { b, .. } = op {
            block.extend_from_slice(b);
        }
    }

    // Width arbitration: the lease splits the hardware-thread budget with
    // every other in-flight batch, so concurrent sessions each solve
    // narrow while a lone batch takes the whole machine.
    let lease = inner.budget.lease();
    let (result, serial_check) = {
        let solver = lock(&sess.solver);
        let result = if lease.width() > 1 {
            solver.solve_many_parallel(&block, total, lease.width())
        } else {
            solver.solve_many(&block, total)
        };
        // In validation mode, re-solve each request on its own while the
        // solver lock is still held (a refactor must not slip between the
        // batched sweep and its per-request reference answers).
        let serial_check = if inner.cfg.validate_batches && result.is_ok() {
            let mut refs = Vec::with_capacity(ops.len());
            for op in &ops {
                if let Op::Solve { b, nrhs, .. } = op {
                    refs.push(solver.solve_many(b, *nrhs));
                }
            }
            Some(refs)
        } else {
            None
        };
        (result, serial_check)
    };
    drop(lease);

    inner.stats.batches.fetch_add(1, Ordering::Relaxed);
    inner.stats.solved_rhs.fetch_add(total as u64, Ordering::Relaxed);
    inner.stats.max_batch_rhs.fetch_max(total as u64, Ordering::Relaxed);
    sess.touch(inner.tick());

    match result {
        Ok(x) => {
            if let Some(refs) = serial_check {
                let mut off = 0usize;
                for (op, serial) in ops.iter().zip(refs) {
                    if let Op::Solve { nrhs, .. } = op {
                        let cols = n * nrhs;
                        let serial = serial.expect("admission-validated request re-solves");
                        let batched = &x[off..off + cols];
                        assert!(
                            batched.iter().zip(&serial).all(|(p, q)| p.to_bits() == q.to_bits()),
                            "batched answer diverged bitwise from the per-request serial solve"
                        );
                        off += cols;
                    }
                }
            }
            let mut off = 0usize;
            for op in ops {
                if let Op::Solve { nrhs, reply, .. } = op {
                    let cols = n * nrhs;
                    reply.put(Ok(x[off..off + cols].to_vec()));
                    off += cols;
                    inner.pending_ops.fetch_sub(1, Ordering::AcqRel);
                }
            }
        }
        Err(e) => {
            // Unreachable for admission-validated requests, but a server
            // degrades gracefully rather than trusting that.
            for op in ops {
                if let Op::Solve { reply, .. } = op {
                    reply.put(Err(ServeError::Invalid(e)));
                    inner.pending_ops.fetch_sub(1, Ordering::AcqRel);
                }
            }
        }
    }
}
