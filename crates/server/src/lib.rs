//! # mf-server — multi-tenant solver-as-a-service over the multifrontal stack
//!
//! The repository's numeric layers end at a fast, refactorizable,
//! batch-capable [`SpdSolver`]; this crate is the front door that turns
//! those per-call wins into *service throughput* for many independent
//! callers:
//!
//! * **Pattern-keyed analysis caching** — submissions are fingerprinted by
//!   sparsity structure ([`mf_sparse::SymCsc::fingerprint`]); a same-pattern
//!   submission (gated authoritatively by `same_pattern`) skips the entire
//!   symbolic phase and goes straight to numeric factorization, exactly the
//!   work split [`SpdSolver::refactor`] exploits within one session.
//! * **Cross-request RHS batching** — solve requests from independent
//!   callers against the same factor are aggregated into one blocked
//!   `solve_many` sweep (up to [`ServerConfig::max_batch_rhs`] columns) and
//!   scattered back per caller. The solve path is RHS-count-invariant, so
//!   every caller's answer is bitwise identical to a per-request serial
//!   solve — batching changes *when* an answer arrives, never *what* it is.
//! * **Admission control and backpressure** — the global op queue is
//!   bounded ([`ServerConfig::queue_depth`]); excess load is rejected with
//!   [`ServeError::Overloaded`] instead of growing without bound, malformed
//!   requests are rejected at admission with the typed
//!   [`mf_core::SolveError`], and solve width is arbitrated through the
//!   shared [`mf_runtime::ThreadBudget`].
//! * **Per-tenant memory accounting** — each session is charged its
//!   symbolic working-storage-bound footprint
//!   ([`mf_core::estimated_memory_bytes`]); a tenant over budget has idle
//!   sessions evicted LRU, and a submission that cannot fit even then is
//!   rejected with [`SubmitError::BudgetExceeded`]. Sessions configured
//!   with a factor memory budget spill to host/disk tiers instead of
//!   holding the bound resident, so they reserve only the cap
//!   ([`mf_core::estimated_memory_bytes_budgeted`]); a cap too small for
//!   the largest front is rejected at admission with the typed
//!   [`mf_core::FactorError::BudgetTooSmall`].
//!
//! ## Consistency model
//!
//! Per session, operations (solves and refactors) execute in submission
//! order, drained by one worker at a time; across sessions there is no
//! ordering. Every response is bitwise identical to the serial
//! single-request answer against the session's matrix at that queue
//! position.
//!
//! ## Quick start
//!
//! ```
//! use mf_core::{Precision, SolverOptions};
//! use mf_server::{Server, ServerConfig};
//!
//! let cfg = ServerConfig {
//!     solver: SolverOptions { precision: Precision::F64, ..Default::default() },
//!     ..Default::default()
//! };
//! let server = Server::start(cfg);
//! let a = mf_matgen::laplacian_3d(6, 6, 4, mf_matgen::Stencil::Faces);
//! let session = server.submit("tenant-a", &a).unwrap();
//! let b = mf_matgen::rhs_ones(&a);
//! let x = server.solve(session, b.clone()).unwrap();
//! let r = a.residual(&x, &b);
//! assert!(r.iter().all(|v| v.abs() < 1e-8));
//! ```

mod cache;
mod session;
mod worker;

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use mf_core::{
    estimated_memory_bytes_budgeted, min_feasible_budget, FactorError, Precision, SolveError,
    SolverOptions, SpdSolver,
};
use mf_gpusim::Machine;
use mf_runtime::ThreadBudget;
use mf_sparse::symbolic::{analyze, analyze_parallel, Analysis, AnalyzeError, SymCscF64Holder};
use mf_sparse::SymCsc;

use cache::{lock, AnalysisCache};
use session::{OneShot, Op, Session, SessionQueue};

pub use session::{RefactorTicket, SessionId, SolveTicket};

/// Server tuning knobs. The defaults are sized for tests and demos; a real
/// deployment should set `workers` to the core count and the budgets to the
/// machine's memory.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Solver options (ordering, amalgamation, policy, precision) applied
    /// to every submission — also part of what makes cached analyses
    /// reusable, since analysis depends on the ordering choice.
    pub solver: SolverOptions,
    /// Solve worker threads (clamped to at least 1).
    pub workers: usize,
    /// Batching window: maximum RHS columns aggregated into one sweep.
    /// `1` disables cross-request batching (per-request dispatch).
    pub max_batch_rhs: usize,
    /// Global bound on queued-but-unfinished operations; excess solve
    /// traffic is rejected with [`ServeError::Overloaded`].
    pub queue_depth: usize,
    /// Entry budget of the pattern-keyed analysis cache (0 disables it).
    pub analysis_cache_entries: usize,
    /// Resident-byte budget per tenant (working-storage-bound accounting).
    pub tenant_memory_bytes: usize,
    /// Hardware-thread budget arbitrated across concurrent batch solves.
    pub thread_budget: usize,
    /// Re-solve every batched request serially and assert bitwise equality
    /// (test/CI mode; defeats the point of batching in production).
    pub validate_batches: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            solver: SolverOptions::default(),
            workers: 2,
            max_batch_rhs: 32,
            queue_depth: 1024,
            analysis_cache_entries: 16,
            tenant_memory_bytes: 256 << 20,
            thread_budget: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            validate_batches: false,
        }
    }
}

/// Rejection of a matrix submission or refactor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// Admitting this system would exceed the tenant's resident-memory
    /// budget even after evicting every idle session.
    BudgetExceeded {
        /// Bytes this submission needs (symbolic working-storage bound).
        required: usize,
        /// The tenant's configured budget.
        budget: usize,
        /// Bytes still resident after LRU eviction of idle sessions.
        resident: usize,
    },
    /// The symbolic analysis rejected the matrix at admission (e.g. a
    /// structurally missing diagonal) — hostile input must produce a typed
    /// rejection, never unwind a caller thread.
    Analyze(AnalyzeError),
    /// The numeric factorization failed (e.g. the matrix is not SPD).
    Factor(FactorError),
    /// A refactor's matrix pattern differs from the session's.
    PatternMismatch,
    /// The session was closed or evicted.
    SessionClosed,
    /// The refactor queue slot was refused by backpressure.
    Overloaded {
        /// The configured bound that was hit.
        queue_depth: usize,
    },
    /// The server is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::BudgetExceeded { required, budget, resident } => write!(
                f,
                "tenant memory budget exceeded: need {required} bytes, {resident} of {budget} \
                 already resident"
            ),
            SubmitError::Analyze(e) => write!(f, "analysis rejected the matrix: {e}"),
            SubmitError::Factor(e) => write!(f, "factorization failed: {e}"),
            SubmitError::PatternMismatch => {
                write!(f, "matrix pattern differs from the session's analyzed pattern")
            }
            SubmitError::SessionClosed => write!(f, "session closed or evicted"),
            SubmitError::Overloaded { queue_depth } => {
                write!(f, "server overloaded: {queue_depth} operations already queued")
            }
            SubmitError::ShuttingDown => write!(f, "server shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Rejection or failure of a solve request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The global op queue is at `queue_depth`; retry later.
    Overloaded {
        /// The configured bound that was hit.
        queue_depth: usize,
    },
    /// The request was malformed (wrong length, zero RHS, non-finite).
    Invalid(SolveError),
    /// The session was closed or evicted.
    SessionClosed,
    /// The server is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { queue_depth } => {
                write!(f, "server overloaded: {queue_depth} operations already queued")
            }
            ServeError::Invalid(e) => write!(f, "invalid request: {e}"),
            ServeError::SessionClosed => write!(f, "session closed or evicted"),
            ServeError::ShuttingDown => write!(f, "server shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Point-in-time server counters (monotonic unless noted).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Successful matrix submissions (sessions created).
    pub submissions: u64,
    /// Submissions that reused a cached symbolic analysis.
    pub analysis_hits: u64,
    /// Submissions that ran the full symbolic phase.
    pub analysis_misses: u64,
    /// Completed in-session refactors.
    pub refactors: u64,
    /// Accepted solve requests.
    pub solve_requests: u64,
    /// RHS columns solved (across all batches).
    pub solved_rhs: u64,
    /// Batched sweeps executed.
    pub batches: u64,
    /// Widest batch (RHS columns) executed so far.
    pub max_batch_rhs: u64,
    /// Solve requests rejected by backpressure.
    pub rejected_overloaded: u64,
    /// Requests rejected as malformed at admission.
    pub rejected_invalid: u64,
    /// Submissions rejected by tenant memory budgets.
    pub rejected_budget: u64,
    /// Idle sessions evicted to fit new submissions.
    pub evicted_sessions: u64,
    /// Analysis-cache entries now resident (gauge).
    pub cache_entries: usize,
    /// Peak analysis-cache entries ever resident — never exceeds the
    /// configured entry budget.
    pub cache_entries_peak: usize,
    /// Live sessions (gauge).
    pub active_sessions: usize,
    /// Resident bytes charged across all tenants (gauge).
    pub resident_bytes: usize,
}

#[derive(Default)]
pub(crate) struct AtomicStats {
    pub(crate) submissions: AtomicU64,
    pub(crate) analysis_hits: AtomicU64,
    pub(crate) analysis_misses: AtomicU64,
    pub(crate) refactors: AtomicU64,
    pub(crate) solve_requests: AtomicU64,
    pub(crate) solved_rhs: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) max_batch_rhs: AtomicU64,
    pub(crate) rejected_overloaded: AtomicU64,
    pub(crate) rejected_invalid: AtomicU64,
    pub(crate) rejected_budget: AtomicU64,
    pub(crate) evicted_sessions: AtomicU64,
}

/// Per-tenant accounting.
struct TenantState {
    resident_bytes: usize,
    sessions: Vec<SessionId>,
}

/// The session registry: id → session, tenant → accounting.
struct Registry {
    sessions: HashMap<SessionId, Arc<Session>>,
    tenants: HashMap<String, TenantState>,
    next_id: u64,
}

/// Shared server state (behind `Arc`, owned jointly by the handle and the
/// worker threads).
pub(crate) struct Inner {
    pub(crate) cfg: ServerConfig,
    registry: Mutex<Registry>,
    pub(crate) ready: Mutex<VecDeque<Arc<Session>>>,
    pub(crate) ready_cv: Condvar,
    pub(crate) pending_ops: AtomicUsize,
    pub(crate) budget: ThreadBudget,
    cache: AnalysisCache,
    clock: AtomicU64,
    pub(crate) shutdown: AtomicBool,
    pub(crate) stats: AtomicStats,
}

impl Inner {
    /// Advance the logical LRU clock.
    pub(crate) fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }
}

/// The multi-tenant solver service. Construct with [`Server::start`]; drop
/// to shut down (accepted requests are drained, then workers join).
pub struct Server {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Spin up the worker pool and return the service handle.
    pub fn start(cfg: ServerConfig) -> Server {
        let worker_count = cfg.workers.max(1);
        let inner = Arc::new(Inner {
            budget: ThreadBudget::new(cfg.thread_budget),
            cache: AnalysisCache::new(cfg.analysis_cache_entries),
            cfg,
            registry: Mutex::new(Registry {
                sessions: HashMap::new(),
                tenants: HashMap::new(),
                next_id: 0,
            }),
            ready: Mutex::new(VecDeque::new()),
            ready_cv: Condvar::new(),
            pending_ops: AtomicUsize::new(0),
            clock: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            stats: AtomicStats::default(),
        });
        let workers = (0..worker_count)
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("mf-server-worker-{i}"))
                    .spawn(move || worker::worker_loop(inner))
                    .expect("spawn solve worker")
            })
            .collect();
        Server { inner, workers }
    }

    /// Submit a matrix for `tenant`: analyze (or reuse a cached same-pattern
    /// analysis), admit against the tenant's memory budget (evicting idle
    /// sessions LRU if needed), factor, and return the session handle.
    ///
    /// Runs on the caller's thread — submissions from different callers
    /// analyze and factor concurrently.
    pub fn submit(&self, tenant: &str, a: &SymCsc<f64>) -> Result<SessionId, SubmitError> {
        let inner = &self.inner;
        if inner.shutdown.load(Ordering::Acquire) {
            return Err(SubmitError::ShuttingDown);
        }

        // 1. Symbolic analysis, through the pattern-keyed cache.
        let analysis: Arc<Analysis> = match inner.cache.lookup(a) {
            Some(cached) => {
                inner.stats.analysis_hits.fetch_add(1, Ordering::Relaxed);
                // Reuse the structural results; only the numeric values of
                // the permuted copy belong to *this* submission.
                let mut an = (*cached).clone();
                an.permuted = SymCscF64Holder(an.perm.permute_sym(a));
                Arc::new(an)
            }
            None => {
                inner.stats.analysis_misses.fetch_add(1, Ordering::Relaxed);
                let opts = &inner.cfg.solver;
                let an = if opts.analysis_workers > 1 {
                    analyze_parallel(
                        a,
                        opts.ordering,
                        opts.amalgamation.as_ref(),
                        opts.analysis_workers,
                    )
                } else {
                    analyze(a, opts.ordering, opts.amalgamation.as_ref())
                }
                .map(Arc::new)
                .map_err(SubmitError::Analyze)?;
                inner.cache.insert(a.clone(), an.clone());
                an
            }
        };

        // 2. Admission. A memory-budgeted session spills instead of holding
        // the full symbolic bound resident, so it reserves the *cap*, not
        // the bound — but only when the cap is feasible at all (the largest
        // front's working set must fit). An infeasible cap is rejected here,
        // typed, before any bytes are reserved or numeric work starts.
        let factor_budget = inner.cfg.solver.factor.memory_budget;
        if let Some(budget) = factor_budget {
            let elem = match inner.cfg.solver.precision {
                Precision::F64 => std::mem::size_of::<f64>(),
                Precision::F32 => std::mem::size_of::<f32>(),
            };
            let required = min_feasible_budget(&analysis.symbolic, elem);
            if budget < required {
                inner.stats.rejected_budget.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::Factor(FactorError::BudgetTooSmall { budget, required }));
            }
        }
        // Reserve the tenant's bytes before the expensive numeric
        // factorization, evicting idle sessions LRU to make room.
        let required =
            estimated_memory_bytes_budgeted(&analysis, inner.cfg.solver.precision, factor_budget);
        let id = {
            let mut reg = lock(&inner.registry);
            let resident_now = self.evict_until_fits(&mut reg, tenant, required);
            if resident_now + required > inner.cfg.tenant_memory_bytes {
                inner.stats.rejected_budget.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::BudgetExceeded {
                    required,
                    budget: inner.cfg.tenant_memory_bytes,
                    resident: resident_now,
                });
            }
            let t = reg
                .tenants
                .entry(tenant.to_string())
                .or_insert(TenantState { resident_bytes: 0, sessions: Vec::new() });
            t.resident_bytes += required;
            reg.next_id += 1;
            SessionId(reg.next_id)
        };

        // 3. Numeric factorization, outside every lock.
        let mut machine = Machine::paper_node();
        let solver = match SpdSolver::from_analysis(a, &analysis, &mut machine, &inner.cfg.solver) {
            Ok(s) => s,
            Err(e) => {
                let mut reg = lock(&inner.registry);
                if let Some(t) = reg.tenants.get_mut(tenant) {
                    t.resident_bytes -= required;
                }
                return Err(SubmitError::Factor(e));
            }
        };

        // 4. Register the session.
        let sess = Session::new(tenant.to_string(), a.order(), required, solver, inner.tick());
        let mut reg = lock(&inner.registry);
        reg.sessions.insert(id, sess);
        reg.tenants.get_mut(tenant).expect("reserved above").sessions.push(id);
        inner.stats.submissions.fetch_add(1, Ordering::Relaxed);
        Ok(id)
    }

    /// Evict this tenant's idle sessions in LRU order until `required` more
    /// bytes fit (or nothing evictable remains). Returns the tenant's
    /// resident bytes afterwards. Caller holds the registry lock.
    fn evict_until_fits(&self, reg: &mut Registry, tenant: &str, required: usize) -> usize {
        let budget = self.inner.cfg.tenant_memory_bytes;
        loop {
            let resident = reg.tenants.get(tenant).map_or(0, |t| t.resident_bytes);
            if resident + required <= budget {
                return resident;
            }
            // LRU scan over this tenant's idle sessions.
            let victim = {
                let Some(t) = reg.tenants.get(tenant) else { return resident };
                let mut best: Option<(SessionId, u64)> = None;
                for &sid in &t.sessions {
                    let Some(s) = reg.sessions.get(&sid) else { continue };
                    let idle = {
                        let q = lock(&s.q);
                        !q.in_service && !q.scheduled && q.ops.is_empty() && !q.closed
                    };
                    if idle && best.is_none_or(|(_, stamp)| s.stamp() < stamp) {
                        best = Some((sid, s.stamp()));
                    }
                }
                best
            };
            let Some((sid, _)) = victim else { return resident };
            self.remove_session(reg, sid, true);
        }
    }

    /// Remove `sid` from the registry, mark it closed, and release its
    /// bytes. Caller holds the registry lock.
    fn remove_session(&self, reg: &mut Registry, sid: SessionId, evicted: bool) {
        let Some(s) = reg.sessions.remove(&sid) else { return };
        {
            let mut q = lock(&s.q);
            q.closed = true;
        }
        if let Some(t) = reg.tenants.get_mut(&s.tenant) {
            t.resident_bytes = t.resident_bytes.saturating_sub(s.mem_bytes);
            t.sessions.retain(|&x| x != sid);
        }
        if evicted {
            self.inner.stats.evicted_sessions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Enqueue a multi-RHS solve (`b` is `n × nrhs` column-major) and
    /// return a ticket. Malformed requests and overload are rejected here,
    /// synchronously, without consuming a queue slot.
    pub fn solve_many_async(
        &self,
        session: SessionId,
        b: Vec<f64>,
        nrhs: usize,
    ) -> Result<SolveTicket, ServeError> {
        let inner = &self.inner;
        if inner.shutdown.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        let sess = lock(&inner.registry)
            .sessions
            .get(&session)
            .cloned()
            .ok_or(ServeError::SessionClosed)?;
        if let Err(e) = SolveError::validate(sess.n, &b, nrhs) {
            inner.stats.rejected_invalid.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Invalid(e));
        }
        let shot = self.enqueue(&sess, |reply| Op::Solve { b, nrhs, reply })?;
        inner.stats.solve_requests.fetch_add(1, Ordering::Relaxed);
        Ok(SolveTicket { shot, submitted: Instant::now() })
    }

    /// Single-RHS convenience: enqueue and block for the answer.
    pub fn solve(&self, session: SessionId, b: Vec<f64>) -> Result<Vec<f64>, ServeError> {
        self.solve_many_async(session, b, 1)?.wait()
    }

    /// [`Self::solve`] for an `n × nrhs` block.
    pub fn solve_many(
        &self,
        session: SessionId,
        b: Vec<f64>,
        nrhs: usize,
    ) -> Result<Vec<f64>, ServeError> {
        self.solve_many_async(session, b, nrhs)?.wait()
    }

    /// Enqueue a same-pattern refactor of the session's system (new numeric
    /// values, cached symbolic analysis — the `refactor()` fast path).
    /// FIFO-ordered with the session's solves: requests enqueued before it
    /// see the old values, requests after it see the new ones.
    pub fn resubmit_async(
        &self,
        session: SessionId,
        a: SymCsc<f64>,
    ) -> Result<RefactorTicket, ServeError> {
        let inner = &self.inner;
        if inner.shutdown.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        let sess = lock(&inner.registry)
            .sessions
            .get(&session)
            .cloned()
            .ok_or(ServeError::SessionClosed)?;
        self.enqueue(&sess, |reply| Op::Refactor { a: Box::new(a), reply })
            .map(|shot| RefactorTicket { shot })
    }

    /// Blocking form of [`Self::resubmit_async`].
    pub fn resubmit(&self, session: SessionId, a: SymCsc<f64>) -> Result<(), SubmitError> {
        match self.resubmit_async(session, a) {
            Ok(ticket) => ticket.wait(),
            Err(ServeError::SessionClosed) => Err(SubmitError::SessionClosed),
            Err(ServeError::ShuttingDown) => Err(SubmitError::ShuttingDown),
            Err(ServeError::Overloaded { queue_depth }) => {
                Err(SubmitError::Overloaded { queue_depth })
            }
            Err(ServeError::Invalid(_)) => unreachable!("refactor admission never validates RHS"),
        }
    }

    /// Close a session explicitly, releasing its memory charge. Already
    /// queued operations still complete; later requests get
    /// [`ServeError::SessionClosed`]. Returns whether the session existed.
    pub fn close(&self, session: SessionId) -> bool {
        let mut reg = lock(&self.inner.registry);
        let existed = reg.sessions.contains_key(&session);
        self.remove_session(&mut reg, session, false);
        existed
    }

    /// Shared admission + enqueue + scheduling for both op kinds.
    fn enqueue<T, F>(&self, sess: &Arc<Session>, make: F) -> Result<Arc<OneShot<T>>, ServeError>
    where
        F: FnOnce(Arc<OneShot<T>>) -> Op,
    {
        let inner = &self.inner;
        // Backpressure: reserve a queue slot or reject.
        let prev = inner.pending_ops.fetch_add(1, Ordering::AcqRel);
        if prev >= inner.cfg.queue_depth {
            inner.pending_ops.fetch_sub(1, Ordering::AcqRel);
            inner.stats.rejected_overloaded.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Overloaded { queue_depth: inner.cfg.queue_depth });
        }
        let shot = OneShot::new();
        let op = make(shot.clone());
        let schedule = {
            let mut q = lock(&sess.q);
            if q.closed {
                inner.pending_ops.fetch_sub(1, Ordering::AcqRel);
                return Err(ServeError::SessionClosed);
            }
            q.ops.push_back(op);
            sess.touch(inner.tick());
            mark_schedulable(&mut q)
        };
        if schedule {
            lock(&inner.ready).push_back(sess.clone());
            inner.ready_cv.notify_one();
        }
        Ok(shot)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServerStats {
        let inner = &self.inner;
        let s = &inner.stats;
        // The cache reports only its occupancy: hit/miss counts live in the
        // server's atomic counters alone. (A previous revision kept a second
        // hit counter inside the cache and `debug_assert_eq!`-ed the two
        // here, but the cache lookup and the atomic increment are separate
        // steps — a concurrent submission between them made the assert fire
        // spuriously under load.)
        let (cache_entries, cache_entries_peak) = inner.cache.stats();
        let (active_sessions, resident_bytes) = {
            let reg = lock(&inner.registry);
            (reg.sessions.len(), reg.tenants.values().map(|t| t.resident_bytes).sum())
        };
        ServerStats {
            submissions: s.submissions.load(Ordering::Relaxed),
            analysis_hits: s.analysis_hits.load(Ordering::Relaxed),
            analysis_misses: s.analysis_misses.load(Ordering::Relaxed),
            refactors: s.refactors.load(Ordering::Relaxed),
            solve_requests: s.solve_requests.load(Ordering::Relaxed),
            solved_rhs: s.solved_rhs.load(Ordering::Relaxed),
            batches: s.batches.load(Ordering::Relaxed),
            max_batch_rhs: s.max_batch_rhs.load(Ordering::Relaxed),
            rejected_overloaded: s.rejected_overloaded.load(Ordering::Relaxed),
            rejected_invalid: s.rejected_invalid.load(Ordering::Relaxed),
            rejected_budget: s.rejected_budget.load(Ordering::Relaxed),
            evicted_sessions: s.evicted_sessions.load(Ordering::Relaxed),
            cache_entries,
            cache_entries_peak,
            active_sessions,
            resident_bytes,
        }
    }
}

impl Drop for Server {
    /// Graceful shutdown: workers drain every scheduled session, then exit.
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.ready_cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Mark the session schedulable if it is not already queued or being
/// drained; returns whether the caller should push it to the ready queue.
fn mark_schedulable(q: &mut SessionQueue) -> bool {
    if !q.scheduled && !q.in_service {
        q.scheduled = true;
        true
    } else {
        false
    }
}
