//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach crates.io, so this crate provides the
//! subset of proptest the workspace's property tests use: the [`Strategy`]
//! trait over ranges / [`Just`] / [`prop_oneof!`] unions, `any::<T>()`,
//! the [`proptest!`] test-generating macro, a case-count config, and the
//! `prop_assert*` macros. Sampling is deterministic: every test derives its
//! stream from a fixed seed XORed with the test name hash and the case
//! index, so failures reproduce across runs. There is no shrinking — the
//! failure report instead prints every sampled input of the failing case.

use std::ops::{Range, RangeInclusive};

pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Subset of `proptest::collection` — vectors with strategy-drawn elements.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy yielding `Vec`s whose length is drawn from `len` and whose
    /// elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `vec(element, len_range)` — mirrors `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn pick(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.pick(rng)).collect()
        }
    }
}

pub use rand::rngs::StdRng;
pub use rand::{Rng, RngCore, SeedableRng};

/// Error carried out of a failing property body (what `prop_assert!`
/// produces). The message already contains the formatted condition.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps full-solver properties fast on
        // the single-core CI container while still exploring broadly.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values for one property input.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draw one value.
    fn pick(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn pick(&self, rng: &mut StdRng) -> Self::Value {
        (**self).pick(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn pick(&self, rng: &mut StdRng) -> Self::Value {
        (**self).pick(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn pick(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8);

impl Strategy for Range<f64> {
    type Value = f64;
    fn pick(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<i64> {
    type Value = i64;
    fn pick(&self, rng: &mut StdRng) -> i64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<i32> {
    type Value = i32;
    fn pick(&self, rng: &mut StdRng) -> i32 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn pick(&self, rng: &mut StdRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

/// Tuples of strategies draw each component independently, mirroring
/// upstream proptest's tuple `Strategy` impls.
macro_rules! impl_tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn pick(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.pick(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);

/// Full-domain strategy for primitives, mirroring `proptest::arbitrary`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()` — uniform over the whole domain of `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(std::marker::PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn pick(&self, rng: &mut StdRng) -> bool {
        rng.gen()
    }
}

impl Strategy for Any<u64> {
    type Value = u64;
    fn pick(&self, rng: &mut StdRng) -> u64 {
        rng.gen()
    }
}

impl Strategy for Any<u32> {
    type Value = u32;
    fn pick(&self, rng: &mut StdRng) -> u32 {
        rng.gen()
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn pick(&self, rng: &mut StdRng) -> f64 {
        rng.gen()
    }
}

/// Uniform choice between boxed alternatives (what [`prop_oneof!`] builds).
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// A union over the given alternatives. Panics on empty input.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one alternative");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn pick(&self, rng: &mut StdRng) -> V {
        let idx = rng.gen_range(0..self.arms.len());
        self.arms[idx].pick(rng)
    }
}

/// Uniform choice between alternatives: `prop_oneof![a, b, c]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(Box::new($arm) as Box<dyn $crate::Strategy<Value = _>>),+])
    };
}

/// Property assertion: fails the current case (with context) if the
/// condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} at {}:{}", stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond), format!($($fmt)*), file!(), line!()
            )));
        }
    };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (va, vb) = (&$a, &$b);
        if !(va == vb) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}) at {}:{}",
                stringify!($a),
                stringify!($b),
                va,
                vb,
                file!(),
                line!()
            )));
        }
    }};
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (va, vb) = (&$a, &$b);
        if !(va != vb) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} != {} (both: {:?}) at {}:{}",
                stringify!($a),
                stringify!($b),
                va,
                file!(),
                line!()
            )));
        }
    }};
}

/// FNV-1a over the test name, so each property gets its own stream.
pub fn name_hash(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Runs one property over `cases` deterministic random cases.
///
/// `run` receives the case's RNG and returns `Err` (from `prop_assert!`)
/// or panics on failure; `describe` formats the sampled inputs for the
/// failure report.
pub fn run_property(
    name: &str,
    config: &ProptestConfig,
    mut run: impl FnMut(&mut StdRng) -> Result<String, (String, TestCaseError)>,
) {
    let base = 0x50524f50_54455354u64 ^ name_hash(name); // "PROPTEST"
    for case in 0..config.cases {
        let mut rng = StdRng::seed_from_u64(base.wrapping_add(case as u64));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(&mut rng)));
        match result {
            Ok(Ok(_inputs)) => {}
            Ok(Err((inputs, err))) => {
                panic!(
                    "property '{name}' failed at case {case}/{}:\n  inputs: {inputs}\n  {err}",
                    config.cases
                )
            }
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "<non-string panic>".into());
                panic!("property '{name}' panicked at case {case}/{}:\n  {msg}", config.cases)
            }
        }
    }
}

/// The test-generating macro. Supports an optional leading
/// `#![proptest_config(expr)]`, doc comments / attributes on each test, and
/// `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] — one plain `#[test]` per property.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            $crate::run_property(stringify!($name), &config, |__rng| {
                $(let $arg = $crate::Strategy::pick(&($strat), __rng);)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}  "),+),
                    $(&$arg),+
                );
                let __outcome: Result<(), $crate::TestCaseError> = (|| {
                    $body
                    Ok(())
                })();
                match __outcome {
                    Ok(()) => Ok(__inputs),
                    Err(e) => Err((__inputs, e)),
                }
            });
        }
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        /// Sampled values stay inside their ranges.
        #[test]
        fn ranges_respected(a in 3usize..10, b in 0u64..=4, f in -2.0..2.0) {
            prop_assert!((3..10).contains(&a));
            prop_assert!(b <= 4, "b = {b}");
            prop_assert!((-2.0..2.0).contains(&f));
        }

        /// Unions draw from every arm eventually; Just always yields its value.
        #[test]
        fn oneof_and_just(x in prop_oneof![Just(1u32), Just(2u32), Just(3u32)], b in any::<bool>()) {
            prop_assert!((1u32..=3).contains(&x));
            let _ = b;
            prop_assert_ne!(x, 0u32);
            prop_assert_eq!(x, x);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut picks1 = Vec::new();
        let mut picks2 = Vec::new();
        for out in [&mut picks1, &mut picks2] {
            crate::run_property("det", &ProptestConfig::with_cases(5), |rng| {
                out.push((0usize..100).pick(rng));
                Ok(String::new())
            });
        }
        assert_eq!(picks1, picks2);
    }

    #[test]
    #[should_panic(expected = "property 'fails' failed")]
    fn failing_property_reports() {
        crate::run_property("fails", &ProptestConfig::with_cases(3), |rng| {
            let v = (0usize..10).pick(rng);
            let f = (|| -> Result<(), TestCaseError> {
                prop_assert!(v > 100, "v = {v}");
                Ok(())
            })();
            match f {
                Ok(()) => Ok(format!("v = {v}")),
                Err(e) => Err((format!("v = {v}"), e)),
            }
        });
    }
}
