//! Training the multinomial logistic policy classifier.
//!
//! Two objectives:
//!
//! * [`Objective::ExpectedCost`] — the paper's Eq. 3: minimise
//!   `Σᵢ Σⱼ p_θ(Cⱼ|xᵢ)·Tᵢⱼ`. Errors are weighted by the *actual time they
//!   cost*, so the classifier is indifferent between near-optimal policies
//!   on tiny fronts but precise on huge ones.
//! * [`Objective::CrossEntropy`] — standard argmin-label classification,
//!   the approach of the prior auto-tuning work the paper contrasts with.
//!
//! Optimisation is Adam with several random restarts (the expected-cost
//! surface is mildly non-convex through the softmax); datasets here are
//! thousands of points with nine features, so full-batch gradients are
//! cheap and deterministic.

use crate::dataset::Dataset;
use mf_core::{raw_features, LinearPolicyModel, NUM_FEATURES};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Training objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Expected computation time (Eq. 3) — cost-sensitive.
    ExpectedCost,
    /// Multinomial cross-entropy on best-policy labels — cost-blind.
    CrossEntropy,
}

/// Training hyper-parameters.
#[derive(Debug, Clone)]
pub struct TrainOptions {
    /// Objective to minimise.
    pub objective: Objective,
    /// Adam step size.
    pub learning_rate: f64,
    /// Full-batch iterations per restart.
    pub iterations: usize,
    /// Random restarts (best final objective wins).
    pub restarts: usize,
    /// L2 regularisation strength.
    pub l2: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions {
            objective: Objective::ExpectedCost,
            learning_rate: 0.05,
            iterations: 1200,
            restarts: 3,
            l2: 1e-4,
            seed: 42,
        }
    }
}

const R: usize = 4; // policy classes

/// Train a policy model on a timing dataset.
pub fn train(data: &Dataset, opts: &TrainOptions) -> LinearPolicyModel {
    assert!(!data.is_empty(), "cannot train on an empty dataset");
    let n = data.len();

    // Standardisation parameters from the training data.
    let mut mean = [0.0f64; NUM_FEATURES];
    let mut std = [1.0f64; NUM_FEATURES];
    let feats: Vec<[f64; NUM_FEATURES]> =
        data.points.iter().map(|p| raw_features(p.m, p.k)).collect();
    for f in 1..NUM_FEATURES {
        let mu: f64 = feats.iter().map(|x| x[f]).sum::<f64>() / n as f64;
        let var: f64 = feats.iter().map(|x| (x[f] - mu) * (x[f] - mu)).sum::<f64>() / n as f64;
        mean[f] = mu;
        std[f] = var.sqrt().max(1e-12);
    }
    let z: Vec<[f64; NUM_FEATURES]> = feats
        .iter()
        .map(|x| {
            let mut v = [0.0; NUM_FEATURES];
            v[0] = 1.0;
            for f in 1..NUM_FEATURES {
                v[f] = (x[f] - mean[f]) / std[f];
            }
            v
        })
        .collect();

    // Normalised costs: scale times so gradients are well-conditioned. The
    // argmin structure (what we optimise for) is scale-invariant.
    let tmax =
        data.points.iter().flat_map(|p| p.times.iter().cloned()).fold(0.0f64, f64::max).max(1e-300);
    let costs: Vec<[f64; R]> = data
        .points
        .iter()
        .map(|p| {
            let mut c = [0.0; R];
            for (cj, &t) in c.iter_mut().zip(&p.times) {
                *cj = t / tmax;
            }
            c
        })
        .collect();
    let labels: Vec<usize> = data.points.iter().map(|p| p.best().index()).collect();

    let zeros = vec![[0.0f64; NUM_FEATURES]; R];

    // One optimization run per restart: restart 0 from zeros, the rest from
    // random inits drawn from a seed-fresh stream, so the candidate set for
    // a given objective is identical no matter which code path requests it.
    let restart_candidates = |objective: Objective| -> Vec<Vec<[f64; NUM_FEATURES]>> {
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let mut out = Vec::new();
        for restart in 0..opts.restarts.max(1) {
            let mut init = zeros.clone();
            if restart > 0 {
                for row in &mut init {
                    for v in row.iter_mut() {
                        *v = rng.gen_range(-0.5..0.5);
                    }
                }
            }
            out.push(optimize(objective, init, &z, &costs, &labels, opts));
        }
        out
    };
    let select_by_ce = |cands: Vec<Vec<[f64; NUM_FEATURES]>>| -> Vec<[f64; NUM_FEATURES]> {
        cands
            .into_iter()
            .min_by(|a, b| {
                let oa = objective_value(Objective::CrossEntropy, a, &z, &costs, &labels);
                let ob = objective_value(Objective::CrossEntropy, b, &z, &costs, &labels);
                oa.partial_cmp(&ob).expect("objective values are finite")
            })
            .expect("at least one restart")
    };

    let best_theta = match opts.objective {
        Objective::CrossEntropy => select_by_ce(restart_candidates(Objective::CrossEntropy)),
        Objective::ExpectedCost => {
            // Cost-sensitive training must never lose to cost-blind
            // training: the cross-entropy optimum lies in the same
            // hypothesis space. Build the exact model cross-entropy
            // training would return (bitwise — same restarts, same
            // selection) as an anchor, and deviate from it only when an
            // expected-cost candidate is *strictly* cheaper in realised
            // argmax cost on the training data. On ties the training
            // costs carry no evidence for deviating, and the anchor is
            // better determined on the cost-negligible points (it fits
            // them all equally instead of down-weighting them), so it is
            // the safer extrapolator.
            let anchor = select_by_ce(restart_candidates(Objective::CrossEntropy));
            let mut cands = restart_candidates(Objective::ExpectedCost);
            cands.push(optimize(
                Objective::ExpectedCost,
                anchor.clone(),
                &z,
                &costs,
                &labels,
                opts,
            ));
            let anchor_cost = argmax_cost(&anchor, &z, &costs);
            let best = cands
                .into_iter()
                .min_by(|a, b| {
                    let oa = argmax_cost(a, &z, &costs);
                    let ob = argmax_cost(b, &z, &costs);
                    oa.partial_cmp(&ob).expect("objective values are finite")
                })
                .expect("at least one restart");
            if argmax_cost(&best, &z, &costs) < anchor_cost {
                best
            } else {
                anchor
            }
        }
    };

    LinearPolicyModel { mean, std, theta: best_theta }
}

/// Full-batch Adam descent of `objective` from `init`.
fn optimize(
    objective: Objective,
    mut theta: Vec<[f64; NUM_FEATURES]>,
    z: &[[f64; NUM_FEATURES]],
    costs: &[[f64; R]],
    labels: &[usize],
    opts: &TrainOptions,
) -> Vec<[f64; NUM_FEATURES]> {
    let n = z.len();
    let mut mth = vec![[0.0f64; NUM_FEATURES]; R];
    let mut vth = vec![[0.0f64; NUM_FEATURES]; R];
    let (b1, b2, eps) = (0.9, 0.999, 1e-8);

    for it in 1..=opts.iterations {
        let mut grad = vec![[0.0f64; NUM_FEATURES]; R];
        for i in 0..n {
            let p = softmax_probs(&theta, &z[i]);
            match objective {
                Objective::ExpectedCost => {
                    let exp_cost: f64 = (0..R).map(|j| p[j] * costs[i][j]).sum();
                    for j in 0..R {
                        let g = p[j] * (costs[i][j] - exp_cost);
                        for f in 0..NUM_FEATURES {
                            grad[j][f] += g * z[i][f];
                        }
                    }
                }
                Objective::CrossEntropy => {
                    for j in 0..R {
                        let g = p[j] - if j == labels[i] { 1.0 } else { 0.0 };
                        for f in 0..NUM_FEATURES {
                            grad[j][f] += g * z[i][f];
                        }
                    }
                }
            }
        }
        // L2 (bias excluded) + Adam step.
        for j in 0..R {
            for f in 0..NUM_FEATURES {
                let mut g = grad[j][f] / n as f64;
                if f > 0 {
                    g += opts.l2 * theta[j][f];
                }
                mth[j][f] = b1 * mth[j][f] + (1.0 - b1) * g;
                vth[j][f] = b2 * vth[j][f] + (1.0 - b2) * g * g;
                let mhat = mth[j][f] / (1.0 - b1.powi(it as i32));
                let vhat = vth[j][f] / (1.0 - b2.powi(it as i32));
                theta[j][f] -= opts.learning_rate * mhat / (vhat.sqrt() + eps);
            }
        }
    }
    theta
}

/// Realised cost of deploying `theta` as an argmax classifier: each point
/// pays the (normalised) time of the policy with the highest score.
fn argmax_cost(
    theta: &[[f64; NUM_FEATURES]],
    z: &[[f64; NUM_FEATURES]],
    costs: &[[f64; R]],
) -> f64 {
    let mut total = 0.0;
    for (zi, ci) in z.iter().zip(costs) {
        let mut best = 0;
        let mut best_s = f64::NEG_INFINITY;
        for (j, row) in theta.iter().enumerate() {
            let s: f64 = row.iter().zip(zi).map(|(w, x)| w * x).sum();
            if s > best_s {
                best_s = s;
                best = j;
            }
        }
        total += ci[best];
    }
    total
}

/// Value of `objective` at `theta` (restart/candidate selection).
fn objective_value(
    objective: Objective,
    theta: &[[f64; NUM_FEATURES]],
    z: &[[f64; NUM_FEATURES]],
    costs: &[[f64; R]],
    labels: &[usize],
) -> f64 {
    let mut obj = 0.0;
    for i in 0..z.len() {
        let p = softmax_probs(theta, &z[i]);
        match objective {
            Objective::ExpectedCost => {
                obj += (0..R).map(|j| p[j] * costs[i][j]).sum::<f64>();
            }
            Objective::CrossEntropy => {
                obj -= p[labels[i]].max(1e-300).ln();
            }
        }
    }
    obj
}

fn softmax_probs(theta: &[[f64; NUM_FEATURES]], z: &[f64; NUM_FEATURES]) -> [f64; R] {
    let mut s = [0.0f64; R];
    for j in 0..R {
        s[j] = theta[j].iter().zip(z).map(|(a, b)| a * b).sum();
    }
    let mx = s.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for v in &mut s {
        *v = (*v - mx).exp();
        sum += *v;
    }
    for v in &mut s {
        *v /= sum;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DataPoint;
    use mf_core::PolicyKind;

    /// Synthetic per-policy times from simple latency/throughput curves —
    /// the same *shape* of cost structure the real simulator produces, so
    /// the best-policy map emerges from crossovers rather than being painted
    /// on.
    fn synthetic_times(m: usize, k: usize) -> [f64; 4] {
        let ops = (k as f64).powi(3) / 3.0
            + (m as f64) * (k as f64).powi(2)
            + (m as f64).powi(2) * k as f64;
        let bytes = 4.0 * ((m + k) as f64 * k as f64 + (m as f64).powi(2));
        let copy = bytes / 1.4e9;
        [
            ops / 10e9 + 1e-6,                                        // P1: CPU
            ops * 0.6 / 10e9 + ops * 0.4 / 120e9 + copy * 0.4 + 2e-5, // P2
            ops * 0.1 / 10e9 + ops * 0.9 / 150e9 + copy * 0.8 + 5e-5, // P3
            ops / 130e9 + copy * 1.3 + 2e-4,                          // P4: all GPU, more copies
        ]
    }

    fn synthetic_dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut points = Vec::new();
        for i in 0..n {
            // Mimic a real front-size distribution (paper §IV-A: ~97 % of
            // calls are small, yet their sheer count gives them aggregate
            // weight comparable to the few huge root fronts).
            let (m, k) = if i % 20 < 19 {
                (
                    (10f64.powf(rng.gen_range(0.0..2.2))) as usize,
                    (10f64.powf(rng.gen_range(0.3..1.6))) as usize,
                )
            } else {
                (
                    (10f64.powf(rng.gen_range(1.5..3.3))) as usize,
                    (10f64.powf(rng.gen_range(1.0..2.9))) as usize,
                )
            };
            points.push(DataPoint { m, k, times: synthetic_times(m, k) });
        }
        Dataset { points }
    }

    #[test]
    fn learns_synthetic_policy_map() {
        let data = synthetic_dataset(6000, 3);
        let (tr, te) = data.split(0.8, 1);
        let model = train(&tr, &TrainOptions::default());
        // Expected time is the metric Eq. 3 optimises — it must approach
        // the ideal hybrid closely (the paper reports within ~2 %).
        let t_model = te.predictor_time(|m, k| model.predict(m, k));
        let t_ideal = te.ideal_time();
        assert!(t_model < t_ideal * 1.05, "model time {t_model} vs ideal {t_ideal}");
        // Exact-argmin accuracy is ill-posed at crossover near-ties; the
        // meaningful notion is regret accuracy: the chosen policy lands
        // within 10 % of the best time on the vast majority of calls.
        let acc = te.predictor_regret_accuracy(|m, k| model.predict(m, k), 0.10);
        assert!(acc > 0.8, "regret accuracy {acc}");
    }

    #[test]
    fn beats_every_fixed_policy() {
        let data = synthetic_dataset(1000, 17);
        let model = train(&data, &TrainOptions::default());
        let t_model = data.predictor_time(|m, k| model.predict(m, k));
        for p in PolicyKind::ALL {
            assert!(t_model < data.fixed_policy_time(p), "{p} beats the trained model");
        }
    }

    #[test]
    fn cost_sensitive_beats_cross_entropy_on_skewed_costs() {
        // Feature-identical points with conflicting labels: 400 cheap calls
        // marginally favour P1; 30 calls at the *same* (m, k) are
        // catastrophically slow anywhere but P3. A label classifier (CE)
        // follows the majority and eats the 30 s penalty; the cost-sensitive
        // objective (EC) weighs the actual seconds and routes to P3.
        let mut points = Vec::new();
        for _ in 0..400 {
            points.push(DataPoint { m: 50, k: 10, times: [1e-5, 1.1e-5, 1.2e-5, 1.3e-5] });
        }
        for _ in 0..30 {
            points.push(DataPoint { m: 50, k: 10, times: [1.0, 0.9, 0.01, 0.05] });
        }
        let data = Dataset { points };
        let ec = train(
            &data,
            &TrainOptions { objective: Objective::ExpectedCost, ..Default::default() },
        );
        let ce = train(
            &data,
            &TrainOptions { objective: Objective::CrossEntropy, ..Default::default() },
        );
        let t_ec = data.predictor_time(|m, k| ec.predict(m, k));
        let t_ce = data.predictor_time(|m, k| ce.predict(m, k));
        // CE must pay the majority-label penalty; EC avoids it by a wide
        // margin (≈ 100× on this construction).
        assert!(
            t_ec < t_ce * 0.5,
            "expected-cost {t_ec} not clearly better than cross-entropy {t_ce}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let data = synthetic_dataset(300, 5);
        let a = train(&data, &TrainOptions::default());
        let b = train(&data, &TrainOptions::default());
        assert_eq!(a.theta, b.theta);
    }

    #[test]
    fn single_class_dataset_predicts_that_class() {
        // All points prefer P2.
        let points =
            (0..50).map(|i| DataPoint { m: 10 + i, k: 20, times: [2.0, 0.5, 1.5, 3.0] }).collect();
        let data = Dataset { points };
        let model = train(&data, &TrainOptions { iterations: 600, ..Default::default() });
        for i in 0..50 {
            assert_eq!(model.predict(10 + i, 20), PolicyKind::P2);
        }
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        train(&Dataset::default(), &TrainOptions::default());
    }

    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
}
