//! # mf-autotune — cost-sensitive policy learning (Section VI)
//!
//! Trains the multinomial logistic policy classifier by **directly
//! minimizing expected computation time** over empirical per-call timing
//! data (Eq. 3 of the paper):
//!
//! ```text
//! θ* = argmin_θ Σᵢ Σⱼ p_θ(y(xᵢ) = Cⱼ | xᵢ) · Tᵢⱼ
//! ```
//!
//! rather than classification accuracy — so a prediction error on a huge
//! front (costly) is penalised far more than one on a tiny front
//! (harmless), the paper's third desideratum. A plain cross-entropy
//! objective is included as the ablation comparator representing prior work
//! ([19], [20] in the paper).

pub mod dataset;
pub mod train;

pub use dataset::{DataPoint, Dataset};
pub use train::{train, Objective, TrainOptions};
