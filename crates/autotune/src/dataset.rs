//! Timing datasets: per-call `(m, k, T_i1..T_i4)` tuples.
//!
//! Built by running the factorization once per fixed policy with stats
//! recording and joining the per-supernode records — exactly how the paper
//! gathers its empirical data.

use mf_core::{FactorStats, PolicyKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One factor-update call with its observed time under every policy.
#[derive(Debug, Clone, Copy)]
pub struct DataPoint {
    /// Update-matrix size.
    pub m: usize,
    /// Pivot-block width.
    pub k: usize,
    /// Observed times `T_ij` for policies P1..P4, seconds.
    pub times: [f64; 4],
}

impl DataPoint {
    /// The retrospectively best policy for this call.
    pub fn best(&self) -> PolicyKind {
        let mut b = 0;
        for j in 1..4 {
            if self.times[j] < self.times[b] {
                b = j;
            }
        }
        PolicyKind::from_index(b)
    }

    /// Time under the best policy.
    pub fn best_time(&self) -> f64 {
        self.times.iter().cloned().fold(f64::INFINITY, f64::min)
    }
}

/// A collection of timed factor-update calls.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// The data points.
    pub points: Vec<DataPoint>,
}

impl Dataset {
    /// Join four per-policy factorization runs (same matrix, same symbolic
    /// structure) into a dataset. Records are matched by supernode id.
    ///
    /// # Panics
    /// Panics if the runs don't cover the same supernodes in the same order.
    pub fn from_policy_runs(runs: &[&FactorStats; 4]) -> Dataset {
        let n = runs[0].records.len();
        for r in runs {
            assert_eq!(r.records.len(), n, "runs must cover identical supernode sets");
        }
        let mut points = Vec::with_capacity(n);
        for i in 0..n {
            let base = &runs[0].records[i];
            let mut times = [0.0f64; 4];
            for (j, r) in runs.iter().enumerate() {
                let rec = &r.records[i];
                assert_eq!(rec.sn, base.sn, "record order mismatch at {i}");
                times[j] = rec.total;
            }
            points.push(DataPoint { m: base.m, k: base.k, times });
        }
        Dataset { points }
    }

    /// Merge several datasets (e.g. across the five-matrix suite).
    pub fn merge(sets: impl IntoIterator<Item = Dataset>) -> Dataset {
        let mut points = Vec::new();
        for s in sets {
            points.extend(s.points);
        }
        Dataset { points }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Deterministic shuffle + split into (train, test) with `train_frac`
    /// of the points in the training set.
    pub fn split(&self, train_frac: f64, seed: u64) -> (Dataset, Dataset) {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        for i in (1..idx.len()).rev() {
            let j = rng.gen_range(0..=i);
            idx.swap(i, j);
        }
        let ntrain = ((self.len() as f64) * train_frac).round() as usize;
        let train = Dataset { points: idx[..ntrain].iter().map(|&i| self.points[i]).collect() };
        let test = Dataset { points: idx[ntrain..].iter().map(|&i| self.points[i]).collect() };
        (train, test)
    }

    /// Total time if every call used the retrospectively best policy — the
    /// ideal hybrid `P_IH`.
    pub fn ideal_time(&self) -> f64 {
        self.points.iter().map(|p| p.best_time()).sum()
    }

    /// Total time if every call used the single fixed policy `p`.
    pub fn fixed_policy_time(&self, p: PolicyKind) -> f64 {
        self.points.iter().map(|d| d.times[p.index()]).sum()
    }

    /// Total time under an arbitrary predictor `(m, k) → policy`.
    pub fn predictor_time(&self, f: impl Fn(usize, usize) -> PolicyKind) -> f64 {
        self.points.iter().map(|d| d.times[f(d.m, d.k).index()]).sum()
    }

    /// Classification accuracy of a predictor against the best-policy labels.
    pub fn predictor_accuracy(&self, f: impl Fn(usize, usize) -> PolicyKind) -> f64 {
        if self.is_empty() {
            return 1.0;
        }
        let hit = self.points.iter().filter(|d| f(d.m, d.k) == d.best()).count();
        hit as f64 / self.len() as f64
    }

    /// Fraction of calls whose chosen policy is within `slack` (relative) of
    /// the best time — the accuracy notion that matters for a cost-sensitive
    /// learner, where exact argmin labels are ill-defined at near-ties.
    pub fn predictor_regret_accuracy(
        &self,
        f: impl Fn(usize, usize) -> PolicyKind,
        slack: f64,
    ) -> f64 {
        if self.is_empty() {
            return 1.0;
        }
        let hit = self
            .points
            .iter()
            .filter(|d| d.times[f(d.m, d.k).index()] <= d.best_time() * (1.0 + slack))
            .count();
        hit as f64 / self.len() as f64
    }

    /// The per-supernode oracle table for an ideal-hybrid factorization run
    /// (requires this dataset to be in supernode order of a single run).
    pub fn oracle_table(&self) -> Vec<PolicyKind> {
        self.points.iter().map(|p| p.best()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(m: usize, k: usize, times: [f64; 4]) -> DataPoint {
        DataPoint { m, k, times }
    }

    #[test]
    fn best_policy_is_argmin() {
        let p = point(10, 10, [4.0, 3.0, 5.0, 6.0]);
        assert_eq!(p.best(), PolicyKind::P2);
        assert_eq!(p.best_time(), 3.0);
    }

    #[test]
    fn ideal_and_fixed_times() {
        let d = Dataset {
            points: vec![point(1, 1, [1.0, 2.0, 3.0, 4.0]), point(2, 2, [4.0, 3.0, 2.0, 1.0])],
        };
        assert_eq!(d.ideal_time(), 2.0);
        assert_eq!(d.fixed_policy_time(PolicyKind::P1), 5.0);
        assert_eq!(d.fixed_policy_time(PolicyKind::P4), 5.0);
        // A perfect predictor reaches the ideal.
        let t = d.predictor_time(|m, _| if m == 1 { PolicyKind::P1 } else { PolicyKind::P4 });
        assert_eq!(t, d.ideal_time());
        assert_eq!(
            d.predictor_accuracy(|m, _| if m == 1 { PolicyKind::P1 } else { PolicyKind::P4 }),
            1.0
        );
    }

    #[test]
    fn split_partitions_all_points() {
        let d = Dataset { points: (0..100).map(|i| point(i, i, [1.0, 2.0, 3.0, 4.0])).collect() };
        let (tr, te) = d.split(0.8, 7);
        assert_eq!(tr.len(), 80);
        assert_eq!(te.len(), 20);
        // Deterministic.
        let (tr2, _) = d.split(0.8, 7);
        assert_eq!(
            tr.points.iter().map(|p| p.m).collect::<Vec<_>>(),
            tr2.points.iter().map(|p| p.m).collect::<Vec<_>>()
        );
    }

    #[test]
    fn merge_concatenates() {
        let a = Dataset { points: vec![point(1, 1, [1.0; 4])] };
        let b = Dataset { points: vec![point(2, 2, [1.0; 4]), point(3, 3, [1.0; 4])] };
        assert_eq!(Dataset::merge([a, b]).len(), 3);
    }

    #[test]
    fn oracle_table_matches_best() {
        let d = Dataset {
            points: vec![point(1, 1, [0.5, 2.0, 3.0, 4.0]), point(2, 2, [4.0, 3.0, 2.0, 0.1])],
        };
        assert_eq!(d.oracle_table(), vec![PolicyKind::P1, PolicyKind::P4]);
    }
}
