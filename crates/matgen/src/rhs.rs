//! Right-hand-side construction for solver tests.

use mf_sparse::SymCsc;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `b = A·x_true` for a deterministic pseudo-random `x_true`; returns
/// `(x_true, b)`. Solving `A·x = b` should recover `x_true`, which makes
/// forward-error measurement trivial.
pub fn rhs_for_solution(a: &SymCsc<f64>, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let n = a.order();
    let mut rng = StdRng::seed_from_u64(seed);
    let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut b = vec![0.0; n];
    a.matvec(&x, &mut b);
    (x, b)
}

/// `b = A·1` — the classic smoke-test right-hand side.
pub fn rhs_ones(a: &SymCsc<f64>) -> Vec<f64> {
    let n = a.order();
    let x = vec![1.0; n];
    let mut b = vec![0.0; n];
    a.matvec(&x, &mut b);
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{laplacian_2d, Stencil};

    #[test]
    fn rhs_matches_matvec() {
        let a = laplacian_2d(5, 5, Stencil::Faces);
        let (x, b) = rhs_for_solution(&a, 3);
        let r = a.residual(&x, &b);
        assert!(r.iter().all(|v| v.abs() < 1e-12));
    }

    #[test]
    fn ones_rhs_deterministic() {
        let a = laplacian_2d(4, 4, Stencil::Faces);
        assert_eq!(rhs_ones(&a), rhs_ones(&a));
    }
}
