//! Vector "elasticity-like" operators: 3 degrees of freedom per grid node.
//!
//! The paper's matrices (audikw_1, lmco, …) come from automotive/metal-forming
//! structural analysis — vector finite elements with ~3 DOF per mesh node and
//! 27-point nodal connectivity. This generator reproduces that *block
//! structure*: each node couples to its full 27-point neighborhood through a
//! 3×3 block, giving rows of ~81 nonzeros like the real matrices
//! (audikw_1: 77.6 M nnz / 0.94 M rows ≈ 82).

use mf_sparse::{SymCsc, Triplet};

/// SPD 3-DOF-per-node operator on an `nx × ny × nz` node grid
/// (order `3·nx·ny·nz`).
///
/// Off-diagonal blocks are `−w·(I + κ·d dᵀ/|d|²)` for neighbor offset `d`
/// (a crude but symmetric "spring" coupling of the displacement components);
/// nodal diagonal blocks accumulate the negated neighbor sums plus a shift,
/// which keeps the assembled matrix strictly block diagonally dominant and
/// therefore SPD.
pub fn elasticity_3d(nx: usize, ny: usize, nz: usize) -> SymCsc<f64> {
    assert!(nx > 0 && ny > 0 && nz > 0);
    let nodes = nx * ny * nz;
    let n = 3 * nodes;
    let node = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    let kappa = 0.6;

    // Half-space offsets of the 27-point neighborhood.
    let mut offsets: Vec<(i64, i64, i64)> = Vec::new();
    for dz in -1i64..=1 {
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                if (dz, dy, dx) > (0, 0, 0) {
                    offsets.push((dx, dy, dz));
                }
            }
        }
    }

    let mut t = Triplet::with_capacity(n, nodes * (offsets.len() * 9 + 6));
    // Per-node 3×3 diagonal accumulator (lower triangle suffices).
    let mut diag = vec![[0.0f64; 9]; nodes];

    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let a = node(x, y, z);
                for &(dx, dy, dz) in &offsets {
                    let (xx, yy, zz) = (x as i64 + dx, y as i64 + dy, z as i64 + dz);
                    if xx < 0
                        || yy < 0
                        || zz < 0
                        || xx >= nx as i64
                        || yy >= ny as i64
                        || zz >= nz as i64
                    {
                        continue;
                    }
                    let b = node(xx as usize, yy as usize, zz as usize);
                    let d = [dx as f64, dy as f64, dz as f64];
                    let len2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                    let w = 1.0 / len2;
                    // Coupling block C = w·(I + κ·ddᵀ/|d|²), symmetric PSD.
                    let mut c = [0.0f64; 9];
                    for r in 0..3 {
                        for s in 0..3 {
                            let mut v = kappa * d[r] * d[s] / len2;
                            if r == s {
                                v += 1.0;
                            }
                            c[r * 3 + s] = w * v;
                        }
                    }
                    // Off-diagonal block −C between nodes a (cols) and b (rows).
                    for r in 0..3 {
                        for s in 0..3 {
                            t.push(3 * b + r, 3 * a + s, -c[r * 3 + s]);
                        }
                    }
                    // Accumulate +C on both nodal diagonals.
                    for e in 0..9 {
                        diag[a][e] += c[e];
                        diag[b][e] += c[e];
                    }
                }
            }
        }
    }
    for (a, blk) in diag.iter().enumerate() {
        for r in 0..3 {
            for s in 0..=r {
                let mut v = blk[r * 3 + s];
                if r == s {
                    v += 0.05; // SPD shift
                }
                t.push(3 * a + r, 3 * a + s, v);
            }
        }
    }
    t.assemble()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_is_three_per_node() {
        let a = elasticity_3d(3, 2, 2);
        assert_eq!(a.order(), 36);
    }

    #[test]
    fn row_density_matches_structural_matrices() {
        // Interior nodes of a large-enough grid couple to 27 nodes × 3 DOF
        // ≈ 81 entries per row.
        let a = elasticity_3d(6, 6, 6);
        let per_row = a.nnz_full() as f64 / a.order() as f64;
        assert!(per_row > 50.0 && per_row < 82.0, "density {per_row}");
    }

    #[test]
    fn diagonal_positive_and_dominates_in_block_sense() {
        // The operator is SPD as a sum of PSD edge terms [[C,−C],[−C,C]]
        // plus a positive shift — scalar row dominance does NOT hold (the
        // κ·ddᵀ coupling spreads mass across components), so we check the
        // construction invariants instead: positive diagonal, and the nodal
        // diagonal block equals the sum of incident coupling blocks + shift.
        let a = elasticity_3d(3, 3, 3);
        let n = a.order();
        for j in 0..n {
            assert!(a.get(j, j).unwrap() > 0.0, "row {j} diag not positive");
        }
        // Nodal block symmetry.
        for node in 0..n / 3 {
            for r in 0..3 {
                for s in 0..r {
                    let v1 = a.get(3 * node + r, 3 * node + s).unwrap();
                    let v2 = a.get(3 * node + s, 3 * node + r).unwrap();
                    assert!((v1 - v2).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn quadratic_form_positive_on_probes() {
        // xᵀAx > 0 for a few deterministic probe vectors — a cheap SPD
        // smoke test (full check happens when potrf succeeds in mf-core).
        let a = elasticity_3d(3, 3, 2);
        let n = a.order();
        for seed in 0..5u64 {
            let mut s = (seed + 1).wrapping_mul(0x9E3779B97F4A7C15);
            let x: Vec<f64> = (0..n)
                .map(|_| {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
                })
                .collect();
            let mut ax = vec![0.0; n];
            a.matvec(&x, &mut ax);
            let q: f64 = x.iter().zip(&ax).map(|(a, b)| a * b).sum();
            assert!(q > 0.0, "probe {seed} gave xᵀAx = {q}");
        }
    }

    #[test]
    fn coupling_block_symmetric_across_nodes() {
        let a = elasticity_3d(2, 2, 2);
        // Block between node 0 and node 1 must be symmetric as a whole
        // matrix: A[3+r][s] == A[s][3+r] — guaranteed by SymCsc, but check
        // the block itself is symmetric too (ddᵀ construction).
        for r in 0..3 {
            for s in 0..3 {
                let v1 = a.get(3 + r, s).unwrap();
                let v2 = a.get(3 + s, r).unwrap();
                assert!((v1 - v2).abs() < 1e-12);
            }
        }
    }
}
