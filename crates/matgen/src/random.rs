//! Random sparse SPD matrices.

use mf_sparse::{SymCsc, Triplet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random sparse SPD matrix of order `n` with roughly `avg_nnz_per_row`
/// off-diagonal entries per row, made SPD by diagonal dominance.
///
/// Useful for fuzzing the symbolic/numeric pipeline with patterns that have
/// no mesh structure at all.
pub fn random_spd_sparse(n: usize, avg_nnz_per_row: usize, seed: u64) -> SymCsc<f64> {
    assert!(n > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Triplet::with_capacity(n, n * (avg_nnz_per_row + 1));
    let mut rowsum = vec![0.0f64; n];
    let target_edges = n * avg_nnz_per_row / 2;
    for _ in 0..target_edges {
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        if i == j {
            continue;
        }
        let v: f64 = rng.gen_range(-1.0..1.0);
        t.push(i, j, v);
        rowsum[i] += v.abs();
        rowsum[j] += v.abs();
    }
    for (i, &rs) in rowsum.iter().enumerate() {
        t.push(i, i, rs + 1.0);
    }
    t.assemble()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let a = random_spd_sparse(50, 6, 7);
        let b = random_spd_sparse(50, 6, 7);
        assert_eq!(a, b);
        let c = random_spd_sparse(50, 6, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn diagonally_dominant() {
        let a = random_spd_sparse(80, 8, 1);
        for j in 0..80 {
            let d = a.get(j, j).unwrap();
            let mut off = 0.0;
            for (&i, &v) in a.col_rows(j).iter().zip(a.col_vals(j)) {
                if i != j {
                    off += v.abs();
                }
            }
            // Column part of the row sum only — full dominance checked via
            // construction; here ensure positivity margin at least.
            assert!(d > off, "col {j}");
        }
    }

    #[test]
    fn density_in_expected_range() {
        let a = random_spd_sparse(200, 10, 3);
        let per_row = (a.nnz_lower() * 2 - 200) as f64 / 200.0;
        assert!(per_row > 5.0 && per_row < 12.0, "{per_row}");
    }
}
