//! Huge-N families for out-of-core experiments (the `sgi_4M` class).
//!
//! The paper's Table II tops out at `sgi_1M` (N ≈ 1.5 M); its discussion
//! of memory pressure points at the next size class — systems whose
//! *symbolic working-storage bound* no longer fits the device (or even
//! device + pinned host) memory, so a factorization must run out-of-core.
//! These generators are full-scale stand-ins for that class: every family
//! has **N ≥ 10⁶ at scale 1.0**, and their symbolic bounds exceed the
//! simulator's default device + host tier budgets
//! (`mf_gpusim::DEFAULT_DEVICE_BUDGET`, `mf_gpusim::TierParams`), which is
//! what makes them the acceptance matrices for
//! `FactorOptions::memory_budget`.
//!
//! Unlike [`crate::paper::paper_suite`] — scaled ~25× *down* so in-core
//! factorization takes seconds — these are meant to be analyzed at full
//! scale (symbolic phase only: that is cheap) and *factored* at reduced
//! scale or under a budget. [`HugeMatrix::generate_scaled`] follows the
//! same linear-per-dimension scaling idiom as the paper suite.

use crate::elasticity::elasticity_3d;
use crate::grid::{laplacian_3d, Stencil};
use mf_sparse::SymCsc;

/// Identifier for one huge-N family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HugeMatrix {
    /// `sgi_4M` stand-in: 27-point Laplacian on a 102³ grid
    /// (N = 1,061,208) — the scalar-PDE shape of `sgi_1M`, one size class
    /// up.
    Sgi4M,
    /// `elasticity_4M` stand-in: vector FE (3 dof/node) on a 71³ node
    /// grid (N = 3·71³ = 1,073,733) — the dense-row shape of `audikw_1` /
    /// `nastran-b` at out-of-core size.
    Elasticity4M,
}

impl HugeMatrix {
    /// Both families, scalar-PDE first.
    pub const ALL: [HugeMatrix; 2] = [HugeMatrix::Sgi4M, HugeMatrix::Elasticity4M];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            HugeMatrix::Sgi4M => "sgi_4M",
            HugeMatrix::Elasticity4M => "elasticity_4M",
        }
    }

    /// Matrix order at scale 1.0, computed arithmetically (generation at
    /// full scale allocates hundreds of megabytes; admission math should
    /// not have to pay that).
    pub fn full_order(self) -> usize {
        match self {
            HugeMatrix::Sgi4M => 102 * 102 * 102,
            HugeMatrix::Elasticity4M => 3 * 71 * 71 * 71,
        }
    }

    /// Generate at the full out-of-core scale (N ≥ 10⁶).
    pub fn generate(self) -> SymCsc<f64> {
        self.generate_scaled(1.0)
    }

    /// Generate a linearly-per-dimension scaled instance (`scale` ≤ 1
    /// shrinks the grid; test modes factor these, benches analyze the
    /// full-scale symbolic structure).
    pub fn generate_scaled(self, scale: f64) -> SymCsc<f64> {
        let s = |base: usize| ((base as f64 * scale).round() as usize).max(4);
        match self {
            HugeMatrix::Sgi4M => laplacian_3d(s(102), s(102), s(102), Stencil::Full),
            HugeMatrix::Elasticity4M => elasticity_3d(s(71), s(71), s(71)),
        }
    }
}

/// Generate the huge-N suite at a given scale (see [`HugeMatrix`] for the
/// scale conventions).
pub fn huge_suite(scale: f64) -> Vec<(HugeMatrix, SymCsc<f64>)> {
    HugeMatrix::ALL.iter().map(|&m| (m, m.generate_scaled(scale))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_orders_reach_the_size_class() {
        // Arithmetic only — full-scale generation is for release-mode
        // benches, not debug tests.
        for m in HugeMatrix::ALL {
            assert!(m.full_order() >= 1_000_000, "{} order {}", m.name(), m.full_order());
        }
        assert_eq!(HugeMatrix::Sgi4M.full_order(), 1_061_208);
        assert_eq!(HugeMatrix::Elasticity4M.full_order(), 1_073_733);
    }

    #[test]
    fn scaled_generation_matches_the_order_formula() {
        for m in HugeMatrix::ALL {
            let a = m.generate_scaled(0.08);
            assert!(a.order() > 100, "{} too small at 0.08", m.name());
            assert!(a.nnz_lower() > a.order(), "{} has no off-diagonals", m.name());
        }
        // The scaling idiom is linear per dimension, like the paper suite.
        let a = HugeMatrix::Sgi4M.generate_scaled(0.1);
        assert_eq!(a.order(), 10 * 10 * 10);
        let e = HugeMatrix::Elasticity4M.generate_scaled(0.1);
        assert_eq!(e.order(), 3 * 7 * 7 * 7);
    }

    #[test]
    fn suite_covers_both_shapes() {
        let suite = huge_suite(0.06);
        assert_eq!(suite.len(), 2);
        let scalar = &suite[0].1;
        let vector = &suite[1].1;
        // The elasticity family is denser per row — the shape contrast the
        // pair exists to preserve.
        let density = |a: &SymCsc<f64>| a.nnz_full() as f64 / a.order() as f64;
        assert!(density(vector) > density(scalar));
    }
}
