//! Stand-ins for the paper's test suite (Table II).
//!
//! | Paper matrix | N (paper) | NNZ (paper) | Stand-in | Rationale |
//! |---|---|---|---|---|
//! | audikw_1  | 943,695   | 77.6 M | elasticity 22³ nodes (N≈32k) | vector FE, dense rows (~80/row) |
//! | kyushu    | 990,692   | 26.3 M | 27-pt Laplacian 34³ (N≈39k)  | scalar-like low density (~27/row) |
//! | lmco      | 665,017   | 107.5 M| elasticity 20³ nodes (N=24k) | densest rows of the suite |
//! | nastran-b | 1,508,088 | 111.6 M| elasticity 24³ nodes (N≈41k) | large vector FE |
//! | sgi_1M    | 1,522,431 | 125.8 M| 27-pt Laplacian 36³ (N≈47k)  | largest N of the suite |
//!
//! Sizes are scaled ~25× down so a full in-process factorization of each
//! run takes seconds; the *relative* ordering of sizes and densities is
//! preserved so every qualitative statement in the paper's evaluation
//! (which matrix has the costliest root fronts, which is densest, …) still
//! has a referent. Simulated time — not wall time — provides the scale.

use crate::elasticity::elasticity_3d;
use crate::grid::{laplacian_2d, laplacian_3d, Stencil};
use mf_sparse::SymCsc;

/// Identifier for a stand-in of one of the paper's five matrices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperMatrix {
    /// Stand-in for audikw_1 (automotive crankshaft, vector FE).
    Audikw1,
    /// Stand-in for kyushu (structural, lower density).
    Kyushu,
    /// Stand-in for lmco (metal forming, densest rows).
    Lmco,
    /// Stand-in for nastran-b (large vector FE).
    NastranB,
    /// Stand-in for sgi_1M (largest order).
    Sgi1M,
}

impl PaperMatrix {
    /// All five, in the paper's table order.
    pub const ALL: [PaperMatrix; 5] = [
        PaperMatrix::Audikw1,
        PaperMatrix::Kyushu,
        PaperMatrix::Lmco,
        PaperMatrix::NastranB,
        PaperMatrix::Sgi1M,
    ];

    /// The paper's name for this matrix.
    pub fn name(self) -> &'static str {
        match self {
            PaperMatrix::Audikw1 => "audikw_1",
            PaperMatrix::Kyushu => "kyushu",
            PaperMatrix::Lmco => "lmco",
            PaperMatrix::NastranB => "nastran-b",
            PaperMatrix::Sgi1M => "sgi_1M",
        }
    }

    /// `(N, NNZ)` as reported in the paper's Table II.
    pub fn paper_dims(self) -> (usize, usize) {
        match self {
            PaperMatrix::Audikw1 => (943_695, 77_651_847),
            PaperMatrix::Kyushu => (990_692, 26_268_136),
            PaperMatrix::Lmco => (665_017, 107_514_163),
            PaperMatrix::NastranB => (1_508_088, 111_614_436),
            PaperMatrix::Sgi1M => (1_522_431, 125_755_875),
        }
    }

    /// Generate the stand-in at the default (full) experiment scale.
    pub fn generate(self) -> SymCsc<f64> {
        self.generate_scaled(1.0)
    }

    /// Generate a further-scaled stand-in (`scale` ≤ 1 shrinks the grid
    /// linearly per dimension; used by quick test modes).
    pub fn generate_scaled(self, scale: f64) -> SymCsc<f64> {
        let s = |base: usize| ((base as f64 * scale).round() as usize).max(4);
        match self {
            PaperMatrix::Audikw1 => elasticity_3d(s(22), s(22), s(22)),
            PaperMatrix::Kyushu => laplacian_3d(s(34), s(34), s(34), Stencil::Full),
            PaperMatrix::Lmco => elasticity_3d(s(20), s(20), s(20)),
            PaperMatrix::NastranB => {
                // Keep nastran-b strictly larger than audikw_1 at every
                // scale: at small scales both 22·scale and 24·scale round to
                // the same grid (e.g. 7³ at scale 0.30), which silently made
                // the two stand-ins byte-identical in the benches.
                let d = s(24).max(s(22) + 1);
                elasticity_3d(d, d, d)
            }
            PaperMatrix::Sgi1M => laplacian_3d(s(36), s(36), s(36), Stencil::Full),
        }
    }
}

/// Generate the full five-matrix suite at a given scale.
pub fn paper_suite(scale: f64) -> Vec<(PaperMatrix, SymCsc<f64>)> {
    PaperMatrix::ALL.iter().map(|&m| (m, m.generate_scaled(scale))).collect()
}

/// A 2-D suite used for the paper's closing remark that "one might not
/// observe such speedups for large 2D problems": square 9-point grids of
/// comparable order to the scaled 3-D suite.
pub fn suite_2d(scale: f64) -> Vec<(&'static str, SymCsc<f64>)> {
    let s = |base: usize| ((base as f64 * scale).round() as usize).max(8);
    vec![
        ("grid2d-180", laplacian_2d(s(180), s(180), Stencil::Full)),
        ("grid2d-220", laplacian_2d(s(220), s(220), Stencil::Full)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_five_generate_at_small_scale() {
        for (m, a) in paper_suite(0.35) {
            assert!(a.order() > 100, "{} too small", m.name());
            assert!(a.nnz_lower() > a.order(), "{} has no off-diagonals", m.name());
        }
    }

    #[test]
    fn relative_order_of_sizes_preserved() {
        // sgi_1M stand-in must be the largest N; lmco the smallest, as in
        // Table II.
        let suite = paper_suite(0.3);
        let n_of = |pm: PaperMatrix| suite.iter().find(|(m, _)| *m == pm).unwrap().1.order();
        assert!(n_of(PaperMatrix::Sgi1M) >= n_of(PaperMatrix::Kyushu));
        assert!(n_of(PaperMatrix::Lmco) <= n_of(PaperMatrix::Audikw1));
        assert!(n_of(PaperMatrix::Lmco) <= n_of(PaperMatrix::NastranB));
    }

    #[test]
    fn density_ordering_matches_paper() {
        // Elasticity stand-ins (audikw_1, lmco, nastran-b) are denser per
        // row than Laplacian stand-ins (kyushu), mirroring Table II.
        let suite = paper_suite(0.3);
        let density = |pm: PaperMatrix| {
            let a = &suite.iter().find(|(m, _)| *m == pm).unwrap().1;
            a.nnz_full() as f64 / a.order() as f64
        };
        assert!(density(PaperMatrix::Lmco) > density(PaperMatrix::Kyushu));
        assert!(density(PaperMatrix::Audikw1) > density(PaperMatrix::Kyushu));
    }

    #[test]
    fn stand_ins_pairwise_distinct_at_bench_scale() {
        // The bench suite default is scale 0.30; the nastran-b/audikw_1
        // grids must not collapse onto each other there (or at full scale).
        for scale in [0.3, 1.0] {
            let suite = paper_suite(scale);
            for i in 0..suite.len() {
                for j in i + 1..suite.len() {
                    let (ma, a) = &suite[i];
                    let (mb, b) = &suite[j];
                    assert!(
                        a.order() != b.order() || a.nnz_lower() != b.nnz_lower(),
                        "{} and {} generate identical stand-ins at scale {scale}",
                        ma.name(),
                        mb.name()
                    );
                }
            }
        }
    }

    #[test]
    fn paper_dims_table() {
        assert_eq!(PaperMatrix::Audikw1.paper_dims().0, 943_695);
        assert_eq!(PaperMatrix::Sgi1M.paper_dims().1, 125_755_875);
        assert_eq!(PaperMatrix::ALL.len(), 5);
    }

    #[test]
    fn suite_2d_generates() {
        let s = suite_2d(0.25);
        assert_eq!(s.len(), 2);
        for (_, a) in s {
            assert!(a.order() > 1000);
        }
    }
}
