//! Scalar Laplacian operators on regular grids.

use mf_sparse::{SymCsc, Triplet};

/// Finite-difference stencil for [`laplacian_3d`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stencil {
    /// Face neighbors only (7-point in 3-D, 5-point in 2-D).
    Faces,
    /// Faces + edges + corners (27-point in 3-D, 9-point in 2-D) — closer
    /// to the connectivity of trilinear finite elements, as in the paper's
    /// structural matrices.
    Full,
}

/// SPD 2-D grid Laplacian on `nx × ny` points.
///
/// Diagonal is the neighbor-weight sum plus a small shift, making the matrix
/// strictly diagonally dominant (hence SPD) and well-conditioned enough for
/// single-precision factorization experiments.
pub fn laplacian_2d(nx: usize, ny: usize, stencil: Stencil) -> SymCsc<f64> {
    assert!(nx > 0 && ny > 0);
    let n = nx * ny;
    let idx = |x: usize, y: usize| y * nx + x;
    let offsets: &[(i64, i64, f64)] = match stencil {
        Stencil::Faces => &[(1, 0, 1.0), (0, 1, 1.0)],
        Stencil::Full => &[(1, 0, 1.0), (0, 1, 1.0), (1, 1, 0.5), (1, -1, 0.5)],
    };
    let mut t = Triplet::with_capacity(n, n * (offsets.len() + 1));
    let mut diag = vec![0.0f64; n];
    for y in 0..ny {
        for x in 0..nx {
            let a = idx(x, y);
            for &(dx, dy, w) in offsets {
                let (xx, yy) = (x as i64 + dx, y as i64 + dy);
                if xx < 0 || yy < 0 || xx >= nx as i64 || yy >= ny as i64 {
                    continue;
                }
                let b = idx(xx as usize, yy as usize);
                t.push(b, a, -w);
                diag[a] += w;
                diag[b] += w;
            }
        }
    }
    for (a, d) in diag.iter().enumerate() {
        t.push(a, a, d + 0.05);
    }
    t.assemble()
}

/// SPD 3-D grid Laplacian on `nx × ny × nz` points.
pub fn laplacian_3d(nx: usize, ny: usize, nz: usize, stencil: Stencil) -> SymCsc<f64> {
    assert!(nx > 0 && ny > 0 && nz > 0);
    let n = nx * ny * nz;
    let idx = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    // Half-space of neighbor offsets (each edge added once).
    let mut offsets: Vec<(i64, i64, i64, f64)> = Vec::new();
    match stencil {
        Stencil::Faces => {
            offsets.extend([(1, 0, 0, 1.0), (0, 1, 0, 1.0), (0, 0, 1, 1.0)]);
        }
        Stencil::Full => {
            for dz in -1i64..=1 {
                for dy in -1i64..=1 {
                    for dx in -1i64..=1 {
                        if (dz, dy, dx) <= (0, 0, 0) {
                            continue; // keep strict half-space, skip self
                        }
                        let dist2 = (dx * dx + dy * dy + dz * dz) as f64;
                        offsets.push((dx, dy, dz, 1.0 / dist2));
                    }
                }
            }
        }
    }
    let mut t = Triplet::with_capacity(n, n * (offsets.len() + 1));
    let mut diag = vec![0.0f64; n];
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let a = idx(x, y, z);
                for &(dx, dy, dz, w) in &offsets {
                    let (xx, yy, zz) = (x as i64 + dx, y as i64 + dy, z as i64 + dz);
                    if xx < 0
                        || yy < 0
                        || zz < 0
                        || xx >= nx as i64
                        || yy >= ny as i64
                        || zz >= nz as i64
                    {
                        continue;
                    }
                    let b = idx(xx as usize, yy as usize, zz as usize);
                    t.push(b, a, -w);
                    diag[a] += w;
                    diag[b] += w;
                }
            }
        }
    }
    for (a, d) in diag.iter().enumerate() {
        t.push(a, a, d + 0.05);
    }
    t.assemble()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_symmetry() {
        let a = laplacian_2d(4, 3, Stencil::Faces);
        assert_eq!(a.order(), 12);
        // 5-point: interior row sums ≈ shift only (diagonally dominant).
        assert!(a.get(0, 0).unwrap() > 0.0);
        assert_eq!(a.get(1, 0), Some(-1.0));
        assert_eq!(a.get(4, 0), Some(-1.0));
        assert_eq!(a.get(5, 0), None); // diagonal neighbor absent for Faces
    }

    #[test]
    fn full_stencil_has_diagonal_neighbors() {
        let a = laplacian_2d(4, 3, Stencil::Full);
        assert_eq!(a.get(5, 0), Some(-0.5));
        let b = laplacian_3d(3, 3, 3, Stencil::Full);
        // Corner neighbor weight 1/3.
        // Node (1,1,1) in x-fastest order: (1·3 + 1)·3 + 1 = 13.
        let corner = b.get(13, 0).unwrap();
        assert!((corner + 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn nnz_counts_7pt() {
        // 7-point n×n×n grid: 3·n²·(n−1) off-diagonal edges + n³ diagonal.
        let n = 4;
        let a = laplacian_3d(n, n, n, Stencil::Faces);
        let edges = 3 * n * n * (n - 1);
        assert_eq!(a.nnz_lower(), edges + n * n * n);
    }

    #[test]
    fn diagonally_dominant_hence_spd() {
        for a in [laplacian_2d(6, 5, Stencil::Full), laplacian_3d(4, 4, 4, Stencil::Full)] {
            let n = a.order();
            for j in 0..n {
                let d = a.get(j, j).unwrap();
                // Row sum of absolute off-diagonals (full symmetric matrix).
                let mut off = 0.0;
                for i in 0..n {
                    if i != j {
                        if let Some(v) = a.get(i, j) {
                            off += v.abs();
                        }
                    }
                }
                assert!(d > off, "row {j}: diag {d} ≤ offsum {off}");
            }
        }
    }

    #[test]
    fn matvec_constant_vector_gives_shift() {
        // A·1 = shift·1 for interior-complete rows (the -w and +w cancel).
        let a = laplacian_3d(5, 5, 5, Stencil::Faces);
        let x = vec![1.0; a.order()];
        let mut y = vec![0.0; a.order()];
        a.matvec(&x, &mut y);
        for &v in &y {
            assert!((v - 0.05).abs() < 1e-9);
        }
    }
}
