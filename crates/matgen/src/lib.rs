//! # mf-matgen — test matrix generators
//!
//! The paper evaluates on five proprietary/industrial SPD matrices from 3-D
//! structural analysis (Table II). Those are not redistributable, so this
//! crate generates structurally equivalent stand-ins: scalar Laplacians on
//! 2-D/3-D grids (7- and 27-point stencils), 3-DOF vector "elasticity"
//! operators, and random SPD patterns. The [`paper`] module maps each paper
//! matrix to a scaled stand-in whose elimination-tree/front-size *shape*
//! matches the original's role in the evaluation (see DESIGN.md §1).

pub mod elasticity;
pub mod grid;
pub mod huge;
pub mod paper;
pub mod random;
pub mod rhs;

pub use elasticity::elasticity_3d;
pub use grid::{laplacian_2d, laplacian_3d, Stencil};
pub use huge::{huge_suite, HugeMatrix};
pub use paper::{paper_suite, PaperMatrix};
pub use random::random_spd_sparse;
pub use rhs::{rhs_for_solution, rhs_ones};
