//! Front working storage: the postorder LIFO arena that makes the serial
//! numeric phase allocation-free.
//!
//! [`FrontArena`] is the classical multifrontal working-storage stack: one
//! buffer sized by `SymbolicFactor::update_stack_peak` up front, fronts
//! assembled at the top, finished update matrices compacted down over the
//! children they consumed. In a postorder traversal a supernode's children
//! occupy the top contiguous region of the stack when the supernode runs,
//! so compaction is a per-column `copy_within` — no second buffer.
//!
//! The parallel driver cannot use one stack — a worker cannot
//! stack-discipline updates that a *different* worker will consume — so it
//! reuses a per-worker front buffer and hands updates over in transient
//! per-edge buffers instead (see `parallel.rs`).

use mf_dense::Scalar;

/// A bump/stack allocator for frontal matrices with postorder LIFO
/// discipline. All storage is one `Vec` allocated (zeroed) at
/// construction; `high_water` tracks the peak extent actually used so the
/// symbolic bound can be checked against reality.
#[derive(Debug)]
pub struct FrontArena<T> {
    buf: Vec<T>,
    top: usize,
    high_water: usize,
    /// Peak *tier-resident* bytes an out-of-core driver reported via
    /// [`Self::note_resident_bytes`]. Kept separate from `high_water`,
    /// which stays the logical (symbolic-bound) figure: under a memory
    /// budget the logical stack extent is unchanged — eviction only
    /// changes which bytes are device-resident — so the PR 4
    /// `peak == symbolic bound` invariant keeps holding for
    /// `FactorStats::peak_front_bytes` while the budgeted residency is
    /// reported here.
    resident_high_water: usize,
}

impl<T: Scalar> FrontArena<T> {
    /// Allocate an arena of `len` scalars (zero-initialised — fronts only
    /// re-zero their lower trapezoid afterwards, so the first use of every
    /// region must find zeros just like a fresh heap buffer would provide).
    pub fn with_len(len: usize) -> Self {
        FrontArena { buf: vec![T::ZERO; len], top: 0, high_water: 0, resident_high_water: 0 }
    }

    /// Current stack top (scalars in live use below it).
    pub fn top(&self) -> usize {
        self.top
    }

    /// Peak stack extent reached so far, in scalars.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Push an `len`-scalar front region on top of the stack. Returns the
    /// live region *below* the front (the buffered child updates this
    /// supernode will consume) and the front region itself, as disjoint
    /// borrows.
    ///
    /// Panics if the symbolic working-storage bound was undersized — which
    /// the analysis guarantees cannot happen for a postorder traversal.
    pub fn split_for_front(&mut self, len: usize) -> (&[T], &mut [T]) {
        let end = self.top + len;
        assert!(
            end <= self.buf.len(),
            "front arena overflow: need {end}, capacity {}",
            self.buf.len()
        );
        self.high_water = self.high_water.max(end);
        let (below, rest) = self.buf.split_at_mut(self.top);
        (below, &mut rest[..len])
    }

    /// Retire the front at `front_off` (its `s × s` region starts there and
    /// is the current stack top): pack its trailing `m × m` update block
    /// (lower triangle, leading dimension `s`, at offset `(k, k)`) down to
    /// `dest`, releasing the front and the consumed child updates above
    /// `dest` in one move. The new stack top is `dest + m²`.
    ///
    /// `dest ≤ front_off` and the packed column reads always sit at or
    /// above their destination, so the per-column `copy_within` is safe in
    /// forward order.
    pub fn pop_and_compact(&mut self, front_off: usize, s: usize, k: usize, dest: usize) {
        debug_assert!(dest <= front_off);
        let m = s - k;
        for j in 0..m {
            let src = front_off + (k + j) * s + (k + j);
            let dst = dest + j * m + j;
            debug_assert!(dst <= src);
            self.buf.copy_within(src..src + (m - j), dst);
        }
        self.top = dest + m * m;
    }

    /// Packed update region written by the last [`Self::pop_and_compact`]
    /// for a supernode whose update landed at `off` (test helper).
    pub fn update_at(&self, off: usize, m: usize) -> &[T] {
        &self.buf[off..off + m * m]
    }

    /// Mutable view of a packed update region — the out-of-core driver
    /// degrades spill-bound updates in place through this.
    pub fn update_at_mut(&mut self, off: usize, m: usize) -> &mut [T] {
        &mut self.buf[off..off + m * m]
    }

    /// Record the device-resident bytes an out-of-core plan kept of this
    /// arena's blocks during one elimination step (fronts + live updates
    /// minus evicted ones). Monotone max.
    pub fn note_resident_bytes(&mut self, bytes: usize) {
        self.resident_high_water = self.resident_high_water.max(bytes);
    }

    /// Peak tier-resident bytes reported via [`Self::note_resident_bytes`];
    /// `0` for in-core runs, where residency equals the logical
    /// [`Self::high_water`] extent.
    pub fn resident_high_water_bytes(&self) -> usize {
        self.resident_high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_returns_disjoint_zeroed_regions() {
        let mut arena = FrontArena::<f64>::with_len(16);
        let (below, front) = arena.split_for_front(9);
        assert!(below.is_empty());
        assert_eq!(front.len(), 9);
        assert!(front.iter().all(|&x| x == 0.0));
        front[0] = 7.0;
        assert_eq!(arena.high_water(), 9);
    }

    #[test]
    fn lifo_compaction_packs_update_over_front() {
        // One leaf front: s = 3, k = 1, m = 2, at offset 0. Lower triangle
        // filled with markers; compaction must leave the packed 2×2 update
        // at offset 0 and set top past it.
        let mut arena = FrontArena::<f64>::with_len(16);
        {
            let (_, front) = arena.split_for_front(9);
            // col-major 3×3: update block rows/cols {1,2}.
            front[4] = 11.0; // (1,1)
            front[5] = 21.0; // (2,1)
            front[8] = 22.0; // (2,2)
        }
        arena.pop_and_compact(0, 3, 1, 0);
        assert_eq!(arena.top(), 4);
        let u = arena.update_at(0, 2);
        assert_eq!(u[0], 11.0);
        assert_eq!(u[1], 21.0);
        assert_eq!(u[3], 22.0);
    }

    #[test]
    fn parent_front_sees_child_updates_below() {
        // Child at offset 0 leaves a 2×2 update; the parent front pushed on
        // top must see it in `below` at the recorded offset.
        let mut arena = FrontArena::<f64>::with_len(64);
        {
            let (_, front) = arena.split_for_front(9);
            front[4] = 5.0; // (1,1) of s=3,k=1 front → update (0,0)
        }
        arena.pop_and_compact(0, 3, 1, 0);
        let child_off = 0;
        let (below, front) = arena.split_for_front(16);
        assert_eq!(below[child_off], 5.0);
        assert_eq!(front.len(), 16);
        // Root front: m = 0 ⇒ compaction to the child's offset frees all.
        arena.pop_and_compact(4, 4, 4, child_off);
        assert_eq!(arena.top(), 0);
        assert_eq!(arena.high_water(), 4 + 16);
    }

    #[test]
    fn resident_tracking_is_separate_from_logical_high_water() {
        let mut arena = FrontArena::<f64>::with_len(32);
        let _ = arena.split_for_front(16);
        assert_eq!(arena.high_water(), 16);
        // In-core runs never note residency.
        assert_eq!(arena.resident_high_water_bytes(), 0);
        // An out-of-core driver reports what the plan kept resident; the
        // logical figure must not move.
        arena.note_resident_bytes(40);
        arena.note_resident_bytes(24);
        assert_eq!(arena.resident_high_water_bytes(), 40);
        assert_eq!(arena.high_water(), 16);
        // update_at_mut exposes the same region update_at reads.
        arena.pop_and_compact(0, 4, 2, 0);
        arena.update_at_mut(0, 2)[0] = 3.5;
        assert_eq!(arena.update_at(0, 2)[0], 3.5);
    }

    #[test]
    fn overflow_panics() {
        let mut arena = FrontArena::<f32>::with_len(8);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = arena.split_for_front(9);
        }));
        assert!(result.is_err());
    }
}
