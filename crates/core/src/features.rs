//! Feature representation and the linear policy model (Section VI-B).
//!
//! The paper's feature vector for a factor-update call with dimensions
//! `(m, k)` is `[m, k, m/k, m², mk, k², k³, mk²]` plus a bias term. The
//! trained multinomial logistic classifier reduces at prediction time to the
//! linear rule of Eq. (5): `ŷ(A) = argmax_j x(A)·θ_j` — an `O(d·r)`
//! overhead per call. Training lives in `mf-autotune`; the model itself
//! lives here so the factorization loop can consult it without a dependency
//! cycle.

use crate::policy::PolicyKind;

/// Number of features including the bias term.
pub const NUM_FEATURES: usize = 12;

/// The paper's feature map `[m, k, m/k, m², mk, k², k³, mk²]` plus bias,
/// augmented with `ln(1+m)`, `ln(1+k)` and `ln(1+N_total)`.
///
/// The logarithmic features are a deliberate deviation from the paper's raw
/// polynomial set (documented in DESIGN.md): after z-score standardisation,
/// raw polynomials spanning ten orders of magnitude collapse almost all
/// calls onto a single point, making op-count *thresholds* — the very
/// structure the best-policy map has — inexpressible by a linear boundary.
/// A log of the total op count makes every baseline-hybrid-style threshold
/// linearly separable while keeping the paper's original features available
/// to the classifier.
pub fn raw_features(m: usize, k: usize) -> [f64; NUM_FEATURES] {
    let mf = m as f64;
    let kf = k as f64;
    let ratio = if k == 0 { 0.0 } else { mf / kf };
    let ops = kf * kf * kf / 3.0 + mf * kf * kf + mf * mf * kf;
    [
        1.0,
        mf,
        kf,
        ratio,
        mf * mf,
        mf * kf,
        kf * kf,
        kf * kf * kf,
        mf * kf * kf,
        (1.0 + mf).ln(),
        (1.0 + kf).ln(),
        (1.0 + ops).ln(),
    ]
}

/// A trained linear policy classifier: per-class weight vectors over the
/// standardized feature space.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearPolicyModel {
    /// Per-feature means used for standardization (bias untouched).
    pub mean: [f64; NUM_FEATURES],
    /// Per-feature standard deviations (bias untouched).
    pub std: [f64; NUM_FEATURES],
    /// Class weight matrix, `theta[class][feature]`, one row per policy.
    pub theta: Vec<[f64; NUM_FEATURES]>,
}

impl LinearPolicyModel {
    /// A model that always predicts `p` (useful as a degenerate baseline and
    /// in tests).
    pub fn constant(p: PolicyKind) -> Self {
        let mut theta = vec![[0.0; NUM_FEATURES]; PolicyKind::ALL.len()];
        theta[p.index()][0] = 1.0;
        LinearPolicyModel { mean: [0.0; NUM_FEATURES], std: [1.0; NUM_FEATURES], theta }
    }

    /// Standardize a raw feature vector.
    pub fn standardize(&self, x: &[f64; NUM_FEATURES]) -> [f64; NUM_FEATURES] {
        let mut z = [0.0; NUM_FEATURES];
        z[0] = 1.0;
        for i in 1..NUM_FEATURES {
            let s = if self.std[i] > 0.0 { self.std[i] } else { 1.0 };
            z[i] = (x[i] - self.mean[i]) / s;
        }
        z
    }

    /// Per-class linear scores for a call (Eq. 5's `x·θ_j`).
    pub fn scores(&self, m: usize, k: usize) -> Vec<f64> {
        let z = self.standardize(&raw_features(m, k));
        self.theta.iter().map(|row| row.iter().zip(&z).map(|(a, b)| a * b).sum()).collect()
    }

    /// Predict the best policy for a factor-update of dimensions `(m, k)`.
    pub fn predict(&self, m: usize, k: usize) -> PolicyKind {
        let s = self.scores(m, k);
        let mut best = 0;
        for (j, &v) in s.iter().enumerate() {
            if v > s[best] {
                best = j;
            }
        }
        PolicyKind::from_index(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_vector_matches_paper_definition_plus_logs() {
        let x = raw_features(10, 4);
        assert_eq!(&x[..9], &[1.0, 10.0, 4.0, 2.5, 100.0, 40.0, 16.0, 64.0, 160.0]);
        let ops: f64 = 64.0 / 3.0 + 160.0 + 400.0;
        assert!((x[9] - 11f64.ln()).abs() < 1e-12);
        assert!((x[10] - 5f64.ln()).abs() < 1e-12);
        assert!((x[11] - (1.0f64 + ops).ln()).abs() < 1e-12);
    }

    #[test]
    fn zero_k_does_not_divide_by_zero() {
        let x = raw_features(5, 0);
        assert!(x.iter().all(|v| v.is_finite()));
        assert_eq!(x[3], 0.0);
    }

    #[test]
    fn constant_model_predicts_constantly() {
        for p in PolicyKind::ALL {
            let m = LinearPolicyModel::constant(p);
            assert_eq!(m.predict(0, 10), p);
            assert_eq!(m.predict(5000, 800), p);
        }
    }

    #[test]
    fn standardization_centers_and_scales() {
        let mut model = LinearPolicyModel::constant(PolicyKind::P1);
        model.mean[1] = 100.0;
        model.std[1] = 50.0;
        let z = model.standardize(&raw_features(200, 1));
        assert!((z[1] - 2.0).abs() < 1e-12);
        assert_eq!(z[0], 1.0, "bias survives standardization");
    }

    #[test]
    fn prediction_follows_scores() {
        // Hand-build a model that selects by m: theta rows score m.
        let mut model = LinearPolicyModel::constant(PolicyKind::P1);
        model.theta = vec![[0.0; NUM_FEATURES]; 4];
        model.theta[0][0] = 1.0; // P1 constant score 1
        model.theta[3][1] = 0.01; // P4 score grows with m
        assert_eq!(model.predict(10, 10), PolicyKind::P1);
        assert_eq!(model.predict(1000, 10), PolicyKind::P4);
    }
}
