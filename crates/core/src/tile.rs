//! Intra-front tiled task DAG: blocked Cholesky of one frontal matrix as
//! `potrf(k)` → `trsm(i,k)` → `syrk/gemm(i,j,k)` tile tasks.
//!
//! Tree-level parallelism starves near the root of the elimination tree:
//! the last few huge fronts serialize the whole factorization. The classic
//! fix — SyLVER's `factor_front_posdef` and the paper-era blocked
//! algorithms — decomposes each large front into tile tasks scheduled on
//! the same runtime as tree nodes. This module holds everything both
//! drivers share:
//!
//! * [`TilingOptions`] / [`TilePlan`] — the symbolic tile plan: a fixed
//!   tile size over the front's column-major layout, the task list in
//!   **canonical serial order**, and the dependency lists that make any
//!   topological execution order produce the same bits.
//! * [`FrontView`] + [`exec_tile_task`] — the packed-scratch executor one
//!   tile task runs through, identical on the serial and parallel paths.
//! * [`process_front_tiled`] — the serial driver body: execute the plan's
//!   tasks in emission order.
//!
//! # The determinism contract
//!
//! The tiled loop nest is the *canonical* numeric schedule for CPU (P1)
//! fronts at or above [`TilingOptions::min_front`] — the serial driver runs
//! the very same task bodies in the very same per-tile reduction order
//! (updates to tile `(i,j)` applied in ascending `k`, the serial loop
//! nest), so parallel-vs-serial bitwise identity holds *by construction*,
//! not by accident of scheduling:
//!
//! * every task packs its operand tiles into thread-local scratch, runs a
//!   dims-deterministic `mf_dense` kernel on the packed copies, and writes
//!   the output tile back — the bytes a task writes are a pure function of
//!   the bytes its DAG predecessors wrote;
//! * the dependency lists order every pair of tasks that touch a common
//!   tile, so *which worker* runs a task (or when) cannot change the bytes
//!   it reads;
//! * updates to a tile are chained in ascending pivot-tile order `k`, so
//!   the floating-point reduction order per element is fixed.
//!
//! Fronts below the threshold keep the monolithic `potrf`/`trsm`/`syrk`
//! body (`fu.rs`), whose kernels the proptest suite pins the tiled
//! schedule against numerically (the two are *different* elimination
//! orders, so they agree to factorization accuracy, not bitwise).
//!
//! # Why packed scratch instead of strided sub-views
//!
//! Concurrent tile tasks need overlapping *column ranges* of the front
//! (`trsm(i,k)` and `trsm(i',k)` share columns; an update reads panel
//! columns another task wrote) — there is no safe way to hand each task a
//! disjoint `&mut` slice. [`FrontView`] instead moves bytes with raw-pointer
//! block copies (element-disjointness per task guaranteed by the DAG), so
//! no aliasing references ever materialize, and the kernels only ever see
//! the task's private packed tiles.

use crate::frontal::Front;
use crate::fu::FuError;
use mf_dense::{tile_gemm_nt, tile_potrf, tile_syrk, tile_trsm, Scalar};
use mf_gpusim::{HostClock, KernelKind};

/// Tile-plan policy knobs, carried in `FactorOptions` and `FuContext`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TilingOptions {
    /// Master switch; `false` keeps every front on the monolithic body.
    pub enabled: bool,
    /// Tile edge in columns/rows (clamped to ≥ 1).
    pub tile: usize,
    /// Minimum front order `s` for tiling; smaller fronts stay monolithic
    /// (tile-task overhead would swamp their kernels).
    pub min_front: usize,
}

impl Default for TilingOptions {
    /// Tiling is **opt-in** (like pipelined GPU dispatch): the blocked
    /// schedule is a different elimination order with different kernel
    /// rates, so switching it on silently would change every caller's
    /// serial P1 baseline. `Default` carries the standard geometry but
    /// leaves the switch off; use [`TilingOptions::tiled`] to enable.
    fn default() -> Self {
        TilingOptions { enabled: false, tile: 128, min_front: 256 }
    }
}

impl TilingOptions {
    /// Tiling enabled with the standard geometry (128-column tiles,
    /// 256-column front threshold).
    pub fn tiled() -> Self {
        TilingOptions { enabled: true, ..Self::default() }
    }

    /// Tiling switched off: every front runs the monolithic body.
    pub fn disabled() -> Self {
        TilingOptions { enabled: false, ..Self::default() }
    }

    /// The tile plan for an `s × s` front with pivot width `k`, or `None`
    /// if this front should run the monolithic body (tiling disabled,
    /// front below threshold, or a degenerate single-task plan).
    pub fn plan(&self, s: usize, k: usize) -> Option<TilePlan> {
        if !self.enabled || s < self.min_front || k == 0 {
            return None;
        }
        let plan = TilePlan::build(s, k, self.tile.max(1));
        if plan.tasks.len() < 2 {
            return None; // a lone potrf gains nothing from the DAG
        }
        Some(plan)
    }
}

/// One tile task. Indices are row-tile/pivot-tile numbers into
/// [`TilePlan::rows`]; the canonical serial order is the emission order in
/// [`TilePlan::tasks`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TileKernel {
    /// Dense Cholesky of diagonal tile `kb`.
    Potrf {
        /// Pivot tile index.
        kb: usize,
    },
    /// Solve row-block `i` of pivot column `kb` against the factored
    /// diagonal tile.
    Trsm {
        /// Row tile index (`i > kb`).
        i: usize,
        /// Pivot tile index.
        kb: usize,
    },
    /// Symmetric rank-`w` update of diagonal tile `(j, j)` from pivot
    /// column `kb`.
    Syrk {
        /// Row (= column) tile index (`j > kb`).
        j: usize,
        /// Pivot tile index.
        kb: usize,
    },
    /// Rank-`w` update of off-diagonal tile `(i, j)` from pivot column
    /// `kb`.
    Gemm {
        /// Row tile index (`i > j`).
        i: usize,
        /// Column tile index (`j > kb`).
        j: usize,
        /// Pivot tile index.
        kb: usize,
    },
}

/// The symbolic tile plan of one front: row-tile layout, task list in
/// canonical serial order, and per-task dependency lists.
#[derive(Debug, Clone)]
pub struct TilePlan {
    /// Front order.
    pub s: usize,
    /// Pivot-block width.
    pub k: usize,
    /// Tile edge.
    pub tile: usize,
    /// Number of pivot (column) tiles; row tiles `0..nb` are the pivot
    /// tiles, `nb..rows.len()` cover the update rows `k..s`. Row tiles
    /// never straddle column `k`.
    pub nb: usize,
    /// `(r0, h)` of every row tile.
    pub rows: Vec<(usize, usize)>,
    /// Tile tasks in canonical serial (topological) order.
    pub tasks: Vec<TileKernel>,
    /// `deps[t]` = indices of the tasks that must complete before task `t`.
    pub deps: Vec<Vec<u32>>,
}

impl TilePlan {
    fn build(s: usize, k: usize, tile: usize) -> TilePlan {
        let nb = k.div_ceil(tile);
        let m = s - k;
        let mb = m.div_ceil(tile);
        let nt = nb + mb;
        let mut rows = Vec::with_capacity(nt);
        for rb in 0..nb {
            let r0 = rb * tile;
            rows.push((r0, tile.min(k - r0)));
        }
        for ub in 0..mb {
            let r0 = k + ub * tile;
            rows.push((r0, tile.min(s - r0)));
        }

        let mut tasks = Vec::new();
        let mut deps: Vec<Vec<u32>> = Vec::new();
        // Last task that wrote tile (i, j) — the ascending-k update chain.
        let mut last_write: Vec<Option<u32>> = vec![None; nt * nt];
        let lw = |i: usize, j: usize| i * nt + j;
        let push = |tasks: &mut Vec<TileKernel>,
                    deps: &mut Vec<Vec<u32>>,
                    t: TileKernel,
                    pre: [Option<u32>; 3]| {
            let id = tasks.len() as u32;
            tasks.push(t);
            deps.push(pre.into_iter().flatten().collect());
            id
        };

        for kb in 0..nt.min(nb) {
            let id = push(
                &mut tasks,
                &mut deps,
                TileKernel::Potrf { kb },
                [last_write[lw(kb, kb)], None, None],
            );
            last_write[lw(kb, kb)] = Some(id);
            let potrf_id = id;

            let mut trsm_id: Vec<Option<u32>> = vec![None; nt];
            for i in kb + 1..nt {
                let id = push(
                    &mut tasks,
                    &mut deps,
                    TileKernel::Trsm { i, kb },
                    [Some(potrf_id), last_write[lw(i, kb)], None],
                );
                last_write[lw(i, kb)] = Some(id);
                trsm_id[i] = Some(id);
            }

            // Trailing updates, column-major over the remaining tiles —
            // the canonical serial order the chained deps reproduce under
            // any worker schedule.
            for j in kb + 1..nt {
                for i in j..nt {
                    let t = if i == j {
                        TileKernel::Syrk { j, kb }
                    } else {
                        TileKernel::Gemm { i, j, kb }
                    };
                    let second = if i == j { None } else { trsm_id[j] };
                    let id =
                        push(&mut tasks, &mut deps, t, [trsm_id[i], second, last_write[lw(i, j)]]);
                    last_write[lw(i, j)] = Some(id);
                }
            }
        }
        TilePlan { s, k, tile, nb, rows, tasks, deps }
    }

    /// Number of tile tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the plan has no tasks (never true for a built plan).
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Tasks no other task depends on (the finish barrier's prerequisites).
    pub fn terminals(&self) -> Vec<u32> {
        let mut has_dep = vec![false; self.tasks.len()];
        for pre in &self.deps {
            for &p in pre {
                has_dep[p as usize] = true;
            }
        }
        (0..self.tasks.len() as u32).filter(|&t| !has_dep[t as usize]).collect()
    }

    /// The `charge_kernel` arguments `(kind, m, n, k)` of task `idx` —
    /// the same deterministic shape-only cost on the serial driver, the
    /// parallel workers and the makespan simulator.
    pub fn charge_args(&self, idx: usize) -> (KernelKind, usize, usize, usize) {
        match self.tasks[idx] {
            TileKernel::Potrf { kb } => (KernelKind::Potrf, 0, self.rows[kb].1, 0),
            TileKernel::Trsm { i, kb } => (KernelKind::Trsm, self.rows[i].1, 0, self.rows[kb].1),
            TileKernel::Syrk { j, kb } => (KernelKind::Syrk, 0, self.rows[j].1, self.rows[kb].1),
            TileKernel::Gemm { i, j, kb } => {
                (KernelKind::Gemm, self.rows[i].1, self.rows[j].1, self.rows[kb].1)
            }
        }
    }
}

// ----- the shared tile-task executor -----------------------------------------

/// A raw view of one front's `s × s` column-major buffer, shareable across
/// the workers executing that front's tile tasks.
///
/// The view never hands out references into the buffer: tasks move bytes
/// with [`read_block`](Self::read_block) / [`write_block`](Self::write_block)
/// raw copies between the front and their private packed scratch. Soundness
/// rests on the plan's dependency lists — two concurrently running tasks
/// never read-write or write-write overlapping elements (see module docs).
#[derive(Debug, Clone, Copy)]
pub struct FrontView<T> {
    ptr: *mut T,
    s: usize,
}

// SAFETY: the view is a tagged pointer; cross-thread use is governed by the
// tile DAG, which orders every conflicting element access (module docs).
unsafe impl<T: Send> Send for FrontView<T> {}
// SAFETY: as above — shared access from several workers is exactly the
// intended use, with disjointness guaranteed by the plan's deps.
unsafe impl<T: Send> Sync for FrontView<T> {}

impl<T: Scalar> FrontView<T> {
    /// View over a front buffer of order `s` (`data.len() ≥ s·s`).
    pub fn new(data: &mut [T], s: usize) -> Self {
        assert!(data.len() >= s * s, "front buffer shorter than s×s");
        FrontView { ptr: data.as_mut_ptr(), s }
    }

    /// Front order.
    pub fn order(&self) -> usize {
        self.s
    }

    /// Pack the `rows × cols` block at `(r0, c0)` into `dst` (ld = `rows`).
    ///
    /// # Safety
    /// No concurrent task may be *writing* any element of the block, and
    /// the backing buffer must outlive the call.
    pub unsafe fn read_block(&self, r0: usize, c0: usize, rows: usize, cols: usize, dst: &mut [T]) {
        debug_assert!(r0 + rows <= self.s && c0 + cols <= self.s && dst.len() >= rows * cols);
        for j in 0..cols {
            let src = self.ptr.add((c0 + j) * self.s + r0);
            std::ptr::copy_nonoverlapping(src, dst.as_mut_ptr().add(j * rows), rows);
        }
    }

    /// The whole `s × s` front buffer as a mutable slice — for the
    /// assembly/extraction phases that bracket a front's tile tasks.
    ///
    /// # Safety
    /// The caller must hold exclusive access to the entire buffer for the
    /// chosen lifetime `'a` (in the drivers: the assemble and extract
    /// tasks, which the task graph orders against every tile task of the
    /// front), and the backing buffer must outlive `'a`.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn as_mut_slice<'a>(&self) -> &'a mut [T] {
        unsafe { std::slice::from_raw_parts_mut(self.ptr, self.s * self.s) }
    }

    /// Unpack `src` (ld = `rows`) into the block at `(r0, c0)`.
    ///
    /// # Safety
    /// No concurrent task may be *reading or writing* any element of the
    /// block, and the backing buffer must outlive the call.
    pub unsafe fn write_block(&self, r0: usize, c0: usize, rows: usize, cols: usize, src: &[T]) {
        debug_assert!(r0 + rows <= self.s && c0 + cols <= self.s && src.len() >= rows * cols);
        for j in 0..cols {
            let dst = self.ptr.add((c0 + j) * self.s + r0);
            std::ptr::copy_nonoverlapping(src.as_ptr().add(j * rows), dst, rows);
        }
    }
}

std::thread_local! {
    /// Per-thread tile staging scratch (u64-backed so one buffer serves
    /// every `Scalar`), same pattern as `fu.rs`'s pivot scratch: never
    /// shrinks, at most one allocation per thread per run.
    static TILE_SCRATCH: std::cell::RefCell<Vec<u64>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Run `body` on three disjoint thread-local scratch slices of `lens`
/// scalars each. Slices are *not* zeroed — every caller fully overwrites
/// what it reads (diagonal tiles carry garbage strictly-upper halves that
/// the masked kernels neither read nor write).
fn with_tile_scratch<T: Scalar, R>(
    lens: [usize; 3],
    body: impl FnOnce(&mut [T], &mut [T], &mut [T]) -> R,
) -> R {
    TILE_SCRATCH.with(|cell| {
        let mut buf = cell.borrow_mut();
        let total: usize = lens.iter().sum();
        let words = (total * T::BYTES).div_ceil(std::mem::size_of::<u64>());
        if buf.len() < words {
            buf.resize(words, 0);
        }
        // SAFETY: the buffer holds at least `total * T::BYTES` bytes, u64
        // alignment satisfies every Scalar, and Scalar types admit any bit
        // pattern.
        let all = unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr().cast::<T>(), total) };
        let (a, rest) = all.split_at_mut(lens[0]);
        let (b, c) = rest.split_at_mut(lens[1]);
        body(a, b, &mut c[..lens[2]])
    })
}

/// Execute one tile task of `plan` against `view` and charge its kernel
/// cost to `host`. Returns the charged duration.
///
/// This single body serves the serial driver ([`process_front_tiled`]) and
/// every parallel worker, which is what makes serial/parallel factors
/// bitwise identical by construction.
///
/// # Safety
/// All of task `idx`'s plan dependencies must have completed, and no task
/// that the plan orders against `idx` may run concurrently with it. The
/// buffer behind `view` must stay alive and unmoved for the call.
pub unsafe fn exec_tile_task<T: Scalar>(
    view: FrontView<T>,
    plan: &TilePlan,
    idx: usize,
    host: &mut HostClock,
    timing_only: bool,
) -> Result<f64, FuError> {
    let mut fail: Option<usize> = None;
    if !timing_only {
        match plan.tasks[idx] {
            TileKernel::Potrf { kb } => {
                let (c0, w) = plan.rows[kb];
                with_tile_scratch::<T, _>([w * w, 0, 0], |a, _, _| {
                    view.read_block(c0, c0, w, w, a);
                    let r = tile_potrf(w, a, w);
                    // Write back even on failure so the partially factored
                    // pivot is visible, like the monolithic body.
                    view.write_block(c0, c0, w, w, a);
                    if let Err(e) = r {
                        fail = Some(c0 + e.column);
                    }
                });
            }
            TileKernel::Trsm { i, kb } => {
                let (c0, w) = plan.rows[kb];
                let (r0, h) = plan.rows[i];
                with_tile_scratch::<T, _>([w * w, h * w, 0], |l, b, _| {
                    view.read_block(c0, c0, w, w, l);
                    view.read_block(r0, c0, h, w, b);
                    tile_trsm(h, w, l, w, b, h);
                    view.write_block(r0, c0, h, w, b);
                });
            }
            TileKernel::Syrk { j, kb } => {
                let (c0, w) = plan.rows[kb];
                let (r0, h) = plan.rows[j];
                with_tile_scratch::<T, _>([h * w, h * h, 0], |a, c, _| {
                    view.read_block(r0, c0, h, w, a);
                    view.read_block(r0, r0, h, h, c);
                    tile_syrk(h, w, a, h, c, h);
                    view.write_block(r0, r0, h, h, c);
                });
            }
            TileKernel::Gemm { i, j, kb } => {
                let (c0, w) = plan.rows[kb];
                let (ri, hi) = plan.rows[i];
                let (rj, hj) = plan.rows[j];
                with_tile_scratch::<T, _>([hi * w, hj * w, hi * hj], |a, b, c| {
                    view.read_block(ri, c0, hi, w, a);
                    view.read_block(rj, c0, hj, w, b);
                    view.read_block(ri, rj, hi, hj, c);
                    tile_gemm_nt(hi, hj, w, a, hi, b, hj, c, hi);
                    view.write_block(ri, rj, hi, hj, c);
                });
            }
        }
    }
    let (kind, m, n, k) = plan.charge_args(idx);
    let dur = host.charge_kernel(kind, m, n, k);
    match fail {
        Some(col) => Err(FuError::NotPositiveDefinite { local_column: col }),
        None => Ok(dur),
    }
}

/// The serial tiled front body: run the plan's tasks in canonical emission
/// order. This *is* the reference schedule the parallel driver reproduces.
pub fn process_front_tiled<T: Scalar>(
    front: &mut Front<'_, T>,
    plan: &TilePlan,
    host: &mut HostClock,
    timing_only: bool,
) -> Result<(), FuError> {
    debug_assert_eq!((plan.s, plan.k), (front.s, front.k), "plan does not match front");
    if timing_only {
        // The front may be a dummy (no backing storage): only charge.
        for idx in 0..plan.len() {
            let (kind, m, n, k) = plan.charge_args(idx);
            host.charge_kernel(kind, m, n, k);
        }
        return Ok(());
    }
    let view = FrontView::new(front.data, front.s);
    let mut first_fail: Option<usize> = None;
    for idx in 0..plan.len() {
        // SAFETY: serial execution in a topological order; `front.data`
        // is exclusively borrowed for the loop. On a pivot failure the
        // remaining tasks still run (charging time, skipping numerics is
        // not needed — later tiles just consume the partial factor), but
        // we surface the *first* failing column like the monolithic body.
        match unsafe { exec_tile_task(view, plan, idx, host, timing_only) } {
            Ok(_) => {}
            Err(FuError::NotPositiveDefinite { local_column }) => {
                first_fail.get_or_insert(local_column);
            }
        }
    }
    match first_fail {
        Some(local_column) => Err(FuError::NotPositiveDefinite { local_column }),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_dense::matrix::random_spd;
    use mf_gpusim::Machine;

    fn opts(tile: usize, min_front: usize) -> TilingOptions {
        TilingOptions { enabled: true, tile, min_front }
    }

    #[test]
    fn threshold_and_switch_gate_the_plan() {
        assert!(TilingOptions::disabled().plan(4096, 2048).is_none());
        assert!(TilingOptions::default().plan(4096, 2048).is_none(), "default is opt-out");
        assert!(TilingOptions::tiled().plan(255, 100).is_none());
        assert!(TilingOptions::tiled().plan(300, 0).is_none());
        assert!(TilingOptions::tiled().plan(300, 100).is_some());
        // Degenerate: one pivot tile, no update rows → single potrf task.
        assert!(opts(64, 32).plan(40, 40).is_none());
    }

    #[test]
    fn plan_counts_and_layout() {
        // s = 100, k = 48, tile = 20 → pivot tiles 20/20/8, update rows
        // 52 → tiles 20/20/12.
        let p = opts(20, 32).plan(100, 48).unwrap();
        assert_eq!(p.nb, 3);
        assert_eq!(p.rows, vec![(0, 20), (20, 20), (40, 8), (48, 20), (68, 20), (88, 12)]);
        // Per round kb over nt = 6 tiles: 1 potrf + (nt-kb-1) trsm +
        // T(nt-kb-1) updates.
        let expect: usize = (0..3).map(|kb| 1 + (5 - kb) + (5 - kb) * (6 - kb) / 2).sum();
        assert_eq!(p.len(), expect);
        // Canonical order starts with the first round.
        assert_eq!(p.tasks[0], TileKernel::Potrf { kb: 0 });
        assert_eq!(p.tasks[1], TileKernel::Trsm { i: 1, kb: 0 });
        // Single DAG root; emission order is topological.
        let roots = p.deps.iter().filter(|d| d.is_empty()).count();
        assert_eq!(roots, 1);
        for (t, pre) in p.deps.iter().enumerate() {
            for &q in pre {
                assert!((q as usize) < t, "dep {q} of {t} not earlier");
            }
        }
        // Terminals all live in the last round (kb = nb-1).
        for &t in &p.terminals() {
            let kb = match p.tasks[t as usize] {
                TileKernel::Potrf { kb }
                | TileKernel::Trsm { kb, .. }
                | TileKernel::Syrk { kb, .. }
                | TileKernel::Gemm { kb, .. } => kb,
            };
            assert_eq!(kb, p.nb - 1);
        }
    }

    #[test]
    fn every_update_chain_is_ascending_k() {
        let p = opts(16, 32).plan(90, 41).unwrap();
        // For each tile, collect the pivot rounds of its writers in task
        // order — they must ascend.
        let nt = p.rows.len();
        let mut rounds: Vec<Vec<usize>> = vec![Vec::new(); nt * nt];
        for t in &p.tasks {
            let (i, j, kb) = match *t {
                TileKernel::Potrf { kb } => (kb, kb, kb),
                TileKernel::Trsm { i, kb } => (i, kb, kb),
                TileKernel::Syrk { j, kb } => (j, j, kb),
                TileKernel::Gemm { i, j, kb } => (i, j, kb),
            };
            rounds[i * nt + j].push(kb);
        }
        for r in rounds {
            assert!(r.windows(2).all(|w| w[0] <= w[1]), "non-ascending chain {r:?}");
        }
    }

    #[test]
    fn tiled_matches_monolithic_numerically() {
        // The tiled schedule is a different but valid elimination order —
        // pin it to the monolithic kernels at factorization accuracy.
        for (s, k, tile) in [(96, 50, 16), (120, 120, 32), (70, 33, 33)] {
            let a = random_spd::<f64>(s, 1234 + s as u64);
            let mut mono = a.as_slice().to_vec();
            {
                let f = Front { s, k, data: &mut mono };
                let mut machine = Machine::cpu_only(mf_gpusim::xeon_5160_core());
                // Monolithic reference via the dense kernels directly.
                let _ = &mut machine;
                mf_dense::potrf(k, f.data, s).unwrap();
                if s > k {
                    let m = s - k;
                    let piv: Vec<f64> = (0..k * k)
                        .map(|p| if p % k >= p / k { f.data[(p / k) * s + p % k] } else { 0.0 })
                        .collect();
                    mf_dense::trsm_right_lower_trans(m, k, &piv, k, &mut f.data[k..], s);
                    let (pc, tr) = f.data.split_at_mut(k * s);
                    mf_dense::syrk_lower(m, k, -1.0, &pc[k..], s, 1.0, &mut tr[k..], s);
                }
            }
            let mut tiled = a.as_slice().to_vec();
            let plan = opts(tile, 32).plan(s, k).unwrap();
            let mut machine = Machine::cpu_only(mf_gpusim::xeon_5160_core());
            let mut f = Front { s, k, data: &mut tiled };
            process_front_tiled(&mut f, &plan, &mut machine.host, false).unwrap();
            let mut max = 0.0f64;
            for j in 0..s {
                for i in j..s {
                    if j < k || i >= k {
                        max = max.max((tiled[i + j * s] - mono[i + j * s]).abs());
                    }
                }
            }
            assert!(max < 1e-10, "(s={s},k={k},tile={tile}) deviates by {max}");
        }
    }

    #[test]
    fn any_topological_order_is_bitwise_identical() {
        // Execute the plan in reverse-priority topological order (always
        // pick the highest-index ready task) and compare bits against the
        // canonical serial order — the deps must fully pin the bytes.
        let (s, k, tile) = (110, 60, 16);
        let a = random_spd::<f64>(s, 99);
        let plan = opts(tile, 32).plan(s, k).unwrap();

        let mut serial = a.as_slice().to_vec();
        let mut machine = Machine::cpu_only(mf_gpusim::xeon_5160_core());
        let mut f = Front { s, k, data: &mut serial };
        process_front_tiled(&mut f, &plan, &mut machine.host, false).unwrap();

        let mut scrambled = a.as_slice().to_vec();
        let view = FrontView::new(&mut scrambled, s);
        let mut remaining: Vec<usize> = plan.deps.iter().map(|d| d.len()).collect();
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); plan.len()];
        for (t, pre) in plan.deps.iter().enumerate() {
            for &q in pre {
                dependents[q as usize].push(t);
            }
        }
        let mut ready: Vec<usize> = (0..plan.len()).filter(|&t| remaining[t] == 0).collect();
        let mut machine2 = Machine::cpu_only(mf_gpusim::xeon_5160_core());
        let mut run = 0;
        while let Some(t) = ready.pop() {
            // SAFETY: deps satisfied; single-threaded here.
            unsafe { exec_tile_task(view, &plan, t, &mut machine2.host, false).unwrap() };
            run += 1;
            for &d in &dependents[t] {
                remaining[d] -= 1;
                if remaining[d] == 0 {
                    ready.push(d);
                }
            }
            ready.sort_unstable();
        }
        assert_eq!(run, plan.len());
        assert!(
            serial.iter().zip(&scrambled).all(|(x, y)| x.to_bits() == y.to_bits()),
            "execution order leaked into the bits"
        );
    }

    #[test]
    fn failing_pivot_reports_front_local_column() {
        let (s, k, tile) = (80, 60, 16);
        let mut a = random_spd::<f64>(s, 7).as_slice().to_vec();
        a[37 + 37 * s] = -4.0; // poison a pivot in tile kb = 2
        let plan = opts(tile, 32).plan(s, k).unwrap();
        let mut machine = Machine::cpu_only(mf_gpusim::xeon_5160_core());
        let mut f = Front { s, k, data: &mut a };
        let err = process_front_tiled(&mut f, &plan, &mut machine.host, false).unwrap_err();
        assert_eq!(err, FuError::NotPositiveDefinite { local_column: 37 });
    }

    #[test]
    fn timing_only_charges_without_storage() {
        let plan = opts(64, 128).plan(500, 200).unwrap();
        let mut machine = Machine::cpu_only(mf_gpusim::xeon_5160_core());
        let empty: &mut [f64] = &mut [];
        let mut f = Front { s: 500, k: 200, data: empty };
        process_front_tiled(&mut f, &plan, &mut machine.host, true).unwrap();
        assert!(machine.elapsed() > 0.0);
    }
}
