//! The supernodal multifrontal factorization driver.
//!
//! Performs the postorder traversal of the supernodal elimination tree,
//! assembling each frontal matrix (extend-add), executing its factor-update
//! under the policy chosen by the active [`PolicySelector`], and harvesting
//! the factor panels and per-call timing records.
//!
//! The numeric phase runs out of preallocated storage: one contiguous
//! factor slab laid out by `SymbolicFactor::panel_ptr`, plus (under the
//! default [`FrontStorage::Arena`]) a postorder LIFO working-storage stack
//! sized by `SymbolicFactor::update_stack_peak` — two allocations for the
//! whole factorization, no matter how many supernodes run.

use crate::arena::FrontArena;
use crate::features::LinearPolicyModel;
use crate::frontal::{
    assemble_front_into, charge_assemble, charge_panel_extract, charge_update_extract,
    copy_update_packed, extract_panel_copy, extract_panel_into, ChildUpdate, Front,
};
use crate::fu::{
    dispatch_fu, enqueue_batch_downloads, enqueue_downloads, execute_fu, finish_fu,
    try_dispatch_gpu, try_dispatch_gpu_batch, BatchError, FuBatchPending, FuContext, FuError,
    FuPending, DEFAULT_PANEL_WIDTH,
};
use crate::multigpu::MultiGpuOptions;
use crate::pinned_pool::PinnedPool;
use crate::policy::{BaselineThresholds, PolicyKind};
use crate::stats::{FactorStats, FuRecord};
use crate::tile::TilingOptions;
use mf_dense::{FuFlops, Scalar};
use mf_gpusim::{Machine, TierParams};
use mf_sparse::symbolic::SymbolicFactor;
use mf_sparse::{AnalyzeError, Permutation, SymCsc};

/// How the policy for each factor-update call is chosen.
#[derive(Debug, Clone)]
pub enum PolicySelector {
    /// Always the same policy (the paper's per-policy columns in Table VII).
    Fixed(PolicyKind),
    /// Op-count thresholds (the baseline hybrid `P_BH`, §V-B1).
    Baseline(BaselineThresholds),
    /// The trained linear classifier (the model hybrid `P_MH`, §VI).
    Model(LinearPolicyModel),
    /// A per-supernode oracle (the ideal hybrid `P_IH` — built from
    /// retrospective per-policy timings).
    Oracle(Vec<PolicyKind>),
}

impl PolicySelector {
    /// Choose a policy for supernode `sn` with front dims `(m, k)`.
    pub fn choose(&self, sn: usize, m: usize, k: usize) -> PolicyKind {
        match self {
            PolicySelector::Fixed(p) => *p,
            PolicySelector::Baseline(b) => b.choose(FuFlops::new(m, k).total()),
            PolicySelector::Model(model) => model.predict(m, k),
            PolicySelector::Oracle(table) => table[sn],
        }
    }
}

/// How front working storage is provided during the numeric phase. Both
/// modes produce **bitwise identical** factors, stats records, and
/// simulated clocks — every numeric operation and every simulated-time
/// charge lives in the shared per-supernode body; only where the bytes sit
/// differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FrontStorage {
    /// Preallocated storage: the serial driver runs fronts on a postorder
    /// LIFO [`FrontArena`]; the parallel driver gives each worker a
    /// max-front buffer and hands updates across workers in pooled buffers.
    /// Steady state performs O(1) heap allocations per factorization.
    #[default]
    Arena,
    /// The reference per-front allocation path: a fresh zeroed front and a
    /// fresh update buffer per supernode (panels still land in the
    /// contiguous slab). Kept as the bitwise cross-check for the
    /// determinism suite and the baseline for the allocation benchmarks.
    Heap,
}

/// Pipelined GPU dispatch (DESIGN.md §4.9): look-ahead staging of the next
/// GPU-bound front while the current one computes, event-gated consumption
/// of child updates, and batched dispatch of runs of small fronts.
///
/// The pipelined driver produces factor slabs **bitwise identical** to the
/// drain-per-front driver at every setting here — only the simulated
/// timeline (and therefore makespan and GPU utilization) changes. It does
/// not collect per-call [`FuRecord`]s: with fronts overlapping on the
/// device, per-front time attribution is ill-defined, so `record_stats`
/// is ignored while `enabled` is set. Front storage is per-front heap
/// buffers (front lifetimes overlap, which the postorder LIFO arena cannot
/// express), so `front_storage` is ignored too.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineOptions {
    /// Run the pipelined driver. CPU-only machines always use the
    /// drain-per-front driver regardless.
    pub enabled: bool,
    /// Maximum fronts with downloads still outstanding before the oldest is
    /// finished (double/triple buffering of the staging pool falls out of
    /// this — each outstanding front holds its pinned generations leased).
    pub depth: usize,
    /// Largest front size `s` eligible for batched dispatch.
    pub batch_max_front: usize,
    /// Maximum members of one batched dispatch (a run of consecutive
    /// postorder P4-selected fronts with no producer/consumer pair inside).
    pub batch_max_fronts: usize,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions { enabled: false, depth: 3, batch_max_front: 128, batch_max_fronts: 8 }
    }
}

impl PipelineOptions {
    /// Pipelining on, with the default look-ahead depth and batching.
    pub fn pipelined() -> Self {
        PipelineOptions { enabled: true, ..Default::default() }
    }
}

/// Options controlling a numeric factorization run.
#[derive(Debug, Clone)]
pub struct FactorOptions {
    /// Policy selection scheme.
    pub selector: PolicySelector,
    /// P4 panel width `w` (Figure 9).
    pub panel_width: usize,
    /// Use the copy-optimized P4 transfer plan (§VI-C).
    pub copy_optimized: bool,
    /// Collect per-call [`FuRecord`]s (adds no simulated time).
    pub record_stats: bool,
    /// Use the growth-only pinned-buffer reuse policy (§V-A2); disable for
    /// the allocation-cost ablation.
    pub pinned_reuse: bool,
    /// Front working-storage backend (see [`FrontStorage`]).
    pub front_storage: FrontStorage,
    /// Pipelined GPU dispatch (see [`PipelineOptions`]).
    pub pipeline: PipelineOptions,
    /// Intra-front tiling (see [`TilingOptions`]); **off by default** —
    /// enable with [`TilingOptions::tiled`]. When enabled, CPU (P1) fronts
    /// at or above the threshold run the canonical tiled loop nest in every
    /// driver, and the parallel driver additionally schedules their tile
    /// tasks across workers.
    pub tiling: TilingOptions,
    /// Multi-device execution (see [`MultiGpuOptions`]). With `count > 1`
    /// on a GPU machine and pipelining enabled, the factorization routes
    /// to the multi-GPU driver of [`crate::multigpu`].
    pub devices: MultiGpuOptions,
    /// Out-of-core residency budget in bytes for the factor slab plus the
    /// front arena (see `mf-core::ooc`, DESIGN.md §4.14). `None` runs
    /// fully in core. With a budget set, the drivers replay the
    /// deterministic spill schedule of [`crate::ooc::plan_ooc`]: transfers
    /// are charged on the executing clock, `FactorStats::ooc` reports the
    /// traffic, and pipelined/multi-GPU dispatch falls back to the drain
    /// schedule (whose front lifetimes the residency plan models exactly).
    /// Budgets below [`crate::ooc::min_feasible_budget`] fail with
    /// [`FactorError::BudgetTooSmall`].
    pub memory_budget: Option<usize>,
    /// Storage precision of spilled blocks (see
    /// [`crate::ooc::PrecisionLadder`]); only meaningful with a budget.
    /// Off by default — budgeted runs are then bitwise identical to
    /// in-core runs.
    pub ladder: crate::ooc::PrecisionLadder,
    /// Spill-tier capacities and bandwidths (see [`TierParams`]).
    pub tiers: TierParams,
}

impl Default for FactorOptions {
    fn default() -> Self {
        FactorOptions {
            selector: PolicySelector::Fixed(PolicyKind::P1),
            panel_width: DEFAULT_PANEL_WIDTH,
            copy_optimized: false,
            record_stats: false,
            pinned_reuse: true,
            front_storage: FrontStorage::default(),
            pipeline: PipelineOptions::default(),
            tiling: TilingOptions::default(),
            devices: MultiGpuOptions::default(),
            memory_budget: None,
            ladder: crate::ooc::PrecisionLadder::default(),
            tiers: TierParams::default(),
        }
    }
}

impl FactorOptions {
    /// Options for a memory-budgeted (out-of-core) run: residency of the
    /// factor slab + front arena capped at `bytes`, everything else
    /// default. The quickstart constructor of DESIGN.md §4.14.
    pub fn memory_budget(bytes: usize) -> Self {
        FactorOptions { memory_budget: Some(bytes), ..Default::default() }
    }
}

/// Numeric factorization failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FactorError {
    /// Non-positive pivot at this column of the *permuted* matrix.
    NotPositiveDefinite {
        /// Global (permuted) column index.
        column: usize,
    },
    /// A parallel worker died (panicked) before handing off the update
    /// matrix this supernode depends on. The factorization cannot continue,
    /// but the failure is reported structurally instead of poisoning the
    /// whole process.
    WorkerLost {
        /// Supernode whose child hand-off was missing.
        supernode: usize,
    },
    /// The symbolic analysis rejected the matrix before any numbers moved.
    Analyze(AnalyzeError),
    /// The out-of-core memory budget is below the minimum feasible
    /// working set ([`crate::ooc::min_feasible_budget`]): some supernode's
    /// pinned set — child updates + front + panel — cannot fit even with
    /// everything else spilled.
    BudgetTooSmall {
        /// The requested budget in bytes.
        budget: usize,
        /// The smallest feasible budget in bytes.
        required: usize,
    },
}

impl std::fmt::Display for FactorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FactorError::NotPositiveDefinite { column } => {
                write!(
                    f,
                    "matrix is not positive definite (pivot failure at permuted column {column})"
                )
            }
            FactorError::WorkerLost { supernode } => {
                write!(
                    f,
                    "parallel worker lost before supernode {supernode} received its child updates"
                )
            }
            FactorError::Analyze(e) => write!(f, "analysis failed: {e}"),
            FactorError::BudgetTooSmall { budget, required } => write!(
                f,
                "memory budget of {budget} bytes is below the minimum feasible \
                 out-of-core working set of {required} bytes"
            ),
        }
    }
}

impl std::error::Error for FactorError {}

impl From<AnalyzeError> for FactorError {
    fn from(e: AnalyzeError) -> Self {
        FactorError::Analyze(e)
    }
}

impl From<crate::ooc::OocError> for FactorError {
    fn from(e: crate::ooc::OocError) -> Self {
        match e {
            crate::ooc::OocError::BudgetTooSmall { budget, required } => {
                FactorError::BudgetTooSmall { budget, required }
            }
        }
    }
}

/// The Cholesky factor in supernodal panel form: `P·A·Pᵀ = L·Lᵀ`.
///
/// All panels live in **one contiguous slab** — panel `sn` is the
/// `slab[panel_ptr[sn]..panel_ptr[sn + 1]]` region (`front_size × k`
/// column-major with leading dimension `front_size`; rows follow
/// `symbolic.supernodes[sn].rows`), in ascending supernode order. The solve
/// sweeps read panels as slices of this slab; no per-supernode `Vec`s.
#[derive(Debug, Clone)]
pub struct CholeskyFactor<T> {
    /// Symbolic structure shared with the analysis.
    pub symbolic: SymbolicFactor,
    /// The fill-reducing permutation used (`perm[new] = old`).
    pub perm: Permutation,
    /// Contiguous factor storage holding every supernode's panel.
    pub slab: Vec<T>,
    /// Panel offsets into `slab` (length `num_supernodes + 1`; equals
    /// `symbolic.panel_ptr()`).
    pub panel_ptr: Vec<usize>,
}

impl<T: Scalar> CholeskyFactor<T> {
    /// Matrix order.
    pub fn order(&self) -> usize {
        self.symbolic.n
    }

    /// The `front_size × k` factor panel of supernode `sn`, as a slice of
    /// the contiguous slab.
    pub fn panel(&self, sn: usize) -> &[T] {
        &self.slab[self.panel_ptr[sn]..self.panel_ptr[sn + 1]]
    }

    /// Entry `L[i, j]` of the factor (permuted indices; zero if outside the
    /// structure). Test/inspection helper — solves use the panels directly.
    pub fn l_entry(&self, i: usize, j: usize) -> T {
        if i < j {
            return T::ZERO;
        }
        let sn = self.symbolic.col_to_sn[j];
        let info = &self.symbolic.supernodes[sn];
        let s = info.front_size();
        let lc = j - info.col_start;
        let lr = if i < info.col_end {
            i - info.col_start
        } else {
            match info.rows[info.k()..].binary_search(&i) {
                Ok(pos) => info.k() + pos,
                Err(_) => return T::ZERO,
            }
        };
        self.panel(sn)[lr + lc * s]
    }
}

/// Bookkeeping one supernode's task produces (the panel goes straight into
/// the factor slab; the update stays in the caller's front storage).
pub(crate) struct SnOutcome {
    /// Per-call timing record, when `opts.record_stats` is set.
    pub record: Option<FuRecord>,
    /// Whether a device OOM forced a P1 fallback.
    pub oom_fallback: bool,
}

/// One supernode's complete task body: assemble the front from `A` and the
/// borrowed child update views (extend-added in the order given — the
/// serial postorder child rank) into caller-supplied `front_data`, execute
/// the factor-update under the selected policy, and copy the factored panel
/// into `panel_out` (the supernode's slab region).
///
/// The packed `m × m` update stays in `front_data`; the *caller* moves it
/// (arena compaction, pooled hand-off buffer, or a fresh heap buffer in the
/// reference path) while the simulated cost of that move is charged *here*
/// via [`charge_update_extract`] — so every storage mode and both drivers
/// advance the simulated clock identically.
///
/// This is shared verbatim by the serial postorder driver and the
/// work-stealing parallel driver
/// ([`crate::parallel::factor_permuted_parallel`]), which is what makes the
/// parallel factor bitwise identical to the serial one: both run exactly
/// this code per supernode, on child updates in exactly this order.
#[allow(clippy::too_many_arguments)]
pub(crate) fn process_supernode<'c, T: Scalar + 'c>(
    a: &SymCsc<T>,
    symbolic: &SymbolicFactor,
    sn: usize,
    children: impl Iterator<Item = ChildUpdate<'c, T>>,
    front_data: &mut [T],
    panel_out: &mut [T],
    rel_scratch: &mut Vec<usize>,
    machine: &mut Machine,
    pool: &mut PinnedPool,
    opts: &FactorOptions,
    kernel_threads: Option<usize>,
) -> Result<SnOutcome, FactorError> {
    let info = &symbolic.supernodes[sn];
    let (m, k) = (info.m(), info.k());

    let mut front =
        assemble_front_into(a, info, children, front_data, rel_scratch, &mut machine.host);
    let t_assemble_records = if opts.record_stats { machine.take_records() } else { Vec::new() };

    let policy = opts.selector.choose(sn, m, k);
    let t0 = machine.host.now();
    let mut ctx = FuContext {
        machine,
        pool,
        panel_width: opts.panel_width,
        copy_optimized: opts.copy_optimized,
        timing_only: false,
        kernel_threads,
        tiling: opts.tiling,
    };
    let outcome = execute_fu(&mut front, policy, &mut ctx).map_err(|e| match e {
        FuError::NotPositiveDefinite { local_column } => {
            FactorError::NotPositiveDefinite { column: info.col_start + local_column }
        }
    })?;
    let t1 = machine.host.now();

    let record = if opts.record_stats {
        let mut rec = FuRecord {
            sn,
            m,
            k,
            policy: outcome.executed,
            total: t1 - t0,
            t_potrf: 0.0,
            t_trsm: 0.0,
            t_syrk: 0.0,
            t_copy: 0.0,
            t_assemble: 0.0,
        };
        rec.absorb(&t_assemble_records);
        rec.absorb(&machine.take_records());
        Some(rec)
    } else {
        None
    };

    extract_panel_into(&front, panel_out, &mut machine.host);
    charge_update_extract::<T>(m, &mut machine.host);
    Ok(SnOutcome { record, oom_fallback: outcome.oom_fallback })
}

/// Factor an already-permuted matrix on the given machine.
///
/// `a` must be the permuted matrix `P·A·Pᵀ` whose structure `symbolic`
/// describes. Use [`crate::solver::SpdSolver`] for the one-call user API.
pub fn factor_permuted<T: Scalar>(
    a: &SymCsc<T>,
    symbolic: &SymbolicFactor,
    perm: &Permutation,
    machine: &mut Machine,
    opts: &FactorOptions,
) -> Result<(CholeskyFactor<T>, FactorStats), FactorError> {
    // A memory budget forces the drain schedule: the pipelined/multi-GPU
    // drivers overlap front lifetimes in ways the LIFO residency plan does
    // not model, and drain keeps budgeted numerics identical at every
    // driver and worker count.
    let in_core = opts.memory_budget.is_none();
    if in_core && opts.devices.count > 1 && opts.pipeline.enabled && machine.gpu.is_some() {
        return crate::multigpu::factor_permuted_multigpu(a, symbolic, perm, machine, opts);
    }
    if in_core && opts.pipeline.enabled && machine.gpu.is_some() {
        return factor_permuted_pipelined(a, symbolic, perm, machine, opts);
    }
    // Pin the deterministic out-of-core schedule before any numbers move;
    // infeasible budgets fail typed here.
    let ooc_plan = match opts.memory_budget {
        Some(budget) => {
            Some(crate::ooc::plan_ooc(symbolic, T::BYTES, budget, opts.ladder, &opts.tiers)?)
        }
        None => None,
    };
    let nsn = symbolic.num_supernodes();
    let mut pool =
        if opts.pinned_reuse { PinnedPool::new(2) } else { PinnedPool::without_reuse(2) };
    let panel_ptr = symbolic.panel_ptr();
    let mut slab = vec![T::ZERO; symbolic.factor_slab_len()];
    let mut stats = FactorStats::default();
    let mut rel: Vec<usize> = Vec::new();
    machine.set_recording(opts.record_stats);
    let wall0 = std::time::Instant::now();

    match opts.front_storage {
        FrontStorage::Arena => {
            // Whole-run working storage: the factor slab plus one arena
            // sized by the symbolic stack-peak bound — the numeric phase's
            // only front-storage allocations.
            stats.front_alloc_events = 2;
            let mut arena = FrontArena::<T>::with_len(symbolic.update_stack_peak());
            // Where each retired supernode's packed update sits in the arena.
            let mut upd_off = vec![0usize; nsn];
            for (r, &sn) in symbolic.postorder.iter().enumerate() {
                if let Some(plan) = &ooc_plan {
                    replay_step_io(plan, r, machine, opts);
                }
                let info = &symbolic.supernodes[sn];
                let (s, k) = (info.front_size(), info.k());
                let front_off = arena.top();
                let (below, front_data) = arena.split_for_front(s * s);
                let kids = &symbolic.children[sn];
                let children = kids.iter().map(|&c| {
                    let ci = &symbolic.supernodes[c];
                    let cm = ci.m();
                    ChildUpdate {
                        rows: ci.update_rows(),
                        data: &below[upd_off[c]..upd_off[c] + cm * cm],
                    }
                });
                let out = process_supernode(
                    a,
                    symbolic,
                    sn,
                    children,
                    front_data,
                    &mut slab[panel_ptr[sn]..panel_ptr[sn + 1]],
                    &mut rel,
                    machine,
                    &mut pool,
                    opts,
                    None,
                )?;
                if out.oom_fallback {
                    stats.oom_fallbacks += 1;
                }
                if let Some(rec) = out.record {
                    stats.records.push(rec);
                }
                // Retire the front: in postorder the consumed child updates
                // are the top contiguous stack region (the first child
                // deepest), so packing this supernode's update down to the
                // first child's offset frees front and children in one move.
                let dest = kids.first().map_or(front_off, |&c| upd_off[c]);
                arena.pop_and_compact(front_off, s, k, dest);
                upd_off[sn] = dest;
                if let Some(plan) = &ooc_plan {
                    // Blocks the plan ever stores encoded are degraded
                    // once, at production, to their tier read-back values —
                    // numerics then cannot depend on when transfers happen.
                    if s > k && plan.degrade_update[sn] {
                        opts.ladder.degrade_slice(arena.update_at_mut(dest, s - k));
                    }
                    if plan.degrade_panel[sn] {
                        opts.ladder.degrade_slice(&mut slab[panel_ptr[sn]..panel_ptr[sn + 1]]);
                    }
                    arena.note_resident_bytes(plan.arena_step_resident[r]);
                }
            }
            stats.peak_front_bytes = arena.high_water() * T::BYTES;
            if let Some(plan) = &ooc_plan {
                // The arena's tier-resident high water must mirror the
                // plan; the logical high water above stays the symbolic
                // bound regardless of the budget.
                debug_assert_eq!(
                    arena.resident_high_water_bytes(),
                    plan.stats.arena_resident_peak_bytes
                );
            }
        }
        FrontStorage::Heap => {
            // Reference path: per-front allocations, as the pre-arena code
            // did. Identical numeric body and identical charges — only the
            // storage differs.
            stats.front_alloc_events = 1; // the slab
            let mut updates: Vec<Option<Vec<T>>> = (0..nsn).map(|_| None).collect();
            let mut live = 0usize;
            let mut peak = 0usize;
            for (r, &sn) in symbolic.postorder.iter().enumerate() {
                if let Some(plan) = &ooc_plan {
                    replay_step_io(plan, r, machine, opts);
                }
                let info = &symbolic.supernodes[sn];
                let (s, k, m) = (info.front_size(), info.k(), info.m());
                let child_bufs: Vec<(usize, Vec<T>)> = symbolic.children[sn]
                    .iter()
                    .map(|&c| (c, updates[c].take().expect("child update must exist in postorder")))
                    .collect();
                stats.front_alloc_events += 1;
                let mut front_data = vec![T::ZERO; s * s];
                peak = peak.max(live + s * s);
                let children = child_bufs.iter().map(|(c, d)| ChildUpdate {
                    rows: symbolic.supernodes[*c].update_rows(),
                    data: &d[..],
                });
                let out = process_supernode(
                    a,
                    symbolic,
                    sn,
                    children,
                    &mut front_data,
                    &mut slab[panel_ptr[sn]..panel_ptr[sn + 1]],
                    &mut rel,
                    machine,
                    &mut pool,
                    opts,
                    None,
                )?;
                if out.oom_fallback {
                    stats.oom_fallbacks += 1;
                }
                if let Some(rec) = out.record {
                    stats.records.push(rec);
                }
                for (_, d) in child_bufs {
                    live -= d.len();
                }
                if m > 0 {
                    stats.front_alloc_events += 1;
                    let mut u = vec![T::ZERO; m * m];
                    copy_update_packed(&front_data, s, k, &mut u);
                    if let Some(plan) = &ooc_plan {
                        if plan.degrade_update[sn] {
                            opts.ladder.degrade_slice(&mut u);
                        }
                    }
                    live += m * m;
                    updates[sn] = Some(u);
                }
                if let Some(plan) = &ooc_plan {
                    if plan.degrade_panel[sn] {
                        opts.ladder.degrade_slice(&mut slab[panel_ptr[sn]..panel_ptr[sn + 1]]);
                    }
                }
            }
            stats.peak_front_bytes = peak * T::BYTES;
        }
    }

    if let Some(plan) = ooc_plan {
        stats.ooc = Some(plan.stats);
    }
    stats.total_time = machine.elapsed();
    stats.gpu = machine.gpu.as_ref().map(|g| g.utilization(stats.total_time));
    stats.wall_time = wall0.elapsed().as_secs_f64();
    machine.set_recording(false);
    Ok((CholeskyFactor { symbolic: symbolic.clone(), perm: perm.clone(), slab, panel_ptr }, stats))
}

/// Replay one supernode's planned spill transfers on the executing clock,
/// then drop any profile records the charges produced so they do not leak
/// into the next front's assembly bucket (`FuRecord::absorb` books
/// `HostMemop` under `t_assemble`).
pub(crate) fn replay_step_io(
    plan: &crate::ooc::OocPlan,
    rank: usize,
    machine: &mut Machine,
    opts: &FactorOptions,
) {
    for op in &plan.step_io[rank] {
        let bw = if op.write { opts.tiers.write_bw(op.tier) } else { opts.tiers.read_bw(op.tier) };
        machine.host.charge_memop(op.bytes, bw);
    }
    if opts.record_stats && !plan.step_io[rank].is_empty() {
        let _ = machine.take_records();
    }
}

// ----- pipelined driver ------------------------------------------------------

/// Build the standard (non-timing-only, serial) F-U context.
pub(crate) fn fu_ctx<'a>(
    machine: &'a mut Machine,
    pool: &'a mut PinnedPool,
    opts: &FactorOptions,
) -> FuContext<'a> {
    fu_ctx_mode(machine, pool, opts, false)
}

/// [`fu_ctx`] with an explicit timing-only flag — the rehearsal drivers
/// behind the pipelined-vs-drain cost model run the full F-U schedule with
/// every numeric touch suppressed.
pub(crate) fn fu_ctx_mode<'a>(
    machine: &'a mut Machine,
    pool: &'a mut PinnedPool,
    opts: &FactorOptions,
    timing_only: bool,
) -> FuContext<'a> {
    FuContext {
        machine,
        pool,
        panel_width: opts.panel_width,
        copy_optimized: opts.copy_optimized,
        timing_only,
        kernel_threads: None,
        tiling: opts.tiling,
    }
}

/// Lift a front-local pivot failure to the permuted global column.
pub(crate) fn fu_err_to_factor(col_start: usize, e: FuError) -> FactorError {
    match e {
        FuError::NotPositiveDefinite { local_column } => {
            FactorError::NotPositiveDefinite { column: col_start + local_column }
        }
    }
}

fn batch_err_to_factor(symbolic: &SymbolicFactor, sns: &[usize], e: BatchError) -> FactorError {
    fu_err_to_factor(symbolic.supernodes[sns[e.member]].col_start, e.error)
}

/// A dispatched front (phase 1 done) whose downloads have not been enqueued
/// yet. Holding the flush back until the *next* front dispatches is what
/// lets that front's upload overtake this one's downloads on the copy
/// engine while the compute engine is still busy here.
struct StagedFront<T> {
    sns: Vec<usize>,
    bufs: Vec<Vec<T>>,
    kind: StagedKind,
}

enum StagedKind {
    Single(FuPending),
    Batch(FuBatchPending),
}

/// A flushed front: downloads enqueued (event-gated), panel and update
/// already extracted (the simulator computes data eagerly — only *time* is
/// outstanding), host charges for the extraction deferred to finish.
struct InflightFront {
    sns: Vec<usize>,
    /// `(s, k, m)` per member — the deferred extract-charge dimensions.
    extracts: Vec<(usize, usize, usize)>,
    pending: FuPending,
}

/// State of the pipelined postorder driver (see [`PipelineOptions`]).
struct PipeDriver<'a, T> {
    symbolic: &'a SymbolicFactor,
    opts: &'a FactorOptions,
    panel_ptr: Vec<usize>,
    slab: Vec<T>,
    /// Packed `m × m` updates awaiting their parent's extend-add.
    updates: Vec<Option<Vec<T>>>,
    staged: Option<StagedFront<T>>,
    inflight: Vec<InflightFront>,
    stats: FactorStats,
    rel: Vec<usize>,
    live: usize,
    peak: usize,
    /// Timing-only rehearsal mode: charge every simulated cost the real run
    /// would charge, touch no numeric data. Simulated durations depend only
    /// on shapes and machine configuration, so the rehearsed makespan is
    /// exact — this is what the pipelined-vs-drain cost model runs on a
    /// virtual twin machine.
    timing: bool,
}

impl<T: Scalar> PipeDriver<'_, T> {
    fn run(
        &mut self,
        a: &SymCsc<T>,
        machine: &mut Machine,
        pool: &mut PinnedPool,
    ) -> Result<(), FactorError> {
        let post = &self.symbolic.postorder;
        let mut i = 0;
        while i < post.len() {
            let run = self.batch_run_len(i);
            if run >= 2 {
                let sns = post[i..i + run].to_vec();
                self.step_batch(a, &sns, machine, pool)?;
                i += run;
            } else {
                self.step_single(a, post[i], machine, pool)?;
                i += 1;
            }
        }
        self.flush_staged(machine, pool);
        self.drain_inflight(machine, pool);
        Ok(())
    }

    /// Length of the batchable run starting at postorder position `start`:
    /// consecutive P4-selected fronts no larger than `batch_max_front`,
    /// with no producer/consumer pair inside the run (a member's children
    /// must have flushed before it assembles). Returns 1 when the front at
    /// `start` dispatches alone.
    fn batch_run_len(&self, start: usize) -> usize {
        let pl = &self.opts.pipeline;
        // Batches run the naive whole-front P4 plan; under the
        // copy-optimized plan members dispatch singly so the transfer byte
        // counts (and the bits) match the drain driver.
        if self.opts.copy_optimized || pl.batch_max_fronts < 2 {
            return 1;
        }
        let symbolic = self.symbolic;
        let post = &symbolic.postorder;
        let mut len = 0;
        while len < pl.batch_max_fronts && start + len < post.len() {
            let sn = post[start + len];
            let info = &symbolic.supernodes[sn];
            let (s, k, m) = (info.front_size(), info.k(), info.m());
            if s > pl.batch_max_front || self.opts.selector.choose(sn, m, k) != PolicyKind::P4 {
                break;
            }
            if symbolic.children[sn].iter().any(|c| post[start..start + len].contains(c)) {
                break;
            }
            len += 1;
        }
        len.max(1)
    }

    /// Make `sn`'s child updates consumable: flush the staged front if it
    /// holds a child (producing the update data), then block the host on
    /// the d2h completion *event* of any in-flight entry holding a child —
    /// an event wait, not a device drain.
    fn ready_children(&mut self, sn: usize, machine: &mut Machine, pool: &mut PinnedPool) {
        let symbolic = self.symbolic;
        let kids = &symbolic.children[sn];
        if self.staged.as_ref().is_some_and(|st| st.sns.iter().any(|x| kids.contains(x))) {
            self.flush_staged(machine, pool);
        }
        let mut j = 0;
        while j < self.inflight.len() {
            if self.inflight[j].sns.iter().any(|x| kids.contains(x)) {
                let e = self.inflight.remove(j);
                self.finish_entry(e, machine, pool);
            } else {
                j += 1;
            }
        }
    }

    /// Assemble `sn`'s front into a fresh buffer, consuming its children's
    /// packed updates.
    fn assemble(&mut self, a: &SymCsc<T>, sn: usize, machine: &mut Machine) -> Vec<T> {
        let symbolic = self.symbolic;
        let info = &symbolic.supernodes[sn];
        let s = info.front_size();
        self.stats.front_alloc_events += 1;
        if self.timing {
            for &c in &symbolic.children[sn] {
                self.updates[c].take().expect("child update must exist in postorder");
            }
            self.live += s * s;
            self.peak = self.peak.max(self.live);
            let a_nnz = (info.col_start..info.col_end).map(|c| a.col_rows(c).len()).sum();
            charge_assemble::<T>(
                a_nnz,
                s,
                info.k(),
                symbolic.children[sn].iter().map(|&c| symbolic.supernodes[c].m()),
                &mut machine.host,
            );
            return Vec::new();
        }
        let child_bufs: Vec<(usize, Vec<T>)> = symbolic.children[sn]
            .iter()
            .map(|&c| (c, self.updates[c].take().expect("child update must exist in postorder")))
            .collect();
        let mut front_data = vec![T::ZERO; s * s];
        self.live += s * s;
        self.peak = self.peak.max(self.live);
        let children = child_bufs.iter().map(|(c, d)| ChildUpdate {
            rows: symbolic.supernodes[*c].update_rows(),
            data: &d[..],
        });
        assemble_front_into(a, info, children, &mut front_data, &mut self.rel, &mut machine.host);
        for (_, d) in child_bufs {
            self.live -= d.len();
        }
        front_data
    }

    /// Drain-path extraction for fronts with no GPU work outstanding:
    /// numerics and charges together, as the drain driver orders them.
    fn extract_inline(&mut self, sn: usize, front: &Front<'_, T>, machine: &mut Machine) {
        let info = &self.symbolic.supernodes[sn];
        let (s, k, m) = (info.front_size(), info.k(), info.m());
        if self.timing {
            charge_panel_extract::<T>(s, k, &mut machine.host);
            charge_update_extract::<T>(m, &mut machine.host);
            if m > 0 {
                self.stats.front_alloc_events += 1;
                self.updates[sn] = Some(Vec::new());
            }
            return;
        }
        let (p0, p1) = (self.panel_ptr[sn], self.panel_ptr[sn + 1]);
        extract_panel_into(front, &mut self.slab[p0..p1], &mut machine.host);
        charge_update_extract::<T>(m, &mut machine.host);
        if m > 0 {
            self.stats.front_alloc_events += 1;
            let mut u = vec![T::ZERO; m * m];
            copy_update_packed(front.data, s, k, &mut u);
            self.live += m * m;
            self.updates[sn] = Some(u);
        }
    }

    /// Phase 2 for the staged front: enqueue its event-gated downloads,
    /// extract the panel and update eagerly (data exists; time is still
    /// outstanding) so the front buffer can drop, and move it in flight
    /// with the extraction charges deferred to finish.
    fn flush_staged(&mut self, machine: &mut Machine, pool: &mut PinnedPool) {
        let Some(StagedFront { sns, mut bufs, kind }) = self.staged.take() else { return };
        let symbolic = self.symbolic;
        let mut ctx = fu_ctx_mode(machine, pool, self.opts, self.timing);
        let pending = match kind {
            StagedKind::Single(mut pending) => {
                let info = &symbolic.supernodes[sns[0]];
                let mut front = Front { s: info.front_size(), k: info.k(), data: &mut bufs[0] };
                enqueue_downloads(&mut front, &mut pending, &mut ctx);
                pending
            }
            StagedKind::Batch(batch) => {
                let mut fronts: Vec<Front<'_, T>> = sns
                    .iter()
                    .zip(bufs.iter_mut())
                    .map(|(&sn, buf)| {
                        let info = &symbolic.supernodes[sn];
                        Front { s: info.front_size(), k: info.k(), data: &mut buf[..] }
                    })
                    .collect();
                enqueue_batch_downloads(&mut fronts, batch, &mut ctx)
            }
        };
        let mut extracts = Vec::with_capacity(sns.len());
        for (&sn, buf) in sns.iter().zip(bufs.iter_mut()) {
            let info = &symbolic.supernodes[sn];
            let (s, k, m) = (info.front_size(), info.k(), info.m());
            let front = Front { s, k, data: &mut buf[..] };
            if self.timing {
                if m > 0 {
                    self.stats.front_alloc_events += 1;
                    self.updates[sn] = Some(Vec::new());
                }
            } else {
                let (p0, p1) = (self.panel_ptr[sn], self.panel_ptr[sn + 1]);
                extract_panel_copy(&front, &mut self.slab[p0..p1]);
                if m > 0 {
                    self.stats.front_alloc_events += 1;
                    let mut u = vec![T::ZERO; m * m];
                    copy_update_packed(front.data, s, k, &mut u);
                    self.live += m * m;
                    self.updates[sn] = Some(u);
                }
            }
            self.live -= s * s;
            extracts.push((s, k, m));
        }
        self.inflight.push(InflightFront { sns, extracts, pending });
    }

    /// Phase 3 for one in-flight entry: host waits on its `done` event,
    /// device buffers free, and the deferred extraction charges land in the
    /// drain driver's per-front order.
    fn finish_entry(&mut self, entry: InflightFront, machine: &mut Machine, pool: &mut PinnedPool) {
        let InflightFront { extracts, mut pending, .. } = entry;
        let mut ctx = fu_ctx_mode(machine, pool, self.opts, self.timing);
        finish_fu(&mut pending, &mut ctx);
        for (s, k, m) in extracts {
            charge_panel_extract::<T>(s, k, &mut machine.host);
            charge_update_extract::<T>(m, &mut machine.host);
        }
    }

    fn drain_inflight(&mut self, machine: &mut Machine, pool: &mut PinnedPool) {
        while !self.inflight.is_empty() {
            let e = self.inflight.remove(0);
            self.finish_entry(e, machine, pool);
        }
    }

    /// Finish the oldest in-flight entries until at most `depth` remain.
    fn enforce_depth(&mut self, machine: &mut Machine, pool: &mut PinnedPool) {
        while self.inflight.len() > self.opts.pipeline.depth {
            let e = self.inflight.remove(0);
            self.finish_entry(e, machine, pool);
        }
    }

    fn step_single(
        &mut self,
        a: &SymCsc<T>,
        sn: usize,
        machine: &mut Machine,
        pool: &mut PinnedPool,
    ) -> Result<(), FactorError> {
        let symbolic = self.symbolic;
        let info = &symbolic.supernodes[sn];
        let (s, k, m) = (info.front_size(), info.k(), info.m());
        self.ready_children(sn, machine, pool);
        let mut front_data = self.assemble(a, sn, machine);
        let mut front = Front { s, k, data: &mut front_data };
        let policy = self.opts.selector.choose(sn, m, k);
        let mut ctx = fu_ctx_mode(machine, pool, self.opts, self.timing);
        let dispatched = try_dispatch_gpu(&mut front, policy, &mut ctx)
            .map_err(|e| fu_err_to_factor(info.col_start, e))?;
        let pending = match dispatched {
            Some(p) => p,
            None => {
                // Device OOM: reach the drain driver's empty-device state
                // before retrying, so P1-fallback decisions match it.
                self.flush_staged(machine, pool);
                self.drain_inflight(machine, pool);
                let mut ctx = fu_ctx_mode(machine, pool, self.opts, self.timing);
                dispatch_fu(&mut front, policy, &mut ctx)
                    .map_err(|e| fu_err_to_factor(info.col_start, e))?
            }
        };
        if pending.oom_fallback() {
            self.stats.oom_fallbacks += 1;
        }
        if pending.is_done() {
            // CPU-resident result (P1, or an m = 0 P2/P3 pivot): nothing to
            // pipeline.
            self.extract_inline(sn, &front, machine);
            self.live -= s * s;
            return Ok(());
        }
        // Dispatch-before-flush: this front's upload is already queued, so
        // flushing the previous front's downloads now cannot delay it.
        self.flush_staged(machine, pool);
        self.staged = Some(StagedFront {
            sns: vec![sn],
            bufs: vec![front_data],
            kind: StagedKind::Single(pending),
        });
        self.enforce_depth(machine, pool);
        Ok(())
    }

    fn step_batch(
        &mut self,
        a: &SymCsc<T>,
        sns: &[usize],
        machine: &mut Machine,
        pool: &mut PinnedPool,
    ) -> Result<(), FactorError> {
        let symbolic = self.symbolic;
        let mut bufs: Vec<Vec<T>> = Vec::with_capacity(sns.len());
        for &sn in sns {
            self.ready_children(sn, machine, pool);
            bufs.push(self.assemble(a, sn, machine));
        }
        let mut ctx = fu_ctx_mode(machine, pool, self.opts, self.timing);
        let mut fronts: Vec<Front<'_, T>> = sns
            .iter()
            .zip(bufs.iter_mut())
            .map(|(&sn, buf)| {
                let info = &symbolic.supernodes[sn];
                Front { s: info.front_size(), k: info.k(), data: &mut buf[..] }
            })
            .collect();
        let first = try_dispatch_gpu_batch(&mut fronts, &mut ctx)
            .map_err(|e| batch_err_to_factor(symbolic, sns, e))?;
        drop(fronts);
        let batch = match first {
            Some(b) => Some(b),
            None => {
                // Combined allocation OOM: drain to the empty-device state
                // and retry once before degrading to per-member dispatch.
                self.flush_staged(machine, pool);
                self.drain_inflight(machine, pool);
                let mut ctx = fu_ctx_mode(machine, pool, self.opts, self.timing);
                let mut fronts: Vec<Front<'_, T>> = sns
                    .iter()
                    .zip(bufs.iter_mut())
                    .map(|(&sn, buf)| {
                        let info = &symbolic.supernodes[sn];
                        Front { s: info.front_size(), k: info.k(), data: &mut buf[..] }
                    })
                    .collect();
                try_dispatch_gpu_batch(&mut fronts, &mut ctx)
                    .map_err(|e| batch_err_to_factor(symbolic, sns, e))?
            }
        };
        match batch {
            Some(b) => {
                self.flush_staged(machine, pool);
                self.staged =
                    Some(StagedFront { sns: sns.to_vec(), bufs, kind: StagedKind::Batch(b) });
                self.enforce_depth(machine, pool);
            }
            None => {
                // The run does not fit even on an empty device: dispatch
                // members one by one (drained, so every decision matches
                // the drain driver's).
                for (&sn, mut buf) in sns.iter().zip(bufs) {
                    let info = &symbolic.supernodes[sn];
                    let (s, k) = (info.front_size(), info.k());
                    let mut front = Front { s, k, data: &mut buf[..] };
                    let mut ctx = fu_ctx_mode(machine, pool, self.opts, self.timing);
                    let mut pending = dispatch_fu(&mut front, PolicyKind::P4, &mut ctx)
                        .map_err(|e| fu_err_to_factor(info.col_start, e))?;
                    enqueue_downloads(&mut front, &mut pending, &mut ctx);
                    finish_fu(&mut pending, &mut ctx);
                    if pending.oom_fallback() {
                        self.stats.oom_fallbacks += 1;
                    }
                    self.extract_inline(sn, &front, machine);
                    self.live -= s * s;
                }
            }
        }
        Ok(())
    }
}

/// Timing-only rehearsal of one driver schedule on a *virtual twin* of
/// `machine`: same CPU and GPU configuration, fresh clocks, device memory
/// and staging pool in virtual mode. Every simulated duration depends only
/// on shapes and configuration — never on numeric data — so the rehearsed
/// makespan equals the corresponding real driver's exactly, including OOM
/// fallback decisions and pinned-pool waits. Costs two data-free passes
/// over the supernode list; no numeric buffer is allocated or touched.
fn rehearse_makespan<T: Scalar>(
    a: &SymCsc<T>,
    symbolic: &SymbolicFactor,
    opts: &FactorOptions,
    machine: &Machine,
    pipelined: bool,
) -> f64 {
    let gpu_cfg = machine.gpu.as_ref().expect("pipelined routing requires a GPU").config().clone();
    let mut twin = Machine::with_gpu(machine.host.config().clone(), gpu_cfg);
    if let Some(g) = twin.gpu.as_mut() {
        g.set_virtual(true);
    }
    let mut pool =
        if opts.pinned_reuse { PinnedPool::new(2) } else { PinnedPool::without_reuse(2) };
    pool.set_virtual(true);
    if pipelined {
        let nsn = symbolic.num_supernodes();
        let mut drv = PipeDriver {
            symbolic,
            opts,
            panel_ptr: symbolic.panel_ptr(),
            slab: Vec::new(),
            updates: (0..nsn).map(|_| None).collect(),
            staged: None,
            inflight: Vec::new(),
            stats: FactorStats::default(),
            rel: Vec::new(),
            live: 0,
            peak: 0,
            timing: true,
        };
        drv.run(a, &mut twin, &mut pool)
            .expect("timing-only rehearsal sees no data, so no pivot can fail");
    } else {
        // The drain driver's per-front charge sequence, data-free: assembly,
        // the full F-U schedule (drained per front), panel and update
        // extraction. Arena/heap front storage charge identically, so the
        // rehearsal needs neither.
        let mut empty: [T; 0] = [];
        for &sn in &symbolic.postorder {
            let info = &symbolic.supernodes[sn];
            let (s, k, m) = (info.front_size(), info.k(), info.m());
            let a_nnz = (info.col_start..info.col_end).map(|c| a.col_rows(c).len()).sum();
            charge_assemble::<T>(
                a_nnz,
                s,
                k,
                symbolic.children[sn].iter().map(|&c| symbolic.supernodes[c].m()),
                &mut twin.host,
            );
            let mut front = Front { s, k, data: &mut empty };
            let policy = opts.selector.choose(sn, m, k);
            let mut ctx = fu_ctx_mode(&mut twin, &mut pool, opts, true);
            execute_fu(&mut front, policy, &mut ctx)
                .expect("timing-only rehearsal sees no data, so no pivot can fail");
            charge_panel_extract::<T>(s, k, &mut twin.host);
            charge_update_extract::<T>(m, &mut twin.host);
        }
    }
    twin.elapsed()
}

/// The pipelined counterpart of [`factor_permuted`] (selected via
/// [`PipelineOptions::enabled`] on a GPU machine).
///
/// Per-front numeric work is byte-for-byte the drain driver's — assembly in
/// postorder, the same staged f32 kernels in the same order, extend-add of
/// child updates in postorder child rank — so factor slabs are **bitwise
/// identical** to the drain driver's. What changes is when the host blocks:
/// instead of a full device drain after every front, each front's downloads
/// gate on completion events, the next front's upload is dispatched before
/// the previous front's downloads flush, and runs of small P4 fronts share
/// one dispatch.
fn factor_permuted_pipelined<T: Scalar>(
    a: &SymCsc<T>,
    symbolic: &SymbolicFactor,
    perm: &Permutation,
    machine: &mut Machine,
    opts: &FactorOptions,
) -> Result<(CholeskyFactor<T>, FactorStats), FactorError> {
    // Cost-model gate: rehearse both schedules on a virtual twin and keep
    // the pipeline only when it is predicted to win. Both drivers produce
    // bitwise-identical factors, so this is purely a makespan decision —
    // and not a heuristic one: the rehearsal replays every simulated charge
    // the real run would make, so the prediction is exact. Matrices whose
    // front mix loses more to pinned-pool growth and look-ahead chaining
    // than overlap buys back (narrow-treed P2-heavy suites) run the drain
    // schedule and report speedup 1.0 instead of a regression.
    let t_pipe = rehearse_makespan(a, symbolic, opts, machine, true);
    let t_drain = rehearse_makespan(a, symbolic, opts, machine, false);
    if t_pipe >= t_drain {
        let drain = FactorOptions {
            pipeline: PipelineOptions { enabled: false, ..opts.pipeline },
            ..opts.clone()
        };
        return factor_permuted(a, symbolic, perm, machine, &drain);
    }
    let nsn = symbolic.num_supernodes();
    let mut pool =
        if opts.pinned_reuse { PinnedPool::new(2) } else { PinnedPool::without_reuse(2) };
    let wall0 = std::time::Instant::now();
    let mut drv = PipeDriver {
        symbolic,
        opts,
        panel_ptr: symbolic.panel_ptr(),
        slab: vec![T::ZERO; symbolic.factor_slab_len()],
        updates: (0..nsn).map(|_| None).collect(),
        staged: None,
        inflight: Vec::new(),
        stats: FactorStats { front_alloc_events: 1, ..Default::default() },
        rel: Vec::new(),
        live: 0,
        peak: 0,
        timing: false,
    };
    drv.run(a, machine, &mut pool)?;
    let PipeDriver { panel_ptr, slab, mut stats, peak, .. } = drv;
    stats.peak_front_bytes = peak * T::BYTES;
    stats.total_time = machine.elapsed();
    stats.gpu = machine.gpu.as_ref().map(|g| g.utilization(stats.total_time));
    stats.wall_time = wall0.elapsed().as_secs_f64();
    Ok((CholeskyFactor { symbolic: symbolic.clone(), perm: perm.clone(), slab, panel_ptr }, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_matgen::{laplacian_2d, laplacian_3d, Stencil};
    use mf_sparse::symbolic::analyze;
    use mf_sparse::{AmalgamationOptions, OrderingKind};

    fn factor_grid(
        selector: PolicySelector,
        nx: usize,
        ny: usize,
    ) -> (CholeskyFactor<f64>, FactorStats, SymCsc<f64>) {
        let a = laplacian_2d(nx, ny, Stencil::Faces);
        let analysis =
            analyze(&a, OrderingKind::NestedDissection, Some(&AmalgamationOptions::default()))
                .unwrap();
        let mut machine = Machine::paper_node();
        let opts = FactorOptions { selector, record_stats: true, ..Default::default() };
        let (f, s) = factor_permuted(
            &analysis.permuted.0,
            &analysis.symbolic,
            &analysis.perm,
            &mut machine,
            &opts,
        )
        .unwrap();
        (f, s, a)
    }

    /// ‖P·A·Pᵀ − L·Lᵀ‖∞ over the structure of A (cheap reconstruction check).
    fn reconstruction_error(f: &CholeskyFactor<f64>, a: &SymCsc<f64>) -> f64 {
        let pa = f.perm.permute_sym(a);
        let n = pa.order();
        let mut max = 0.0f64;
        for j in 0..n {
            for (&i, &v) in pa.col_rows(j).iter().zip(pa.col_vals(j)) {
                // (L·Lᵀ)[i,j] = Σ_l L[i,l]·L[j,l], l ≤ min(i,j) = j.
                let mut dot = 0.0;
                for l in 0..=j {
                    let lj = f.l_entry(j, l);
                    if lj != 0.0 {
                        dot += f.l_entry(i, l) * lj;
                    }
                }
                max = max.max((dot - v).abs());
            }
        }
        max
    }

    #[test]
    fn p1_factorization_reconstructs_matrix() {
        let (f, stats, a) = factor_grid(PolicySelector::Fixed(PolicyKind::P1), 12, 12);
        assert!(stats.total_time > 0.0);
        assert_eq!(stats.oom_fallbacks, 0);
        let err = reconstruction_error(&f, &a);
        assert!(err < 1e-9, "reconstruction error {err}");
    }

    #[test]
    fn gpu_policies_reconstruct_at_f32_accuracy() {
        for p in [PolicyKind::P2, PolicyKind::P3, PolicyKind::P4] {
            let (f, _, a) = factor_grid(PolicySelector::Fixed(p), 10, 10);
            let err = reconstruction_error(&f, &a);
            assert!(err < 1e-2, "{p} reconstruction error {err}");
            assert!(err > 0.0);
        }
    }

    #[test]
    fn stats_cover_every_supernode() {
        let (f, stats, _) = factor_grid(PolicySelector::Fixed(PolicyKind::P1), 14, 9);
        assert_eq!(stats.records.len(), f.symbolic.num_supernodes());
        assert!(stats.records.iter().all(|r| r.total > 0.0));
        // P1 runs must have zero copy time.
        assert!(stats.records.iter().all(|r| r.t_copy == 0.0));
    }

    #[test]
    fn baseline_hybrid_uses_multiple_policies_on_3d() {
        let a = laplacian_3d(9, 9, 9, Stencil::Faces);
        let analysis =
            analyze(&a, OrderingKind::NestedDissection, Some(&AmalgamationOptions::default()))
                .unwrap();
        let mut machine = Machine::paper_node();
        let opts = FactorOptions {
            selector: PolicySelector::Baseline(BaselineThresholds::default()),
            record_stats: true,
            ..Default::default()
        };
        let (_, stats) = factor_permuted(
            &analysis.permuted.0,
            &analysis.symbolic,
            &analysis.perm,
            &mut machine,
            &opts,
        )
        .unwrap();
        let counts = stats.policy_counts();
        assert!(counts[0] > 0, "small fronts should use P1: {counts:?}");
    }

    #[test]
    fn oracle_selector_uses_table() {
        let a = laplacian_2d(8, 8, Stencil::Faces);
        let analysis = analyze(&a, OrderingKind::NestedDissection, None).unwrap();
        let nsn = analysis.symbolic.num_supernodes();
        let table = vec![PolicyKind::P2; nsn];
        let mut machine = Machine::paper_node();
        let opts = FactorOptions {
            selector: PolicySelector::Oracle(table),
            record_stats: true,
            ..Default::default()
        };
        let (_, stats) = factor_permuted(
            &analysis.permuted.0,
            &analysis.symbolic,
            &analysis.perm,
            &mut machine,
            &opts,
        )
        .unwrap();
        assert!(stats.records.iter().all(|r| r.policy == PolicyKind::P2));
    }

    #[test]
    fn indefinite_matrix_reports_global_column() {
        use mf_sparse::Triplet;
        let mut t = Triplet::new(6);
        for i in 0..6 {
            t.push(i, i, if i == 3 { -5.0 } else { 4.0 });
            if i + 1 < 6 {
                t.push(i + 1, i, -1.0);
            }
        }
        let a = t.assemble();
        let analysis = analyze(&a, OrderingKind::Natural, None).unwrap();
        let mut machine = Machine::paper_node();
        let err = factor_permuted(
            &analysis.permuted.0,
            &analysis.symbolic,
            &analysis.perm,
            &mut machine,
            &FactorOptions::default(),
        )
        .unwrap_err();
        match err {
            FactorError::NotPositiveDefinite { column } => {
                // Natural ordering ⇒ permuted column == original column 3
                // (the first non-positive pivot may surface at 3 exactly).
                assert_eq!(column, 3);
            }
            FactorError::WorkerLost { .. } => panic!("serial factorization cannot lose a worker"),
            FactorError::Analyze(_) => panic!("analysis already succeeded before the factor"),
            FactorError::BudgetTooSmall { .. } => panic!("no memory budget was requested"),
        }
    }

    #[test]
    fn l_entry_outside_structure_is_zero() {
        let (f, _, _) = factor_grid(PolicySelector::Fixed(PolicyKind::P1), 6, 6);
        assert_eq!(f.l_entry(0, 5), 0.0, "upper triangle");
        // Diagonal is positive everywhere.
        for j in 0..f.order() {
            assert!(f.l_entry(j, j) > 0.0);
        }
    }

    #[test]
    fn pipelined_driver_matches_drain_bitwise_and_runs_faster() {
        let a = laplacian_3d(7, 6, 6, Stencil::Faces);
        let analysis =
            analyze(&a, OrderingKind::NestedDissection, Some(&AmalgamationOptions::default()))
                .unwrap();
        let run = |pipeline: PipelineOptions, selector: PolicySelector| {
            let mut machine = Machine::paper_node();
            let opts = FactorOptions { selector, pipeline, ..Default::default() };
            factor_permuted(
                &analysis.permuted.0,
                &analysis.symbolic,
                &analysis.perm,
                &mut machine,
                &opts,
            )
            .unwrap()
        };
        // `strict`: whether the selector sends enough fronts to the GPU on
        // this grid for overlap to show (Baseline picks P1 for every front
        // here, so both drivers run the same inline path).
        for (selector, strict) in [
            (PolicySelector::Fixed(PolicyKind::P4), true),
            (PolicySelector::Baseline(BaselineThresholds::default()), false),
        ] {
            let (fd, sd) = run(PipelineOptions::default(), selector.clone());
            let (fp, sp) = run(PipelineOptions::pipelined(), selector);
            let bd: Vec<u64> = fd.slab.iter().map(|x| x.to_bits()).collect();
            let bp: Vec<u64> = fp.slab.iter().map(|x| x.to_bits()).collect();
            assert_eq!(bd, bp, "pipelined factor must match the drain driver bitwise");
            assert!(
                sp.total_time <= sd.total_time,
                "pipelined {:.6e} must not lose to drain {:.6e}",
                sp.total_time,
                sd.total_time
            );
            if strict {
                assert!(
                    sp.total_time < sd.total_time,
                    "pipelined {:.6e} must beat drain {:.6e}",
                    sp.total_time,
                    sd.total_time
                );
                let util = sp.gpu.expect("GPU machine must report utilization");
                assert!(util.busy_fraction() > 0.0 && util.busy_fraction() <= 1.0);
            }
            assert!(sd.gpu.is_some(), "drain driver reports utilization too");
        }
    }

    #[test]
    fn pipelined_cost_model_never_loses_and_falls_back_exactly() {
        // elasticity_3d(4,4,3) under fixed P2 in f32 is a pipeline loser
        // (pinned-pool growth under look-ahead outweighs what overlap buys
        // back on its narrow tree): the rehearsal gate must detect it and
        // reproduce the drain timeline *exactly* — same bits, same
        // simulated makespan to the last ulp. Under P4 the pipeline wins on
        // the same matrix and must stay strictly ahead.
        let a = mf_matgen::elasticity_3d(4, 4, 3);
        let analysis =
            analyze(&a, OrderingKind::NestedDissection, Some(&AmalgamationOptions::default()))
                .unwrap();
        let a32: SymCsc<f32> = analysis.permuted.0.cast();
        let run = |pipeline: PipelineOptions, policy: PolicyKind| {
            let mut machine = Machine::paper_node();
            let opts = FactorOptions {
                selector: PolicySelector::Fixed(policy),
                pipeline,
                ..Default::default()
            };
            factor_permuted(&a32, &analysis.symbolic, &analysis.perm, &mut machine, &opts).unwrap()
        };
        for (policy, wins) in [(PolicyKind::P2, false), (PolicyKind::P4, true)] {
            let (fd, sd) = run(PipelineOptions::default(), policy);
            let (fp, sp) = run(PipelineOptions::pipelined(), policy);
            let bd: Vec<u32> = fd.slab.iter().map(|x| x.to_bits()).collect();
            let bp: Vec<u32> = fp.slab.iter().map(|x| x.to_bits()).collect();
            assert_eq!(bd, bp, "{policy}: cost-model route must not change the bits");
            if wins {
                assert!(
                    sp.total_time < sd.total_time,
                    "{policy}: predicted winner must stay strictly ahead ({:.6e} vs {:.6e})",
                    sp.total_time,
                    sd.total_time
                );
            } else {
                assert_eq!(
                    sp.total_time.to_bits(),
                    sd.total_time.to_bits(),
                    "{policy}: predicted loser must fall back to the exact drain schedule \
                     ({:.6e} vs {:.6e})",
                    sp.total_time,
                    sd.total_time
                );
            }
        }
    }

    #[test]
    fn pipelined_oom_fallbacks_match_drain_driver() {
        // A device too small for the big fronts: the pipelined driver must
        // make the same P1-fallback decisions (after draining) and still
        // produce identical bits.
        let a = laplacian_3d(6, 6, 5, Stencil::Faces);
        let analysis =
            analyze(&a, OrderingKind::NestedDissection, Some(&AmalgamationOptions::default()))
                .unwrap();
        let run = |pipeline: PipelineOptions| {
            let mut cfg = mf_gpusim::tesla_t10();
            cfg.mem_bytes = 2_000; // 500 f32 elements — only small fronts fit
            let mut machine = Machine::with_gpu(mf_gpusim::xeon_5160_core(), cfg);
            let opts = FactorOptions {
                selector: PolicySelector::Fixed(PolicyKind::P4),
                pipeline,
                ..Default::default()
            };
            factor_permuted(
                &analysis.permuted.0,
                &analysis.symbolic,
                &analysis.perm,
                &mut machine,
                &opts,
            )
            .unwrap()
        };
        let (fd, sd) = run(PipelineOptions::default());
        let (fp, sp) = run(PipelineOptions::pipelined());
        assert!(sd.oom_fallbacks > 0, "test needs OOM pressure to be meaningful");
        assert_eq!(sp.oom_fallbacks, sd.oom_fallbacks);
        assert!(fd.slab.iter().zip(&fp.slab).all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn pipelined_indefinite_matrix_reports_same_column() {
        use mf_sparse::Triplet;
        let mut t = Triplet::new(8);
        for i in 0..8 {
            t.push(i, i, if i == 5 { -3.0 } else { 4.0 });
            if i + 1 < 8 {
                t.push(i + 1, i, -1.0);
            }
        }
        let a = t.assemble();
        let analysis = analyze(&a, OrderingKind::Natural, None).unwrap();
        let mut machine = Machine::paper_node();
        let opts = FactorOptions {
            selector: PolicySelector::Fixed(PolicyKind::P4),
            pipeline: PipelineOptions::pipelined(),
            ..Default::default()
        };
        let err = factor_permuted(
            &analysis.permuted.0,
            &analysis.symbolic,
            &analysis.perm,
            &mut machine,
            &opts,
        )
        .unwrap_err();
        assert_eq!(err, FactorError::NotPositiveDefinite { column: 5 });
    }

    #[test]
    fn arena_and_heap_storage_agree_bit_for_bit() {
        let a = laplacian_3d(6, 5, 7, Stencil::Faces);
        let analysis =
            analyze(&a, OrderingKind::NestedDissection, Some(&AmalgamationOptions::default()))
                .unwrap();
        let run = |storage: FrontStorage| {
            let mut machine = Machine::paper_node();
            let opts = FactorOptions {
                selector: PolicySelector::Baseline(BaselineThresholds::default()),
                record_stats: true,
                front_storage: storage,
                ..Default::default()
            };
            factor_permuted(
                &analysis.permuted.0,
                &analysis.symbolic,
                &analysis.perm,
                &mut machine,
                &opts,
            )
            .unwrap()
        };
        let (fa, sa) = run(FrontStorage::Arena);
        let (fh, sh) = run(FrontStorage::Heap);
        assert_eq!(fa.panel_ptr, fh.panel_ptr);
        let ba: Vec<u64> = fa.slab.iter().map(|x| x.to_bits()).collect();
        let bh: Vec<u64> = fh.slab.iter().map(|x| x.to_bits()).collect();
        assert_eq!(ba, bh, "arena factor must match the per-front heap path bitwise");
        // Simulated clocks charge identically in both modes.
        assert_eq!(sa.total_time.to_bits(), sh.total_time.to_bits());
        assert_eq!(sa.records.len(), sh.records.len());
        // Arena mode: factor slab + arena. Heap mode: one allocation per
        // front plus one per non-root update on top of the slab.
        assert_eq!(sa.front_alloc_events, 2);
        assert!(sh.front_alloc_events > sa.front_alloc_events);
        // The arena high-water mark respects the symbolic bound.
        let bound = analysis.symbolic.update_stack_peak() * 8;
        assert!(sa.peak_front_bytes <= bound, "{} > {bound}", sa.peak_front_bytes);
        assert!(sa.peak_front_bytes > 0);
    }
}
