//! The supernodal multifrontal factorization driver.
//!
//! Performs the postorder traversal of the supernodal elimination tree,
//! assembling each frontal matrix (extend-add), executing its factor-update
//! under the policy chosen by the active [`PolicySelector`], and harvesting
//! the factor panels and per-call timing records.

use crate::features::LinearPolicyModel;
use crate::frontal::{assemble_front, extract_panel, extract_update, UpdateMatrix};
use crate::fu::{execute_fu, FuContext, FuError, DEFAULT_PANEL_WIDTH};
use crate::pinned_pool::PinnedPool;
use crate::policy::{BaselineThresholds, PolicyKind};
use crate::stats::{FactorStats, FuRecord};
use mf_dense::{FuFlops, Scalar};
use mf_gpusim::Machine;
use mf_sparse::symbolic::SymbolicFactor;
use mf_sparse::{Permutation, SymCsc};

/// How the policy for each factor-update call is chosen.
#[derive(Debug, Clone)]
pub enum PolicySelector {
    /// Always the same policy (the paper's per-policy columns in Table VII).
    Fixed(PolicyKind),
    /// Op-count thresholds (the baseline hybrid `P_BH`, §V-B1).
    Baseline(BaselineThresholds),
    /// The trained linear classifier (the model hybrid `P_MH`, §VI).
    Model(LinearPolicyModel),
    /// A per-supernode oracle (the ideal hybrid `P_IH` — built from
    /// retrospective per-policy timings).
    Oracle(Vec<PolicyKind>),
}

impl PolicySelector {
    /// Choose a policy for supernode `sn` with front dims `(m, k)`.
    pub fn choose(&self, sn: usize, m: usize, k: usize) -> PolicyKind {
        match self {
            PolicySelector::Fixed(p) => *p,
            PolicySelector::Baseline(b) => b.choose(FuFlops::new(m, k).total()),
            PolicySelector::Model(model) => model.predict(m, k),
            PolicySelector::Oracle(table) => table[sn],
        }
    }
}

/// Options controlling a numeric factorization run.
#[derive(Debug, Clone)]
pub struct FactorOptions {
    /// Policy selection scheme.
    pub selector: PolicySelector,
    /// P4 panel width `w` (Figure 9).
    pub panel_width: usize,
    /// Use the copy-optimized P4 transfer plan (§VI-C).
    pub copy_optimized: bool,
    /// Collect per-call [`FuRecord`]s (adds no simulated time).
    pub record_stats: bool,
    /// Use the growth-only pinned-buffer reuse policy (§V-A2); disable for
    /// the allocation-cost ablation.
    pub pinned_reuse: bool,
}

impl Default for FactorOptions {
    fn default() -> Self {
        FactorOptions {
            selector: PolicySelector::Fixed(PolicyKind::P1),
            panel_width: DEFAULT_PANEL_WIDTH,
            copy_optimized: false,
            record_stats: false,
            pinned_reuse: true,
        }
    }
}

/// Numeric factorization failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FactorError {
    /// Non-positive pivot at this column of the *permuted* matrix.
    NotPositiveDefinite {
        /// Global (permuted) column index.
        column: usize,
    },
    /// A parallel worker died (panicked) before handing off the update
    /// matrix this supernode depends on. The factorization cannot continue,
    /// but the failure is reported structurally instead of poisoning the
    /// whole process.
    WorkerLost {
        /// Supernode whose child hand-off was missing.
        supernode: usize,
    },
}

impl std::fmt::Display for FactorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FactorError::NotPositiveDefinite { column } => {
                write!(
                    f,
                    "matrix is not positive definite (pivot failure at permuted column {column})"
                )
            }
            FactorError::WorkerLost { supernode } => {
                write!(
                    f,
                    "parallel worker lost before supernode {supernode} received its child updates"
                )
            }
        }
    }
}

impl std::error::Error for FactorError {}

/// The Cholesky factor in supernodal panel form: `P·A·Pᵀ = L·Lᵀ`.
#[derive(Debug, Clone)]
pub struct CholeskyFactor<T> {
    /// Symbolic structure shared with the analysis.
    pub symbolic: SymbolicFactor,
    /// The fill-reducing permutation used (`perm[new] = old`).
    pub perm: Permutation,
    /// Per-supernode factor panels (`front_size × k`, column-major, leading
    /// dimension `front_size`; rows follow `symbolic.supernodes[s].rows`).
    pub panels: Vec<Vec<T>>,
}

impl<T: Scalar> CholeskyFactor<T> {
    /// Matrix order.
    pub fn order(&self) -> usize {
        self.symbolic.n
    }

    /// Entry `L[i, j]` of the factor (permuted indices; zero if outside the
    /// structure). Test/inspection helper — solves use the panels directly.
    pub fn l_entry(&self, i: usize, j: usize) -> T {
        if i < j {
            return T::ZERO;
        }
        let sn = self.symbolic.col_to_sn[j];
        let info = &self.symbolic.supernodes[sn];
        let s = info.front_size();
        let lc = j - info.col_start;
        let lr = if i < info.col_end {
            i - info.col_start
        } else {
            match info.rows[info.k()..].binary_search(&i) {
                Ok(pos) => info.k() + pos,
                Err(_) => return T::ZERO,
            }
        };
        self.panels[sn][lr + lc * s]
    }
}

/// Everything one supernode's task produces: its factor panel, the update
/// matrix destined for its parent's extend-add, and bookkeeping.
pub(crate) struct SnOutput<T> {
    /// The `s × k` factor panel.
    pub panel: Vec<T>,
    /// The `m × m` update matrix (`None` for root fronts, `m = 0`).
    pub update: Option<UpdateMatrix<T>>,
    /// Per-call timing record, when `opts.record_stats` is set.
    pub record: Option<FuRecord>,
    /// Whether a device OOM forced a P1 fallback.
    pub oom_fallback: bool,
}

/// One supernode's complete task body: assemble the front from `A` and the
/// buffered child updates (extend-added in the order given — the serial
/// postorder child rank), execute the factor-update under the selected
/// policy, and extract the panel and update matrix.
///
/// This is shared verbatim by the serial postorder driver and the
/// work-stealing parallel driver
/// ([`crate::parallel::factor_permuted_parallel`]), which is what makes the
/// parallel factor bitwise identical to the serial one: both run exactly
/// this code per supernode, on child updates in exactly this order.
#[allow(clippy::too_many_arguments)]
pub(crate) fn process_supernode<T: Scalar>(
    a: &SymCsc<T>,
    symbolic: &SymbolicFactor,
    sn: usize,
    children: &[UpdateMatrix<T>],
    machine: &mut Machine,
    pool: &mut PinnedPool,
    opts: &FactorOptions,
    kernel_threads: Option<usize>,
) -> Result<SnOutput<T>, FactorError> {
    let info = &symbolic.supernodes[sn];
    let (m, k) = (info.m(), info.k());

    let mut front = assemble_front(a, info, children, &mut machine.host);
    let t_assemble_records = if opts.record_stats { machine.take_records() } else { Vec::new() };

    let policy = opts.selector.choose(sn, m, k);
    let t0 = machine.host.now();
    let mut ctx = FuContext {
        machine,
        pool,
        panel_width: opts.panel_width,
        copy_optimized: opts.copy_optimized,
        timing_only: false,
        kernel_threads,
    };
    let outcome = execute_fu(&mut front, policy, &mut ctx).map_err(|e| match e {
        FuError::NotPositiveDefinite { local_column } => {
            FactorError::NotPositiveDefinite { column: info.col_start + local_column }
        }
    })?;
    let t1 = machine.host.now();

    let record = if opts.record_stats {
        let mut rec = FuRecord {
            sn,
            m,
            k,
            policy: outcome.executed,
            total: t1 - t0,
            t_potrf: 0.0,
            t_trsm: 0.0,
            t_syrk: 0.0,
            t_copy: 0.0,
            t_assemble: 0.0,
        };
        rec.absorb(&t_assemble_records);
        rec.absorb(&machine.take_records());
        Some(rec)
    } else {
        None
    };

    let panel = extract_panel(&front, &mut machine.host);
    let update = if m > 0 { Some(extract_update(&front, info, &mut machine.host)) } else { None };
    Ok(SnOutput { panel, update, record, oom_fallback: outcome.oom_fallback })
}

/// Factor an already-permuted matrix on the given machine.
///
/// `a` must be the permuted matrix `P·A·Pᵀ` whose structure `symbolic`
/// describes. Use [`crate::solver::SpdSolver`] for the one-call user API.
pub fn factor_permuted<T: Scalar>(
    a: &SymCsc<T>,
    symbolic: &SymbolicFactor,
    perm: &Permutation,
    machine: &mut Machine,
    opts: &FactorOptions,
) -> Result<(CholeskyFactor<T>, FactorStats), FactorError> {
    let nsn = symbolic.num_supernodes();
    let mut pool =
        if opts.pinned_reuse { PinnedPool::new(2) } else { PinnedPool::without_reuse(2) };
    let mut updates: Vec<Option<UpdateMatrix<T>>> = (0..nsn).map(|_| None).collect();
    let mut panels: Vec<Vec<T>> = vec![Vec::new(); nsn];
    let mut stats = FactorStats::default();
    machine.set_recording(opts.record_stats);
    let wall0 = std::time::Instant::now();

    for &sn in &symbolic.postorder {
        // Gather children updates (consumed by the extend-add).
        let children: Vec<UpdateMatrix<T>> = symbolic.children[sn]
            .iter()
            .map(|&c| updates[c].take().expect("child update must exist in postorder"))
            .collect();
        let out = process_supernode(a, symbolic, sn, &children, machine, &mut pool, opts, None)?;
        drop(children);

        if out.oom_fallback {
            stats.oom_fallbacks += 1;
        }
        if let Some(rec) = out.record {
            stats.records.push(rec);
        }
        panels[sn] = out.panel;
        updates[sn] = out.update;
    }

    stats.total_time = machine.elapsed();
    stats.wall_time = wall0.elapsed().as_secs_f64();
    machine.set_recording(false);
    Ok((CholeskyFactor { symbolic: symbolic.clone(), perm: perm.clone(), panels }, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_matgen::{laplacian_2d, laplacian_3d, Stencil};
    use mf_sparse::symbolic::analyze;
    use mf_sparse::{AmalgamationOptions, OrderingKind};

    fn factor_grid(
        selector: PolicySelector,
        nx: usize,
        ny: usize,
    ) -> (CholeskyFactor<f64>, FactorStats, SymCsc<f64>) {
        let a = laplacian_2d(nx, ny, Stencil::Faces);
        let analysis =
            analyze(&a, OrderingKind::NestedDissection, Some(&AmalgamationOptions::default()));
        let mut machine = Machine::paper_node();
        let opts = FactorOptions { selector, record_stats: true, ..Default::default() };
        let (f, s) = factor_permuted(
            &analysis.permuted.0,
            &analysis.symbolic,
            &analysis.perm,
            &mut machine,
            &opts,
        )
        .unwrap();
        (f, s, a)
    }

    /// ‖P·A·Pᵀ − L·Lᵀ‖∞ over the structure of A (cheap reconstruction check).
    fn reconstruction_error(f: &CholeskyFactor<f64>, a: &SymCsc<f64>) -> f64 {
        let pa = f.perm.permute_sym(a);
        let n = pa.order();
        let mut max = 0.0f64;
        for j in 0..n {
            for (&i, &v) in pa.col_rows(j).iter().zip(pa.col_vals(j)) {
                // (L·Lᵀ)[i,j] = Σ_l L[i,l]·L[j,l], l ≤ min(i,j) = j.
                let mut dot = 0.0;
                for l in 0..=j {
                    let lj = f.l_entry(j, l);
                    if lj != 0.0 {
                        dot += f.l_entry(i, l) * lj;
                    }
                }
                max = max.max((dot - v).abs());
            }
        }
        max
    }

    #[test]
    fn p1_factorization_reconstructs_matrix() {
        let (f, stats, a) = factor_grid(PolicySelector::Fixed(PolicyKind::P1), 12, 12);
        assert!(stats.total_time > 0.0);
        assert_eq!(stats.oom_fallbacks, 0);
        let err = reconstruction_error(&f, &a);
        assert!(err < 1e-9, "reconstruction error {err}");
    }

    #[test]
    fn gpu_policies_reconstruct_at_f32_accuracy() {
        for p in [PolicyKind::P2, PolicyKind::P3, PolicyKind::P4] {
            let (f, _, a) = factor_grid(PolicySelector::Fixed(p), 10, 10);
            let err = reconstruction_error(&f, &a);
            assert!(err < 1e-2, "{p} reconstruction error {err}");
            assert!(err > 0.0);
        }
    }

    #[test]
    fn stats_cover_every_supernode() {
        let (f, stats, _) = factor_grid(PolicySelector::Fixed(PolicyKind::P1), 14, 9);
        assert_eq!(stats.records.len(), f.symbolic.num_supernodes());
        assert!(stats.records.iter().all(|r| r.total > 0.0));
        // P1 runs must have zero copy time.
        assert!(stats.records.iter().all(|r| r.t_copy == 0.0));
    }

    #[test]
    fn baseline_hybrid_uses_multiple_policies_on_3d() {
        let a = laplacian_3d(9, 9, 9, Stencil::Faces);
        let analysis =
            analyze(&a, OrderingKind::NestedDissection, Some(&AmalgamationOptions::default()));
        let mut machine = Machine::paper_node();
        let opts = FactorOptions {
            selector: PolicySelector::Baseline(BaselineThresholds::default()),
            record_stats: true,
            ..Default::default()
        };
        let (_, stats) = factor_permuted(
            &analysis.permuted.0,
            &analysis.symbolic,
            &analysis.perm,
            &mut machine,
            &opts,
        )
        .unwrap();
        let counts = stats.policy_counts();
        assert!(counts[0] > 0, "small fronts should use P1: {counts:?}");
    }

    #[test]
    fn oracle_selector_uses_table() {
        let a = laplacian_2d(8, 8, Stencil::Faces);
        let analysis = analyze(&a, OrderingKind::NestedDissection, None);
        let nsn = analysis.symbolic.num_supernodes();
        let table = vec![PolicyKind::P2; nsn];
        let mut machine = Machine::paper_node();
        let opts = FactorOptions {
            selector: PolicySelector::Oracle(table),
            record_stats: true,
            ..Default::default()
        };
        let (_, stats) = factor_permuted(
            &analysis.permuted.0,
            &analysis.symbolic,
            &analysis.perm,
            &mut machine,
            &opts,
        )
        .unwrap();
        assert!(stats.records.iter().all(|r| r.policy == PolicyKind::P2));
    }

    #[test]
    fn indefinite_matrix_reports_global_column() {
        use mf_sparse::Triplet;
        let mut t = Triplet::new(6);
        for i in 0..6 {
            t.push(i, i, if i == 3 { -5.0 } else { 4.0 });
            if i + 1 < 6 {
                t.push(i + 1, i, -1.0);
            }
        }
        let a = t.assemble();
        let analysis = analyze(&a, OrderingKind::Natural, None);
        let mut machine = Machine::paper_node();
        let err = factor_permuted(
            &analysis.permuted.0,
            &analysis.symbolic,
            &analysis.perm,
            &mut machine,
            &FactorOptions::default(),
        )
        .unwrap_err();
        match err {
            FactorError::NotPositiveDefinite { column } => {
                // Natural ordering ⇒ permuted column == original column 3
                // (the first non-positive pivot may surface at 3 exactly).
                assert_eq!(column, 3);
            }
            FactorError::WorkerLost { .. } => panic!("serial factorization cannot lose a worker"),
        }
    }

    #[test]
    fn l_entry_outside_structure_is_zero() {
        let (f, _, _) = factor_grid(PolicySelector::Fixed(PolicyKind::P1), 6, 6);
        assert_eq!(f.l_entry(0, 5), 0.0, "upper triangle");
        // Diagonal is positive everywhere.
        for j in 0..f.order() {
            assert!(f.l_entry(j, j) > 0.0);
        }
    }
}
