//! Per-factor-update timing records.
//!
//! One [`FuRecord`] per supernode per factorization run. These drive the
//! paper's Figures 2/5/6, Table IV, and — joined across runs of different
//! policies — the training data of the auto-tuner (`T_ij` in Eq. 3).

use crate::policy::PolicyKind;
use mf_dense::FuFlops;
use mf_gpusim::{Component, GpuUtilization, KernelKind, ProfileRecord};

/// Timing breakdown of one factor-update call.
#[derive(Debug, Clone, Copy)]
pub struct FuRecord {
    /// Supernode index.
    pub sn: usize,
    /// Update-matrix size `m`.
    pub m: usize,
    /// Pivot-block width `k`.
    pub k: usize,
    /// Policy that executed the call.
    pub policy: PolicyKind,
    /// Wall (simulated) time of the whole call including synchronisation.
    pub total: f64,
    /// Time inside `potrf` kernels (CPU or GPU).
    pub t_potrf: f64,
    /// Time inside `trsm` kernels.
    pub t_trsm: f64,
    /// Time inside `syrk`/`gemm` kernels.
    pub t_syrk: f64,
    /// Transfer time (H2D + D2H).
    pub t_copy: f64,
    /// Host assembly (extend-add, packing, update application).
    pub t_assemble: f64,
}

impl FuRecord {
    /// Operation counts for this call.
    pub fn flops(&self) -> FuFlops {
        FuFlops::new(self.m, self.k)
    }

    /// Achieved flop rate of the whole call.
    pub fn rate(&self) -> f64 {
        if self.total > 0.0 {
            self.flops().total() / self.total
        } else {
            0.0
        }
    }

    /// Fold a batch of profile records (one F-U call's worth) into the
    /// per-component buckets of this record.
    pub fn absorb(&mut self, records: &[ProfileRecord]) {
        for r in records {
            let d = r.duration();
            match r.component {
                Component::CpuKernel(k) | Component::GpuKernel(k) => match k {
                    KernelKind::Potrf | KernelKind::PanelPotrf => self.t_potrf += d,
                    KernelKind::Trsm => self.t_trsm += d,
                    KernelKind::Syrk | KernelKind::Gemm => self.t_syrk += d,
                },
                Component::CopyH2D | Component::CopyD2H | Component::CopyP2P => self.t_copy += d,
                Component::PinnedAlloc | Component::HostMemop => self.t_assemble += d,
            }
        }
    }
}

/// What one scheduled task of the parallel driver did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// A whole (unexpanded) supernode: assembly + factor-update + extract.
    Whole,
    /// Front assembly (extend-add) of a tile-expanded front.
    Assemble,
    /// A `potrf` diagonal tile task.
    Potrf,
    /// A `trsm` panel tile task.
    Trsm,
    /// A `syrk` diagonal update tile task.
    Syrk,
    /// A `gemm` off-diagonal update tile task.
    Gemm,
    /// Panel/update extraction of a tile-expanded front.
    Extract,
}

/// One scheduled task of a parallel run, at tile granularity for expanded
/// fronts. The per-supernode [`FuRecord`]s attribute a whole front to one
/// duration total; when several workers cooperate *inside* one front these
/// records are what keeps per-worker utilization accounting truthful.
#[derive(Debug, Clone, Copy)]
pub struct TaskRecord {
    /// Supernode the task belongs to.
    pub sn: usize,
    /// Worker that executed the task.
    pub worker: usize,
    /// What the task did.
    pub kind: TaskKind,
    /// Canonical position within the supernode: `0` for whole/assembly
    /// tasks, `tile index + 1` for tile tasks, `plan length + 1` for the
    /// extraction task — sorting by `(postorder rank, seq)` restores the
    /// serial execution order.
    pub seq: usize,
    /// Simulated duration charged to the executing worker's clock.
    pub duration: f64,
}

/// All records of one factorization run plus run-level metadata.
#[derive(Debug, Clone, Default)]
pub struct FactorStats {
    /// Per-supernode records in postorder execution order.
    pub records: Vec<FuRecord>,
    /// Total simulated factorization time. For the serial driver this is
    /// the machine's elapsed clock; for the parallel driver it is the
    /// maximum per-worker elapsed clock (each worker's simulated busy
    /// time — a lower bound on the simulated makespan).
    pub total_time: f64,
    /// Measured wall-clock seconds of the driver call on the real hardware
    /// this process ran on (unlike `total_time`, which is simulated).
    pub wall_time: f64,
    /// Supernodes that fell back to P1 because the device was out of memory.
    pub oom_fallbacks: usize,
    /// Peak bytes of front working storage in live use at any point: the
    /// arena high-water mark (serial) or the largest per-worker front
    /// buffer actually touched (parallel). Heap storage reports the sum of
    /// simultaneously-live front/update buffers instead.
    pub peak_front_bytes: usize,
    /// Heap allocation (or growth) events the numeric phase performed for
    /// front/update storage. Serial arena storage is O(1) — exactly the
    /// slab plus the arena; the parallel driver adds per-worker front
    /// buffer growths and one transient buffer per cross-worker update.
    pub front_alloc_events: u64,
    /// Per-task records of a parallel run at tile granularity, sorted by
    /// `(postorder rank, seq)` — the canonical serial order. Empty for
    /// serial runs, pipelined runs, or with `record_stats` off.
    pub tasks: Vec<TaskRecord>,
    /// GPU engine busy/idle accounting over the run, measured against
    /// `total_time`. `None` on CPU-only machines. Parallel runs aggregate
    /// one entry per worker device (busy seconds summed, `gpus` counted),
    /// so utilization stays normalised per engine.
    pub gpu: Option<GpuUtilization>,
    /// Per-device engine accounting from the multi-GPU driver, in global
    /// device order (device 0 is the caller's own device). Empty for
    /// single-device runs; `gpu` still carries the aggregate.
    pub gpu_devices: Vec<GpuUtilization>,
    /// Total bytes moved over peer (device-to-device) links by the
    /// multi-GPU driver's peer-copy extend-adds. Zero for single-device
    /// runs or with `MultiGpuOptions::peer_extend_add` off.
    pub peer_bytes: usize,
    /// Residency/traffic accounting of a memory-budgeted run
    /// (`FactorOptions::memory_budget`): tier traffic, eviction/reload
    /// counts, and the resident peak that stayed under the budget.
    /// `None` for in-core runs. Note `peak_front_bytes` above stays
    /// *logical* (the symbolic-bound invariant) even under a budget; the
    /// tier-resident figure lives here and in
    /// `FrontArena::resident_high_water_bytes`.
    pub ooc: Option<crate::ooc::OocStats>,
}

impl FactorStats {
    /// Merge per-worker record buffers from a parallel run into this run's
    /// record list, restoring the serial convention: records sorted by the
    /// supernode's postorder rank (its execution position in the serial
    /// driver). Each buffer entry is `(postorder_rank, record)`; workers
    /// append to their own buffer race-free during the run and the merge
    /// happens once at the end.
    pub fn merge_worker_records(&mut self, buffers: Vec<Vec<(usize, FuRecord)>>) {
        let mut tagged: Vec<(usize, FuRecord)> = buffers.into_iter().flatten().collect();
        tagged.sort_by_key(|&(rank, _)| rank);
        self.records.extend(tagged.into_iter().map(|(_, r)| r));
    }
    /// Sum of a field over all records.
    pub fn sum(&self, f: impl Fn(&FuRecord) -> f64) -> f64 {
        self.records.iter().map(f).sum()
    }

    /// Histogram of policies chosen.
    pub fn policy_counts(&self) -> [usize; 4] {
        let mut c = [0usize; 4];
        for r in &self.records {
            c[r.policy.index()] += 1;
        }
        c
    }

    /// Bin the records on an `(m, k)` grid with square bins of `bin` — the
    /// layout of Figure 2. Returns `(bins_m, bins_k, fraction-of-total-time
    /// matrix)` where entry `[im][ik]` is the fraction of total recorded F-U
    /// time spent in that bin.
    pub fn time_fraction_grid(&self, bin: usize, max_dim: usize) -> Vec<Vec<f64>> {
        let nb = max_dim.div_ceil(bin);
        let mut grid = vec![vec![0.0f64; nb]; nb];
        let mut total = 0.0;
        for r in &self.records {
            let im = (r.m / bin).min(nb - 1);
            let ik = (r.k / bin).min(nb - 1);
            grid[im][ik] += r.total;
            total += r.total;
        }
        if total > 0.0 {
            for row in &mut grid {
                for v in row {
                    *v /= total;
                }
            }
        }
        grid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(m: usize, k: usize, total: f64) -> FuRecord {
        FuRecord {
            sn: 0,
            m,
            k,
            policy: PolicyKind::P1,
            total,
            t_potrf: 0.0,
            t_trsm: 0.0,
            t_syrk: 0.0,
            t_copy: 0.0,
            t_assemble: 0.0,
        }
    }

    #[test]
    fn absorb_buckets_by_component() {
        let mut r = rec(10, 5, 1.0);
        r.absorb(&[
            ProfileRecord {
                component: Component::CpuKernel(KernelKind::Potrf),
                ops: 1.0,
                bytes: 0,
                start: 0.0,
                end: 0.1,
            },
            ProfileRecord {
                component: Component::GpuKernel(KernelKind::Gemm),
                ops: 1.0,
                bytes: 0,
                start: 0.1,
                end: 0.4,
            },
            ProfileRecord {
                component: Component::CopyH2D,
                ops: 0.0,
                bytes: 8,
                start: 0.0,
                end: 0.05,
            },
            ProfileRecord {
                component: Component::HostMemop,
                ops: 0.0,
                bytes: 8,
                start: 0.0,
                end: 0.02,
            },
        ]);
        assert!((r.t_potrf - 0.1).abs() < 1e-12);
        assert!((r.t_syrk - 0.3).abs() < 1e-12);
        assert!((r.t_copy - 0.05).abs() < 1e-12);
        assert!((r.t_assemble - 0.02).abs() < 1e-12);
    }

    #[test]
    fn grid_fractions_sum_to_one() {
        let stats = FactorStats {
            records: vec![rec(100, 100, 1.0), rec(900, 100, 3.0), rec(2000, 2000, 6.0)],
            total_time: 10.0,
            ..Default::default()
        };
        let g = stats.time_fraction_grid(500, 2500);
        let sum: f64 = g.iter().flatten().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((g[0][0] - 0.1).abs() < 1e-12);
        assert!((g[1][0] - 0.3).abs() < 1e-12);
        // Out-of-range dims clamp to the last bin.
        assert!((g[4][4] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn rate_uses_fu_flops() {
        let r = rec(0, 100, 2.0);
        let expect = (100f64.powi(3) / 3.0) / 2.0;
        assert!((r.rate() - expect).abs() < 1e-9);
    }

    #[test]
    fn merge_worker_records_restores_postorder() {
        let mut s = FactorStats::default();
        // Worker 0 ran ranks 2 and 0, worker 1 ran ranks 1 and 3.
        let buffers = vec![
            vec![(2usize, rec(2, 2, 0.2)), (0, rec(0, 0, 0.0))],
            vec![(1usize, rec(1, 1, 0.1)), (3, rec(3, 3, 0.3))],
        ];
        s.merge_worker_records(buffers);
        let ms: Vec<usize> = s.records.iter().map(|r| r.m).collect();
        assert_eq!(ms, vec![0, 1, 2, 3], "records must come back in postorder rank");
    }

    #[test]
    fn policy_counts() {
        let mut s = FactorStats::default();
        s.records.push(rec(1, 1, 0.1));
        s.records.push(FuRecord { policy: PolicyKind::P3, ..rec(1, 1, 0.1) });
        s.records.push(FuRecord { policy: PolicyKind::P3, ..rec(1, 1, 0.1) });
        assert_eq!(s.policy_counts(), [1, 0, 2, 0]);
    }
}
