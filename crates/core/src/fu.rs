//! The factor-update (F-U) executor: one dense Cholesky step of a frontal
//! matrix under each of the four policies of Table VI.
//!
//! Policy implementations follow the paper's workflow optimizations
//! (Section V-A):
//!
//! * **P2** — `potrf`/`trsm` on the CPU; `syrk` on the GPU computed in
//!   block-columns whose device→host downloads overlap the next block's
//!   compute (copy engine ∥ compute engine).
//! * **P3** — the unfactored sub-panel `A₂` uploads *while* the CPU runs
//!   `potrf`; the factored `L₂` downloads *while* the GPU runs `syrk`.
//! * **P4** — the overlapped panel algorithm of Figure 9: a lightweight
//!   `w × w` device `potrf` kernel, a spanning `trsm`, then `syrk`/`gemm`
//!   trailing updates, entirely on the device. With `copy_optimized` only
//!   the panel and update regions cross PCIe instead of the full `s × s`
//!   front (the optimization the paper credits for P4 winning at moderate
//!   sizes in the multi-GPU runs).
//!
//! All GPU arithmetic is f32 (the paper's choice on the T10); host fronts
//! may be f64, converted at the staging boundary — exactly the
//! mixed-precision scheme whose lost digits the paper recovers with
//! iterative refinement.

use crate::frontal::Front;
use crate::pinned_pool::PinnedPool;
use crate::policy::PolicyKind;
use crate::tile::{process_front_tiled, TilingOptions};
use mf_dense::{potrf, syrk_lower, trsm_right_lower_trans, Scalar};
use mf_gpusim::{CopyMode, DevBuf, DevMat, Event, Gpu, HostClock, KernelKind, Machine};

/// Width of the device panels in the P4 algorithm (Figure 9's `w`).
pub const DEFAULT_PANEL_WIDTH: usize = 64;

/// Block-column width for P2's overlapped `syrk` downloads.
const P2_DOWNLOAD_BLOCK: usize = 512;

/// Stream ids on the device (the multi-GPU driver adds a third for
/// incoming peer copies).
pub(crate) const S_COMPUTE: usize = 0;
pub(crate) const S_COPY: usize = 1;

/// Failure of a factor-update step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuError {
    /// Non-positive pivot at this front-local column.
    NotPositiveDefinite {
        /// Column within the pivot block (0-based).
        local_column: usize,
    },
}

/// Execution context shared across the factorization's F-U calls.
#[derive(Debug)]
pub struct FuContext<'a> {
    /// The worker's host+device timelines.
    pub machine: &'a mut Machine,
    /// Pinned staging buffers (growth-only reuse per §V-A2).
    pub pool: &'a mut PinnedPool,
    /// P4 panel width `w`.
    pub panel_width: usize,
    /// Use the copy-optimized P4 transfer plan.
    pub copy_optimized: bool,
    /// Timing-only mode: charge every cost but skip all numeric work and
    /// data movement. Requires the machine's GPU and the pool to be in
    /// virtual mode (see [`estimate_fu_time`]). The front may be a dummy.
    pub timing_only: bool,
    /// Dense-engine thread width for this call, from the tree runtime's
    /// [`ThreadBudget`](mf_runtime::ThreadBudget) arbitration: `Some(w)`
    /// caps the engine's column-slab threading at `w` for the duration
    /// (leaf fronts under a busy pool get 1, a lone root front gets the
    /// whole budget). `None` leaves the process-wide cap untouched (the
    /// serial driver). Thread width never changes results — the engine is
    /// bitwise deterministic at every thread count.
    pub kernel_threads: Option<usize>,
    /// Intra-front tiling policy: CPU (P1) fronts whose order clears
    /// [`TilingOptions::min_front`] run the canonical tiled loop nest of
    /// `crate::tile` instead of the monolithic body — in *both* the serial
    /// and parallel drivers, so the two stay bitwise identical.
    pub tiling: TilingOptions,
}

/// Outcome of an F-U call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuOutcome {
    /// Policy that actually ran (may differ from the request on device OOM
    /// or on a CPU-only machine).
    pub executed: PolicyKind,
    /// Whether a device OOM forced a fallback.
    pub oom_fallback: bool,
}

/// Run one factor-update on `front` under `policy`. On device OOM the call
/// transparently falls back to P1 and reports it in the outcome.
///
/// This is the drain-per-front path: the three pipeline phases run
/// back-to-back, so the host blocks until this front's downloads complete
/// before returning. The pipelined driver in `factor.rs` calls
/// [`dispatch_fu`], [`enqueue_downloads`] and [`finish_fu`] separately to
/// overlap fronts across the PCIe bus and the compute engine.
pub fn execute_fu<T: Scalar>(
    front: &mut Front<'_, T>,
    policy: PolicyKind,
    ctx: &mut FuContext<'_>,
) -> Result<FuOutcome, FuError> {
    let mut pending = dispatch_fu(front, policy, ctx)?;
    enqueue_downloads(front, &mut pending, ctx);
    finish_fu(&mut pending, ctx);
    Ok(FuOutcome { executed: pending.executed, oom_fallback: pending.oom_fallback })
}

/// An F-U operation whose GPU work has been enqueued but not yet drained.
///
/// The three-phase lifecycle replaces the seed's per-front `sync_all`:
///
/// 1. [`dispatch_fu`] / [`try_dispatch_gpu`] — host prework (CPU
///    potrf/trsm where the policy wants them), pinned staging, h2d uploads
///    and every compute kernel, with a completion event recorded per
///    download dependency;
/// 2. [`enqueue_downloads`] — d2h transfers, each gated on its producer's
///    *event* rather than a device drain, the front's `done` event, and
///    the host-side numerics consuming the staged data (the simulator
///    computes data eagerly at enqueue time, so results can be unstaged as
///    soon as the transfer is queued — only *time* remains outstanding);
/// 3. [`finish_fu`] — the only host block: wait on `done`, free device
///    buffers, land deferred host charges.
///
/// Look-ahead falls out of call order: a driver that runs phase 1 of front
/// *j+1* before phase 3 of front *j* has the next front uploading while
/// the current one computes.
#[derive(Debug)]
pub struct FuPending {
    executed: PolicyKind,
    oom_fallback: bool,
    state: PendingState,
}

#[derive(Debug)]
enum PendingState {
    /// No GPU work outstanding (P1, an m = 0 front, or already finished).
    Done,
    Computed(DownloadPlan),
    Downloaded(FinishPlan),
}

/// Phase-1 output: which downloads remain and the events they wait on.
#[derive(Debug)]
enum DownloadPlan {
    P2 {
        d_l2: DevBuf,
        d_w: DevBuf,
        m: usize,
        sp: usize,
        su: usize,
        /// `(j0, jb, event)` per block column of W.
        chunks: Vec<(usize, usize, Event)>,
    },
    P3 {
        d_panel: DevBuf,
        d_l1: DevBuf,
        d_w: DevBuf,
        m: usize,
        k: usize,
        sp: usize,
        su: usize,
        ev_trsm: Event,
        ev_syrk: Event,
    },
    P4 {
        d_front: DevBuf,
        s: usize,
        k: usize,
        sp: usize,
        stage_len: usize,
        copy_optimized: bool,
    },
}

/// Phase-2 output: what the final host block must clean up.
#[derive(Debug)]
struct FinishPlan {
    done: Event,
    bufs: Vec<DevBuf>,
    /// Deferred host charge for applying the downloaded update block.
    apply_bytes: usize,
}

impl FuPending {
    fn finished(executed: PolicyKind, oom_fallback: bool) -> Self {
        FuPending { executed, oom_fallback, state: PendingState::Done }
    }

    /// Policy that actually ran.
    pub fn executed(&self) -> PolicyKind {
        self.executed
    }

    /// Whether a device OOM forced a P1 fallback.
    pub fn oom_fallback(&self) -> bool {
        self.oom_fallback
    }

    /// Whether every phase has run (nothing outstanding on the device).
    pub fn is_done(&self) -> bool {
        matches!(self.state, PendingState::Done)
    }

    /// The completion event of the front's last download, once phase 2 has
    /// run and GPU work is still outstanding.
    pub fn done_event(&self) -> Option<Event> {
        match &self.state {
            PendingState::Downloaded(f) => Some(f.done),
            _ => None,
        }
    }
}

/// Phase 1 with transparent fallback: on a CPU-only machine the F-U runs
/// as P1; on device OOM it falls back to P1 and flags the outcome. Either
/// way the returned pending may already be done.
pub fn dispatch_fu<T: Scalar>(
    front: &mut Front<'_, T>,
    policy: PolicyKind,
    ctx: &mut FuContext<'_>,
) -> Result<FuPending, FuError> {
    match try_dispatch_gpu(front, policy, ctx)? {
        Some(p) => Ok(p),
        None => {
            fu_p1(front, ctx)?;
            Ok(FuPending::finished(PolicyKind::P1, true))
        }
    }
}

/// Phase 1: enqueue all uploads and compute kernels for `front` under
/// `policy`. Returns `Ok(None)` on device OOM *without* falling back — the
/// pipelined driver drains its in-flight fronts (releasing device memory)
/// and retries before accepting a P1 fallback, so its fallback decisions
/// match the drain-per-front driver's.
pub fn try_dispatch_gpu<T: Scalar>(
    front: &mut Front<'_, T>,
    policy: PolicyKind,
    ctx: &mut FuContext<'_>,
) -> Result<Option<FuPending>, FuError> {
    if let Some(w) = ctx.kernel_threads {
        // Process-global cap: concurrent tasks each set their own width and
        // the last store wins for kernels launched after it — a benign race
        // (widths only steer wall-clock, never bits). The parallel driver
        // restores the caller's cap once the whole run finishes.
        mf_dense::set_num_threads(w);
    }
    let requested = if ctx.machine.gpu.is_some() { policy } else { PolicyKind::P1 };
    let attempt = match requested {
        PolicyKind::P1 => {
            fu_p1(front, ctx)?;
            return Ok(Some(FuPending::finished(PolicyKind::P1, false)));
        }
        PolicyKind::P2 => dispatch_p2(front, ctx),
        PolicyKind::P3 => dispatch_p3(front, ctx),
        PolicyKind::P4 => dispatch_p4(front, ctx),
    };
    match attempt {
        Ok(state) => Ok(Some(FuPending { executed: requested, oom_fallback: false, state })),
        Err(GpuFuError::NotPd(c)) => Err(FuError::NotPositiveDefinite { local_column: c }),
        Err(GpuFuError::Oom) => Ok(None),
    }
}

/// Phase 2: enqueue the device→host downloads (each gated on its
/// producer's completion event), record the front's `done` event, retire
/// staging slots guarded by it, and run the host-side numerics that
/// consume the staged data. No host blocking happens here.
pub fn enqueue_downloads<T: Scalar>(
    front: &mut Front<'_, T>,
    pending: &mut FuPending,
    ctx: &mut FuContext<'_>,
) {
    let plan = match std::mem::replace(&mut pending.state, PendingState::Done) {
        PendingState::Computed(p) => p,
        other => {
            pending.state = other;
            return;
        }
    };
    let timing = ctx.timing_only;
    let (host, gpu, pool) = split_ctx(ctx);
    let finish = match plan {
        DownloadPlan::P2 { d_l2, d_w, m, sp, su, chunks } => {
            let copy = gpu.stream(S_COPY);
            let wv = DevMat::whole(d_w, m);
            for (j0, jb, ev) in chunks {
                gpu.wait_event(copy, ev);
                let stage = pool.slot_mut(su);
                let dst = if timing { &mut [][..] } else { &mut stage[j0 + j0 * m..] };
                gpu.d2h(copy, wv.offset(j0, j0), m - j0, jb, dst, m, true, CopyMode::Async, host);
            }
            let done = gpu.record_event(copy);
            if !timing {
                apply_update_numerics(front, &pool.slot(su)[..m * m]);
            }
            pool.retire(su, done.0, host);
            pool.retire(sp, done.0, host);
            FinishPlan { done, bufs: vec![d_l2, d_w], apply_bytes: update_apply_bytes::<T>(m) }
        }
        DownloadPlan::P3 { d_panel, d_l1, d_w, m, k, sp, su, ev_trsm, ev_syrk } => {
            let copy = gpu.stream(S_COPY);
            let pv = DevMat::whole(d_panel, m);
            let wv = DevMat::whole(d_w, m);
            // Download L₂ — overlaps the syrk still running on the device.
            gpu.wait_event(copy, ev_trsm);
            gpu.d2h(copy, pv, m, k, pool.slot_mut(sp), m, true, CopyMode::Async, host);
            gpu.wait_event(copy, ev_syrk);
            gpu.d2h(copy, wv, m, m, pool.slot_mut(su), m, true, CopyMode::Async, host);
            let done = gpu.record_event(copy);
            if !timing {
                unstage_block(front, k, 0, m, k, &pool.slot(sp)[..m * k]);
                apply_update_numerics(front, &pool.slot(su)[..m * m]);
            }
            pool.retire(su, done.0, host);
            pool.retire(sp, done.0, host);
            FinishPlan {
                done,
                bufs: vec![d_panel, d_l1, d_w],
                apply_bytes: update_apply_bytes::<T>(m),
            }
        }
        DownloadPlan::P4 { d_front, s, k, sp, stage_len, copy_optimized } => {
            let m = s - k;
            let compute = gpu.stream(S_COMPUTE);
            let fv = DevMat::whole(d_front, s);
            if copy_optimized {
                let dst = if timing { &mut [][..] } else { &mut pool.slot_mut(sp)[..s * k] };
                gpu.d2h(compute, fv, s, k, dst, s, true, CopyMode::Async, host);
                if m > 0 {
                    let dst =
                        if timing { &mut [][..] } else { &mut pool.slot_mut(sp)[s * k..stage_len] };
                    gpu.d2h(compute, fv.offset(k, k), m, m, dst, m, true, CopyMode::Async, host);
                }
            } else {
                let dst = if timing { &mut [][..] } else { pool.slot_mut(sp) };
                gpu.d2h(compute, fv, s, s, dst, s, true, CopyMode::Async, host);
            }
            let done = gpu.record_event(compute);
            if !timing {
                let stage = &pool.slot(sp)[..stage_len];
                if copy_optimized {
                    unstage_block(front, 0, 0, s, k, &stage[..s * k]);
                    if m > 0 {
                        unstage_block(front, k, k, m, m, &stage[s * k..]);
                    }
                } else {
                    unstage_block(front, 0, 0, s, s, stage);
                }
            }
            pool.retire(sp, done.0, host);
            FinishPlan { done, bufs: vec![d_front], apply_bytes: 0 }
        }
    };
    pending.state = PendingState::Downloaded(finish);
}

/// A device-resident contribution block left behind by
/// [`enqueue_downloads_keep_update`]: the `m × m` update of a factored
/// front, still on its device, ready to be peer-copied into the device
/// that owns the parent front instead of round-tripping through the host.
///
/// The consumer owns `buf` and must free it on the producing device once
/// the peer copy has been issued (or once it decides to fall back to host
/// staging).
#[derive(Debug, Clone, Copy)]
pub struct RemoteUpdate {
    /// Device buffer holding (or containing) the update block.
    pub buf: DevBuf,
    /// View of the `m × m` update block within `buf`.
    pub view: DevMat,
    /// Update order `m`.
    pub m: usize,
    /// Event after which the update bytes are final on the device.
    pub ready: Event,
}

/// Phase 2 variant for the multi-GPU driver: identical host numerics to
/// [`enqueue_downloads`] — the simulator's eager transfers mean a d2h is a
/// straight memcpy of the device bytes, so reading the device buffer in
/// place yields bit-identical values — but the update block's download is
/// *skipped* and its device buffer returned as a [`RemoteUpdate`] for a
/// peer-copy extend-add. Only simulated time changes, never bits.
///
/// Returns `None` (after performing a normal phase 2) when there is nothing
/// to export: a P1/finished front, an `m = 0` front, or timing-only mode
/// (where device buffers hold no data to keep).
pub fn enqueue_downloads_keep_update<T: Scalar>(
    front: &mut Front<'_, T>,
    pending: &mut FuPending,
    ctx: &mut FuContext<'_>,
) -> Option<RemoteUpdate> {
    if ctx.timing_only {
        enqueue_downloads(front, pending, ctx);
        return None;
    }
    let plan = match std::mem::replace(&mut pending.state, PendingState::Done) {
        PendingState::Computed(p) => p,
        other => {
            pending.state = other;
            return None;
        }
    };
    if let DownloadPlan::P4 { s, k, .. } = &plan {
        if *s == *k {
            // No update block to export — run the normal download path.
            pending.state = PendingState::Computed(plan);
            enqueue_downloads(front, pending, ctx);
            return None;
        }
    }
    let (host, gpu, pool) = split_ctx(ctx);
    let (finish, remote) = match plan {
        DownloadPlan::P2 { d_l2, d_w, m, sp, su, chunks } => {
            let ready = chunks.last().expect("m > 0 fronts enqueue at least one chunk").2;
            {
                let w = gpu.peek(d_w).expect("update buffer is live");
                apply_update_numerics(front, &w[..m * m]);
            }
            pool.retire(su, ready.0, host);
            pool.retire(sp, ready.0, host);
            (
                FinishPlan { done: ready, bufs: vec![d_l2], apply_bytes: 0 },
                RemoteUpdate { buf: d_w, view: DevMat::whole(d_w, m), m, ready },
            )
        }
        DownloadPlan::P3 { d_panel, d_l1, d_w, m, k, sp, su, ev_trsm, ev_syrk } => {
            let copy = gpu.stream(S_COPY);
            let pv = DevMat::whole(d_panel, m);
            // The panel still crosses to the host (its columns land in the
            // factor slab); the update block stays device-resident.
            gpu.wait_event(copy, ev_trsm);
            gpu.d2h(copy, pv, m, k, pool.slot_mut(sp), m, true, CopyMode::Async, host);
            let ev_dl = gpu.record_event(copy);
            unstage_block(front, k, 0, m, k, &pool.slot(sp)[..m * k]);
            {
                let w = gpu.peek(d_w).expect("update buffer is live");
                apply_update_numerics(front, &w[..m * m]);
            }
            let done = Event(ev_dl.0.max(ev_syrk.0));
            pool.retire(su, done.0, host);
            pool.retire(sp, done.0, host);
            (
                FinishPlan { done, bufs: vec![d_panel, d_l1], apply_bytes: 0 },
                RemoteUpdate { buf: d_w, view: DevMat::whole(d_w, m), m, ready: ev_syrk },
            )
        }
        DownloadPlan::P4 { d_front, s, k, sp, stage_len: _, copy_optimized } => {
            let m = s - k;
            let compute = gpu.stream(S_COMPUTE);
            let fv = DevMat::whole(d_front, s);
            // Kernels are all enqueued; the update bytes are final after
            // this point on the compute stream.
            let ready = gpu.record_event(compute);
            gpu.d2h(
                compute,
                fv,
                s,
                k,
                &mut pool.slot_mut(sp)[..s * k],
                s,
                true,
                CopyMode::Async,
                host,
            );
            let done = gpu.record_event(compute);
            {
                let dev = gpu.peek(d_front).expect("front buffer is live");
                if copy_optimized {
                    unstage_block(front, 0, 0, s, k, &dev[..s * k]);
                    unstage_block_ld(front, k, k, m, m, &dev[k + k * s..], s);
                } else {
                    // The naive plan round-trips the whole s×s front; the
                    // device buffer *is* that packed front, so unstaging it
                    // in place reproduces the exact same bytes.
                    unstage_block(front, 0, 0, s, s, &dev[..s * s]);
                }
            }
            pool.retire(sp, done.0, host);
            (
                FinishPlan { done, bufs: Vec::new(), apply_bytes: 0 },
                RemoteUpdate { buf: d_front, view: fv.offset(k, k), m, ready },
            )
        }
    };
    pending.state = PendingState::Downloaded(finish);
    Some(remote)
}

/// Phase 3 — the only host block: wait for the front's `done` event, free
/// its device buffers and land the deferred host charges.
pub fn finish_fu(pending: &mut FuPending, ctx: &mut FuContext<'_>) {
    let plan = match std::mem::replace(&mut pending.state, PendingState::Done) {
        PendingState::Downloaded(p) => p,
        other => {
            pending.state = other;
            return;
        }
    };
    let (host, gpu, _pool) = split_ctx(ctx);
    gpu.wait_event_host(plan.done, host);
    for b in plan.bufs {
        let _ = gpu.free(b);
    }
    if plan.apply_bytes > 0 {
        host.charge_memop(plan.apply_bytes, crate::frontal::ASSEMBLY_BW);
    }
}

enum GpuFuError {
    NotPd(usize),
    Oom,
}

impl From<mf_gpusim::DeviceOom> for GpuFuError {
    fn from(_: mf_gpusim::DeviceOom) -> Self {
        GpuFuError::Oom
    }
}

impl From<FuError> for GpuFuError {
    fn from(e: FuError) -> Self {
        match e {
            FuError::NotPositiveDefinite { local_column } => GpuFuError::NotPd(local_column),
        }
    }
}

/// Estimate the simulated time of one factor-update of dimensions `(m, k)`
/// under `policy`, without computing anything — the device and staging pool
/// run in virtual mode and the front is a dummy. This powers the paper's
/// policy-map and speedup-map figures (12, 13, 14), whose `(m, k)` ranges
/// are far beyond what real numerics could cover.
///
/// The machine's clocks are reset before and after, so a long-lived machine
/// can be reused across many estimates.
pub fn estimate_fu_time(
    machine: &mut Machine,
    m: usize,
    k: usize,
    policy: PolicyKind,
    panel_width: usize,
    copy_optimized: bool,
) -> f64 {
    machine.reset();
    if let Some(g) = machine.gpu.as_mut() {
        g.set_virtual(true);
    }
    let mut pool = PinnedPool::new(2);
    pool.set_virtual(true);
    let empty: &mut [f32] = &mut [];
    let mut front = Front { s: m + k, k, data: empty };
    // Warm-up pass: grow the pinned pool to this call's footprint so the
    // measured pass sees the steady-state cost (in a factorization the pool
    // amortises growth across thousands of calls; a cold-pool estimate
    // would bias against the policies with large staging footprints).
    {
        let mut ctx = FuContext {
            machine,
            pool: &mut pool,
            panel_width,
            copy_optimized,
            timing_only: true,
            kernel_threads: None,
            // The (m, k)-map estimator models the monolithic P1 kernel:
            // building a per-estimate tile plan would cost O((s/tile)³)
            // tasks per call across the figures' huge (m, k) grids, and
            // the maps compare *policies*, not CPU schedules.
            tiling: TilingOptions::disabled(),
        };
        execute_fu(&mut front, policy, &mut ctx)
            .expect("timing-only execution cannot fail numerically");
    }
    machine.reset();
    let mut ctx = FuContext {
        machine,
        pool: &mut pool,
        panel_width,
        copy_optimized,
        timing_only: true,
        kernel_threads: None,
        tiling: TilingOptions::disabled(),
    };
    let out = execute_fu(&mut front, policy, &mut ctx)
        .expect("timing-only execution cannot fail numerically");
    let _ = out;
    let t = machine.elapsed();
    if let Some(g) = machine.gpu.as_mut() {
        g.set_virtual(false);
    }
    machine.reset();
    t
}

// ----- shared CPU pieces ----------------------------------------------------

std::thread_local! {
    /// Per-thread pivot-block packing scratch (u64-backed so one buffer
    /// serves every `Scalar`). Never shrinks; a whole factorization performs
    /// at most one allocation per thread here.
    static PIVOT_SCRATCH: std::cell::RefCell<Vec<u64>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Run `body` on a thread-local scratch slice of `len` scalars. The slice
/// is *not* zeroed between calls — `cpu_trsm` overwrites the lower triangle
/// it reads, and `trsm_right_lower_trans` never touches the strictly-upper
/// part, so stale bytes cannot reach any computation.
fn with_pivot_scratch<T: Scalar, R>(len: usize, body: impl FnOnce(&mut [T]) -> R) -> R {
    PIVOT_SCRATCH.with(|cell| {
        let mut buf = cell.borrow_mut();
        let words = (len * T::BYTES).div_ceil(std::mem::size_of::<u64>());
        if buf.len() < words {
            buf.resize(words, 0);
        }
        // SAFETY: the buffer holds at least `len * T::BYTES` bytes, u64
        // alignment satisfies every Scalar (f32/f64), and Scalar types admit
        // any bit pattern.
        let slice = unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr().cast::<T>(), len) };
        body(slice)
    })
}

fn cpu_potrf<T: Scalar>(
    front: &mut Front<'_, T>,
    host: &mut HostClock,
    timing_only: bool,
) -> Result<(), FuError> {
    let (s, k) = (front.s, front.k);
    if !timing_only {
        potrf(k, front.data, s)
            .map_err(|e| FuError::NotPositiveDefinite { local_column: e.column })?;
    }
    host.charge_kernel(KernelKind::Potrf, 0, k, 0);
    Ok(())
}

fn cpu_trsm<T: Scalar>(front: &mut Front<'_, T>, host: &mut HostClock, timing_only: bool) {
    let (s, k) = (front.s, front.k);
    let m = s - k;
    if m == 0 {
        return;
    }
    if !timing_only {
        // Pack the k×k pivot block (lower triangle) into reused scratch.
        with_pivot_scratch::<T, _>(k * k, |l1| {
            for j in 0..k {
                for i in j..k {
                    l1[i + j * k] = front.data[i + j * s];
                }
            }
            trsm_right_lower_trans(m, k, l1, k, &mut front.data[k..], s);
        });
    }
    host.charge_kernel(KernelKind::Trsm, m, 0, k);
}

fn cpu_syrk<T: Scalar>(front: &mut Front<'_, T>, host: &mut HostClock, timing_only: bool) {
    let (s, k) = (front.s, front.k);
    let m = s - k;
    if m == 0 {
        return;
    }
    if !timing_only {
        // The panel (rows k.., cols 0..k) and the trailing block (rows k..,
        // cols k..) live in disjoint column ranges of the front, so a split
        // at column k lets syrk read the panel in place — the engine packs
        // strided operands itself, no staging copy needed.
        let (panel_cols, trailing) = front.data.split_at_mut(k * s);
        syrk_lower(m, k, -T::ONE, &panel_cols[k..], s, T::ONE, &mut trailing[k..], s);
    }
    host.charge_kernel(KernelKind::Syrk, 0, m, k);
}

fn fu_p1<T: Scalar>(front: &mut Front<'_, T>, ctx: &mut FuContext<'_>) -> Result<(), FuError> {
    let timing = ctx.timing_only;
    let host = &mut ctx.machine.host;
    // Fronts above the tiling threshold run the canonical tiled loop nest
    // (crate::tile) — the same schedule the parallel driver's tile tasks
    // execute, which is what keeps serial and parallel factors bitwise
    // identical. Small fronts keep the monolithic body below.
    if let Some(plan) = ctx.tiling.plan(front.s, front.k) {
        return process_front_tiled(front, &plan, host, timing);
    }
    cpu_potrf(front, host, timing)?;
    cpu_trsm(front, host, timing);
    cpu_syrk(front, host, timing);
    Ok(())
}

// ----- staging helpers ------------------------------------------------------

fn stage_to_f32<T: Scalar>(src: &[T], dst: &mut [f32]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d = s.to_f64() as f32;
    }
}

fn unstage_from_f32<T: Scalar>(src: &[f32], dst: &mut [T]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d = T::from_f64(*s as f64);
    }
}

/// Stage a `rows × cols` sub-block of the front (top-left at `(row0, col0)`)
/// into a packed f32 buffer with leading dimension `rows`.
fn stage_block<T: Scalar>(
    front: &Front<'_, T>,
    row0: usize,
    col0: usize,
    rows: usize,
    cols: usize,
    dst: &mut [f32],
) {
    let s = front.s;
    for j in 0..cols {
        let src = &front.data[(col0 + j) * s + row0..(col0 + j) * s + row0 + rows];
        stage_to_f32(src, &mut dst[j * rows..(j + 1) * rows]);
    }
}

/// Unstage an f32 buffer with leading dimension `src_ld` back into a front
/// sub-block (the packed variant below has `src_ld == rows`).
fn unstage_block_ld<T: Scalar>(
    front: &mut Front<'_, T>,
    row0: usize,
    col0: usize,
    rows: usize,
    cols: usize,
    src: &[f32],
    src_ld: usize,
) {
    let s = front.s;
    for j in 0..cols {
        let dst = &mut front.data[(col0 + j) * s + row0..(col0 + j) * s + row0 + rows];
        unstage_from_f32(&src[j * src_ld..j * src_ld + rows], dst);
    }
}

/// Unstage a packed f32 buffer back into a front sub-block.
fn unstage_block<T: Scalar>(
    front: &mut Front<'_, T>,
    row0: usize,
    col0: usize,
    rows: usize,
    cols: usize,
    src: &[f32],
) {
    let s = front.s;
    for j in 0..cols {
        let dst = &mut front.data[(col0 + j) * s + row0..(col0 + j) * s + row0 + rows];
        unstage_from_f32(&src[j * rows..(j + 1) * rows], dst);
    }
}

/// Apply a device-computed `−L₂·L₂ᵀ` (staged in `w`, `m × m`, lower) to the
/// front's update block: `U += w`. Numerics only — the matching host
/// charge ([`update_apply_bytes`]) lands in [`finish_fu`], after the host
/// has actually waited for the download.
fn apply_update_numerics<T: Scalar>(front: &mut Front<'_, T>, w: &[f32]) {
    let (s, k) = (front.s, front.k);
    let m = s - k;
    for j in 0..m {
        let dst = &mut front.data[(k + j) * s + k + j..(k + j) * s + s];
        let src = &w[j * m + j..(j + 1) * m];
        for (d, &v) in dst.iter_mut().zip(src) {
            *d += T::from_f64(v as f64);
        }
    }
}

/// Host bytes touched applying an `m × m` packed lower update (read+write
/// of the triangle).
fn update_apply_bytes<T: Scalar>(m: usize) -> usize {
    m * (m + 1) / 2 * 2 * T::BYTES
}

/// Destructure the context into independently borrowable pieces. Panics if
/// the machine has no GPU (callers check before dispatching GPU policies).
fn split_ctx<'b>(
    ctx: &'b mut FuContext<'_>,
) -> (&'b mut HostClock, &'b mut Gpu, &'b mut PinnedPool) {
    let (host, gpu) =
        ctx.machine.host_and_gpu().expect("GPU policy dispatched on a CPU-only machine");
    (host, gpu, ctx.pool)
}

// ----- P2 --------------------------------------------------------------------

fn dispatch_p2<T: Scalar>(
    front: &mut Front<'_, T>,
    ctx: &mut FuContext<'_>,
) -> Result<PendingState, GpuFuError> {
    let (s, k) = (front.s, front.k);
    let m = s - k;
    let timing = ctx.timing_only;
    if m == 0 {
        cpu_potrf(front, &mut ctx.machine.host, timing)?;
        return Ok(PendingState::Done);
    }

    // Allocate before any front mutation: an OOM must leave the front
    // untouched so the caller can drain in-flight work and retry (or fall
    // back to P1) without double-factoring the pivot block. Device allocs
    // charge no simulated time, so the reorder is clock-neutral.
    let (host, gpu, pool) = split_ctx(ctx);
    let d_l2 = gpu.alloc(m * k)?;
    let d_w = match gpu.alloc(m * m) {
        Ok(b) => b,
        Err(_) => {
            let _ = gpu.free(d_l2);
            return Err(GpuFuError::Oom);
        }
    };
    if let Err(e) = cpu_potrf(front, host, timing) {
        let _ = gpu.free(d_l2);
        let _ = gpu.free(d_w);
        return Err(e.into());
    }
    cpu_trsm(front, host, timing);
    let compute = gpu.stream(S_COMPUTE);

    // Upload L₂ via pinned staging.
    let sp = pool.lease(m * k, host);
    if !timing {
        stage_block(front, k, 0, m, k, pool.slot_mut(sp));
    }
    gpu.h2d(compute, DevMat::whole(d_l2, m), m, k, pool.slot(sp), m, true, CopyMode::Async, host);

    // W = −L₂·L₂ᵀ in block columns; each records the event its download
    // waits on in phase 2.
    let su = pool.lease(m * m, host);
    let lv = DevMat::whole(d_l2, m);
    let wv = DevMat::whole(d_w, m);
    let mut chunks = Vec::new();
    let mut j0 = 0;
    while j0 < m {
        let jb = P2_DOWNLOAD_BLOCK.min(m - j0);
        gpu.syrk(compute, lv.offset(j0, 0), wv.offset(j0, j0), jb, k, host);
        let below = m - j0 - jb;
        if below > 0 {
            gpu.gemm_nt(
                compute,
                lv.offset(j0 + jb, 0),
                lv.offset(j0, 0),
                wv.offset(j0 + jb, j0),
                below,
                jb,
                k,
                host,
            );
        }
        chunks.push((j0, jb, gpu.record_event(compute)));
        j0 += jb;
    }
    Ok(PendingState::Computed(DownloadPlan::P2 { d_l2, d_w, m, sp, su, chunks }))
}

// ----- P3 --------------------------------------------------------------------

fn dispatch_p3<T: Scalar>(
    front: &mut Front<'_, T>,
    ctx: &mut FuContext<'_>,
) -> Result<PendingState, GpuFuError> {
    let (s, k) = (front.s, front.k);
    let m = s - k;
    let timing = ctx.timing_only;
    if m == 0 {
        cpu_potrf(front, &mut ctx.machine.host, timing)?;
        return Ok(PendingState::Done);
    }
    let (host, gpu, pool) = split_ctx(ctx);
    let d_panel = gpu.alloc(m * k)?;
    let d_l1 = match gpu.alloc(k * k) {
        Ok(b) => b,
        Err(_) => {
            let _ = gpu.free(d_panel);
            return Err(GpuFuError::Oom);
        }
    };
    let d_w = match gpu.alloc(m * m) {
        Ok(b) => b,
        Err(_) => {
            let _ = gpu.free(d_panel);
            let _ = gpu.free(d_l1);
            return Err(GpuFuError::Oom);
        }
    };
    let compute = gpu.stream(S_COMPUTE);
    let copy = gpu.stream(S_COPY);
    let pv = DevMat::whole(d_panel, m);
    let l1v = DevMat::whole(d_l1, k);
    let wv = DevMat::whole(d_w, m);

    // Upload the unfactored sub-panel A₂ — overlaps the CPU potrf below.
    let sp = pool.lease(m * k, host);
    if !timing {
        stage_block(front, k, 0, m, k, pool.slot_mut(sp));
    }
    gpu.h2d(copy, pv, m, k, pool.slot(sp), m, true, CopyMode::Async, host);

    // CPU potrf of the pivot block (overlapping the A₂ upload).
    if let Err(e) = cpu_potrf(front, host, timing) {
        let _ = gpu.free(d_panel);
        let _ = gpu.free(d_l1);
        let _ = gpu.free(d_w);
        pool.retire_now(sp, host);
        return Err(e.into());
    }

    // Upload the factored L₁.
    let su = pool.lease((k * k).max(m * m), host);
    if !timing {
        stage_block(front, 0, 0, k, k, pool.slot_mut(su));
    }
    gpu.h2d(copy, l1v, k, k, pool.slot(su), k, true, CopyMode::Async, host);

    // GPU trsm waits for both uploads (same copy stream ⇒ one event).
    let ev_up = gpu.record_event(copy);
    gpu.wait_event(compute, ev_up);
    gpu.trsm(compute, l1v, k, pv, m, host);
    let ev_trsm = gpu.record_event(compute);

    // GPU syrk into W (fresh buffer ⇒ zero-initialised ⇒ W = −L₂L₂ᵀ). The
    // L₂ download in phase 2 gates on ev_trsm, so it still overlaps this.
    gpu.syrk(compute, pv, wv, m, k, host);
    let ev_syrk = gpu.record_event(compute);
    Ok(PendingState::Computed(DownloadPlan::P3 {
        d_panel,
        d_l1,
        d_w,
        m,
        k,
        sp,
        su,
        ev_trsm,
        ev_syrk,
    }))
}

// ----- P4 --------------------------------------------------------------------

/// Figure 9's panel loop over a device-resident `s × s` front view with
/// pivot width `k`. Returns the failing front-local column on a
/// non-positive pivot.
fn p4_panel_loop(
    gpu: &mut Gpu,
    host: &mut HostClock,
    fv: DevMat,
    s: usize,
    k: usize,
    w: usize,
) -> Result<(), usize> {
    let m = s - k;
    let compute = gpu.stream(S_COMPUTE);
    let mut p = 0;
    while p < k {
        let wb = w.min(k - p);
        if let Err(col) = gpu.panel_potrf(compute, fv.offset(p, p), wb, host) {
            return Err(p + col);
        }
        let rest = s - p - wb;
        if rest > 0 {
            gpu.trsm(compute, fv.offset(p, p), wb, fv.offset(p + wb, p), rest, host);
        }
        let k_rest = k - p - wb;
        if k_rest > 0 {
            gpu.syrk(compute, fv.offset(p + wb, p), fv.offset(p + wb, p + wb), k_rest, wb, host);
            if m > 0 {
                gpu.gemm_nt(
                    compute,
                    fv.offset(k, p),
                    fv.offset(p + wb, p),
                    fv.offset(k, p + wb),
                    m,
                    k_rest,
                    wb,
                    host,
                );
            }
        }
        if m > 0 {
            gpu.syrk(compute, fv.offset(k, p), fv.offset(k, k), m, wb, host);
        }
        p += wb;
    }
    Ok(())
}

fn dispatch_p4<T: Scalar>(
    front: &mut Front<'_, T>,
    ctx: &mut FuContext<'_>,
) -> Result<PendingState, GpuFuError> {
    let (s, k) = (front.s, front.k);
    let m = s - k;
    let w = ctx.panel_width.max(1);
    let copy_optimized = ctx.copy_optimized;
    let timing = ctx.timing_only;
    let (host, gpu, pool) = split_ctx(ctx);
    let d_front = gpu.alloc(s * s)?;
    let compute = gpu.stream(S_COMPUTE);
    let fv = DevMat::whole(d_front, s);

    // Upload. Naive: the whole s×s front. Copy-optimized: only the panel
    // (s×k) and update (m×m) regions.
    let stage_len = if copy_optimized { s * k + m * m } else { s * s };
    let sp = pool.lease(stage_len, host);
    let empty: &[f32] = &[];
    if copy_optimized {
        if !timing {
            stage_block(front, 0, 0, s, k, &mut pool.slot_mut(sp)[..s * k]);
        }
        let src = if timing { empty } else { &pool.slot(sp)[..s * k] };
        gpu.h2d(compute, fv, s, k, src, s, true, CopyMode::Async, host);
        if m > 0 {
            if !timing {
                stage_block(front, k, k, m, m, &mut pool.slot_mut(sp)[s * k..stage_len]);
            }
            let src = if timing { empty } else { &pool.slot(sp)[s * k..stage_len] };
            gpu.h2d(compute, fv.offset(k, k), m, m, src, m, true, CopyMode::Async, host);
        }
    } else {
        if !timing {
            stage_block(front, 0, 0, s, s, pool.slot_mut(sp));
        }
        gpu.h2d(compute, fv, s, s, pool.slot(sp), s, true, CopyMode::Async, host);
    }

    if let Err(col) = p4_panel_loop(gpu, host, fv, s, k, w) {
        let _ = gpu.free(d_front);
        pool.retire_now(sp, host);
        return Err(GpuFuError::NotPd(col));
    }
    Ok(PendingState::Computed(DownloadPlan::P4 { d_front, s, k, sp, stage_len, copy_optimized }))
}

// ----- batched small-front dispatch ------------------------------------------

/// Error from a batched dispatch, attributing the failure to one member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchError {
    /// Index into the dispatched run.
    pub member: usize,
    /// The underlying F-U failure.
    pub error: FuError,
}

/// A batched dispatch of consecutive small GPU-eligible fronts: one device
/// allocation, one upload and one download cover the whole run, amortising
/// the launch and PCIe latency that per-front dispatch pays once per
/// member. Members run the naive (whole-front) P4 plan back to back, so
/// per-member kernel sequences — and therefore numerics — are identical to
/// single dispatch.
#[derive(Debug)]
pub struct FuBatchPending {
    d_all: DevBuf,
    slot: usize,
    total: usize,
    /// `(base, s, k)` per member, in dispatch order.
    members: Vec<(usize, usize, usize)>,
}

impl FuBatchPending {
    /// Number of fronts in the batch.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the batch is empty (never true for a dispatched batch).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// Phase 1 for a run of fronts: stage every member into one leased slot,
/// upload with a single h2d, then enqueue each member's Figure-9 panel
/// loop. Returns `Ok(None)` if the combined device allocation OOMs (the
/// caller drains and retries member-by-member).
pub fn try_dispatch_gpu_batch<T: Scalar>(
    fronts: &mut [Front<'_, T>],
    ctx: &mut FuContext<'_>,
) -> Result<Option<FuBatchPending>, BatchError> {
    let w = ctx.panel_width.max(1);
    let timing = ctx.timing_only;
    let (host, gpu, pool) = split_ctx(ctx);
    let mut members = Vec::with_capacity(fronts.len());
    let mut total = 0usize;
    for f in fronts.iter() {
        members.push((total, f.s, f.k));
        total += f.s * f.s;
    }
    let d_all = match gpu.alloc(total) {
        Ok(b) => b,
        Err(_) => return Ok(None),
    };
    let slot = pool.lease(total, host);
    if !timing {
        for (f, &(base, s, _)) in fronts.iter().zip(&members) {
            stage_block(f, 0, 0, s, s, &mut pool.slot_mut(slot)[base..base + s * s]);
        }
    }
    let compute = gpu.stream(S_COMPUTE);
    gpu.h2d(
        compute,
        DevMat::whole(d_all, total),
        total,
        1,
        pool.slot(slot),
        total,
        true,
        CopyMode::Async,
        host,
    );
    for (i, &(base, s, k)) in members.iter().enumerate() {
        let fv = DevMat { buf: d_all, off: base, ld: s };
        if let Err(col) = p4_panel_loop(gpu, host, fv, s, k, w) {
            let _ = gpu.free(d_all);
            pool.retire_now(slot, host);
            return Err(BatchError {
                member: i,
                error: FuError::NotPositiveDefinite { local_column: col },
            });
        }
    }
    Ok(Some(FuBatchPending { d_all, slot, total, members }))
}

/// Phase 2 for a batch: one download covers the whole run, then every
/// member unstages from its sub-range of the slot. Returns a pending that
/// [`finish_fu`] drains exactly like a single dispatch.
pub fn enqueue_batch_downloads<T: Scalar>(
    fronts: &mut [Front<'_, T>],
    batch: FuBatchPending,
    ctx: &mut FuContext<'_>,
) -> FuPending {
    let timing = ctx.timing_only;
    let (host, gpu, pool) = split_ctx(ctx);
    let FuBatchPending { d_all, slot, total, members } = batch;
    let compute = gpu.stream(S_COMPUTE);
    {
        let dst = if timing { &mut [][..] } else { &mut pool.slot_mut(slot)[..total] };
        gpu.d2h(
            compute,
            DevMat::whole(d_all, total),
            total,
            1,
            dst,
            total,
            true,
            CopyMode::Async,
            host,
        );
    }
    let done = gpu.record_event(compute);
    if !timing {
        for (f, &(base, s, _)) in fronts.iter_mut().zip(&members) {
            unstage_block(f, 0, 0, s, s, &pool.slot(slot)[base..base + s * s]);
        }
    }
    pool.retire(slot, done.0, host);
    FuPending {
        executed: PolicyKind::P4,
        oom_fallback: false,
        state: PendingState::Downloaded(FinishPlan { done, bufs: vec![d_all], apply_bytes: 0 }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_dense::matrix::random_spd;
    use mf_gpusim::Machine;

    fn spd_data(s: usize, seed: u64) -> Vec<f64> {
        random_spd::<f64>(s, seed).as_slice().to_vec()
    }

    /// Column-major entry of a front's backing buffer.
    fn at(data: &[f64], s: usize, i: usize, j: usize) -> f64 {
        data[i + j * s]
    }

    fn run(policy: PolicyKind, s: usize, k: usize, seed: u64) -> (Vec<f64>, f64) {
        let mut machine = Machine::paper_node();
        let mut pool = PinnedPool::new(2);
        let mut data = spd_data(s, seed);
        let mut front = Front { s, k, data: &mut data };
        let mut ctx = FuContext {
            machine: &mut machine,
            pool: &mut pool,
            panel_width: 16,
            copy_optimized: false,
            timing_only: false,
            kernel_threads: None,
            tiling: TilingOptions::default(),
        };
        let out = execute_fu(&mut front, policy, &mut ctx).unwrap();
        assert_eq!(out.executed, policy);
        assert!(!out.oom_fallback);
        (data, machine.elapsed())
    }

    #[test]
    fn all_policies_agree_numerically() {
        let (s, k) = (60, 24);
        let (f1, _) = run(PolicyKind::P1, s, k, 3);
        for p in [PolicyKind::P2, PolicyKind::P3, PolicyKind::P4] {
            let (fp, _) = run(p, s, k, 3);
            // Compare the panel and update lower triangles at f32 accuracy.
            let mut max = 0.0f64;
            for j in 0..s {
                for i in j..s {
                    if j < k || i >= k {
                        max = max.max((at(&f1, s, i, j) - at(&fp, s, i, j)).abs());
                    }
                }
            }
            assert!(max < 2e-3, "{p} deviates from P1 by {max}");
        }
    }

    #[test]
    fn p1_exact_against_direct_potrf() {
        let (s, k) = (40, 40); // root-style front: factor everything
        let (f, _) = run(PolicyKind::P1, s, k, 7);
        let mut a = random_spd::<f64>(s, 7);
        potrf(s, a.as_mut_slice(), s).unwrap();
        for j in 0..s {
            for i in j..s {
                assert!((at(&f, s, i, j) - a[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn root_front_m_zero_all_policies() {
        for p in PolicyKind::ALL {
            let (f, t) = run(p, 32, 32, 11);
            assert!(t > 0.0);
            for j in 0..32 {
                assert!(at(&f, 32, j, j) > 0.0, "{p} col {j}");
            }
        }
    }

    #[test]
    fn not_positive_definite_detected_on_every_policy() {
        for p in PolicyKind::ALL {
            let mut machine = Machine::paper_node();
            let mut pool = PinnedPool::new(2);
            let mut data = spd_data(20, 5);
            // Poison a pivot column inside the block.
            data[4 + 4 * 20] = -50.0;
            let mut front = Front { s: 20, k: 10, data: &mut data };
            let mut ctx = FuContext {
                machine: &mut machine,
                pool: &mut pool,
                panel_width: 4,
                copy_optimized: false,
                timing_only: false,
                kernel_threads: None,
                tiling: TilingOptions::default(),
            };
            let err = execute_fu(&mut front, p, &mut ctx).unwrap_err();
            assert_eq!(err, FuError::NotPositiveDefinite { local_column: 4 }, "{p}");
        }
    }

    #[test]
    fn large_fronts_prefer_gpu_policies() {
        // A large front must run faster under P3/P4 than P1 (the premise of
        // the whole paper).
        let (s, k) = (600, 150);
        let (_, t1) = run(PolicyKind::P1, s, k, 9);
        let (_, t3) = run(PolicyKind::P3, s, k, 9);
        let (_, t4) = run(PolicyKind::P4, s, k, 9);
        assert!(t3 < t1, "P3 {t3} ≥ P1 {t1}");
        assert!(t4 < t1, "P4 {t4} ≥ P1 {t1}");
    }

    #[test]
    fn small_fronts_prefer_cpu() {
        let (s, k) = (24, 8);
        let (_, t1) = run(PolicyKind::P1, s, k, 13);
        let (_, t4) = run(PolicyKind::P4, s, k, 13);
        assert!(t1 < t4, "P1 {t1} ≥ P4 {t4} — launch+copy overheads must dominate tiny fronts");
    }

    #[test]
    fn oom_falls_back_to_p1() {
        let mut machine = Machine::with_gpu(mf_gpusim::xeon_5160_core(), {
            let mut cfg = mf_gpusim::tesla_t10();
            cfg.mem_bytes = 1024; // far too small
            cfg
        });
        let mut pool = PinnedPool::new(2);
        let mut data = spd_data(64, 21);
        let mut front = Front { s: 64, k: 16, data: &mut data };
        let mut ctx = FuContext {
            machine: &mut machine,
            pool: &mut pool,
            panel_width: 16,
            copy_optimized: false,
            timing_only: false,
            kernel_threads: None,
            tiling: TilingOptions::default(),
        };
        let out = execute_fu(&mut front, PolicyKind::P4, &mut ctx).unwrap();
        assert_eq!(out.executed, PolicyKind::P1);
        assert!(out.oom_fallback);
        for j in 0..64 {
            assert!(front.at(j, j) > 0.0);
        }
    }

    #[test]
    fn no_gpu_machine_degrades_to_p1() {
        let mut machine = Machine::cpu_only(mf_gpusim::xeon_5160_core());
        let mut pool = PinnedPool::new(2);
        let mut data = spd_data(30, 2);
        let mut front = Front { s: 30, k: 10, data: &mut data };
        let mut ctx = FuContext {
            machine: &mut machine,
            pool: &mut pool,
            panel_width: 8,
            copy_optimized: false,
            timing_only: false,
            kernel_threads: None,
            tiling: TilingOptions::default(),
        };
        let out = execute_fu(&mut front, PolicyKind::P3, &mut ctx).unwrap();
        assert_eq!(out.executed, PolicyKind::P1);
    }

    #[test]
    fn copy_optimized_p4_is_faster() {
        let (s, k) = (400, 100);
        let mut t = [0.0f64; 2];
        for (idx, opt) in [false, true].into_iter().enumerate() {
            let mut machine = Machine::paper_node();
            let mut pool = PinnedPool::new(2);
            let mut data = spd_data(s, 31);
            let mut front = Front { s, k, data: &mut data };
            let mut ctx = FuContext {
                machine: &mut machine,
                pool: &mut pool,
                panel_width: 32,
                copy_optimized: opt,
                timing_only: false,
                kernel_threads: None,
                tiling: TilingOptions::default(),
            };
            execute_fu(&mut front, PolicyKind::P4, &mut ctx).unwrap();
            t[idx] = machine.elapsed();
        }
        assert!(t[1] < t[0], "copy-optimized {:.3e} ≥ naive {:.3e}", t[1], t[0]);
    }

    #[test]
    fn copy_optimized_p4_same_numerics() {
        let (s, k) = (80, 30);
        let (f_naive, _) = run(PolicyKind::P4, s, k, 41);
        let mut machine = Machine::paper_node();
        let mut pool = PinnedPool::new(2);
        let mut data = spd_data(s, 41);
        let mut front = Front { s, k, data: &mut data };
        let mut ctx = FuContext {
            machine: &mut machine,
            pool: &mut pool,
            panel_width: 16,
            copy_optimized: true,
            timing_only: false,
            kernel_threads: None,
            tiling: TilingOptions::default(),
        };
        execute_fu(&mut front, PolicyKind::P4, &mut ctx).unwrap();
        for j in 0..s {
            for i in j..s {
                if j < k || i >= k {
                    assert!((at(&f_naive, s, i, j) - front.at(i, j)).abs() < 1e-5);
                }
            }
        }
    }

    #[test]
    fn p3_overlap_depends_on_pcie_speed() {
        // P3's advantage rests on copies overlapping compute; crippling the
        // link must slow it dramatically (sanity that copies are modelled).
        let (s, k) = (500, 200);
        let (_, t_fast) = run(PolicyKind::P3, s, k, 17);
        let mut cfg = mf_gpusim::tesla_t10();
        cfg.pcie.pageable_bw /= 1000.0;
        cfg.pcie.pinned_bw /= 1000.0;
        let mut machine = Machine::with_gpu(mf_gpusim::xeon_5160_core(), cfg);
        let mut pool = PinnedPool::new(2);
        let mut data = spd_data(s, 17);
        let mut front = Front { s, k, data: &mut data };
        let mut ctx = FuContext {
            machine: &mut machine,
            pool: &mut pool,
            panel_width: 32,
            copy_optimized: false,
            timing_only: false,
            kernel_threads: None,
            tiling: TilingOptions::default(),
        };
        execute_fu(&mut front, PolicyKind::P3, &mut ctx).unwrap();
        assert!(machine.elapsed() > t_fast * 5.0);
    }

    #[test]
    fn estimate_matches_real_execution_time() {
        // The timing-only path must charge exactly what the real f32 path
        // does in steady state (warmed pinned pool — the estimate models
        // the paper's single-precision pipeline after pool growth has
        // amortised).
        for p in PolicyKind::ALL {
            let mut machine = Machine::paper_node();
            let mut pool = PinnedPool::new(2);
            let a = mf_dense::matrix::random_spd::<f32>(150, 77);
            let mut t_real = 0.0;
            for pass in 0..2 {
                machine.reset();
                let mut data = a.as_slice().to_vec();
                let mut front = Front { s: 150, k: 60, data: &mut data };
                let mut ctx = FuContext {
                    machine: &mut machine,
                    pool: &mut pool,
                    panel_width: 16,
                    copy_optimized: false,
                    timing_only: false,
                    kernel_threads: None,
                    tiling: TilingOptions::default(),
                };
                execute_fu(&mut front, p, &mut ctx).unwrap();
                if pass == 1 {
                    t_real = machine.elapsed();
                }
            }
            let mut machine2 = Machine::paper_node();
            let t_est = estimate_fu_time(&mut machine2, 90, 60, p, 16, false);
            let rel = (t_real - t_est).abs() / t_real;
            assert!(rel < 1e-9, "{p}: real {t_real:.6e} vs estimate {t_est:.6e}");
        }
    }

    #[test]
    fn estimate_handles_huge_fronts_cheaply() {
        // m = k = 10000 would be ~1.3 TFlop of real work; the estimate must
        // return instantly with a sensible (sub-minute simulated) time.
        let mut machine = Machine::paper_node();
        for p in PolicyKind::ALL {
            let t = estimate_fu_time(&mut machine, 10_000, 10_000, p, 64, true);
            assert!(t > 0.1 && t < 600.0, "{p}: {t}");
        }
        // And GPU policies must beat P1 at this scale.
        let t1 = estimate_fu_time(&mut machine, 10_000, 10_000, PolicyKind::P1, 64, true);
        let t4 = estimate_fu_time(&mut machine, 10_000, 10_000, PolicyKind::P4, 64, true);
        assert!(t4 < t1 / 4.0, "P4 {t4} vs P1 {t1}");
    }

    #[test]
    fn keep_update_path_is_bitwise_identical_to_download_path() {
        // The multi-GPU driver's remote-child path must mutate the front
        // exactly like the normal download path — same bytes, different
        // simulated time — and export the exact device update block.
        let (s, k) = (96, 36);
        let m = s - k;
        for (policy, copy_optimized) in [
            (PolicyKind::P2, false),
            (PolicyKind::P3, false),
            (PolicyKind::P4, false),
            (PolicyKind::P4, true),
        ] {
            let run_once = |keep: bool| -> (Vec<f64>, Option<Vec<f32>>) {
                let mut machine = Machine::paper_node();
                let mut pool = PinnedPool::new(2);
                let mut data = spd_data(s, 63);
                let mut front = Front { s, k, data: &mut data };
                let mut ctx = FuContext {
                    machine: &mut machine,
                    pool: &mut pool,
                    panel_width: 16,
                    copy_optimized,
                    timing_only: false,
                    kernel_threads: None,
                    tiling: TilingOptions::default(),
                };
                let mut pending = dispatch_fu(&mut front, policy, &mut ctx).unwrap();
                let export = if keep {
                    enqueue_downloads_keep_update(&mut front, &mut pending, &mut ctx)
                } else {
                    enqueue_downloads(&mut front, &mut pending, &mut ctx);
                    None
                };
                finish_fu(&mut pending, &mut ctx);
                let block = export.map(|r| {
                    assert_eq!(r.m, m);
                    let gpu = machine.gpu.as_ref().unwrap();
                    let dev = gpu.peek(r.view.buf).unwrap();
                    let mut packed = vec![0.0f32; m * m];
                    for j in 0..m {
                        let off = r.view.off + j * r.view.ld;
                        packed[j * m..(j + 1) * m].copy_from_slice(&dev[off..off + m]);
                    }
                    machine.gpu.as_mut().unwrap().free(r.buf).unwrap();
                    packed
                });
                assert_eq!(machine.gpu.as_ref().unwrap().mem_used(), 0);
                (data, block)
            };
            let (normal, none) = run_once(false);
            assert!(none.is_none());
            let (kept, block) = run_once(true);
            assert_eq!(
                normal.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                kept.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{policy} copy_optimized={copy_optimized}: keep-update changed front bytes"
            );
            let block = block.expect("m > 0 GPU fronts export an update");
            // The exported block's lower triangle must be the device-exact
            // −L₂L₂ᵀ the normal path applied.
            let mut machine = Machine::paper_node();
            let mut pool = PinnedPool::new(2);
            let mut data = spd_data(s, 63);
            let mut front = Front { s, k, data: &mut data };
            let before: Vec<f64> = (0..m)
                .flat_map(|j| (j..m).map(move |i| (i, j)))
                .map(|(i, j)| front.at(k + i, k + j))
                .collect();
            let mut ctx = FuContext {
                machine: &mut machine,
                pool: &mut pool,
                panel_width: 16,
                copy_optimized,
                timing_only: false,
                kernel_threads: None,
                tiling: TilingOptions::default(),
            };
            execute_fu(&mut front, policy, &mut ctx).unwrap();
            let mut idx = 0;
            for j in 0..m {
                for i in j..m {
                    let expect = match policy {
                        // P4 factors the update block in place, so the
                        // device block holds A₂₂ − L₂L₂ᵀ, not the raw W.
                        PolicyKind::P4 => continue,
                        _ => front.at(k + i, k + j) - before[idx],
                    };
                    let got = block[j * m + i] as f64;
                    assert!(
                        (got - expect).abs() <= 1e-6 * (1.0 + expect.abs()),
                        "{policy}: W[{i},{j}] = {got}, expected {expect}"
                    );
                    idx += 1;
                }
            }
        }
    }

    #[test]
    fn device_memory_fully_released_after_each_policy() {
        for p in [PolicyKind::P2, PolicyKind::P3, PolicyKind::P4] {
            let mut machine = Machine::paper_node();
            let mut pool = PinnedPool::new(2);
            let mut data = spd_data(100, 51);
            let mut front = Front { s: 100, k: 40, data: &mut data };
            let mut ctx = FuContext {
                machine: &mut machine,
                pool: &mut pool,
                panel_width: 16,
                copy_optimized: false,
                timing_only: false,
                kernel_threads: None,
                tiling: TilingOptions::default(),
            };
            execute_fu(&mut front, p, &mut ctx).unwrap();
            assert_eq!(machine.gpu.as_ref().unwrap().mem_used(), 0, "{p} leaked device memory");
        }
    }
}
