//! Frontal matrices, assembly, and the extend-add operation — all running
//! in borrowed storage supplied by the caller (a [`FrontArena`] region, a
//! per-worker buffer, or a plain `Vec` in the reference path).
//!
//! A frontal matrix is stored as a dense `s × s` column-major buffer of
//! which only the lower triangle is referenced (`s = k + m`). Columns
//! `0..k` form the factor panel `[L₁; L₂]`; the trailing `m × m` block is
//! the update matrix `Uⁿ` passed to the parent's extend-add.
//!
//! Nothing here allocates: assembly zeroes exactly the lower trapezoid it
//! will reference (the strictly-upper remainder may hold garbage from a
//! previous front — every downstream kernel reads only the lower triangle,
//! so those bits never enter any computation), the panel is copied straight
//! into the caller's slice of the contiguous factor slab, and a child's
//! update is consumed as a borrowed [`ChildUpdate`] view whose row indices
//! come from the shared symbolic structure.
//!
//! [`FrontArena`]: crate::arena::FrontArena

use mf_dense::Scalar;
use mf_gpusim::HostClock;
use mf_sparse::symbolic::SupernodeInfo;
use mf_sparse::SymCsc;

/// Host memory bandwidth used to charge assembly/extend-add time
/// (bytes/s) — calibrated to streaming axpy/gather rates of the paper's
/// FB-DIMM Xeon node.
pub const ASSEMBLY_BW: f64 = 6.0e9;

/// A dense frontal matrix in borrowed storage.
#[derive(Debug)]
pub struct Front<'a, T> {
    /// Front order `s = k + m`.
    pub s: usize,
    /// Pivot-block width `k`.
    pub k: usize,
    /// `s × s` column-major storage (lower triangle significant; the
    /// strictly-upper part may hold stale values and must never be read).
    pub data: &'a mut [T],
}

impl<T: Scalar> Front<'_, T> {
    /// Update-matrix size `m`.
    pub fn m(&self) -> usize {
        self.s - self.k
    }

    /// Entry accessor (test helper).
    pub fn at(&self, i: usize, j: usize) -> T {
        self.data[i + j * self.s]
    }
}

/// A borrowed view of a factored child's update matrix, consumed by the
/// parent's extend-add. `rows` points into the child's symbolic structure
/// ([`SupernodeInfo::update_rows`]); `data` is the packed `m × m`
/// column-major buffer (lower triangle significant).
#[derive(Debug, Clone, Copy)]
pub struct ChildUpdate<'a, T> {
    /// Global row indices (sorted) of the `m` rows/columns.
    pub rows: &'a [usize],
    /// `m × m` column-major storage (lower triangle significant).
    pub data: &'a [T],
}

impl<T: Scalar> ChildUpdate<'_, T> {
    /// Size `m`.
    pub fn m(&self) -> usize {
        self.rows.len()
    }
}

/// Entry count of the lower trapezoid of the first `cols` columns of an
/// `s × s` lower-triangular layout: `Σ_{j<cols} (s − j)`.
pub(crate) fn lower_trapezoid_len(s: usize, cols: usize) -> usize {
    cols * s - cols * (cols.saturating_sub(1)) / 2
}

/// Assemble the frontal matrix of `info` into `data` (caller-supplied
/// `s × s` storage): zero the lower trapezoid actually referenced, scatter
/// the entries of `A` belonging to the supernode's columns, then extend-add
/// every child update view in the order given. `rel` is a reusable scratch
/// buffer for the child row-relocation map. Charges host assembly time for
/// exactly the bytes written.
pub fn assemble_front_into<'a, 'c, T: Scalar + 'c>(
    a: &SymCsc<T>,
    info: &SupernodeInfo,
    children: impl Iterator<Item = ChildUpdate<'c, T>>,
    data: &'a mut [T],
    rel: &mut Vec<usize>,
    host: &mut HostClock,
) -> Front<'a, T> {
    let s = info.front_size();
    let k = info.k();
    let m = s - k;
    debug_assert_eq!(data.len(), s * s);

    // Zero only what the factorization will read or write: the panel
    // trapezoid (cols 0..k, rows j..s) and the update triangle (cols k..s,
    // rows k+j..s). The strictly-upper remainder keeps whatever the buffer
    // held before — no kernel reads it.
    for j in 0..k {
        data[j * s + j..(j + 1) * s].fill(T::ZERO);
    }
    for j in 0..m {
        data[(k + j) * s + k + j..(k + j + 1) * s].fill(T::ZERO);
    }
    let zeroed = lower_trapezoid_len(s, k) + m * (m + 1) / 2;

    // Positions of global rows in the front: the first k entries of
    // info.rows are the contiguous pivot columns, the tail is sorted. Every
    // index list we map (A's column rows, child update rows) is itself
    // sorted, so a shared cursor into the tail resolves a whole list in one
    // merge sweep — O(m + s) instead of O(m log s) binary searches.
    let tail = &info.rows[k..];
    let merge_local = |t: &mut usize, row: usize| -> usize {
        if row < info.col_end {
            debug_assert!(row >= info.col_start);
            row - info.col_start
        } else {
            while tail[*t] < row {
                *t += 1;
            }
            debug_assert_eq!(tail[*t], row, "row must be in front structure");
            k + *t
        }
    };

    // Scatter A's entries (lower triangle) for the pivot columns.
    let mut scattered = 0usize;
    for (lc, c) in (info.col_start..info.col_end).enumerate() {
        let mut t = 0usize;
        for (&i, &v) in a.col_rows(c).iter().zip(a.col_vals(c)) {
            debug_assert!(i >= c);
            let lr = merge_local(&mut t, i);
            data[lr + lc * s] += v;
            scattered += 1;
        }
    }

    // Extend-add children.
    let mut extended = 0usize;
    for child in children {
        let cm = child.m();
        // Relative indices: child rows merged into front-local rows, built
        // in the caller-owned scratch (no per-child allocation).
        let mut t = 0usize;
        rel.clear();
        rel.extend(child.rows.iter().map(|&r| merge_local(&mut t, r)));
        for j in 0..cm {
            let cj = rel[j];
            let src = &child.data[j * cm..];
            for i in j..cm {
                data[rel[i] + cj * s] += src[i];
            }
        }
        extended += cm * (cm + 1) / 2;
    }

    // Charge: read+write per scattered/extended entry plus the zero-fill
    // that was actually written (the lower trapezoid, not the full s×s).
    let bytes = (scattered + extended) * 2 * T::BYTES + zeroed * T::BYTES;
    host.charge_memop(bytes, ASSEMBLY_BW);

    Front { s, k, data }
}

/// The simulated cost of [`assemble_front_into`] alone, computed from
/// structure: `a_nnz` entries scattered from `A`'s supernode columns, one
/// extend-add triangle per child update size, and the zero-fill trapezoid.
/// Charges exactly the bytes the real assembly charges — the timing-only
/// rehearsal behind the pipelined-vs-drain cost model leans on this parity.
pub(crate) fn charge_assemble<T: Scalar>(
    a_nnz: usize,
    s: usize,
    k: usize,
    child_ms: impl Iterator<Item = usize>,
    host: &mut HostClock,
) {
    let m = s - k;
    let zeroed = lower_trapezoid_len(s, k) + m * (m + 1) / 2;
    let extended: usize = child_ms.map(|cm| cm * (cm + 1) / 2).sum();
    let bytes = (a_nnz + extended) * 2 * T::BYTES + zeroed * T::BYTES;
    host.charge_memop(bytes, ASSEMBLY_BW);
}

/// Copy the factored panel (lower trapezoid of columns `0..k`) from the
/// front into `dst` — the supernode's `s × k` region of the contiguous
/// factor slab. `dst` starts zeroed (slab init), so skipping the
/// strictly-upper entries leaves them exactly zero. Charges copy-out time
/// for the trapezoid actually moved.
pub fn extract_panel_into<T: Scalar>(front: &Front<'_, T>, dst: &mut [T], host: &mut HostClock) {
    extract_panel_copy(front, dst);
    charge_panel_extract::<T>(front.s, front.k, host);
}

/// The data movement of [`extract_panel_into`] alone. The pipelined driver
/// extracts eagerly once a front's downloads are enqueued (data exists the
/// moment the simulator queues the transfer) but defers the clock charge to
/// the front's finish.
pub(crate) fn extract_panel_copy<T: Scalar>(front: &Front<'_, T>, dst: &mut [T]) {
    let s = front.s;
    let k = front.k;
    debug_assert_eq!(dst.len(), s * k);
    for j in 0..k {
        dst[j * s + j..(j + 1) * s].copy_from_slice(&front.data[j * s + j..(j + 1) * s]);
    }
}

/// The simulated cost of [`extract_panel_into`]'s trapezoid copy alone.
pub(crate) fn charge_panel_extract<T: Scalar>(s: usize, k: usize, host: &mut HostClock) {
    host.charge_memop(lower_trapezoid_len(s, k) * T::BYTES, ASSEMBLY_BW);
}

/// Pack the trailing `m × m` lower block of a factored front (stored with
/// leading dimension `s` at offset `(k, k)` in `front_data`) into `dst`
/// (leading dimension `m`). Pure data movement — simulated time is charged
/// separately by [`charge_update_extract`] so every storage mode (arena
/// compaction, pooled hand-off buffer, reference heap path) pays the same
/// clock.
pub(crate) fn copy_update_packed<T: Scalar>(front_data: &[T], s: usize, k: usize, dst: &mut [T]) {
    let m = s - k;
    debug_assert!(dst.len() >= m * m);
    for j in 0..m {
        let src = &front_data[(k + j) * s + k + j..(k + j) * s + s];
        dst[j * m + j..(j + 1) * m].copy_from_slice(src);
    }
}

/// Charge the simulated cost of packing an `m × m` update matrix out of a
/// factored front (the lower triangle actually moved).
pub(crate) fn charge_update_extract<T: Scalar>(m: usize, host: &mut HostClock) {
    if m > 0 {
        host.charge_memop(m * (m + 1) / 2 * T::BYTES, ASSEMBLY_BW);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_sparse::symbolic::SupernodeInfo;
    use mf_sparse::Triplet;

    fn info(col_start: usize, col_end: usize, update_rows: Vec<usize>) -> SupernodeInfo {
        let mut rows: Vec<usize> = (col_start..col_end).collect();
        rows.extend(update_rows);
        SupernodeInfo { col_start, col_end, rows, parent: usize::MAX }
    }

    fn assemble<'a>(
        a: &SymCsc<f64>,
        inf: &SupernodeInfo,
        children: &[(Vec<usize>, Vec<f64>)],
        data: &'a mut [f64],
        host: &mut HostClock,
    ) -> Front<'a, f64> {
        let mut rel = Vec::new();
        assemble_front_into(
            a,
            inf,
            children.iter().map(|(rows, d)| ChildUpdate { rows, data: d }),
            data,
            &mut rel,
            host,
        )
    }

    #[test]
    fn assembles_a_entries_into_correct_slots() {
        // 4×4 matrix, supernode covering columns 0..2 with update rows {3}.
        let mut t = Triplet::new(4);
        t.push(0, 0, 4.0);
        t.push(1, 0, -1.0);
        t.push(3, 0, -2.0);
        t.push(1, 1, 5.0);
        t.push(3, 1, -3.0);
        t.push(2, 2, 6.0);
        t.push(3, 3, 7.0);
        let a = t.assemble();
        let inf = info(0, 2, vec![3]);
        let mut host = HostClock::new(mf_gpusim::xeon_5160_core());
        // Poison the buffer: assembly must overwrite every referenced slot.
        let mut data = vec![f64::NAN; 9];
        let f = assemble(&a, &inf, &[], &mut data, &mut host);
        assert_eq!(f.s, 3);
        assert_eq!(f.k, 2);
        assert_eq!(f.at(0, 0), 4.0);
        assert_eq!(f.at(1, 0), -1.0);
        assert_eq!(f.at(2, 0), -2.0); // row 3 → local 2
        assert_eq!(f.at(1, 1), 5.0);
        assert_eq!(f.at(2, 1), -3.0);
        assert_eq!(f.at(2, 2), 0.0, "A(3,3) belongs to a later supernode");
        // Strictly-upper entries are never referenced — and never zeroed.
        assert!(f.at(0, 1).is_nan());
        assert!(host.now() > 0.0);
    }

    #[test]
    fn extend_add_scatters_child_update() {
        let mut t = Triplet::new(5);
        for i in 0..5 {
            t.push(i, i, 1.0);
        }
        let a = t.assemble();
        // Parent supernode: columns 2..4, update row 4.
        let inf = info(2, 4, vec![4]);
        // lower: (2,2)=10, (4,2)=20, (4,4)=30
        let child = (vec![2usize, 4], vec![10.0, 20.0, 0.0, 30.0]);
        let mut host = HostClock::new(mf_gpusim::xeon_5160_core());
        let mut data = vec![0.0f64; 9];
        let f = assemble(&a, &inf, &[child], &mut data, &mut host);
        // Local rows: 2→0, 3→1, 4→2.
        assert_eq!(f.at(0, 0), 1.0 + 10.0);
        assert_eq!(f.at(2, 0), 20.0);
        // A(4,4) belongs to a later supernode — only the child lands here.
        assert_eq!(f.at(2, 2), 30.0);
        assert_eq!(f.at(1, 1), 1.0);
    }

    #[test]
    fn multiple_children_accumulate() {
        let mut t = Triplet::new(3);
        for i in 0..3 {
            t.push(i, i, 0.0);
        }
        let a = t.assemble();
        let inf = info(0, 2, vec![2]);
        let c1 = (vec![0usize, 2], vec![1.0, 2.0, 0.0, 3.0]);
        let c2 = (vec![0usize, 1], vec![5.0, 6.0, 0.0, 7.0]);
        let mut host = HostClock::new(mf_gpusim::xeon_5160_core());
        let mut data = vec![0.0f64; 9];
        let f = assemble(&a, &inf, &[c1, c2], &mut data, &mut host);
        assert_eq!(f.at(0, 0), 6.0); // 1 + 5
        assert_eq!(f.at(2, 0), 2.0);
        assert_eq!(f.at(1, 0), 6.0);
        assert_eq!(f.at(1, 1), 7.0);
        assert_eq!(f.at(2, 2), 3.0);
    }

    #[test]
    fn extract_update_and_panel_roundtrip() {
        let s = 4;
        let k = 2;
        let mut data = vec![0.0f64; 16];
        // Fill lower triangle with recognisable values.
        for j in 0..s {
            for i in j..s {
                data[i + j * s] = (10 * i + j) as f64;
            }
        }
        let f = Front { s, k, data: &mut data };
        let mut host = HostClock::new(mf_gpusim::xeon_5160_core());
        let m = s - k;
        let mut u = vec![0.0f64; m * m];
        copy_update_packed(f.data, s, k, &mut u);
        charge_update_extract::<f64>(m, &mut host);
        assert_eq!(u[0], 22.0); // front (2,2)
        assert_eq!(u[1], 32.0); // front (3,2)
        assert_eq!(u[3], 33.0); // front (3,3)
        let mut p = vec![0.0f64; s * k];
        extract_panel_into(&f, &mut p, &mut host);
        assert_eq!(p.len(), 8);
        assert_eq!(p[1], 10.0);
        assert_eq!(p[4 + 1], 11.0);
        assert_eq!(p[4], 0.0, "strictly-upper panel entry stays slab-zero");
        assert!(host.now() > 0.0);
    }

    #[test]
    fn trapezoid_len_matches_naive_sum() {
        for s in 0..12usize {
            for cols in 0..=s {
                let naive: usize = (0..cols).map(|j| s - j).sum();
                assert_eq!(lower_trapezoid_len(s, cols), naive, "s={s} cols={cols}");
            }
        }
    }
}
