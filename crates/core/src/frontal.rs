//! Frontal and update matrices, assembly, and the extend-add operation.
//!
//! A frontal matrix is stored as a dense `s × s` column-major buffer of
//! which only the lower triangle is referenced (`s = k + m`). Columns
//! `0..k` form the factor panel `[L₁; L₂]`; the trailing `m × m` block is
//! the update matrix `Uⁿ` passed to the parent's extend-add.

use mf_dense::Scalar;
use mf_gpusim::HostClock;
use mf_sparse::symbolic::SupernodeInfo;
use mf_sparse::SymCsc;

/// Host memory bandwidth used to charge assembly/extend-add time
/// (bytes/s) — calibrated to streaming axpy/gather rates of the paper's
/// FB-DIMM Xeon node.
pub const ASSEMBLY_BW: f64 = 6.0e9;

/// A dense frontal matrix.
#[derive(Debug, Clone)]
pub struct Front<T> {
    /// Front order `s = k + m`.
    pub s: usize,
    /// Pivot-block width `k`.
    pub k: usize,
    /// `s × s` column-major storage (lower triangle significant).
    pub data: Vec<T>,
}

impl<T: Scalar> Front<T> {
    /// Update-matrix size `m`.
    pub fn m(&self) -> usize {
        self.s - self.k
    }

    /// Entry accessor (test helper).
    pub fn at(&self, i: usize, j: usize) -> T {
        self.data[i + j * self.s]
    }
}

/// An update matrix awaiting extend-add into its parent front.
#[derive(Debug, Clone)]
pub struct UpdateMatrix<T> {
    /// Global row indices (sorted) of the `m` rows/columns.
    pub rows: Vec<usize>,
    /// `m × m` column-major storage (lower triangle significant).
    pub data: Vec<T>,
}

impl<T: Scalar> UpdateMatrix<T> {
    /// Size `m`.
    pub fn m(&self) -> usize {
        self.rows.len()
    }
}

/// Assemble the frontal matrix of `info`: zero-init, scatter the entries of
/// `A` belonging to the supernode's columns, then extend-add every child
/// update matrix. Charges host assembly time.
pub fn assemble_front<T: Scalar>(
    a: &SymCsc<T>,
    info: &SupernodeInfo,
    children: &[UpdateMatrix<T>],
    host: &mut HostClock,
) -> Front<T> {
    let s = info.front_size();
    let k = info.k();
    let mut data = vec![T::ZERO; s * s];

    // Positions of global rows in the front: the first k entries of
    // info.rows are the contiguous pivot columns, the tail is sorted. Every
    // index list we map (A's column rows, child update rows) is itself
    // sorted, so a shared cursor into the tail resolves a whole list in one
    // merge sweep — O(m + s) instead of O(m log s) binary searches.
    let tail = &info.rows[k..];
    let merge_local = |t: &mut usize, row: usize| -> usize {
        if row < info.col_end {
            debug_assert!(row >= info.col_start);
            row - info.col_start
        } else {
            while tail[*t] < row {
                *t += 1;
            }
            debug_assert_eq!(tail[*t], row, "row must be in front structure");
            k + *t
        }
    };

    // Scatter A's entries (lower triangle) for the pivot columns.
    let mut scattered = 0usize;
    for (lc, c) in (info.col_start..info.col_end).enumerate() {
        let mut t = 0usize;
        for (&i, &v) in a.col_rows(c).iter().zip(a.col_vals(c)) {
            debug_assert!(i >= c);
            let lr = merge_local(&mut t, i);
            data[lr + lc * s] += v;
            scattered += 1;
        }
    }

    // Extend-add children.
    let mut extended = 0usize;
    for child in children {
        let m = child.m();
        // Relative indices: child rows merged into front-local rows.
        let mut t = 0usize;
        let rel: Vec<usize> = child.rows.iter().map(|&r| merge_local(&mut t, r)).collect();
        for j in 0..m {
            let cj = rel[j];
            let src = &child.data[j * m..];
            for i in j..m {
                data[rel[i] + cj * s] += src[i];
            }
        }
        extended += m * (m + 1) / 2;
    }

    // Charge: read+write per scattered/extended entry plus zero-fill.
    let bytes = (scattered + extended) * 2 * T::BYTES + s * s * T::BYTES / 2;
    host.charge_memop(bytes, ASSEMBLY_BW);

    Front { s, k, data }
}

/// Extract the update matrix (trailing `m × m` lower block) from a factored
/// front. Charges copy-out time.
pub fn extract_update<T: Scalar>(
    front: &Front<T>,
    info: &SupernodeInfo,
    host: &mut HostClock,
) -> UpdateMatrix<T> {
    let s = front.s;
    let k = front.k;
    let m = s - k;
    let mut data = vec![T::ZERO; m * m];
    for j in 0..m {
        let src = &front.data[(k + j) * s + k + j..(k + j) * s + s];
        data[j * m + j..(j + 1) * m].copy_from_slice(src);
    }
    host.charge_memop(m * (m + 1) / 2 * T::BYTES, ASSEMBLY_BW);
    UpdateMatrix { rows: info.update_rows().to_vec(), data }
}

/// Extract the factor panel (`s × k`, columns `0..k` of the front) into the
/// factor storage. Charges copy-out time.
pub fn extract_panel<T: Scalar>(front: &Front<T>, host: &mut HostClock) -> Vec<T> {
    let s = front.s;
    let k = front.k;
    let panel = front.data[..s * k].to_vec();
    host.charge_memop(s * k * T::BYTES, ASSEMBLY_BW);
    panel
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_sparse::symbolic::SupernodeInfo;
    use mf_sparse::Triplet;

    fn info(col_start: usize, col_end: usize, update_rows: Vec<usize>) -> SupernodeInfo {
        let mut rows: Vec<usize> = (col_start..col_end).collect();
        rows.extend(update_rows);
        SupernodeInfo { col_start, col_end, rows, parent: usize::MAX }
    }

    #[test]
    fn assembles_a_entries_into_correct_slots() {
        // 4×4 matrix, supernode covering columns 0..2 with update rows {3}.
        let mut t = Triplet::new(4);
        t.push(0, 0, 4.0);
        t.push(1, 0, -1.0);
        t.push(3, 0, -2.0);
        t.push(1, 1, 5.0);
        t.push(3, 1, -3.0);
        t.push(2, 2, 6.0);
        t.push(3, 3, 7.0);
        let a = t.assemble();
        let inf = info(0, 2, vec![3]);
        let mut host = HostClock::new(mf_gpusim::xeon_5160_core());
        let f = assemble_front(&a, &inf, &[], &mut host);
        assert_eq!(f.s, 3);
        assert_eq!(f.k, 2);
        assert_eq!(f.at(0, 0), 4.0);
        assert_eq!(f.at(1, 0), -1.0);
        assert_eq!(f.at(2, 0), -2.0); // row 3 → local 2
        assert_eq!(f.at(1, 1), 5.0);
        assert_eq!(f.at(2, 1), -3.0);
        assert_eq!(f.at(2, 2), 0.0, "A(3,3) belongs to a later supernode");
        assert!(host.now() > 0.0);
    }

    #[test]
    fn extend_add_scatters_child_update() {
        let mut t = Triplet::new(5);
        for i in 0..5 {
            t.push(i, i, 1.0);
        }
        let a = t.assemble();
        // Parent supernode: columns 2..4, update row 4.
        let inf = info(2, 4, vec![4]);
        let child = UpdateMatrix {
            rows: vec![2, 4],
            data: vec![10.0, 20.0, 0.0, 30.0], // lower: (2,2)=10, (4,2)=20, (4,4)=30
        };
        let mut host = HostClock::new(mf_gpusim::xeon_5160_core());
        let f = assemble_front(&a, &inf, &[child], &mut host);
        // Local rows: 2→0, 3→1, 4→2.
        assert_eq!(f.at(0, 0), 1.0 + 10.0);
        assert_eq!(f.at(2, 0), 20.0);
        // A(4,4) belongs to a later supernode — only the child lands here.
        assert_eq!(f.at(2, 2), 30.0);
        assert_eq!(f.at(1, 1), 1.0);
    }

    #[test]
    fn multiple_children_accumulate() {
        let mut t = Triplet::new(3);
        for i in 0..3 {
            t.push(i, i, 0.0);
        }
        let a = t.assemble();
        let inf = info(0, 2, vec![2]);
        let c1 = UpdateMatrix { rows: vec![0, 2], data: vec![1.0, 2.0, 0.0, 3.0] };
        let c2 = UpdateMatrix { rows: vec![0, 1], data: vec![5.0, 6.0, 0.0, 7.0] };
        let mut host = HostClock::new(mf_gpusim::xeon_5160_core());
        let f = assemble_front(&a, &inf, &[c1, c2], &mut host);
        assert_eq!(f.at(0, 0), 6.0); // 1 + 5
        assert_eq!(f.at(2, 0), 2.0);
        assert_eq!(f.at(1, 0), 6.0);
        assert_eq!(f.at(1, 1), 7.0);
        assert_eq!(f.at(2, 2), 3.0);
    }

    #[test]
    fn extract_update_and_panel_roundtrip() {
        let inf = info(0, 2, vec![3, 7]);
        let s = 4;
        let mut f = Front { s, k: 2, data: vec![0.0f64; 16] };
        // Fill lower triangle with recognisable values.
        for j in 0..s {
            for i in j..s {
                f.data[i + j * s] = (10 * i + j) as f64;
            }
        }
        let mut host = HostClock::new(mf_gpusim::xeon_5160_core());
        let u = extract_update(&f, &inf, &mut host);
        assert_eq!(u.rows, vec![3, 7]);
        assert_eq!(u.m(), 2);
        assert_eq!(u.data[0], 22.0); // front (2,2)
        assert_eq!(u.data[1], 32.0); // front (3,2)
        assert_eq!(u.data[3], 33.0); // front (3,3)
        let p = extract_panel(&f, &mut host);
        assert_eq!(p.len(), 8);
        assert_eq!(p[1], 10.0);
        assert_eq!(p[4 + 1], 11.0);
    }
}
