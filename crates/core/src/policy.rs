//! The four factor-update execution policies (Table VI of the paper).

/// Where the three dense kernels of a factor-update run.
///
/// | Policy | potrf | trsm | syrk |
/// |---|---|---|---|
/// | P1 | CPU | CPU | CPU |
/// | P2 | CPU | CPU | GPU |
/// | P3 | CPU | GPU | GPU |
/// | P4 | GPU | GPU | GPU (panel algorithm, Fig. 9) |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PolicyKind {
    /// Everything on the host CPU (the serial baseline).
    P1,
    /// `syrk` offloaded to the GPU; `potrf` and `trsm` stay on the CPU.
    P2,
    /// `trsm` and `syrk` on the GPU; `potrf` on the CPU.
    P3,
    /// The whole factor-update on the GPU via the overlapped panel
    /// algorithm of Figure 9.
    P4,
}

impl PolicyKind {
    /// All four policies in table order.
    pub const ALL: [PolicyKind; 4] =
        [PolicyKind::P1, PolicyKind::P2, PolicyKind::P3, PolicyKind::P4];

    /// Index 0..4 (classifier class id).
    pub fn index(self) -> usize {
        match self {
            PolicyKind::P1 => 0,
            PolicyKind::P2 => 1,
            PolicyKind::P3 => 2,
            PolicyKind::P4 => 3,
        }
    }

    /// Inverse of [`Self::index`].
    pub fn from_index(i: usize) -> PolicyKind {
        PolicyKind::ALL[i]
    }

    /// Does this policy use the GPU at all?
    pub fn uses_gpu(self) -> bool {
        self != PolicyKind::P1
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}", self.index() + 1)
    }
}

/// The baseline hybrid's op-count thresholds (Section V-B1): switch
/// P1→P2 at `t12`, P2→P3 at `t23`, P3→P4 at `t34` total F-U operations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineThresholds {
    /// P1→P2 switch point.
    pub t12: f64,
    /// P2→P3 switch point.
    pub t23: f64,
    /// P3→P4 switch point.
    pub t34: f64,
}

impl Default for BaselineThresholds {
    /// The paper's observed transition points: 2×10⁶, 1.5×10⁷, 9×10¹⁰.
    fn default() -> Self {
        BaselineThresholds { t12: 2.0e6, t23: 1.5e7, t34: 9.0e10 }
    }
}

impl BaselineThresholds {
    /// Fit thresholds from per-policy time curves sampled along an op-count
    /// sweep — the procedure the paper uses on its Figures 10/11 data. Each
    /// sample is `(total_ops, [t_P1..t_P4])`; a threshold is placed where
    /// the best policy changes (first crossing wins; non-monotone tails are
    /// clamped).
    pub fn fit(samples: &[(f64, [f64; 4])]) -> BaselineThresholds {
        let mut t = [f64::INFINITY; 3]; // switch into P2, P3, P4
        let mut reached = 0usize; // highest policy index adopted so far
        for (ops, times) in samples {
            let best = (0..4).min_by(|&a, &b| times[a].total_cmp(&times[b])).unwrap();
            while reached < best {
                t[reached] = t[reached].min(*ops);
                reached += 1;
            }
        }
        // Unreached switches stay at infinity (policy never adopted).
        BaselineThresholds { t12: t[0], t23: t[1], t34: t[2] }
    }

    /// Pick the policy for a call of `total_ops = N_P + N_T + N_S`.
    pub fn choose(&self, total_ops: f64) -> PolicyKind {
        if total_ops < self.t12 {
            PolicyKind::P1
        } else if total_ops < self.t23 {
            PolicyKind::P2
        } else if total_ops < self.t34 {
            PolicyKind::P3
        } else {
            PolicyKind::P4
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for p in PolicyKind::ALL {
            assert_eq!(PolicyKind::from_index(p.index()), p);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(PolicyKind::P1.to_string(), "P1");
        assert_eq!(PolicyKind::P4.to_string(), "P4");
    }

    #[test]
    fn gpu_usage() {
        assert!(!PolicyKind::P1.uses_gpu());
        assert!(PolicyKind::P2.uses_gpu());
        assert!(PolicyKind::P4.uses_gpu());
    }

    #[test]
    fn baseline_thresholds_partition_the_axis() {
        let b = BaselineThresholds::default();
        assert_eq!(b.choose(1e5), PolicyKind::P1);
        assert_eq!(b.choose(5e6), PolicyKind::P2);
        assert_eq!(b.choose(1e9), PolicyKind::P3);
        assert_eq!(b.choose(1e11), PolicyKind::P4);
        // Boundaries are half-open.
        assert_eq!(b.choose(2e6), PolicyKind::P2);
    }
}
