//! # mf-core — hybrid CPU/GPU supernodal multifrontal Cholesky
//!
//! The paper's primary contribution: sparse Cholesky factorization whose
//! factor-update operations are scheduled between the host CPU and the GPU
//! under four policies (P1–P4, Table VI), selected per front by a fixed
//! rule, op-count thresholds (baseline hybrid), a retrospective oracle
//! (ideal hybrid), or the trained cost-sensitive classifier of Section VI
//! (model hybrid — trained by `mf-autotune`).
//!
//! ## Quick start
//!
//! ```
//! use mf_core::prelude::*;
//! use mf_gpusim::Machine;
//!
//! let a = mf_matgen::laplacian_3d(6, 6, 6, mf_matgen::Stencil::Faces);
//! let mut machine = Machine::paper_node();
//! let opts = SolverOptions {
//!     factor: FactorOptions {
//!         selector: PolicySelector::Baseline(BaselineThresholds::default()),
//!         ..Default::default()
//!     },
//!     ..Default::default()
//! };
//! let solver = SpdSolver::new(&a, &mut machine, &opts).unwrap();
//! let b = mf_matgen::rhs_ones(&a);
//! let sol = solver.solve_refined(&b, 4, 1e-12).unwrap();
//! assert!(sol.residual_history.last().unwrap() < &1e-11);
//! ```

pub mod arena;
pub mod factor;
pub mod features;
pub mod frontal;
pub mod fu;
pub mod multigpu;
pub mod ooc;
pub mod parallel;
pub mod pinned_pool;
pub mod policy;
pub mod solve;
pub mod solver;
pub mod stats;
pub mod tile;

pub use arena::FrontArena;
pub use factor::{
    factor_permuted, CholeskyFactor, FactorError, FactorOptions, FrontStorage, PipelineOptions,
    PolicySelector,
};
pub use features::{raw_features, LinearPolicyModel, NUM_FEATURES};
pub use frontal::{ChildUpdate, Front};
pub use fu::{
    dispatch_fu, enqueue_batch_downloads, enqueue_downloads, estimate_fu_time, execute_fu,
    finish_fu, try_dispatch_gpu, try_dispatch_gpu_batch, BatchError, FuBatchPending, FuContext,
    FuError, FuOutcome, FuPending, DEFAULT_PANEL_WIDTH,
};
pub use multigpu::{
    factor_permuted_multigpu, factor_permuted_parallel_multigpu, proportional_map, DeviceMap,
    MultiGpuOptions,
};
pub use ooc::{
    in_core_bytes, min_feasible_budget, plan_ooc, rehearse_stream_solve, OocError, OocEvent,
    OocEventKind, OocPlan, OocStats, PrecisionLadder, StreamSolveStats,
};
pub use parallel::{
    durations_by_supernode, factor_permuted_parallel, simulate_tiled_schedule,
    simulate_tree_schedule, MoldableModel, ParallelOptions, ScheduleResult,
};
pub use pinned_pool::PinnedPool;
pub use policy::{BaselineThresholds, PolicyKind};
pub use solver::{
    estimated_memory_bytes, estimated_memory_bytes_budgeted, Precision, RefactorError, RefineInfo,
    RefineStop, RefinedManySolution, RefinedSolution, SolveError, SolverOptions, SpdSolver,
};
pub use stats::{FactorStats, FuRecord, TaskKind, TaskRecord};
pub use tile::{process_front_tiled, FrontView, TileKernel, TilePlan, TilingOptions};

// Re-export the analysis entry points: `analyze_parallel` is the public
// parallel symbolic pipeline (bitwise identical to `analyze` at every worker
// count), and `AnalyzeError` is how both reject structurally singular input.
pub use mf_sparse::{analyze, analyze_parallel, Analysis, AnalyzeError};

/// Convenient glob-import of the solver-facing API.
pub mod prelude {
    pub use crate::factor::{FactorOptions, PipelineOptions, PolicySelector};
    pub use crate::multigpu::MultiGpuOptions;
    pub use crate::ooc::{in_core_bytes, min_feasible_budget, OocError, PrecisionLadder};
    pub use crate::policy::{BaselineThresholds, PolicyKind};
    pub use crate::solver::{
        Precision, RefactorError, RefineStop, RefinedManySolution, RefinedSolution, SolveError,
        SolverOptions, SpdSolver,
    };
    pub use crate::tile::TilingOptions;
    pub use mf_sparse::{analyze, analyze_parallel, Analysis, AnalyzeError};
}
