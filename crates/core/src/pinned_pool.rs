//! Pinned host staging buffers with the paper's growth-only reuse policy.
//!
//! Section V-A2: asynchronous transfers need pinned host memory, but every
//! pinned allocation is expensive — so "any allocation/deallocation is
//! triggered only when the maximum allocated size over all the previous
//! calls is insufficient". [`PinnedPool`] implements exactly that, with a
//! switch to allocate-per-call for the ablation benchmark, and a *virtual*
//! mode that charges allocation costs without backing memory (used by
//! timing-only estimation of huge fronts).

use mf_gpusim::HostClock;

/// A set of reusable pinned staging buffers (f32, matching the device).
///
/// Two usage styles coexist:
/// * the seed's **fixed-slot** style ([`Self::acquire`]/[`Self::release`]
///   with caller-chosen indices), used by the drain-per-front driver;
/// * the pipelined **multi-generation** style ([`Self::lease`] /
///   [`Self::retire`]), where each dispatch leases whichever generation is
///   free *and* whose guarding completion event has passed, and the pool
///   grows a new generation when all are in flight — double/triple
///   buffering falls out of the look-ahead depth.
#[derive(Debug)]
pub struct PinnedPool {
    slots: Vec<Vec<f32>>,
    /// Logical length of each slot (equals `slots[i].len()` except in
    /// virtual mode, where slots stay empty).
    logical: Vec<usize>,
    /// Simulated time at which the last transfer touching each slot
    /// completes; a slot may not be re-leased before this.
    ready_at: Vec<f64>,
    /// Slots currently handed out by [`Self::lease`].
    leased: Vec<bool>,
    reuse: bool,
    virtual_mode: bool,
    empty: Vec<f32>,
}

impl PinnedPool {
    /// A pool with `nslots` independent staging buffers and the growth-only
    /// reuse policy enabled.
    pub fn new(nslots: usize) -> Self {
        PinnedPool {
            slots: vec![Vec::new(); nslots],
            logical: vec![0; nslots],
            ready_at: vec![0.0; nslots],
            leased: vec![false; nslots],
            reuse: true,
            virtual_mode: false,
            empty: Vec::new(),
        }
    }

    /// Disable reuse: every acquisition allocates and releases pinned
    /// memory (the configuration the paper found prohibitively slow).
    pub fn without_reuse(nslots: usize) -> Self {
        PinnedPool { reuse: false, ..Self::new(nslots) }
    }

    /// Charge allocation costs but never allocate backing memory. Slot
    /// contents must not be read in this mode (timing-only estimation).
    pub fn set_virtual(&mut self, on: bool) {
        self.virtual_mode = on;
    }

    /// Whether the growth-only reuse policy is active.
    pub fn reuses(&self) -> bool {
        self.reuse
    }

    /// Acquire slot `idx` with at least `len` elements, charging the host
    /// clock for any pinned allocation this requires. Contents are
    /// unspecified. In virtual mode the returned slice is empty.
    pub fn acquire(&mut self, idx: usize, len: usize, host: &mut HostClock) -> &mut [f32] {
        self.charge_for(idx, len, host);
        if self.virtual_mode {
            &mut self.empty[..]
        } else {
            &mut self.slots[idx][..len]
        }
    }

    /// The growth-only (or allocate-per-call) charging policy for one slot.
    fn charge_for(&mut self, idx: usize, len: usize, host: &mut HostClock) {
        if self.reuse {
            if self.logical[idx] < len {
                // Grow: free the old region, allocate the larger one.
                if self.logical[idx] > 0 {
                    host.free_pinned(self.logical[idx] * 4);
                }
                host.alloc_pinned(len * 4);
                self.logical[idx] = len;
                if !self.virtual_mode {
                    self.slots[idx].resize(len, 0.0);
                }
            }
        } else {
            // Allocate-per-call mode: charge a fresh allocation every time.
            host.alloc_pinned(len * 4);
            self.logical[idx] = len;
            if !self.virtual_mode {
                self.slots[idx].clear();
                self.slots[idx].resize(len, 0.0);
            }
        }
    }

    /// Lease whichever slot generation is free and whose completion guard
    /// has passed (lowest index wins, so a drained pool reproduces the
    /// fixed-slot assignment of the seed driver). When every generation is
    /// in flight, the pool weighs its options: if a retired-but-guarded
    /// slot already fits `len` and its guard expires sooner than a fresh
    /// pinned allocation would take, the host waits for it instead of
    /// growing — pinned allocation carries a large fixed cost (§V-A2), so
    /// a short stall is usually the cheaper side. Slot choice never affects
    /// numerics (staging buffers are fully overwritten before use), only
    /// the simulated clock. Charges the growth-only policy for the chosen
    /// slot and returns its index.
    pub fn lease(&mut self, len: usize, host: &mut HostClock) -> usize {
        let now = host.now();
        if let Some(idx) =
            (0..self.slots.len()).find(|&i| !self.leased[i] && self.ready_at[i] <= now)
        {
            self.leased[idx] = true;
            self.charge_for(idx, len, host);
            return idx;
        }
        let grow_cost = host.pinned_alloc_cost(len * 4);
        let waitable = (0..self.slots.len())
            .filter(|&i| !self.leased[i] && self.logical[i] >= len)
            .min_by(|&a, &b| self.ready_at[a].total_cmp(&self.ready_at[b]));
        if let Some(idx) = waitable {
            if self.ready_at[idx] - now <= grow_cost {
                host.sync_to(self.ready_at[idx]);
                self.leased[idx] = true;
                self.charge_for(idx, len, host); // capacity fits: charge-free
                return idx;
            }
        }
        self.slots.push(Vec::new());
        self.logical.push(0);
        self.ready_at.push(0.0);
        self.leased.push(false);
        let idx = self.slots.len() - 1;
        self.leased[idx] = true;
        self.charge_for(idx, len, host);
        idx
    }

    /// Return a leased slot; it becomes leasable again once the simulated
    /// clock reaches `ready_at` (the completion event of the last transfer
    /// still touching the staging buffer). Frees under allocate-per-call,
    /// mirroring [`Self::release`].
    pub fn retire(&mut self, idx: usize, ready_at: f64, host: &mut HostClock) {
        self.leased[idx] = false;
        self.ready_at[idx] = ready_at;
        if !self.reuse && self.logical[idx] > 0 {
            host.free_pinned(self.logical[idx] * 4);
            self.logical[idx] = 0;
            self.slots[idx].clear();
            self.slots[idx].shrink_to_fit();
        }
    }

    /// Retire with no completion guard — the caller has already synced past
    /// every transfer touching the slot.
    pub fn retire_now(&mut self, idx: usize, host: &mut HostClock) {
        self.retire(idx, 0.0, host);
    }

    /// Number of slot generations currently backing the pool.
    pub fn generations(&self) -> usize {
        self.slots.len()
    }

    /// Release after use. A no-op under reuse; frees under allocate-per-call.
    pub fn release(&mut self, idx: usize, host: &mut HostClock) {
        if !self.reuse && self.logical[idx] > 0 {
            host.free_pinned(self.logical[idx] * 4);
            self.logical[idx] = 0;
            self.slots[idx].clear();
            self.slots[idx].shrink_to_fit();
        }
    }

    /// Current logical capacity of a slot in elements.
    pub fn capacity(&self, idx: usize) -> usize {
        self.logical[idx]
    }

    /// Raw access to an already-acquired slot (no charging). Callers must
    /// have called [`Self::acquire`] with a sufficient length first. Not
    /// meaningful in virtual mode.
    pub fn slot(&self, idx: usize) -> &[f32] {
        &self.slots[idx]
    }

    /// Mutable raw access to an already-acquired slot (no charging).
    pub fn slot_mut(&mut self, idx: usize) -> &mut [f32] {
        &mut self.slots[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_gpusim::xeon_5160_core;

    #[test]
    fn reuse_only_charges_on_growth() {
        let mut pool = PinnedPool::new(1);
        let mut host = HostClock::new(xeon_5160_core());
        pool.acquire(0, 1000, &mut host);
        let t1 = host.now();
        assert!(t1 > 0.0);
        // Smaller and equal requests are free.
        pool.acquire(0, 500, &mut host);
        pool.acquire(0, 1000, &mut host);
        assert_eq!(host.now(), t1);
        // Growth charges again.
        pool.acquire(0, 2000, &mut host);
        assert!(host.now() > t1);
        assert_eq!(pool.capacity(0), 2000);
    }

    #[test]
    fn no_reuse_charges_every_time() {
        let mut pool = PinnedPool::without_reuse(1);
        let mut host = HostClock::new(xeon_5160_core());
        pool.acquire(0, 100, &mut host);
        pool.release(0, &mut host);
        let t1 = host.now();
        pool.acquire(0, 100, &mut host);
        pool.release(0, &mut host);
        assert!(host.now() > t1 * 1.5, "second acquisition must pay again");
    }

    #[test]
    fn pinned_accounting_balances() {
        let mut pool = PinnedPool::without_reuse(2);
        let mut host = HostClock::new(xeon_5160_core());
        pool.acquire(0, 64, &mut host);
        pool.acquire(1, 32, &mut host);
        assert_eq!(host.pinned_bytes(), (64 + 32) * 4);
        pool.release(0, &mut host);
        pool.release(1, &mut host);
        assert_eq!(host.pinned_bytes(), 0);
    }

    #[test]
    fn slots_are_independent() {
        let mut pool = PinnedPool::new(2);
        let mut host = HostClock::new(xeon_5160_core());
        pool.acquire(0, 10, &mut host)[0] = 7.0;
        pool.acquire(1, 10, &mut host)[0] = 9.0;
        assert_eq!(pool.acquire(0, 10, &mut host)[0], 7.0);
    }

    #[test]
    fn lease_reuses_lowest_ready_generation() {
        let mut pool = PinnedPool::new(2);
        let mut host = HostClock::new(xeon_5160_core());
        let a = pool.lease(100, &mut host);
        let b = pool.lease(100, &mut host);
        assert_eq!((a, b), (0, 1), "fresh pool leases in index order");
        pool.retire_now(b, &mut host);
        pool.retire_now(a, &mut host);
        // Both free with no guard: index order again, like the seed's
        // fixed SLOT_PANEL/SLOT_UPDATE assignment.
        assert_eq!(pool.lease(50, &mut host), 0);
        assert_eq!(pool.lease(50, &mut host), 1);
        assert_eq!(pool.generations(), 2);
    }

    #[test]
    fn lease_grows_generation_when_all_busy_or_guarded() {
        let mut pool = PinnedPool::new(2);
        let mut host = HostClock::new(xeon_5160_core());
        let a = pool.lease(10, &mut host);
        let _b = pool.lease(10, &mut host);
        // Slot 0 retired but guarded by a far-future completion event.
        pool.retire(a, host.now() + 1.0, &mut host);
        let c = pool.lease(10, &mut host);
        assert_eq!(c, 2, "guarded slot must not be re-leased early");
        assert_eq!(pool.generations(), 3);
        // Once the clock passes the guard, slot 0 is leasable again.
        pool.retire_now(c, &mut host);
        host.advance(2.0);
        assert_eq!(pool.lease(10, &mut host), 0);
    }

    #[test]
    fn lease_keeps_growth_only_charging_per_generation() {
        let mut pool = PinnedPool::new(1);
        let mut host = HostClock::new(xeon_5160_core());
        let a = pool.lease(1000, &mut host);
        pool.retire_now(a, &mut host);
        let t1 = host.now();
        assert!(t1 > 0.0);
        // Re-leasing at the same or smaller size is free.
        let a2 = pool.lease(1000, &mut host);
        pool.retire_now(a2, &mut host);
        assert_eq!(host.now(), t1);
        // Growth charges again.
        pool.lease(2000, &mut host);
        assert!(host.now() > t1);
    }

    #[test]
    fn virtual_mode_charges_without_allocating() {
        let mut pool = PinnedPool::new(1);
        pool.set_virtual(true);
        let mut host = HostClock::new(xeon_5160_core());
        let s = pool.acquire(0, 1_000_000_000, &mut host);
        assert!(s.is_empty(), "virtual acquire must not allocate");
        assert!(host.now() > 0.0, "but it must charge");
        assert_eq!(pool.capacity(0), 1_000_000_000);
        // No growth ⇒ no further charge.
        let t = host.now();
        pool.acquire(0, 500, &mut host);
        assert_eq!(host.now(), t);
    }
}
