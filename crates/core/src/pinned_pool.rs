//! Pinned host staging buffers with the paper's growth-only reuse policy.
//!
//! Section V-A2: asynchronous transfers need pinned host memory, but every
//! pinned allocation is expensive — so "any allocation/deallocation is
//! triggered only when the maximum allocated size over all the previous
//! calls is insufficient". [`PinnedPool`] implements exactly that, with a
//! switch to allocate-per-call for the ablation benchmark, and a *virtual*
//! mode that charges allocation costs without backing memory (used by
//! timing-only estimation of huge fronts).

use mf_gpusim::HostClock;

/// A set of reusable pinned staging buffers (f32, matching the device).
#[derive(Debug)]
pub struct PinnedPool {
    slots: Vec<Vec<f32>>,
    /// Logical length of each slot (equals `slots[i].len()` except in
    /// virtual mode, where slots stay empty).
    logical: Vec<usize>,
    reuse: bool,
    virtual_mode: bool,
    empty: Vec<f32>,
}

impl PinnedPool {
    /// A pool with `nslots` independent staging buffers and the growth-only
    /// reuse policy enabled.
    pub fn new(nslots: usize) -> Self {
        PinnedPool {
            slots: vec![Vec::new(); nslots],
            logical: vec![0; nslots],
            reuse: true,
            virtual_mode: false,
            empty: Vec::new(),
        }
    }

    /// Disable reuse: every acquisition allocates and releases pinned
    /// memory (the configuration the paper found prohibitively slow).
    pub fn without_reuse(nslots: usize) -> Self {
        PinnedPool { reuse: false, ..Self::new(nslots) }
    }

    /// Charge allocation costs but never allocate backing memory. Slot
    /// contents must not be read in this mode (timing-only estimation).
    pub fn set_virtual(&mut self, on: bool) {
        self.virtual_mode = on;
    }

    /// Whether the growth-only reuse policy is active.
    pub fn reuses(&self) -> bool {
        self.reuse
    }

    /// Acquire slot `idx` with at least `len` elements, charging the host
    /// clock for any pinned allocation this requires. Contents are
    /// unspecified. In virtual mode the returned slice is empty.
    pub fn acquire(&mut self, idx: usize, len: usize, host: &mut HostClock) -> &mut [f32] {
        if self.reuse {
            if self.logical[idx] < len {
                // Grow: free the old region, allocate the larger one.
                if self.logical[idx] > 0 {
                    host.free_pinned(self.logical[idx] * 4);
                }
                host.alloc_pinned(len * 4);
                self.logical[idx] = len;
                if !self.virtual_mode {
                    self.slots[idx].resize(len, 0.0);
                }
            }
        } else {
            // Allocate-per-call mode: charge a fresh allocation every time.
            host.alloc_pinned(len * 4);
            self.logical[idx] = len;
            if !self.virtual_mode {
                self.slots[idx].clear();
                self.slots[idx].resize(len, 0.0);
            }
        }
        if self.virtual_mode {
            &mut self.empty[..]
        } else {
            &mut self.slots[idx][..len]
        }
    }

    /// Release after use. A no-op under reuse; frees under allocate-per-call.
    pub fn release(&mut self, idx: usize, host: &mut HostClock) {
        if !self.reuse && self.logical[idx] > 0 {
            host.free_pinned(self.logical[idx] * 4);
            self.logical[idx] = 0;
            self.slots[idx].clear();
            self.slots[idx].shrink_to_fit();
        }
    }

    /// Current logical capacity of a slot in elements.
    pub fn capacity(&self, idx: usize) -> usize {
        self.logical[idx]
    }

    /// Raw access to an already-acquired slot (no charging). Callers must
    /// have called [`Self::acquire`] with a sufficient length first. Not
    /// meaningful in virtual mode.
    pub fn slot(&self, idx: usize) -> &[f32] {
        &self.slots[idx]
    }

    /// Mutable raw access to an already-acquired slot (no charging).
    pub fn slot_mut(&mut self, idx: usize) -> &mut [f32] {
        &mut self.slots[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_gpusim::xeon_5160_core;

    #[test]
    fn reuse_only_charges_on_growth() {
        let mut pool = PinnedPool::new(1);
        let mut host = HostClock::new(xeon_5160_core());
        pool.acquire(0, 1000, &mut host);
        let t1 = host.now();
        assert!(t1 > 0.0);
        // Smaller and equal requests are free.
        pool.acquire(0, 500, &mut host);
        pool.acquire(0, 1000, &mut host);
        assert_eq!(host.now(), t1);
        // Growth charges again.
        pool.acquire(0, 2000, &mut host);
        assert!(host.now() > t1);
        assert_eq!(pool.capacity(0), 2000);
    }

    #[test]
    fn no_reuse_charges_every_time() {
        let mut pool = PinnedPool::without_reuse(1);
        let mut host = HostClock::new(xeon_5160_core());
        pool.acquire(0, 100, &mut host);
        pool.release(0, &mut host);
        let t1 = host.now();
        pool.acquire(0, 100, &mut host);
        pool.release(0, &mut host);
        assert!(host.now() > t1 * 1.5, "second acquisition must pay again");
    }

    #[test]
    fn pinned_accounting_balances() {
        let mut pool = PinnedPool::without_reuse(2);
        let mut host = HostClock::new(xeon_5160_core());
        pool.acquire(0, 64, &mut host);
        pool.acquire(1, 32, &mut host);
        assert_eq!(host.pinned_bytes(), (64 + 32) * 4);
        pool.release(0, &mut host);
        pool.release(1, &mut host);
        assert_eq!(host.pinned_bytes(), 0);
    }

    #[test]
    fn slots_are_independent() {
        let mut pool = PinnedPool::new(2);
        let mut host = HostClock::new(xeon_5160_core());
        pool.acquire(0, 10, &mut host)[0] = 7.0;
        pool.acquire(1, 10, &mut host)[0] = 9.0;
        assert_eq!(pool.acquire(0, 10, &mut host)[0], 7.0);
    }

    #[test]
    fn virtual_mode_charges_without_allocating() {
        let mut pool = PinnedPool::new(1);
        pool.set_virtual(true);
        let mut host = HostClock::new(xeon_5160_core());
        let s = pool.acquire(0, 1_000_000_000, &mut host);
        assert!(s.is_empty(), "virtual acquire must not allocate");
        assert!(host.now() > 0.0, "but it must charge");
        assert_eq!(pool.capacity(0), 1_000_000_000);
        // No growth ⇒ no further charge.
        let t = host.now();
        pool.acquire(0, 500, &mut host);
        assert_eq!(host.now(), t);
    }
}
