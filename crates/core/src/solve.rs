//! Supernodal triangular solves with the panel-form factor.
//!
//! Given `P·A·Pᵀ = L·Lᵀ`, solving `A·x = b` proceeds as
//! `y = L⁻¹·(P·b)`, `z = L⁻ᵀ·y`, `x = Pᵀ·z`. The forward pass walks the
//! supernodes in postorder (ascending column order works too since children
//! columns precede parents); the backward pass walks in reverse.

use crate::factor::CholeskyFactor;
use mf_dense::{gemm, trsm_left_lower_notrans, trsm_left_lower_trans, Scalar, Transpose};

impl<T: Scalar> CholeskyFactor<T> {
    /// Solve `A·x = b` (original, unpermuted ordering). `b` is given in the
    /// factor's scalar type.
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        assert_eq!(b.len(), self.order());
        let mut x = self.perm.permute_vec(b);
        self.solve_permuted_in_place(&mut x);
        self.perm.unpermute_vec(&x)
    }

    /// Solve `(P·A·Pᵀ)·x = b` in place on a permuted right-hand side.
    pub fn solve_permuted_in_place(&self, x: &mut [T]) {
        assert_eq!(x.len(), self.order());
        self.forward_in_place(x);
        self.backward_in_place(x);
    }

    /// Forward substitution `x ← L⁻¹·x` (permuted ordering).
    ///
    /// Each supernode is a diagonal-block `trsm` plus a dense update
    /// `x[rows] −= L₂·x[c0..c1]`: the update rows are gathered into a
    /// contiguous scratch vector once, updated with a single `gemm` against
    /// the stored panel (no per-element index arithmetic in the hot loop),
    /// and scattered back.
    pub fn forward_in_place(&self, x: &mut [T]) {
        let mut xu = vec![T::ZERO; self.max_update_size()];
        for &sn in &self.symbolic.postorder {
            let info = &self.symbolic.supernodes[sn];
            let (k, m) = (info.k(), info.m());
            let s = info.front_size();
            let panel = &self.panels[sn];
            let (c0, c1) = (info.col_start, info.col_end);
            // Diagonal block solve: x[c0..c1] ← L₁⁻¹ x[c0..c1].
            trsm_left_lower_notrans(k, 1, panel, s, &mut x[c0..c1], k);
            if m > 0 {
                let xu = &mut xu[..m];
                for (u, &r) in xu.iter_mut().zip(&info.rows[k..]) {
                    *u = x[r];
                }
                // xu −= L₂ · x[c0..c1]  (L₂ = rows k..s of the panel).
                gemm(
                    Transpose::No,
                    Transpose::No,
                    m,
                    1,
                    k,
                    -T::ONE,
                    &panel[k..],
                    s,
                    &x[c0..c1],
                    k,
                    T::ONE,
                    xu,
                    m,
                );
                for (&u, &r) in xu.iter().zip(&info.rows[k..]) {
                    x[r] = u;
                }
            }
        }
    }

    /// Backward substitution `x ← L⁻ᵀ·x` (permuted ordering). Mirrors
    /// [`CholeskyFactor::forward_in_place`]: gather, one transposed `gemm`,
    /// diagonal-block `trsm`.
    pub fn backward_in_place(&self, x: &mut [T]) {
        let mut xu = vec![T::ZERO; self.max_update_size()];
        for &sn in self.symbolic.postorder.iter().rev() {
            let info = &self.symbolic.supernodes[sn];
            let (k, m) = (info.k(), info.m());
            let s = info.front_size();
            let panel = &self.panels[sn];
            let (c0, c1) = (info.col_start, info.col_end);
            if m > 0 {
                let xu = &mut xu[..m];
                for (u, &r) in xu.iter_mut().zip(&info.rows[k..]) {
                    *u = x[r];
                }
                // x[c0..c1] −= L₂ᵀ · x[update rows].
                gemm(
                    Transpose::Yes,
                    Transpose::No,
                    k,
                    1,
                    m,
                    -T::ONE,
                    &panel[k..],
                    s,
                    xu,
                    m,
                    T::ONE,
                    &mut x[c0..c1],
                    k,
                );
            }
            // Diagonal block: x[c0..c1] ← L₁⁻ᵀ x[c0..c1].
            trsm_left_lower_trans(k, 1, panel, s, &mut x[c0..c1], k);
        }
    }

    /// Largest update-row count over all supernodes (gather scratch size).
    fn max_update_size(&self) -> usize {
        self.symbolic.supernodes.iter().map(|i| i.m()).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use crate::factor::{factor_permuted, FactorOptions, PolicySelector};
    use crate::policy::PolicyKind;
    use mf_gpusim::Machine;
    use mf_matgen::{laplacian_2d, laplacian_3d, rhs_for_solution, Stencil};
    use mf_sparse::symbolic::analyze;
    use mf_sparse::{AmalgamationOptions, OrderingKind, SymCsc};

    fn solve_with(
        a: &SymCsc<f64>,
        selector: PolicySelector,
        ordering: OrderingKind,
    ) -> (Vec<f64>, Vec<f64>) {
        let analysis = analyze(a, ordering, Some(&AmalgamationOptions::default()));
        let mut machine = Machine::paper_node();
        let opts = FactorOptions { selector, ..Default::default() };
        let (f, _) = factor_permuted(
            &analysis.permuted.0,
            &analysis.symbolic,
            &analysis.perm,
            &mut machine,
            &opts,
        )
        .unwrap();
        let (xtrue, b) = rhs_for_solution(a, 42);
        (f.solve(&b), xtrue)
    }

    #[test]
    fn solve_recovers_known_solution_f64() {
        let a = laplacian_2d(13, 11, Stencil::Faces);
        for ordering in [
            OrderingKind::Natural,
            OrderingKind::Rcm,
            OrderingKind::MinimumDegree,
            OrderingKind::NestedDissection,
        ] {
            let (x, xtrue) = solve_with(&a, PolicySelector::Fixed(PolicyKind::P1), ordering);
            let err = x.iter().zip(&xtrue).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
            assert!(err < 1e-8, "{ordering:?}: forward error {err}");
        }
    }

    #[test]
    fn solve_3d_all_policies() {
        let a = laplacian_3d(6, 6, 6, Stencil::Faces);
        for p in PolicyKind::ALL {
            let (x, xtrue) =
                solve_with(&a, PolicySelector::Fixed(p), OrderingKind::NestedDissection);
            let err = x.iter().zip(&xtrue).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
            let tol = if p == PolicyKind::P1 { 1e-8 } else { 1e-2 };
            assert!(err < tol, "{p}: forward error {err}");
        }
    }

    #[test]
    fn residual_small_relative_to_matrix_norm() {
        let a = laplacian_2d(17, 17, Stencil::Full);
        let (x, _) =
            solve_with(&a, PolicySelector::Fixed(PolicyKind::P1), OrderingKind::NestedDissection);
        let (_, b) = rhs_for_solution(&a, 42);
        let r = a.residual(&x, &b);
        let rel = r.iter().map(|v| v.abs()).fold(0.0, f64::max) / a.norm_inf();
        assert!(rel < 1e-12, "relative residual {rel}");
    }

    #[test]
    fn forward_then_backward_equals_solve() {
        let a = laplacian_2d(7, 9, Stencil::Faces);
        let analysis = analyze(&a, OrderingKind::NestedDissection, None);
        let mut machine = Machine::paper_node();
        let (f, _) = factor_permuted(
            &analysis.permuted.0,
            &analysis.symbolic,
            &analysis.perm,
            &mut machine,
            &FactorOptions::default(),
        )
        .unwrap();
        let (_, b) = rhs_for_solution(&a, 7);
        let via_solve = f.solve(&b);
        let mut x = f.perm.permute_vec(&b);
        f.forward_in_place(&mut x);
        f.backward_in_place(&mut x);
        let manual = f.perm.unpermute_vec(&x);
        assert_eq!(via_solve, manual);
    }
}
