//! Supernodal triangular solves with the panel-form factor.
//!
//! Given `P·A·Pᵀ = L·Lᵀ`, solving `A·X = B` proceeds as
//! `Y = L⁻¹·(P·B)`, `Z = L⁻ᵀ·Y`, `X = Pᵀ·Z`. The forward pass walks the
//! supernodes leaf→root, the backward pass root→leaf; both exist in a
//! serial and a tree-parallel flavour built from **one shared per-supernode
//! body each**, which is what makes the parallel solve bitwise identical to
//! the serial one at every worker count (the same contract as
//! [`crate::parallel::factor_permuted_parallel`]).
//!
//! ## Determinism design
//!
//! *Backward* is embarrassingly deterministic: a supernode's off-diagonal
//! update reads only ancestor columns, which the root→leaf dependency order
//! (via [`TaskGraph::from_parents_reversed`]) finalises before the supernode
//! runs, and each task writes only its own columns.
//!
//! *Forward* is the interesting one: sibling subtrees both contribute
//! subtractions to shared ancestor rows, and letting them race on the global
//! vector would make the float summation order depend on the schedule.
//! Instead each supernode produces a buffered *subtrahend* (`m × nrhs`, rows
//! = its update rows) that is handed to its parent, exactly like the update
//! matrices of the numeric factorization. The parent folds child buffers in
//! child-list order — rows inside its own columns subtract straight into its
//! right-hand-side block, rows beyond accumulate into its own outgoing
//! buffer — so every addition happens at a fixed tree position in a fixed
//! order, independent of the schedule.
//!
//! All right-hand-side blocks are `n × nrhs` column-major with leading
//! dimension `n`. Every dense call goes through the RHS-count-invariant
//! entry points ([`trsm_left_lower_notrans_multi`], [`gemm_multi_rhs`]), so
//! column `j` of a batched solve is additionally bitwise identical to a
//! single-RHS solve of column `j` alone.

use crate::factor::CholeskyFactor;
use crate::ooc::{plan_ooc, rehearse_stream_solve, OocError, PrecisionLadder, StreamSolveStats};
use crate::pinned_pool::PinnedPool;
use mf_dense::{
    gemm_multi_rhs, trsm_left_lower_notrans_multi, trsm_left_lower_trans_multi, Scalar, Transpose,
};
use mf_gpusim::{Machine, TierParams};
use mf_runtime::{Runtime, TaskGraph};
use mf_sparse::symbolic::SymbolicFactor;
use std::sync::Mutex;

/// Shared view of the permuted right-hand-side block for the parallel
/// sweeps.
///
/// # Safety
///
/// Tasks write disjoint element sets: in both sweeps a task writes only the
/// rows of its own supernode's columns (forward contributions to other rows
/// travel through the buffered hand-off, never through `X`), and reads of
/// other rows are ordered after the writing task by the release/acquire
/// dependency counters of the [`TaskGraph`]. Raw pointers are used because
/// handing overlapping `&mut` slices to concurrent tasks would be aliasing
/// UB even with disjoint index sets.
struct SharedX<T> {
    ptr: *mut T,
    len: usize,
}

unsafe impl<T: Send> Sync for SharedX<T> {}
unsafe impl<T: Send> Send for SharedX<T> {}

impl<T: Scalar> SharedX<T> {
    fn new(x: &mut [T]) -> Self {
        SharedX { ptr: x.as_mut_ptr(), len: x.len() }
    }

    #[inline]
    fn read(&self, idx: usize) -> T {
        debug_assert!(idx < self.len);
        // SAFETY: in-bounds; disjointness/ordering per the type-level note.
        unsafe { *self.ptr.add(idx) }
    }

    #[inline]
    fn write(&self, idx: usize, v: T) {
        debug_assert!(idx < self.len);
        // SAFETY: in-bounds; disjointness/ordering per the type-level note.
        unsafe { *self.ptr.add(idx) = v }
    }
}

/// Take a buffered child contribution, tolerating a poisoned lock (the
/// buffer itself is always fully written before the dependency counter
/// releases the parent, so the value is intact even if some other task
/// panicked while holding an unrelated slot).
fn take_buffer<T>(slot: &Mutex<Option<Vec<T>>>) -> Vec<T> {
    slot.lock()
        .unwrap_or_else(|poison| poison.into_inner())
        .take()
        .expect("child solve buffer must exist before its parent runs")
}

/// Forward-substitution body of one supernode: fold the children's buffered
/// subtrahends, solve the diagonal block, and produce this supernode's own
/// outgoing subtrahend (`None` for root supernodes, `m = 0`).
///
/// Shared verbatim by the serial postorder driver and the work-stealing
/// parallel driver — the bitwise-identity anchor.
#[allow(clippy::too_many_arguments)]
fn forward_supernode<T: Scalar>(
    symbolic: &SymbolicFactor,
    slab: &[T],
    panel_ptr: &[usize],
    sn: usize,
    nrhs: usize,
    ldx: usize,
    x: &SharedX<T>,
    children: &[(usize, Vec<T>)],
    xk: &mut Vec<T>,
) -> Option<Vec<T>> {
    let info = &symbolic.supernodes[sn];
    let (k, m) = (info.k(), info.m());
    let s = info.front_size();
    let (c0, c1) = (info.col_start, info.col_end);
    let panel = &slab[panel_ptr[sn]..panel_ptr[sn + 1]];

    // Gather this supernode's rows of the RHS block into contiguous k×nrhs
    // scratch (the global block is ldx-strided).
    xk.clear();
    xk.resize(k * nrhs, T::ZERO);
    for j in 0..nrhs {
        for i in 0..k {
            xk[i + j * k] = x.read(c0 + i + j * ldx);
        }
    }

    let own_rows = &info.rows[k..];
    let mut ubuf = vec![T::ZERO; m * nrhs];

    // Extend-add the children's subtrahends in child-list order (the serial
    // consumption order): rows inside [c0, c1) land in xk, rows beyond fold
    // into the outgoing buffer via a merge against our sorted row list.
    for (c, cbuf) in children {
        let cinfo = &symbolic.supernodes[*c];
        let crows = &cinfo.rows[cinfo.k()..];
        let mc = crows.len();
        let mut pos = 0usize;
        for (i, &r) in crows.iter().enumerate() {
            if r < c1 {
                debug_assert!(r >= c0);
                let li = r - c0;
                for j in 0..nrhs {
                    xk[li + j * k] -= cbuf[i + j * mc];
                }
            } else {
                while own_rows[pos] < r {
                    pos += 1;
                }
                debug_assert_eq!(own_rows[pos], r, "child row must appear in parent front");
                for j in 0..nrhs {
                    ubuf[pos + j * m] += cbuf[i + j * mc];
                }
            }
        }
    }

    // Diagonal block: xk ← L₁⁻¹ xk.
    trsm_left_lower_notrans_multi(k, nrhs, panel, s, xk, k);

    // Rows [c0, c1) are written by this task alone.
    for j in 0..nrhs {
        for i in 0..k {
            x.write(c0 + i + j * ldx, xk[i + j * k]);
        }
    }

    if m == 0 {
        return None;
    }
    // ubuf += L₂ · xk — this supernode's own contribution to its ancestors
    // (L₂ = rows k..s of the panel).
    gemm_multi_rhs(Transpose::No, m, nrhs, k, T::ONE, &panel[k..], s, xk, k, T::ONE, &mut ubuf, m);
    Some(ubuf)
}

/// Backward-substitution body of one supernode: gather the (already final)
/// ancestor rows, apply the transposed off-diagonal update, solve the
/// diagonal block, scatter back. Shared by the serial and parallel drivers.
#[allow(clippy::too_many_arguments)]
fn backward_supernode<T: Scalar>(
    symbolic: &SymbolicFactor,
    slab: &[T],
    panel_ptr: &[usize],
    sn: usize,
    nrhs: usize,
    ldx: usize,
    x: &SharedX<T>,
    xk: &mut Vec<T>,
    xu: &mut Vec<T>,
) {
    let info = &symbolic.supernodes[sn];
    let (k, m) = (info.k(), info.m());
    let s = info.front_size();
    let (c0, _c1) = (info.col_start, info.col_end);
    let panel = &slab[panel_ptr[sn]..panel_ptr[sn + 1]];

    xk.clear();
    xk.resize(k * nrhs, T::ZERO);
    for j in 0..nrhs {
        for i in 0..k {
            xk[i + j * k] = x.read(c0 + i + j * ldx);
        }
    }
    if m > 0 {
        xu.clear();
        xu.resize(m * nrhs, T::ZERO);
        for j in 0..nrhs {
            for (i, &r) in info.rows[k..].iter().enumerate() {
                xu[i + j * m] = x.read(r + j * ldx);
            }
        }
        // xk −= L₂ᵀ · x[update rows].
        gemm_multi_rhs(Transpose::Yes, k, nrhs, m, -T::ONE, &panel[k..], s, xu, m, T::ONE, xk, k);
    }
    // Diagonal block: xk ← L₁⁻ᵀ xk.
    trsm_left_lower_trans_multi(k, nrhs, panel, s, xk, k);
    for j in 0..nrhs {
        for i in 0..k {
            x.write(c0 + i + j * ldx, xk[i + j * k]);
        }
    }
}

impl<T: Scalar> CholeskyFactor<T> {
    /// Solve `A·x = b` (original, unpermuted ordering). `b` is given in the
    /// factor's scalar type.
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        self.solve_many(b, 1)
    }

    /// Solve `A·X = B` for a block of `nrhs` right-hand sides (`B` is
    /// `n × nrhs` column-major, original ordering).
    ///
    /// Column `j` of the result is bitwise identical to `solve` on column
    /// `j` alone: the whole path runs on RHS-count-invariant kernels.
    pub fn solve_many(&self, b: &[T], nrhs: usize) -> Vec<T> {
        let mut x = self.permute_rhs(b, nrhs);
        self.solve_permuted_in_place_multi(&mut x, nrhs);
        self.unpermute_rhs(&x, nrhs)
    }

    /// [`CholeskyFactor::solve_many`] under a memory budget: the triangular
    /// sweeps become streaming passes over the factor slab. Panels the
    /// budget cannot keep device-resident are fetched tier→device with
    /// look-ahead prefetch through the PR 5 pinned-buffer lease discipline
    /// ([`PinnedPool`], virtual mode — timing only), overlapping each
    /// panel's transfer with the compute of the panels ahead of it; the
    /// rehearsal charges `machine.host` and returns the overlap accounting.
    ///
    /// The returned solution is **bitwise identical to
    /// [`CholeskyFactor::solve_many`]**: streaming changes when panel bytes
    /// move, never the substitution arithmetic, and panels spilled through a
    /// precision ladder were already degraded in the slab at factorization
    /// time (re-promotion is exact — see [`PrecisionLadder`]), so the sweep
    /// reads the same bits either way.
    pub fn solve_many_streamed(
        &self,
        b: &[T],
        nrhs: usize,
        budget: usize,
        ladder: PrecisionLadder,
        tiers: &TierParams,
        machine: &mut Machine,
    ) -> Result<(Vec<T>, StreamSolveStats), OocError> {
        let plan = plan_ooc(&self.symbolic, T::BYTES, budget, ladder, tiers)?;
        // Two staging generations: one panel loading while the previous one
        // feeds the sweep — the same double-buffer depth the pipelined
        // factorization leases.
        let mut pool = PinnedPool::new(2);
        pool.set_virtual(true);
        let stats = rehearse_stream_solve(
            &self.symbolic,
            &plan,
            T::BYTES,
            nrhs,
            tiers,
            &mut machine.host,
            &mut pool,
        );
        Ok((self.solve_many(b, nrhs), stats))
    }

    /// [`CholeskyFactor::solve_many`] with the triangular sweeps scheduled
    /// across `workers` threads on the elimination tree. Bitwise identical
    /// to the serial path at every worker count.
    pub fn solve_many_parallel(&self, b: &[T], nrhs: usize, workers: usize) -> Vec<T> {
        let mut x = self.permute_rhs(b, nrhs);
        self.forward_in_place_multi_parallel(&mut x, nrhs, workers);
        self.backward_in_place_multi_parallel(&mut x, nrhs, workers);
        self.unpermute_rhs(&x, nrhs)
    }

    /// Solve `(P·A·Pᵀ)·x = b` in place on a permuted right-hand side.
    pub fn solve_permuted_in_place(&self, x: &mut [T]) {
        self.solve_permuted_in_place_multi(x, 1);
    }

    /// Solve `(P·A·Pᵀ)·X = B` in place on a permuted `n × nrhs` block.
    pub fn solve_permuted_in_place_multi(&self, x: &mut [T], nrhs: usize) {
        self.forward_in_place_multi(x, nrhs);
        self.backward_in_place_multi(x, nrhs);
    }

    /// Forward substitution `x ← L⁻¹·x` (permuted ordering).
    pub fn forward_in_place(&self, x: &mut [T]) {
        self.forward_in_place_multi(x, 1);
    }

    /// Backward substitution `x ← L⁻ᵀ·x` (permuted ordering).
    pub fn backward_in_place(&self, x: &mut [T]) {
        self.backward_in_place_multi(x, 1);
    }

    /// Forward substitution `X ← L⁻¹·X` on a permuted `n × nrhs` block.
    pub fn forward_in_place_multi(&self, x: &mut [T], nrhs: usize) {
        let n = self.order();
        assert_eq!(x.len(), n * nrhs);
        if nrhs == 0 || n == 0 {
            return;
        }
        let shared = SharedX::new(x);
        let nsn = self.symbolic.num_supernodes();
        let mut bufs: Vec<Option<Vec<T>>> = (0..nsn).map(|_| None).collect();
        let mut xk = Vec::new();
        for &sn in &self.symbolic.postorder {
            let children: Vec<(usize, Vec<T>)> = self.symbolic.children[sn]
                .iter()
                .map(|&c| (c, bufs[c].take().expect("child solve buffer must exist in postorder")))
                .collect();
            bufs[sn] = forward_supernode(
                &self.symbolic,
                &self.slab,
                &self.panel_ptr,
                sn,
                nrhs,
                n,
                &shared,
                &children,
                &mut xk,
            );
        }
    }

    /// Backward substitution `X ← L⁻ᵀ·X` on a permuted `n × nrhs` block.
    pub fn backward_in_place_multi(&self, x: &mut [T], nrhs: usize) {
        let n = self.order();
        assert_eq!(x.len(), n * nrhs);
        if nrhs == 0 || n == 0 {
            return;
        }
        let shared = SharedX::new(x);
        let mut xk = Vec::new();
        let mut xu = Vec::new();
        for &sn in self.symbolic.postorder.iter().rev() {
            backward_supernode(
                &self.symbolic,
                &self.slab,
                &self.panel_ptr,
                sn,
                nrhs,
                n,
                &shared,
                &mut xk,
                &mut xu,
            );
        }
    }

    /// Tree-parallel forward substitution (leaf→root) on `workers` threads.
    /// Bitwise identical to [`CholeskyFactor::forward_in_place_multi`].
    pub fn forward_in_place_multi_parallel(&self, x: &mut [T], nrhs: usize, workers: usize) {
        let n = self.order();
        assert_eq!(x.len(), n * nrhs);
        if nrhs == 0 || n == 0 {
            return;
        }
        let nsn = self.symbolic.num_supernodes();
        let parents: Vec<usize> = self.symbolic.supernodes.iter().map(|s| s.parent).collect();
        let graph = TaskGraph::from_parents(&parents);
        let bufs: Vec<Mutex<Option<Vec<T>>>> = (0..nsn).map(|_| Mutex::new(None)).collect();
        let shared = SharedX::new(x);
        let runtime = Runtime::new(workers);
        let states: Vec<Vec<T>> = (0..runtime.workers()).map(|_| Vec::new()).collect();
        let (_, errors) = runtime.run(&graph, states, |xk: &mut Vec<T>, sn| -> Result<(), ()> {
            let children: Vec<(usize, Vec<T>)> =
                self.symbolic.children[sn].iter().map(|&c| (c, take_buffer(&bufs[c]))).collect();
            let out = forward_supernode(
                &self.symbolic,
                &self.slab,
                &self.panel_ptr,
                sn,
                nrhs,
                n,
                &shared,
                &children,
                xk,
            );
            if let Some(b) = out {
                *bufs[sn].lock().unwrap_or_else(|poison| poison.into_inner()) = Some(b);
            }
            Ok(())
        });
        debug_assert!(errors.is_empty(), "solve tasks are infallible");
    }

    /// Tree-parallel backward substitution (root→leaf, on the reversed
    /// elimination tree) on `workers` threads. Bitwise identical to
    /// [`CholeskyFactor::backward_in_place_multi`].
    pub fn backward_in_place_multi_parallel(&self, x: &mut [T], nrhs: usize, workers: usize) {
        let n = self.order();
        assert_eq!(x.len(), n * nrhs);
        if nrhs == 0 || n == 0 {
            return;
        }
        let parents: Vec<usize> = self.symbolic.supernodes.iter().map(|s| s.parent).collect();
        let graph = TaskGraph::from_parents_reversed(&parents);
        let shared = SharedX::new(x);
        let runtime = Runtime::new(workers);
        let states: Vec<(Vec<T>, Vec<T>)> =
            (0..runtime.workers()).map(|_| (Vec::new(), Vec::new())).collect();
        let (_, errors) = runtime.run(&graph, states, |st, sn| -> Result<(), ()> {
            let (xk, xu) = st;
            backward_supernode(
                &self.symbolic,
                &self.slab,
                &self.panel_ptr,
                sn,
                nrhs,
                n,
                &shared,
                xk,
                xu,
            );
            Ok(())
        });
        debug_assert!(errors.is_empty(), "solve tasks are infallible");
    }

    /// Permute a block of right-hand sides column by column (`x = P·b`).
    fn permute_rhs(&self, b: &[T], nrhs: usize) -> Vec<T> {
        let n = self.order();
        assert_eq!(b.len(), n * nrhs, "B must be n × nrhs column-major");
        let mut x = Vec::with_capacity(n * nrhs);
        for j in 0..nrhs {
            x.extend(self.perm.permute_vec(&b[j * n..(j + 1) * n]));
        }
        x
    }

    /// Un-permute a block of solutions column by column (`x = Pᵀ·z`).
    fn unpermute_rhs(&self, z: &[T], nrhs: usize) -> Vec<T> {
        let n = self.order();
        let mut x = Vec::with_capacity(n * nrhs);
        for j in 0..nrhs {
            x.extend(self.perm.unpermute_vec(&z[j * n..(j + 1) * n]));
        }
        x
    }

    /// Largest update-row count over all supernodes (gather scratch size).
    #[allow(dead_code)]
    fn max_update_size(&self) -> usize {
        self.symbolic.supernodes.iter().map(|i| i.m()).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use crate::factor::{factor_permuted, CholeskyFactor, FactorOptions, PolicySelector};
    use crate::policy::PolicyKind;
    use mf_gpusim::Machine;
    use mf_matgen::{laplacian_2d, laplacian_3d, rhs_for_solution, Stencil};
    use mf_sparse::symbolic::analyze;
    use mf_sparse::{AmalgamationOptions, OrderingKind, SymCsc};

    fn factor_of(a: &SymCsc<f64>, ordering: OrderingKind) -> CholeskyFactor<f64> {
        let analysis = analyze(a, ordering, Some(&AmalgamationOptions::default())).unwrap();
        let mut machine = Machine::paper_node();
        let (f, _) = factor_permuted(
            &analysis.permuted.0,
            &analysis.symbolic,
            &analysis.perm,
            &mut machine,
            &FactorOptions::default(),
        )
        .unwrap();
        f
    }

    fn solve_with(
        a: &SymCsc<f64>,
        selector: PolicySelector,
        ordering: OrderingKind,
    ) -> (Vec<f64>, Vec<f64>) {
        let analysis = analyze(a, ordering, Some(&AmalgamationOptions::default())).unwrap();
        let mut machine = Machine::paper_node();
        let opts = FactorOptions { selector, ..Default::default() };
        let (f, _) = factor_permuted(
            &analysis.permuted.0,
            &analysis.symbolic,
            &analysis.perm,
            &mut machine,
            &opts,
        )
        .unwrap();
        let (xtrue, b) = rhs_for_solution(a, 42);
        (f.solve(&b), xtrue)
    }

    #[test]
    fn solve_recovers_known_solution_f64() {
        let a = laplacian_2d(13, 11, Stencil::Faces);
        for ordering in [
            OrderingKind::Natural,
            OrderingKind::Rcm,
            OrderingKind::MinimumDegree,
            OrderingKind::NestedDissection,
        ] {
            let (x, xtrue) = solve_with(&a, PolicySelector::Fixed(PolicyKind::P1), ordering);
            let err = x.iter().zip(&xtrue).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
            assert!(err < 1e-8, "{ordering:?}: forward error {err}");
        }
    }

    #[test]
    fn solve_3d_all_policies() {
        let a = laplacian_3d(6, 6, 6, Stencil::Faces);
        for p in PolicyKind::ALL {
            let (x, xtrue) =
                solve_with(&a, PolicySelector::Fixed(p), OrderingKind::NestedDissection);
            let err = x.iter().zip(&xtrue).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
            let tol = if p == PolicyKind::P1 { 1e-8 } else { 1e-2 };
            assert!(err < tol, "{p}: forward error {err}");
        }
    }

    #[test]
    fn residual_small_relative_to_matrix_norm() {
        let a = laplacian_2d(17, 17, Stencil::Full);
        let (x, _) =
            solve_with(&a, PolicySelector::Fixed(PolicyKind::P1), OrderingKind::NestedDissection);
        let (_, b) = rhs_for_solution(&a, 42);
        let r = a.residual(&x, &b);
        let rel = r.iter().map(|v| v.abs()).fold(0.0, f64::max) / a.norm_inf();
        assert!(rel < 1e-12, "relative residual {rel}");
    }

    #[test]
    fn forward_then_backward_equals_solve() {
        let a = laplacian_2d(7, 9, Stencil::Faces);
        let f = factor_of(&a, OrderingKind::NestedDissection);
        let (_, b) = rhs_for_solution(&a, 7);
        let via_solve = f.solve(&b);
        let mut x = f.perm.permute_vec(&b);
        f.forward_in_place(&mut x);
        f.backward_in_place(&mut x);
        let manual = f.perm.unpermute_vec(&x);
        assert_eq!(via_solve, manual);
    }

    /// Multi-RHS B block: column j is `rhs_for_solution(a, seed + j)`.
    fn rhs_block(a: &SymCsc<f64>, nrhs: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let n = a.order();
        let mut xtrue = Vec::with_capacity(n * nrhs);
        let mut b = Vec::with_capacity(n * nrhs);
        for j in 0..nrhs {
            let (xt, bj) = rhs_for_solution(a, seed + j as u64);
            xtrue.extend(xt);
            b.extend(bj);
        }
        (xtrue, b)
    }

    #[test]
    fn solve_many_recovers_all_columns() {
        let a = laplacian_3d(5, 6, 4, Stencil::Faces);
        let f = factor_of(&a, OrderingKind::NestedDissection);
        let n = a.order();
        let nrhs = 7;
        let (xtrue, b) = rhs_block(&a, nrhs, 3);
        let x = f.solve_many(&b, nrhs);
        assert_eq!(x.len(), n * nrhs);
        let err = x.iter().zip(&xtrue).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
        assert!(err < 1e-8, "forward error {err}");
    }

    #[test]
    fn solve_many_is_bitwise_looped_single_rhs() {
        let a = laplacian_2d(19, 14, Stencil::Faces);
        let f = factor_of(&a, OrderingKind::NestedDissection);
        let n = a.order();
        let nrhs = 8;
        let (_, b) = rhs_block(&a, nrhs, 11);
        let batched = f.solve_many(&b, nrhs);
        for j in 0..nrhs {
            let single = f.solve(&b[j * n..(j + 1) * n]);
            for i in 0..n {
                assert_eq!(batched[i + j * n].to_bits(), single[i].to_bits(), "rhs {j} row {i}");
            }
        }
    }

    #[test]
    fn parallel_solve_is_bitwise_serial() {
        let a = laplacian_3d(6, 5, 5, Stencil::Faces);
        let f = factor_of(&a, OrderingKind::NestedDissection);
        let n = a.order();
        let nrhs = 4;
        let (_, b) = rhs_block(&a, nrhs, 21);
        let serial = f.solve_many(&b, nrhs);
        for workers in [1, 2, 4] {
            let par = f.solve_many_parallel(&b, nrhs, workers);
            for i in 0..n * nrhs {
                assert_eq!(serial[i].to_bits(), par[i].to_bits(), "{workers} workers, idx {i}");
            }
        }
    }

    #[test]
    fn streamed_solve_is_bitwise_solve_many_and_charges_host() {
        use crate::ooc::{in_core_bytes, min_feasible_budget, PrecisionLadder};
        use mf_gpusim::TierParams;

        let a = laplacian_3d(7, 7, 7, Stencil::Faces);
        let f = factor_of(&a, OrderingKind::NestedDissection);
        let nrhs = 3;
        let (_, b) = rhs_block(&a, nrhs, 5);
        let reference = f.solve_many(&b, nrhs);

        let full = in_core_bytes(&f.symbolic, 8);
        let tiers = TierParams::default();
        for budget in [full, min_feasible_budget(&f.symbolic, 8).max(full * 3 / 10)] {
            let mut machine = Machine::paper_node();
            let t0 = machine.host.now();
            let (x, st) = f
                .solve_many_streamed(&b, nrhs, budget, PrecisionLadder::Off, &tiers, &mut machine)
                .unwrap();
            assert_eq!(x.len(), reference.len());
            for i in 0..x.len() {
                assert_eq!(x[i].to_bits(), reference[i].to_bits(), "budget {budget}, idx {i}");
            }
            assert!(st.forward_seconds > 0.0 && st.backward_seconds > 0.0);
            assert!(machine.host.now() > t0, "rehearsal must advance the host clock");
            if budget == full {
                assert_eq!(st.loads, 0, "full budget keeps every panel resident");
            }
        }
    }

    #[test]
    fn zero_nrhs_is_a_noop() {
        let a = laplacian_2d(5, 5, Stencil::Faces);
        let f = factor_of(&a, OrderingKind::Natural);
        assert!(f.solve_many(&[], 0).is_empty());
        assert!(f.solve_many_parallel(&[], 0, 2).is_empty());
    }
}
