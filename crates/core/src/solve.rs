//! Supernodal triangular solves with the panel-form factor.
//!
//! Given `P·A·Pᵀ = L·Lᵀ`, solving `A·x = b` proceeds as
//! `y = L⁻¹·(P·b)`, `z = L⁻ᵀ·y`, `x = Pᵀ·z`. The forward pass walks the
//! supernodes in postorder (ascending column order works too since children
//! columns precede parents); the backward pass walks in reverse.

use crate::factor::CholeskyFactor;
use mf_dense::{trsm_left_lower_notrans, trsm_left_lower_trans, Scalar};

impl<T: Scalar> CholeskyFactor<T> {
    /// Solve `A·x = b` (original, unpermuted ordering). `b` is given in the
    /// factor's scalar type.
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        assert_eq!(b.len(), self.order());
        let mut x = self.perm.permute_vec(b);
        self.solve_permuted_in_place(&mut x);
        self.perm.unpermute_vec(&x)
    }

    /// Solve `(P·A·Pᵀ)·x = b` in place on a permuted right-hand side.
    pub fn solve_permuted_in_place(&self, x: &mut [T]) {
        assert_eq!(x.len(), self.order());
        self.forward_in_place(x);
        self.backward_in_place(x);
    }

    /// Forward substitution `x ← L⁻¹·x` (permuted ordering).
    pub fn forward_in_place(&self, x: &mut [T]) {
        for &sn in &self.symbolic.postorder {
            let info = &self.symbolic.supernodes[sn];
            let (k, m) = (info.k(), info.m());
            let s = info.front_size();
            let panel = &self.panels[sn];
            let (c0, c1) = (info.col_start, info.col_end);
            // Diagonal block solve: x[c0..c1] ← L₁⁻¹ x[c0..c1].
            trsm_left_lower_notrans(k, 1, panel, s, &mut x[c0..c1], k);
            // Update rows: x[r] −= Σ_j L₂[i,j]·x[c0+j].
            for j in 0..k {
                let xj = x[c0 + j];
                if xj == T::ZERO {
                    continue;
                }
                let col = &panel[j * s + k..j * s + s];
                for (i, &lij) in col.iter().enumerate() {
                    let r = info.rows[k + i];
                    x[r] -= lij * xj;
                }
                debug_assert_eq!(col.len(), m);
            }
        }
    }

    /// Backward substitution `x ← L⁻ᵀ·x` (permuted ordering).
    pub fn backward_in_place(&self, x: &mut [T]) {
        for &sn in self.symbolic.postorder.iter().rev() {
            let info = &self.symbolic.supernodes[sn];
            let k = info.k();
            let s = info.front_size();
            let panel = &self.panels[sn];
            let (c0, c1) = (info.col_start, info.col_end);
            // x[c0..c1] −= L₂ᵀ·x[update rows].
            for j in 0..k {
                let col = &panel[j * s + k..j * s + s];
                let mut dot = T::ZERO;
                for (i, &lij) in col.iter().enumerate() {
                    dot += lij * x[info.rows[k + i]];
                }
                x[c0 + j] -= dot;
            }
            // Diagonal block: x[c0..c1] ← L₁⁻ᵀ x[c0..c1].
            trsm_left_lower_trans(k, 1, panel, s, &mut x[c0..c1], k);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::factor::{factor_permuted, FactorOptions, PolicySelector};
    use crate::policy::PolicyKind;
    use mf_gpusim::Machine;
    use mf_matgen::{laplacian_2d, laplacian_3d, rhs_for_solution, Stencil};
    use mf_sparse::symbolic::analyze;
    use mf_sparse::{AmalgamationOptions, OrderingKind, SymCsc};

    fn solve_with(a: &SymCsc<f64>, selector: PolicySelector, ordering: OrderingKind) -> (Vec<f64>, Vec<f64>) {
        let analysis = analyze(a, ordering, Some(&AmalgamationOptions::default()));
        let mut machine = Machine::paper_node();
        let opts = FactorOptions { selector, ..Default::default() };
        let (f, _) = factor_permuted(
            &analysis.permuted.0,
            &analysis.symbolic,
            &analysis.perm,
            &mut machine,
            &opts,
        )
        .unwrap();
        let (xtrue, b) = rhs_for_solution(a, 42);
        (f.solve(&b), xtrue)
    }

    #[test]
    fn solve_recovers_known_solution_f64() {
        let a = laplacian_2d(13, 11, Stencil::Faces);
        for ordering in [OrderingKind::Natural, OrderingKind::Rcm, OrderingKind::MinimumDegree, OrderingKind::NestedDissection] {
            let (x, xtrue) = solve_with(&a, PolicySelector::Fixed(PolicyKind::P1), ordering);
            let err = x.iter().zip(&xtrue).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
            assert!(err < 1e-8, "{ordering:?}: forward error {err}");
        }
    }

    #[test]
    fn solve_3d_all_policies() {
        let a = laplacian_3d(6, 6, 6, Stencil::Faces);
        for p in PolicyKind::ALL {
            let (x, xtrue) = solve_with(&a, PolicySelector::Fixed(p), OrderingKind::NestedDissection);
            let err = x.iter().zip(&xtrue).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
            let tol = if p == PolicyKind::P1 { 1e-8 } else { 1e-2 };
            assert!(err < tol, "{p}: forward error {err}");
        }
    }

    #[test]
    fn residual_small_relative_to_matrix_norm() {
        let a = laplacian_2d(17, 17, Stencil::Full);
        let (x, _) = solve_with(&a, PolicySelector::Fixed(PolicyKind::P1), OrderingKind::NestedDissection);
        let (_, b) = rhs_for_solution(&a, 42);
        let r = a.residual(&x, &b);
        let rel = r.iter().map(|v| v.abs()).fold(0.0, f64::max) / a.norm_inf();
        assert!(rel < 1e-12, "relative residual {rel}");
    }

    #[test]
    fn forward_then_backward_equals_solve() {
        let a = laplacian_2d(7, 9, Stencil::Faces);
        let analysis = analyze(&a, OrderingKind::NestedDissection, None);
        let mut machine = Machine::paper_node();
        let (f, _) = factor_permuted(
            &analysis.permuted.0,
            &analysis.symbolic,
            &analysis.perm,
            &mut machine,
            &FactorOptions::default(),
        )
        .unwrap();
        let (_, b) = rhs_for_solution(&a, 7);
        let via_solve = f.solve(&b);
        let mut x = f.perm.permute_vec(&b);
        f.forward_in_place(&mut x);
        f.backward_in_place(&mut x);
        let manual = f.perm.unpermute_vec(&x);
        assert_eq!(via_solve, manual);
    }
}
