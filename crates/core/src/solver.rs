//! High-level solver API with mixed-precision iterative refinement.
//!
//! The paper factors in single precision on the GPU and notes that "the lost
//! accuracy could be readily regained by one or two steps of iterative
//! refinement using double precision sparse matrix-vector multiplication"
//! (§III-B). [`SpdSolver`] packages exactly that workflow: analysis →
//! (possibly f32, possibly GPU-accelerated) factorization → triangular
//! solves → f64 refinement against the original matrix.

use crate::factor::{factor_permuted, CholeskyFactor, FactorError, FactorOptions};
use crate::stats::FactorStats;
use mf_gpusim::Machine;
use mf_sparse::symbolic::{analyze, Analysis};
use mf_sparse::{AmalgamationOptions, OrderingKind, SymCsc};

/// Which precision the factor is stored/computed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Full double precision (CPU-only policies give f64 accuracy).
    F64,
    /// Single precision throughout — the paper's GPU configuration.
    #[default]
    F32,
}

/// Options for [`SpdSolver::new`].
#[derive(Debug, Clone, Default)]
pub struct SolverOptions {
    /// Fill-reducing ordering.
    pub ordering: OrderingKind,
    /// Supernode amalgamation (None = fundamental supernodes only).
    pub amalgamation: Option<AmalgamationOptions>,
    /// Numeric factorization options (policy selector etc.).
    pub factor: FactorOptions,
    /// Factor precision.
    pub precision: Precision,
}

/// Result of an iterative-refinement solve.
#[derive(Debug, Clone)]
pub struct RefinedSolution {
    /// The solution in the original ordering.
    pub x: Vec<f64>,
    /// Relative residual ‖b − A·x‖∞ / (‖A‖∞·‖x‖∞) after each step
    /// (index 0 = before any refinement).
    pub residual_history: Vec<f64>,
    /// Refinement steps taken.
    pub iterations: usize,
}

enum FactorHolder {
    F64(CholeskyFactor<f64>),
    F32(CholeskyFactor<f32>),
}

/// A factored SPD system ready for repeated solves.
pub struct SpdSolver {
    a: SymCsc<f64>,
    factor: FactorHolder,
    stats: FactorStats,
    analysis_symbolic_nnz: usize,
}

impl SpdSolver {
    /// Analyze and factor `a` on `machine` with the given options.
    pub fn new(
        a: &SymCsc<f64>,
        machine: &mut Machine,
        opts: &SolverOptions,
    ) -> Result<Self, FactorError> {
        let analysis = analyze(a, opts.ordering, opts.amalgamation.as_ref());
        Self::from_analysis(a, &analysis, machine, opts)
    }

    /// Factor with a precomputed analysis (reuse across repeated
    /// factorizations with the same pattern).
    pub fn from_analysis(
        a: &SymCsc<f64>,
        analysis: &Analysis,
        machine: &mut Machine,
        opts: &SolverOptions,
    ) -> Result<Self, FactorError> {
        let nnz = analysis.symbolic.factor_nnz();
        let factor = match opts.precision {
            Precision::F64 => {
                let (f, stats) = factor_permuted(
                    &analysis.permuted.0,
                    &analysis.symbolic,
                    &analysis.perm,
                    machine,
                    &opts.factor,
                )?;
                (FactorHolder::F64(f), stats)
            }
            Precision::F32 => {
                let a32: SymCsc<f32> = analysis.permuted.0.cast();
                let (f, stats) = factor_permuted(
                    &a32,
                    &analysis.symbolic,
                    &analysis.perm,
                    machine,
                    &opts.factor,
                )?;
                (FactorHolder::F32(f), stats)
            }
        };
        Ok(SpdSolver {
            a: a.clone(),
            factor: factor.0,
            stats: factor.1,
            analysis_symbolic_nnz: nnz,
        })
    }

    /// Per-call statistics of the factorization run.
    pub fn stats(&self) -> &FactorStats {
        &self.stats
    }

    /// Simulated factorization time in seconds.
    pub fn factor_time(&self) -> f64 {
        self.stats.total_time
    }

    /// Nonzeros of the factor (supernodal storage).
    pub fn factor_nnz(&self) -> usize {
        self.analysis_symbolic_nnz
    }

    /// One direct solve (no refinement); accuracy is limited by the factor
    /// precision.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        match &self.factor {
            FactorHolder::F64(f) => f.solve(b),
            FactorHolder::F32(f) => {
                let b32: Vec<f32> = b.iter().map(|&v| v as f32).collect();
                f.solve(&b32).into_iter().map(|v| v as f64).collect()
            }
        }
    }

    /// Solve with iterative refinement: f64 residuals against the original
    /// matrix, corrections through the (possibly f32) factor. Stops when the
    /// relative residual drops below `tol` or after `max_iters` corrections.
    pub fn solve_refined(&self, b: &[f64], max_iters: usize, tol: f64) -> RefinedSolution {
        let norm_a = self.a.norm_inf();
        let mut x = self.solve(b);
        let mut history = Vec::with_capacity(max_iters + 1);
        let rel = |x: &[f64], r: &[f64]| {
            let rn = r.iter().map(|v| v.abs()).fold(0.0, f64::max);
            let xn = x.iter().map(|v| v.abs()).fold(0.0, f64::max).max(1e-300);
            rn / (norm_a * xn)
        };
        let mut r = self.a.residual(&x, b);
        history.push(rel(&x, &r));
        let mut iters = 0;
        while iters < max_iters && history[iters] > tol {
            let dx = self.solve(&r);
            for (xi, di) in x.iter_mut().zip(&dx) {
                *xi += di;
            }
            r = self.a.residual(&x, b);
            iters += 1;
            history.push(rel(&x, &r));
            // Diverging? stop.
            if history[iters] > history[iters - 1] * 0.9 && iters >= 2 {
                break;
            }
        }
        RefinedSolution { x, residual_history: history, iterations: iters }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factor::PolicySelector;
    use crate::policy::{BaselineThresholds, PolicyKind};
    use mf_matgen::{elasticity_3d, laplacian_3d, rhs_for_solution, Stencil};

    fn solver_opts(p: PolicyKind, prec: Precision) -> SolverOptions {
        SolverOptions {
            ordering: OrderingKind::NestedDissection,
            amalgamation: Some(AmalgamationOptions::default()),
            factor: FactorOptions { selector: PolicySelector::Fixed(p), ..Default::default() },
            precision: prec,
        }
    }

    #[test]
    fn f64_solve_is_accurate_without_refinement() {
        let a = laplacian_3d(6, 5, 4, Stencil::Faces);
        let mut machine = Machine::paper_node();
        let s =
            SpdSolver::new(&a, &mut machine, &solver_opts(PolicyKind::P1, Precision::F64)).unwrap();
        let (xtrue, b) = rhs_for_solution(&a, 1);
        let x = s.solve(&b);
        let err = x.iter().zip(&xtrue).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
        assert!(err < 1e-9, "forward error {err}");
    }

    #[test]
    fn f32_factor_loses_digits_refinement_recovers_them() {
        // The paper's §III-B claim, reproduced with real f32 arithmetic.
        let a = laplacian_3d(7, 6, 5, Stencil::Full);
        let mut machine = Machine::paper_node();
        let s =
            SpdSolver::new(&a, &mut machine, &solver_opts(PolicyKind::P3, Precision::F32)).unwrap();
        let (_, b) = rhs_for_solution(&a, 3);
        let refined = s.solve_refined(&b, 5, 1e-14);
        let first = refined.residual_history[0];
        let last = *refined.residual_history.last().unwrap();
        assert!(first > 1e-9, "f32 factor should start with a visible residual: {first:e}");
        assert!(last < 1e-13, "refinement must reach near-f64 accuracy: {last:e}");
        assert!(
            refined.iterations <= 3,
            "well-conditioned system should refine in 1–3 steps, took {}",
            refined.iterations
        );
    }

    #[test]
    fn refinement_monotone_until_convergence() {
        let a = elasticity_3d(4, 4, 3);
        let mut machine = Machine::paper_node();
        let s =
            SpdSolver::new(&a, &mut machine, &solver_opts(PolicyKind::P4, Precision::F32)).unwrap();
        let (_, b) = rhs_for_solution(&a, 9);
        let refined = s.solve_refined(&b, 6, 1e-15);
        for w in refined.residual_history.windows(2) {
            assert!(
                w[1] < w[0] * 1.5,
                "residual should not blow up: {:?}",
                refined.residual_history
            );
        }
    }

    #[test]
    fn hybrid_selector_end_to_end() {
        let a = laplacian_3d(7, 7, 7, Stencil::Faces);
        let mut machine = Machine::paper_node();
        let opts = SolverOptions {
            ordering: OrderingKind::NestedDissection,
            amalgamation: Some(AmalgamationOptions::default()),
            factor: FactorOptions {
                selector: PolicySelector::Baseline(BaselineThresholds::default()),
                record_stats: true,
                ..Default::default()
            },
            precision: Precision::F32,
        };
        let s = SpdSolver::new(&a, &mut machine, &opts).unwrap();
        let (_, b) = rhs_for_solution(&a, 4);
        let refined = s.solve_refined(&b, 4, 1e-13);
        assert!(*refined.residual_history.last().unwrap() < 1e-12);
        assert!(s.factor_time() > 0.0);
        assert!(s.factor_nnz() > a.nnz_lower());
    }

    #[test]
    fn repeated_solves_reuse_factor() {
        let a = laplacian_3d(5, 5, 5, Stencil::Faces);
        let mut machine = Machine::paper_node();
        let s =
            SpdSolver::new(&a, &mut machine, &solver_opts(PolicyKind::P1, Precision::F64)).unwrap();
        for seed in 0..3 {
            let (xtrue, b) = rhs_for_solution(&a, seed);
            let x = s.solve(&b);
            let err = x.iter().zip(&xtrue).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
            assert!(err < 1e-9);
        }
    }
}
