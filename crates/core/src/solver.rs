//! High-level solver API with mixed-precision iterative refinement.
//!
//! The paper factors in single precision on the GPU and notes that "the lost
//! accuracy could be readily regained by one or two steps of iterative
//! refinement using double precision sparse matrix-vector multiplication"
//! (§III-B). [`SpdSolver`] packages exactly that workflow: analysis →
//! (possibly f32, possibly GPU-accelerated) factorization → triangular
//! solves → f64 refinement against the original matrix.
//!
//! The solver is *refactorizable*: it caches the symbolic analysis
//! (ordering, elimination tree, supernodes, postorder) so a new matrix with
//! the same sparsity pattern re-runs only the numeric factorization
//! ([`SpdSolver::refactor`]) — the amortization lever for time-stepping and
//! Newton-type workloads where the pattern is fixed and values change.
//!
//! ## Refinement convergence contract
//!
//! [`SpdSolver::solve_refined`] / [`SpdSolver::solve_refined_many`] iterate
//! `x ← x + L⁻ᵀL⁻¹(b − A·x)` with f64 residuals and stop, in priority
//! order, when (1) the relative residual is ≤ `tol` (**converged**), (2)
//! the correction budget `max_iters` is exhausted, or (3) after at least two
//! corrections the residual improved by less than 10% (**stagnated** — the
//! factor's precision floor has been reached). The outcome is reported
//! explicitly in [`RefinedSolution::converged`] / [`RefinedSolution::stop`];
//! callers must not infer success from `residual_history.last()`, which can
//! be a perfectly finite stagnation plateau.

use crate::factor::{factor_permuted, CholeskyFactor, FactorError, FactorOptions};
use crate::stats::FactorStats;
use mf_gpusim::Machine;
use mf_sparse::symbolic::{analyze, analyze_parallel, Analysis, SymCscF64Holder};
use mf_sparse::{AmalgamationOptions, OrderingKind, SymCsc};

/// Which precision the factor is stored/computed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Full double precision (CPU-only policies give f64 accuracy).
    F64,
    /// Single precision throughout — the paper's GPU configuration.
    #[default]
    F32,
}

/// Options for [`SpdSolver::new`].
#[derive(Debug, Clone, Default)]
pub struct SolverOptions {
    /// Fill-reducing ordering.
    pub ordering: OrderingKind,
    /// Supernode amalgamation (None = fundamental supernodes only).
    pub amalgamation: Option<AmalgamationOptions>,
    /// Numeric factorization options (policy selector etc.).
    pub factor: FactorOptions,
    /// Factor precision.
    pub precision: Precision,
    /// Worker threads for the symbolic analysis. `0` or `1` runs the serial
    /// pipeline; `> 1` runs [`analyze_parallel`] on the mf-runtime pool,
    /// which is bitwise identical to the serial analysis at every worker
    /// count.
    pub analysis_workers: usize,
}

/// Why a refinement loop stopped (see the module-level convergence
/// contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefineStop {
    /// Relative residual reached `tol`.
    Converged,
    /// The `max_iters` correction budget ran out first.
    MaxIterations,
    /// Improvement fell below 10% between consecutive corrections — the
    /// factor-precision floor.
    Stagnated,
}

/// Result of an iterative-refinement solve.
#[derive(Debug, Clone)]
pub struct RefinedSolution {
    /// The solution in the original ordering.
    pub x: Vec<f64>,
    /// Relative residual ‖b − A·x‖∞ / (‖A‖∞·‖x‖∞) after each step
    /// (index 0 = before any refinement; see [`SpdSolver::solve_refined`]
    /// for the denominator fallbacks).
    pub residual_history: Vec<f64>,
    /// Refinement steps taken.
    pub iterations: usize,
    /// Whether the relative residual reached `tol`.
    pub converged: bool,
    /// Why the loop stopped.
    pub stop: RefineStop,
}

/// Per-column refinement outcome of [`SpdSolver::solve_refined_many`].
#[derive(Debug, Clone)]
pub struct RefineInfo {
    /// Relative residual after each step (index 0 = before refinement).
    pub residual_history: Vec<f64>,
    /// Corrections applied to this column.
    pub iterations: usize,
    /// Whether this column reached `tol`.
    pub converged: bool,
    /// Why this column stopped.
    pub stop: RefineStop,
}

/// Result of a blocked multi-RHS refinement solve.
#[derive(Debug, Clone)]
pub struct RefinedManySolution {
    /// Solutions in the original ordering, `n × nrhs` column-major.
    pub x: Vec<f64>,
    /// Per-column convergence report.
    pub columns: Vec<RefineInfo>,
}

impl RefinedManySolution {
    /// Whether every column converged.
    pub fn all_converged(&self) -> bool {
        self.columns.iter().all(|c| c.converged)
    }
}

enum FactorHolder {
    F64(CholeskyFactor<f64>),
    F32(CholeskyFactor<f32>),
}

/// Rejection of a malformed solve request, reported **before** any numeric
/// work touches the factor. A long-lived service must degrade gracefully on
/// bad input — a panic would unwind a worker thread — so every
/// [`SpdSolver`] solve entry point validates its right-hand sides and
/// returns one of these instead of asserting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveError {
    /// `b.len()` is not `n × nrhs`.
    DimensionMismatch {
        /// Required length (`n × nrhs`).
        expected: usize,
        /// Length actually supplied.
        got: usize,
    },
    /// `nrhs == 0`: an empty request is a caller bug, not a solve.
    ZeroRhs,
    /// A right-hand-side entry is NaN or infinite; the triangular sweeps
    /// would silently propagate it through every dependent unknown.
    NonFinite {
        /// Column (RHS index) of the offending entry.
        column: usize,
        /// Row of the offending entry.
        row: usize,
    },
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::DimensionMismatch { expected, got } => {
                write!(f, "right-hand side has {got} entries, expected {expected}")
            }
            SolveError::ZeroRhs => write!(f, "nrhs must be at least 1"),
            SolveError::NonFinite { column, row } => {
                write!(f, "non-finite right-hand-side entry at row {row}, column {column}")
            }
        }
    }
}

impl std::error::Error for SolveError {}

impl SolveError {
    /// Validate an `n × nrhs` column-major right-hand-side block — exactly
    /// the check every [`SpdSolver`] solve entry point performs. Public so a
    /// serving layer can reject malformed requests at admission time, before
    /// they consume a queue slot.
    pub fn validate(n: usize, b: &[f64], nrhs: usize) -> Result<(), SolveError> {
        if nrhs == 0 {
            return Err(SolveError::ZeroRhs);
        }
        let expected = n * nrhs;
        if b.len() != expected {
            return Err(SolveError::DimensionMismatch { expected, got: b.len() });
        }
        if let Some(bad) = b.iter().position(|v| !v.is_finite()) {
            return Err(SolveError::NonFinite { column: bad / n, row: bad % n });
        }
        Ok(())
    }
}

/// Validate an `n × nrhs` column-major right-hand-side block.
fn validate_rhs(n: usize, b: &[f64], nrhs: usize) -> Result<(), SolveError> {
    SolveError::validate(n, b, nrhs)
}

/// The resident-bytes estimate a serving layer should charge for keeping a
/// solver with this analysis alive at the given precision: factor slab +
/// refactor update-stack peak (both at the factor precision) + the two
/// pattern copies a [`SpdSolver`] retains (original and permuted matrix).
/// [`SpdSolver::memory_bytes`] reports the same figure for a built solver;
/// this form lets admission control run **before** the numeric
/// factorization spends the memory.
pub fn estimated_memory_bytes(analysis: &Analysis, precision: Precision) -> usize {
    estimated_memory_bytes_budgeted(analysis, precision, None)
}

/// [`estimated_memory_bytes`] for a session that factors under a memory
/// budget ([`FactorOptions::memory_budget`]): the factor slab + update
/// stack term is capped at the budget — a budgeted run keeps at most
/// `budget` bytes of numeric storage tier-resident, spilling the rest —
/// while the two retained pattern copies are charged in full (they are
/// never spilled). Admission control should reserve this figure, **not**
/// the symbolic bound, for budgeted sessions; whether the budget is
/// feasible at all is a separate check
/// ([`crate::ooc::min_feasible_budget`]).
pub fn estimated_memory_bytes_budgeted(
    analysis: &Analysis,
    precision: Precision,
    memory_budget: Option<usize>,
) -> usize {
    let scalar = match precision {
        Precision::F64 => std::mem::size_of::<f64>(),
        Precision::F32 => std::mem::size_of::<f32>(),
    };
    let idx = std::mem::size_of::<usize>();
    let sym = &analysis.symbolic;
    let pa = &analysis.permuted.0;
    let factor_slab = sym.factor_slab_len() * scalar;
    let update_stack = sym.update_stack_peak() * scalar;
    let mut numeric = factor_slab + update_stack;
    if let Some(budget) = memory_budget {
        numeric = numeric.min(budget);
    }
    let pattern = pa.nnz_lower() * (idx + std::mem::size_of::<f64>()) + (pa.order() + 1) * idx;
    numeric + 2 * pattern
}

/// Failure of [`SpdSolver::refactor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefactorError {
    /// The new matrix's sparsity pattern differs from the analyzed one; the
    /// cached symbolic factorization cannot be reused.
    PatternMismatch,
    /// The numeric factorization itself failed.
    Factor(FactorError),
}

impl std::fmt::Display for RefactorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RefactorError::PatternMismatch => {
                write!(f, "matrix pattern differs from the cached symbolic analysis")
            }
            RefactorError::Factor(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RefactorError {}

/// A factored SPD system ready for repeated solves and same-pattern
/// refactorization.
pub struct SpdSolver {
    a: SymCsc<f64>,
    factor: FactorHolder,
    stats: FactorStats,
    analysis: Analysis,
    opts: SolverOptions,
}

impl SpdSolver {
    /// Analyze and factor `a` on `machine` with the given options.
    pub fn new(
        a: &SymCsc<f64>,
        machine: &mut Machine,
        opts: &SolverOptions,
    ) -> Result<Self, FactorError> {
        let analysis = if opts.analysis_workers > 1 {
            analyze_parallel(a, opts.ordering, opts.amalgamation.as_ref(), opts.analysis_workers)
        } else {
            analyze(a, opts.ordering, opts.amalgamation.as_ref())
        }?;
        Self::from_analysis(a, &analysis, machine, opts)
    }

    /// Factor with a precomputed analysis (reuse across repeated
    /// factorizations with the same pattern).
    pub fn from_analysis(
        a: &SymCsc<f64>,
        analysis: &Analysis,
        machine: &mut Machine,
        opts: &SolverOptions,
    ) -> Result<Self, FactorError> {
        let (factor, stats) = factor_holder(analysis, machine, opts)?;
        Ok(SpdSolver {
            a: a.clone(),
            factor,
            stats,
            analysis: analysis.clone(),
            opts: opts.clone(),
        })
    }

    /// Re-run only the numeric factorization for a matrix with the **same
    /// sparsity pattern** as the one this solver was built from, reusing the
    /// cached ordering/supernodes/postorder. Much cheaper than
    /// [`SpdSolver::new`] and produces exactly the factor a fresh solver
    /// would (same permutation, same symbolic structure, same bits).
    ///
    /// On error the solver is left unchanged (the old factor stays valid).
    pub fn refactor(
        &mut self,
        a: &SymCsc<f64>,
        machine: &mut Machine,
    ) -> Result<(), RefactorError> {
        if !a.same_pattern(&self.a) {
            return Err(RefactorError::PatternMismatch);
        }
        let mut analysis = self.analysis.clone();
        analysis.permuted = SymCscF64Holder(analysis.perm.permute_sym(a));
        let (factor, stats) =
            factor_holder(&analysis, machine, &self.opts).map_err(RefactorError::Factor)?;
        self.a = a.clone();
        self.factor = factor;
        self.stats = stats;
        self.analysis = analysis;
        Ok(())
    }

    /// The cached analysis (ordering, supernodes, postorder).
    pub fn analysis(&self) -> &Analysis {
        &self.analysis
    }

    /// Per-call statistics of the factorization run.
    pub fn stats(&self) -> &FactorStats {
        &self.stats
    }

    /// Simulated factorization time in seconds.
    pub fn factor_time(&self) -> f64 {
        self.stats.total_time
    }

    /// Nonzeros of the factor (supernodal storage).
    pub fn factor_nnz(&self) -> usize {
        self.analysis.symbolic.factor_nnz()
    }

    /// Resident working-set estimate for this solver in bytes: the factor
    /// slab at the configured precision, the update-stack peak a refactor
    /// would need (the symbolic working-storage bound), and the two pattern
    /// copies it retains (the original matrix and the permuted copy inside
    /// the cached analysis). This is the quantity a serving layer should
    /// charge a tenant for keeping the session resident and refactorable.
    ///
    /// A solver factoring under [`FactorOptions::memory_budget`] charges the
    /// budget cap instead of the full symbolic bound for its numeric
    /// storage — see [`estimated_memory_bytes_budgeted`].
    pub fn memory_bytes(&self) -> usize {
        estimated_memory_bytes_budgeted(
            &self.analysis,
            self.opts.precision,
            self.opts.factor.memory_budget,
        )
    }

    /// One direct solve (no refinement); accuracy is limited by the factor
    /// precision.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SolveError> {
        self.solve_many(b, 1)
    }

    /// Direct solve of `nrhs` right-hand sides (`b` is `n × nrhs`
    /// column-major). Column `j` is bitwise identical to [`SpdSolver::solve`]
    /// on column `j` alone.
    pub fn solve_many(&self, b: &[f64], nrhs: usize) -> Result<Vec<f64>, SolveError> {
        validate_rhs(self.a.order(), b, nrhs)?;
        Ok(self.solve_many_raw(b, nrhs))
    }

    /// [`SpdSolver::solve_many`] with the triangular sweeps scheduled across
    /// `workers` threads on the elimination tree; bitwise identical to the
    /// serial path at every worker count.
    pub fn solve_many_parallel(
        &self,
        b: &[f64],
        nrhs: usize,
        workers: usize,
    ) -> Result<Vec<f64>, SolveError> {
        validate_rhs(self.a.order(), b, nrhs)?;
        Ok(match &self.factor {
            FactorHolder::F64(f) => f.solve_many_parallel(b, nrhs, workers),
            FactorHolder::F32(f) => {
                let b32: Vec<f32> = b.iter().map(|&v| v as f32).collect();
                f.solve_many_parallel(&b32, nrhs, workers).into_iter().map(|v| v as f64).collect()
            }
        })
    }

    /// The validated solve body; also used internally for refinement
    /// corrections, whose residual blocks are produced by this solver and
    /// bypass request validation.
    fn solve_many_raw(&self, b: &[f64], nrhs: usize) -> Vec<f64> {
        match &self.factor {
            FactorHolder::F64(f) => f.solve_many(b, nrhs),
            FactorHolder::F32(f) => {
                let b32: Vec<f32> = b.iter().map(|&v| v as f32).collect();
                f.solve_many(&b32, nrhs).into_iter().map(|v| v as f64).collect()
            }
        }
    }

    /// Solve with iterative refinement: f64 residuals against the original
    /// matrix, corrections through the (possibly f32) factor. Stops per the
    /// module-level convergence contract.
    ///
    /// The relative residual is `‖b − A·x‖∞ / (‖A‖∞·‖x‖∞)`. When that
    /// denominator underflows or vanishes (e.g. `b = 0` so `x = 0`), it
    /// falls back to `‖b‖∞`, and failing that reports the absolute residual
    /// — the history is finite for every input, never NaN.
    pub fn solve_refined(
        &self,
        b: &[f64],
        max_iters: usize,
        tol: f64,
    ) -> Result<RefinedSolution, SolveError> {
        let mut many = self.solve_refined_many(b, 1, max_iters, tol)?;
        let info = many.columns.pop().expect("one column");
        Ok(RefinedSolution {
            x: many.x,
            residual_history: info.residual_history,
            iterations: info.iterations,
            converged: info.converged,
            stop: info.stop,
        })
    }

    /// Blocked iterative refinement over `nrhs` right-hand sides (`b` is
    /// `n × nrhs` column-major).
    ///
    /// Each round computes f64 residuals for every still-active column,
    /// compacts them into one block, and runs a single batched correction
    /// solve — the factor is walked once per round instead of once per
    /// column. Columns stop independently (per the module-level contract);
    /// because the whole solve path is RHS-count-invariant, every column's
    /// trajectory is bitwise identical to a [`SpdSolver::solve_refined`]
    /// call on that column alone.
    pub fn solve_refined_many(
        &self,
        b: &[f64],
        nrhs: usize,
        max_iters: usize,
        tol: f64,
    ) -> Result<RefinedManySolution, SolveError> {
        let n = self.a.order();
        validate_rhs(n, b, nrhs)?;
        let norm_a = self.a.norm_inf();

        let mut x = self.solve_many_raw(b, nrhs);
        let mut cols: Vec<ColState> = (0..nrhs)
            .map(|j| {
                let bj = &b[j * n..(j + 1) * n];
                let norm_b = bj.iter().map(|v| v.abs()).fold(0.0, f64::max);
                let r = self.a.residual(&x[j * n..(j + 1) * n], bj);
                let rel0 = rel_residual(norm_a, norm_b, &x[j * n..(j + 1) * n], &r);
                ColState { history: vec![rel0], norm_b, r, stop: None }
            })
            .collect();

        loop {
            // Decide, per column, whether another correction is warranted —
            // priority: converged > budget exhausted > stagnated.
            for c in cols.iter_mut().filter(|c| c.stop.is_none()) {
                let iters = c.history.len() - 1;
                let cur = c.history[iters];
                if cur <= tol {
                    c.stop = Some(RefineStop::Converged);
                } else if iters == max_iters {
                    c.stop = Some(RefineStop::MaxIterations);
                } else if iters >= 2 && cur > c.history[iters - 1] * 0.9 {
                    c.stop = Some(RefineStop::Stagnated);
                }
            }
            let active: Vec<usize> = (0..nrhs).filter(|&j| cols[j].stop.is_none()).collect();
            if active.is_empty() {
                break;
            }

            // One batched correction solve over the compacted residuals.
            let mut rblock = Vec::with_capacity(active.len() * n);
            for &j in &active {
                rblock.extend_from_slice(&cols[j].r);
            }
            let dx = self.solve_many_raw(&rblock, active.len());
            for (slot, &j) in active.iter().enumerate() {
                let xj = &mut x[j * n..(j + 1) * n];
                for (xi, di) in xj.iter_mut().zip(&dx[slot * n..(slot + 1) * n]) {
                    *xi += di;
                }
                let c = &mut cols[j];
                c.r = self.a.residual(&x[j * n..(j + 1) * n], &b[j * n..(j + 1) * n]);
                let rel = rel_residual(norm_a, c.norm_b, &x[j * n..(j + 1) * n], &c.r);
                c.history.push(rel);
            }
        }

        let columns = cols
            .into_iter()
            .map(|c| {
                let stop = c.stop.expect("every column decided");
                RefineInfo {
                    iterations: c.history.len() - 1,
                    residual_history: c.history,
                    converged: stop == RefineStop::Converged,
                    stop,
                }
            })
            .collect();
        Ok(RefinedManySolution { x, columns })
    }
}

/// Per-column refinement bookkeeping.
struct ColState {
    history: Vec<f64>,
    norm_b: f64,
    r: Vec<f64>,
    stop: Option<RefineStop>,
}

/// `‖r‖∞ / (‖A‖∞·‖x‖∞)` with the denominator guarded: a vanishing or
/// subnormal scale falls back to `‖b‖∞`, then to the absolute residual, so
/// the result is finite (never NaN) for every input including `b = 0`.
fn rel_residual(norm_a: f64, norm_b: f64, x: &[f64], r: &[f64]) -> f64 {
    let rn = r.iter().map(|v| v.abs()).fold(0.0, f64::max);
    let xn = x.iter().map(|v| v.abs()).fold(0.0, f64::max);
    let denom = norm_a * xn;
    if denom.is_normal() {
        rn / denom
    } else if norm_b.is_normal() {
        rn / norm_b
    } else {
        rn
    }
}

/// Run the numeric factorization at the precision the options ask for.
fn factor_holder(
    analysis: &Analysis,
    machine: &mut Machine,
    opts: &SolverOptions,
) -> Result<(FactorHolder, FactorStats), FactorError> {
    match opts.precision {
        Precision::F64 => {
            let (f, stats) = factor_permuted(
                &analysis.permuted.0,
                &analysis.symbolic,
                &analysis.perm,
                machine,
                &opts.factor,
            )?;
            Ok((FactorHolder::F64(f), stats))
        }
        Precision::F32 => {
            let a32: SymCsc<f32> = analysis.permuted.0.cast();
            let (f, stats) =
                factor_permuted(&a32, &analysis.symbolic, &analysis.perm, machine, &opts.factor)?;
            Ok((FactorHolder::F32(f), stats))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factor::PolicySelector;
    use crate::policy::{BaselineThresholds, PolicyKind};
    use mf_matgen::{elasticity_3d, laplacian_3d, rhs_for_solution, Stencil};

    fn solver_opts(p: PolicyKind, prec: Precision) -> SolverOptions {
        SolverOptions {
            ordering: OrderingKind::NestedDissection,
            amalgamation: Some(AmalgamationOptions::default()),
            factor: FactorOptions { selector: PolicySelector::Fixed(p), ..Default::default() },
            precision: prec,
            analysis_workers: 0,
        }
    }

    #[test]
    fn f64_solve_is_accurate_without_refinement() {
        let a = laplacian_3d(6, 5, 4, Stencil::Faces);
        let mut machine = Machine::paper_node();
        let s =
            SpdSolver::new(&a, &mut machine, &solver_opts(PolicyKind::P1, Precision::F64)).unwrap();
        let (xtrue, b) = rhs_for_solution(&a, 1);
        let x = s.solve(&b).unwrap();
        let err = x.iter().zip(&xtrue).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
        assert!(err < 1e-9, "forward error {err}");
    }

    #[test]
    fn f32_factor_loses_digits_refinement_recovers_them() {
        // The paper's §III-B claim, reproduced with real f32 arithmetic.
        let a = laplacian_3d(7, 6, 5, Stencil::Full);
        let mut machine = Machine::paper_node();
        let s =
            SpdSolver::new(&a, &mut machine, &solver_opts(PolicyKind::P3, Precision::F32)).unwrap();
        let (_, b) = rhs_for_solution(&a, 3);
        let refined = s.solve_refined(&b, 5, 1e-14).unwrap();
        let first = refined.residual_history[0];
        let last = *refined.residual_history.last().unwrap();
        assert!(first > 1e-9, "f32 factor should start with a visible residual: {first:e}");
        assert!(last < 1e-13, "refinement must reach near-f64 accuracy: {last:e}");
        assert!(
            refined.iterations <= 3,
            "well-conditioned system should refine in 1–3 steps, took {}",
            refined.iterations
        );
        assert!(refined.converged, "must report convergence explicitly");
        assert_eq!(refined.stop, RefineStop::Converged);
    }

    #[test]
    fn refinement_monotone_until_convergence() {
        let a = elasticity_3d(4, 4, 3);
        let mut machine = Machine::paper_node();
        let s =
            SpdSolver::new(&a, &mut machine, &solver_opts(PolicyKind::P4, Precision::F32)).unwrap();
        let (_, b) = rhs_for_solution(&a, 9);
        let refined = s.solve_refined(&b, 6, 1e-15).unwrap();
        for w in refined.residual_history.windows(2) {
            assert!(
                w[1] < w[0] * 1.5,
                "residual should not blow up: {:?}",
                refined.residual_history
            );
        }
    }

    #[test]
    fn hybrid_selector_end_to_end() {
        let a = laplacian_3d(7, 7, 7, Stencil::Faces);
        let mut machine = Machine::paper_node();
        let opts = SolverOptions {
            ordering: OrderingKind::NestedDissection,
            amalgamation: Some(AmalgamationOptions::default()),
            factor: FactorOptions {
                selector: PolicySelector::Baseline(BaselineThresholds::default()),
                record_stats: true,
                ..Default::default()
            },
            precision: Precision::F32,
            analysis_workers: 0,
        };
        let s = SpdSolver::new(&a, &mut machine, &opts).unwrap();
        let (_, b) = rhs_for_solution(&a, 4);
        let refined = s.solve_refined(&b, 4, 1e-13).unwrap();
        assert!(*refined.residual_history.last().unwrap() < 1e-12);
        assert!(s.factor_time() > 0.0);
        assert!(s.factor_nnz() > a.nnz_lower());
    }

    #[test]
    fn repeated_solves_reuse_factor() {
        let a = laplacian_3d(5, 5, 5, Stencil::Faces);
        let mut machine = Machine::paper_node();
        let s =
            SpdSolver::new(&a, &mut machine, &solver_opts(PolicyKind::P1, Precision::F64)).unwrap();
        for seed in 0..3 {
            let (xtrue, b) = rhs_for_solution(&a, seed);
            let x = s.solve(&b).unwrap();
            let err = x.iter().zip(&xtrue).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
            assert!(err < 1e-9);
        }
    }

    #[test]
    fn zero_rhs_refinement_is_finite_and_converged() {
        // b = 0 ⇒ x = 0: the ‖A‖∞·‖x‖∞ denominator vanishes. The old code
        // produced 0/0 = NaN here and silently reported the NaN as
        // converged; the guarded residual must report a finite (zero)
        // history and explicit convergence.
        let a = laplacian_3d(5, 4, 4, Stencil::Faces);
        let mut machine = Machine::paper_node();
        let s =
            SpdSolver::new(&a, &mut machine, &solver_opts(PolicyKind::P3, Precision::F32)).unwrap();
        let b = vec![0.0; a.order()];
        let refined = s.solve_refined(&b, 4, 1e-14).unwrap();
        assert!(
            refined.residual_history.iter().all(|v| v.is_finite()),
            "history must never contain NaN/inf: {:?}",
            refined.residual_history
        );
        assert!(refined.converged);
        assert_eq!(refined.stop, RefineStop::Converged);
        assert_eq!(refined.iterations, 0, "zero RHS needs no corrections");
        assert!(refined.x.iter().all(|&v| v == 0.0), "solution of A·x = 0 is x = 0");
    }

    #[test]
    fn stagnation_is_reported_not_mislabelled() {
        // An impossible tolerance can't be met: the loop must stop on the
        // f32 precision floor (stagnation) or the budget — and say which —
        // instead of looping or claiming convergence.
        let a = laplacian_3d(6, 5, 4, Stencil::Faces);
        let mut machine = Machine::paper_node();
        let s =
            SpdSolver::new(&a, &mut machine, &solver_opts(PolicyKind::P3, Precision::F32)).unwrap();
        let (_, b) = rhs_for_solution(&a, 5);
        let refined = s.solve_refined(&b, 50, 1e-30).unwrap();
        assert!(!refined.converged);
        assert_ne!(refined.stop, RefineStop::Converged);
        assert!(
            refined.iterations < 50,
            "stagnation must cut the loop well before a 50-step budget"
        );
        assert_eq!(refined.residual_history.len(), refined.iterations + 1);
    }

    #[test]
    fn refined_many_matches_single_column_bitwise() {
        let a = laplacian_3d(5, 5, 4, Stencil::Full);
        let mut machine = Machine::paper_node();
        let s =
            SpdSolver::new(&a, &mut machine, &solver_opts(PolicyKind::P3, Precision::F32)).unwrap();
        let n = a.order();
        let nrhs = 5;
        let mut b = Vec::with_capacity(n * nrhs);
        for j in 0..nrhs {
            let (_, bj) = rhs_for_solution(&a, 100 + j as u64);
            b.extend(bj);
        }
        let many = s.solve_refined_many(&b, nrhs, 5, 1e-14).unwrap();
        assert_eq!(many.columns.len(), nrhs);
        for j in 0..nrhs {
            let single = s.solve_refined(&b[j * n..(j + 1) * n], 5, 1e-14).unwrap();
            assert_eq!(single.residual_history, many.columns[j].residual_history, "col {j}");
            assert_eq!(single.iterations, many.columns[j].iterations, "col {j}");
            assert_eq!(single.converged, many.columns[j].converged, "col {j}");
            for i in 0..n {
                assert_eq!(single.x[i].to_bits(), many.x[i + j * n].to_bits(), "col {j} row {i}");
            }
        }
        assert!(many.all_converged());
    }

    #[test]
    fn refactor_same_pattern_matches_fresh_solver() {
        let a = laplacian_3d(5, 5, 5, Stencil::Faces);
        // Same pattern, different values: exact power-of-two scaling keeps
        // the comparison bitwise-meaningful.
        let a2 = SymCsc::from_parts(
            a.order(),
            a.colptr().to_vec(),
            a.rowind().to_vec(),
            a.values().iter().map(|&v| v * 4.0).collect(),
        );
        let opts = solver_opts(PolicyKind::P1, Precision::F64);
        let mut machine = Machine::paper_node();
        let mut s = SpdSolver::new(&a, &mut machine, &opts).unwrap();
        s.refactor(&a2, &mut machine).unwrap();
        let mut machine2 = Machine::paper_node();
        let fresh = SpdSolver::new(&a2, &mut machine2, &opts).unwrap();
        let (_, b) = rhs_for_solution(&a2, 17);
        let x_re = s.solve(&b).unwrap();
        let x_fresh = fresh.solve(&b).unwrap();
        assert_eq!(x_re.len(), x_fresh.len());
        for (p, q) in x_re.iter().zip(&x_fresh) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
    }

    #[test]
    fn malformed_requests_get_typed_errors_not_panics() {
        let a = laplacian_3d(4, 4, 3, Stencil::Faces);
        let n = a.order();
        let mut machine = Machine::paper_node();
        let s =
            SpdSolver::new(&a, &mut machine, &solver_opts(PolicyKind::P1, Precision::F64)).unwrap();
        // Wrong-length b, on every entry point.
        let short = vec![1.0; n - 1];
        let want = SolveError::DimensionMismatch { expected: n, got: n - 1 };
        assert_eq!(s.solve(&short).unwrap_err(), want);
        assert_eq!(s.solve_many(&short, 1).unwrap_err(), want);
        assert_eq!(s.solve_many_parallel(&short, 1, 2).unwrap_err(), want);
        assert_eq!(s.solve_refined(&short, 3, 1e-12).unwrap_err(), want);
        assert_eq!(s.solve_refined_many(&short, 1, 3, 1e-12).unwrap_err(), want);
        // nrhs == 0 (even with an empty b, which is length-consistent).
        assert_eq!(s.solve_many(&[], 0).unwrap_err(), SolveError::ZeroRhs);
        assert_eq!(s.solve_refined_many(&[], 0, 3, 1e-12).unwrap_err(), SolveError::ZeroRhs);
        // Non-finite entries, with the offending coordinate reported.
        let mut b = vec![1.0; 2 * n];
        b[n + 3] = f64::NAN;
        assert_eq!(s.solve_many(&b, 2).unwrap_err(), SolveError::NonFinite { column: 1, row: 3 });
        b[n + 3] = f64::INFINITY;
        assert_eq!(
            s.solve_refined_many(&b, 2, 3, 1e-12).unwrap_err(),
            SolveError::NonFinite { column: 1, row: 3 }
        );
        // The solver must still work after every rejection.
        let (xtrue, good) = rhs_for_solution(&a, 11);
        let x = s.solve(&good).unwrap();
        let err = x.iter().zip(&xtrue).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
        assert!(err < 1e-9);
    }

    #[test]
    fn memory_bytes_scales_with_precision_and_problem() {
        let a = laplacian_3d(6, 6, 5, Stencil::Faces);
        let mut machine = Machine::paper_node();
        let s64 =
            SpdSolver::new(&a, &mut machine, &solver_opts(PolicyKind::P1, Precision::F64)).unwrap();
        let s32 =
            SpdSolver::new(&a, &mut machine, &solver_opts(PolicyKind::P1, Precision::F32)).unwrap();
        let sym = s64.analysis().symbolic.factor_slab_len();
        assert!(s64.memory_bytes() >= sym * 8, "must charge at least the f64 factor slab");
        assert!(
            s32.memory_bytes() < s64.memory_bytes(),
            "an f32 factor must charge less than an f64 one"
        );
        let small = laplacian_3d(3, 3, 3, Stencil::Faces);
        let t = SpdSolver::new(&small, &mut machine, &solver_opts(PolicyKind::P1, Precision::F64))
            .unwrap();
        assert!(t.memory_bytes() < s64.memory_bytes());
    }

    #[test]
    fn budgeted_solver_reserves_the_cap_not_the_symbolic_bound() {
        use crate::ooc::min_feasible_budget;

        let a = laplacian_3d(7, 7, 7, Stencil::Faces);
        let mut machine = Machine::paper_node();
        let full_opts = solver_opts(PolicyKind::P1, Precision::F64);
        let full = SpdSolver::new(&a, &mut machine, &full_opts).unwrap();

        // A budget at 40% of the symbolic numeric bound.
        let sym = &full.analysis().symbolic;
        let numeric_bound = (sym.factor_slab_len() + sym.update_stack_peak()) * 8;
        let budget = (numeric_bound * 2 / 5).max(min_feasible_budget(sym, 8));
        let opts = SolverOptions {
            factor: FactorOptions { memory_budget: Some(budget), ..full_opts.factor.clone() },
            ..full_opts.clone()
        };
        let s = SpdSolver::new(&a, &mut machine, &opts).unwrap();

        // The budgeted session charges strictly less than the in-core one,
        // and the pre-admission estimate matches the built solver exactly.
        assert!(s.memory_bytes() < full.memory_bytes());
        assert_eq!(
            s.memory_bytes(),
            estimated_memory_bytes_budgeted(s.analysis(), Precision::F64, Some(budget))
        );
        assert_eq!(
            full.memory_bytes(),
            estimated_memory_bytes(full.analysis(), Precision::F64),
            "no budget must reproduce the unbudgeted estimate"
        );
        // The difference is exactly the numeric storage the budget trimmed.
        assert_eq!(full.memory_bytes() - s.memory_bytes(), numeric_bound - budget);

        // The budgeted factor still solves to f64 accuracy.
        let (xtrue, b) = rhs_for_solution(&a, 8);
        let x = s.solve(&b).unwrap();
        let err = x.iter().zip(&xtrue).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
        assert!(err < 1e-8, "forward error {err}");
        assert!(s.stats().ooc.is_some(), "a budgeted run must report OOC stats");
    }

    #[test]
    fn infeasible_budget_is_a_typed_factor_error() {
        let a = laplacian_3d(5, 5, 5, Stencil::Faces);
        let mut machine = Machine::paper_node();
        let mut opts = solver_opts(PolicyKind::P1, Precision::F64);
        opts.factor.memory_budget = Some(64);
        match SpdSolver::new(&a, &mut machine, &opts) {
            Err(FactorError::BudgetTooSmall { budget, required }) => {
                assert_eq!(budget, 64);
                assert!(required > 64);
            }
            Err(other) => panic!("expected BudgetTooSmall, got {other:?}"),
            Ok(_) => panic!("an infeasible budget must not factor"),
        }
    }

    #[test]
    fn parallel_analysis_solver_matches_serial_bitwise() {
        let a = laplacian_3d(6, 5, 5, Stencil::Faces);
        let (_, b) = rhs_for_solution(&a, 23);
        let serial_opts = solver_opts(PolicyKind::P1, Precision::F64);
        let mut machine = Machine::paper_node();
        let x0 = SpdSolver::new(&a, &mut machine, &serial_opts).unwrap().solve(&b).unwrap();
        for workers in [2, 4, 8] {
            let opts = SolverOptions { analysis_workers: workers, ..serial_opts.clone() };
            let mut machine = Machine::paper_node();
            let s = SpdSolver::new(&a, &mut machine, &opts).unwrap();
            let x = s.solve(&b).unwrap();
            for (p, q) in x.iter().zip(&x0) {
                assert_eq!(p.to_bits(), q.to_bits(), "workers={workers}");
            }
        }
    }

    #[test]
    fn missing_diagonal_surfaces_as_typed_factor_error() {
        use mf_sparse::{AnalyzeError, Triplet};
        let mut t = Triplet::new(3);
        t.push(0, 0, 4.0);
        t.push(2, 2, 4.0);
        t.push(2, 1, -1.0); // column 1 has off-diagonal structure but no pivot
        let a = t.assemble();
        for workers in [0, 4] {
            let opts = SolverOptions {
                analysis_workers: workers,
                ..solver_opts(PolicyKind::P1, Precision::F64)
            };
            let mut machine = Machine::paper_node();
            let err = match SpdSolver::new(&a, &mut machine, &opts) {
                Err(e) => e,
                Ok(_) => panic!("missing diagonal must be rejected (workers={workers})"),
            };
            assert_eq!(err, FactorError::Analyze(AnalyzeError::MissingDiagonal { col: 1 }));
        }
    }

    #[test]
    fn refactor_rejects_different_pattern() {
        let a = laplacian_3d(4, 4, 4, Stencil::Faces);
        let other = laplacian_3d(4, 4, 4, Stencil::Full);
        let mut machine = Machine::paper_node();
        let mut s =
            SpdSolver::new(&a, &mut machine, &solver_opts(PolicyKind::P1, Precision::F64)).unwrap();
        assert_eq!(s.refactor(&other, &mut machine), Err(RefactorError::PatternMismatch));
        // The old factor must still work after the rejection.
        let (xtrue, b) = rhs_for_solution(&a, 2);
        let x = s.solve(&b).unwrap();
        let err = x.iter().zip(&xtrue).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
        assert!(err < 1e-9);
    }
}
