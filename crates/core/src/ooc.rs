//! Out-of-core execution: memory-budgeted residency with liveness-driven
//! eviction and a mixed-precision spill ladder (DESIGN.md §4.14).
//!
//! The in-core drivers keep the whole factor slab plus the front arena
//! resident — `in_core_bytes` — which caps solvable N at device memory.
//! This module lifts that cap: [`plan_ooc`] simulates the postorder
//! elimination over the *symbolic* structure alone and produces an
//! [`OocPlan`] — a deterministic spill/reload schedule that keeps
//! residency below a caller-chosen byte budget at every instant.
//!
//! ## Eviction policy
//!
//! The postorder traversal makes next-touch times exact, so the policy is
//! Belady's optimal rather than a heuristic:
//!
//! * a **finished panel** is dead for factorization the moment it is
//!   written — it is only touched again by the solve sweeps — so panels
//!   always have the farthest next-touch and are evicted first, in
//!   reverse postorder of completion;
//! * a **child update** is next touched when its parent supernode
//!   assembles, i.e. at the parent's postorder rank; among updates the
//!   one whose parent eliminates last is evicted first.
//!
//! Both rules collapse into a single ordered set keyed by next-touch
//! rank (panels offset past every update key). Assembly streams child
//! updates into the front **one at a time** — each child's block dies
//! the moment its extend-add completes, the classical out-of-core
//! multifrontal discipline — so the untouchable working set of a step is
//! only `s² + max(maxᶜ mᶜ², s·k)` scalars ([`min_feasible_budget`]).
//! Spilled blocks go to the pinned-host tier while it has capacity, then
//! to simulated disk; the charges land on the existing [`HostClock`] via
//! `charge_memop`, so spill traffic shares the virtual timeline with
//! every other cost.
//!
//! ## Precision ladder
//!
//! Spilled blocks may be stored down-converted ([`PrecisionLadder`]):
//! bf16 or f16 storage halves spill traffic of an f32 factorization while
//! f32 compute and the existing f64 iterative refinement absorb the
//! storage error — the storage-vs-compute precision split of
//! Li/Serban/Negrut (PAPERS.md), extending the paper's f32+refinement
//! scheme (§V). Down-conversion is applied *once*, in place, at the
//! moment a block is first produced if the plan says it will ever be
//! stored encoded; numerics therefore depend only on the (budget,
//! ladder) pair, never on worker count or on when the replayed transfers
//! happen — with the ladder off the factor is bitwise identical to the
//! in-core driver.
//!
//! ## Streaming solve
//!
//! After a budgeted factorization some panels live on the spill tiers.
//! [`rehearse_stream_solve`] models the forward/backward sweeps as
//! streaming passes: panels arrive in postorder (forward) and reverse
//! postorder (backward), prefetched with the PR 5 growth-only pinned
//! leasing ([`PinnedPool`]) at the pool's generation depth, while
//! consumed panels are dropped (free if a tier copy exists) under the
//! same residency budget.

use std::collections::BTreeSet;

use mf_dense::Scalar;
use mf_gpusim::{HostClock, KernelKind, SpillTier, TierParams};
use mf_sparse::SymbolicFactor;

use crate::pinned_pool::PinnedPool;

/// Storage precision of spilled blocks.
///
/// Compute precision is unchanged (the factorization runs in `T`); the
/// ladder only governs what a block looks like while it lives on a spill
/// tier. `Bf16`/`F16` store 2 bytes per scalar regardless of `T`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PrecisionLadder {
    /// Spilled blocks keep the compute precision; reloads are bitwise.
    #[default]
    Off,
    /// bfloat16 storage: f32 range, 8-bit mantissa. Round-to-nearest-even.
    Bf16,
    /// IEEE half storage: 11-bit mantissa, saturating at ±65504 (a spill
    /// encoder must never manufacture infinities).
    F16,
}

impl PrecisionLadder {
    /// Short stable name (used in bench JSON and logs).
    pub fn name(self) -> &'static str {
        match self {
            PrecisionLadder::Off => "off",
            PrecisionLadder::Bf16 => "bf16",
            PrecisionLadder::F16 => "f16",
        }
    }

    /// Bytes one scalar occupies on a spill tier when the compute type
    /// has `elem_bytes` bytes.
    pub fn stored_bytes(self, elem_bytes: usize) -> usize {
        match self {
            PrecisionLadder::Off => elem_bytes,
            PrecisionLadder::Bf16 | PrecisionLadder::F16 => 2,
        }
    }

    /// The value a scalar comes back as after one store/load round trip.
    ///
    /// The encoder is f32-front-ended: f64 inputs first round to f32
    /// (RNE), then to the 16-bit storage format — the same double
    /// rounding a real half-precision spill path performs.
    pub fn store_and_load(self, x: f64) -> f64 {
        match self {
            PrecisionLadder::Off => x,
            PrecisionLadder::Bf16 => bf16_roundtrip(x as f32) as f64,
            PrecisionLadder::F16 => f16_roundtrip(x as f32) as f64,
        }
    }

    /// Degrade a block in place to what it will read back as from a spill
    /// tier. Idempotent; a no-op when the ladder is off.
    pub fn degrade_slice<T: Scalar>(self, xs: &mut [T]) {
        match self {
            PrecisionLadder::Off => {}
            PrecisionLadder::Bf16 => {
                for x in xs {
                    *x = T::from_f64(bf16_roundtrip(x.to_f64() as f32) as f64);
                }
            }
            PrecisionLadder::F16 => {
                for x in xs {
                    *x = T::from_f64(f16_roundtrip(x.to_f64() as f32) as f64);
                }
            }
        }
    }
}

/// f32 → bf16 → f32 round trip, round-to-nearest-even, saturating to the
/// largest finite bf16 instead of overflowing to infinity.
fn bf16_roundtrip(x: f32) -> f32 {
    if !x.is_finite() {
        return x;
    }
    let bits = x.to_bits();
    let rounded = bits.wrapping_add(0x7FFF + ((bits >> 16) & 1)) & 0xFFFF_0000;
    let out = f32::from_bits(rounded);
    if out.is_infinite() {
        // Rounding carried into the exponent of f32::MAX-scale inputs.
        f32::from_bits((bits & 0x8000_0000) | 0x7F7F_0000)
    } else {
        out
    }
}

/// f32 → IEEE half → f32 round trip (RNE, saturating at ±65504).
fn f16_roundtrip(x: f32) -> f32 {
    f32_from_f16(f16_from_f32(x))
}

fn f16_from_f32(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let man = bits & 0x007F_FFFF;
    if exp == 0xFF {
        // Propagate NaN; saturate infinities like every other overflow.
        return if man != 0 { sign | 0x7E00 } else { sign | 0x7BFF };
    }
    let e = exp - 127;
    if e > 15 {
        return sign | 0x7BFF; // saturate to 65504
    }
    if e >= -14 {
        // Normal half: keep 10 mantissa bits, RNE on the 13 dropped.
        let mut half = (((e + 15) as u32) << 10) | (man >> 13);
        let rem = man & 0x1FFF;
        if rem > 0x1000 || (rem == 0x1000 && half & 1 == 1) {
            half += 1;
            if half >= 0x7C00 {
                half = 0x7BFF; // carry reached the infinity encoding
            }
        }
        return sign | half as u16;
    }
    if e >= -24 {
        // Subnormal half.
        let man_full = man | 0x0080_0000;
        let shift = (13 + (-14 - e)) as u32;
        let mut half = man_full >> shift;
        let rem = man_full & ((1u32 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        if rem > halfway || (rem == halfway && half & 1 == 1) {
            half += 1;
        }
        return sign | half as u16;
    }
    sign // underflow to (signed) zero
}

fn f32_from_f16(h: u16) -> f32 {
    let sign = ((h as u32) & 0x8000) << 16;
    let exp = ((h >> 10) & 0x1F) as u32;
    let man = (h & 0x3FF) as u32;
    if exp == 0 {
        // ±0 and subnormals: value = man · 2⁻²⁴, exact in f32.
        let mag = man as f32 * f32::from_bits((127 - 24) << 23);
        return if sign != 0 { -mag } else { mag };
    }
    if exp == 0x1F {
        return if man != 0 { f32::NAN } else { f32::from_bits(sign | 0x7F80_0000) };
    }
    f32::from_bits(sign | ((exp + 112) << 23) | (man << 13))
}

/// Why an out-of-core plan cannot be built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OocError {
    /// The budget is below [`min_feasible_budget`]: even with everything
    /// evictable spilled, some supernode's pinned working set (its front
    /// plus the single child update being streamed in, or plus its panel)
    /// would not fit.
    BudgetTooSmall {
        /// The infeasible budget that was requested.
        budget: usize,
        /// The smallest budget any schedule can honour, in bytes.
        required: usize,
    },
}

impl core::fmt::Display for OocError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            OocError::BudgetTooSmall { budget, required } => write!(
                f,
                "memory budget of {budget} bytes is below the minimum feasible \
                 out-of-core working set of {required} bytes"
            ),
        }
    }
}

impl std::error::Error for OocError {}

/// Bytes the in-core drivers keep resident: the contiguous factor slab
/// plus the LIFO update-stack peak — the "symbolic bound" that budget
/// fractions in tests and benches refer to.
pub fn in_core_bytes(symbolic: &SymbolicFactor, elem_bytes: usize) -> usize {
    (symbolic.factor_slab_len() + symbolic.update_stack_peak()) * elem_bytes
}

/// The smallest residency budget any eviction schedule can honour: the
/// largest per-supernode pinned working set. Assembly streams child
/// updates into the front **one at a time** (each child's block is dead
/// the moment its extend-add completes — the classical out-of-core
/// multifrontal discipline), so at any instant the untouchable set is the
/// front plus either the single child being consumed or the panel being
/// written: `s² + max(maxᶜ mᶜ², s·k)` scalars.
pub fn min_feasible_budget(symbolic: &SymbolicFactor, elem_bytes: usize) -> usize {
    let mut worst = 0usize;
    for (sn, info) in symbolic.supernodes.iter().enumerate() {
        let s = info.front_size();
        let k = info.k();
        let biggest_child = symbolic.children[sn]
            .iter()
            .map(|&c| {
                let cm = symbolic.supernodes[c].m();
                cm * cm
            })
            .max()
            .unwrap_or(0);
        worst = worst.max(s * s + biggest_child.max(s * k));
    }
    worst * elem_bytes
}

/// One replayed spill transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoOp {
    /// Which tier the block moves to/from.
    pub tier: SpillTier,
    /// `true` = eviction (device → tier), `false` = reload.
    pub write: bool,
    /// Encoded bytes on the wire (2 B/scalar under a 16-bit ladder).
    pub bytes: usize,
}

/// What happened at one point of the planned elimination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OocEventKind {
    /// A spilled child update was reloaded for its parent's extend-add.
    LoadUpdate(usize),
    /// A child update's extend-add completed; its block died (streamed
    /// assembly consumes children one at a time).
    ConsumeUpdate(usize),
    /// An update was evicted to make room.
    EvictUpdate(usize),
    /// A finished panel was evicted to make room.
    EvictPanel(usize),
    /// The supernode's front was allocated in the arena.
    AllocFront(usize),
    /// The supernode's panel slot became live in the slab.
    AllocPanel(usize),
    /// The front retired into its packed update; children died.
    Retire(usize),
}

/// One entry of the plan's residency trace. `resident_bytes` is the
/// device-tier residency *after* the event — the proptested invariant is
/// that it never exceeds the budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OocEvent {
    /// Postorder rank of the supernode being processed.
    pub rank: usize,
    /// What happened.
    pub kind: OocEventKind,
    /// Device-resident bytes after the event.
    pub resident_bytes: usize,
}

/// Residency and traffic accounting of one budgeted run — surfaced as
/// `FactorStats::ooc`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OocStats {
    /// The residency budget the plan honours.
    pub budget_bytes: usize,
    /// Compute-precision scalar size.
    pub elem_bytes: usize,
    /// Storage ladder for spilled blocks.
    pub ladder: PrecisionLadder,
    /// The in-core working-set bound (slab + update-stack peak) — what an
    /// unbudgeted run would keep resident.
    pub logical_peak_bytes: usize,
    /// Peak device residency the plan actually reaches (≤ budget).
    pub resident_peak_bytes: usize,
    /// Peak residency attributable to arena blocks (fronts + updates),
    /// mirrored into `FrontArena::resident_high_water_bytes`.
    pub arena_resident_peak_bytes: usize,
    /// [`min_feasible_budget`] of the structure.
    pub min_feasible_bytes: usize,
    /// Encoded bytes evicted to the pinned-host tier.
    pub host_bytes_out: usize,
    /// Encoded bytes reloaded from the pinned-host tier.
    pub host_bytes_in: usize,
    /// Encoded bytes evicted to the disk tier.
    pub disk_bytes_out: usize,
    /// Encoded bytes reloaded from the disk tier.
    pub disk_bytes_in: usize,
    /// Number of block evictions.
    pub evictions: usize,
    /// Number of block reloads.
    pub loads: usize,
    /// Panels still on a spill tier when factorization finishes (the
    /// streaming solve reloads them).
    pub panels_spilled_at_end: usize,
    /// Total transfer time of the spill engine at tier bandwidths. This
    /// is the spill engine's own serialized timeline; the factorization
    /// drivers additionally charge each transfer on the clock of the
    /// worker that replays it.
    pub spill_seconds: f64,
}

impl OocStats {
    /// Total encoded eviction traffic.
    pub fn bytes_out(&self) -> usize {
        self.host_bytes_out + self.disk_bytes_out
    }

    /// Total encoded reload traffic.
    pub fn bytes_in(&self) -> usize {
        self.host_bytes_in + self.disk_bytes_in
    }

    /// Total encoded spill traffic in both directions.
    pub fn traffic_bytes(&self) -> usize {
        self.bytes_out() + self.bytes_in()
    }
}

/// A deterministic out-of-core schedule for one symbolic structure.
///
/// Everything here is a pure function of `(symbolic, elem_bytes, budget,
/// ladder, tiers)` — no numeric values, no worker count, no clock state —
/// which is what makes budgeted factorization bitwise-deterministic: the
/// serial and parallel drivers both consume the same plan and apply the
/// same [`OocPlan::degrade_panel`]/[`OocPlan::degrade_update`] flags at
/// block production time.
#[derive(Debug, Clone, PartialEq)]
pub struct OocPlan {
    /// Totals, surfaced as `FactorStats::ooc`.
    pub stats: OocStats,
    /// Supernode → postorder rank.
    pub rank: Vec<usize>,
    /// Per-postorder-rank transfers to replay (charge on the executing
    /// clock) before processing that supernode.
    pub step_io: Vec<Vec<IoOp>>,
    /// Per-postorder-rank peak of arena-resident bytes during the step —
    /// what the arena's tier-resident high water should record.
    pub arena_step_resident: Vec<usize>,
    /// Per-supernode: the panel is stored encoded at some point, so the
    /// driver must degrade it (once, at production) to the ladder's
    /// read-back value.
    pub degrade_panel: Vec<bool>,
    /// Per-supernode: ditto for the packed update block.
    pub degrade_update: Vec<bool>,
    /// Where each panel lives when factorization ends (`None` = resident).
    pub panel_tier: Vec<Option<SpillTier>>,
    /// Pinned-host tier occupancy (encoded bytes) at the end — the
    /// streaming solve starts from this.
    pub host_used_end: usize,
    /// Full residency trace for invariant checking.
    pub events: Vec<OocEvent>,
}

/// Mutable planner state: device residency, tier occupancy, the Belady
/// eviction queue, and the accumulating schedule.
struct PlanState<'a> {
    nsn: usize,
    elem_bytes: usize,
    enc_bytes: usize,
    budget: usize,
    tiers: &'a TierParams,
    ladder: PrecisionLadder,
    /// Scalar counts per block: `[0, nsn)` = panels (s·k), `[nsn, 2nsn)`
    /// = updates (m·m).
    block_elems: Vec<usize>,
    /// Next-touch key per block (updates: parent's rank; panels: nsn +
    /// own rank, i.e. always after every update).
    key: Vec<usize>,
    /// Blocks on a spill tier.
    spilled: Vec<Option<SpillTier>>,
    /// Resident blocks currently eligible for eviction, max key first.
    evictable: BTreeSet<(usize, usize)>,
    /// Device-resident bytes (compute precision).
    cur: usize,
    /// Of which, arena blocks (updates + the live front).
    arena_cur: usize,
    host_used: usize,
    ops: Vec<IoOp>,
    events: Vec<OocEvent>,
    stats: OocStats,
    degrade_panel: Vec<bool>,
    degrade_update: Vec<bool>,
    arena_step_peak: usize,
}

impl PlanState<'_> {
    fn native(&self, blk: usize) -> usize {
        self.block_elems[blk] * self.elem_bytes
    }

    fn encoded(&self, blk: usize) -> usize {
        self.block_elems[blk] * self.enc_bytes
    }

    fn push_event(&mut self, rank: usize, kind: OocEventKind) {
        self.stats.resident_peak_bytes = self.stats.resident_peak_bytes.max(self.cur);
        self.stats.arena_resident_peak_bytes =
            self.stats.arena_resident_peak_bytes.max(self.arena_cur);
        self.arena_step_peak = self.arena_step_peak.max(self.arena_cur);
        self.events.push(OocEvent { rank, kind, resident_bytes: self.cur });
    }

    /// Evict farthest-next-touch blocks until `need` more bytes fit.
    fn make_room(&mut self, need: usize, rank: usize) -> Result<(), OocError> {
        while self.cur + need > self.budget {
            let &(_, blk) = self.evictable.iter().next_back().ok_or({
                // Unreachable when budget ≥ min_feasible_budget; surface
                // the pinned working set that broke the invariant.
                OocError::BudgetTooSmall { budget: self.budget, required: self.cur + need }
            })?;
            self.evictable.remove(&(self.key[blk], blk));
            let native = self.native(blk);
            let enc = self.encoded(blk);
            let tier = if self.host_used + enc <= self.tiers.host_capacity {
                self.host_used += enc;
                SpillTier::Host
            } else {
                SpillTier::Disk
            };
            self.spilled[blk] = Some(tier);
            self.cur -= native;
            match tier {
                SpillTier::Host => self.stats.host_bytes_out += enc,
                SpillTier::Disk => self.stats.disk_bytes_out += enc,
            }
            self.stats.evictions += 1;
            self.stats.spill_seconds += self.tiers.transfer_seconds(tier, true, enc);
            self.ops.push(IoOp { tier, write: true, bytes: enc });
            if self.ladder != PrecisionLadder::Off {
                if blk < self.nsn {
                    self.degrade_panel[blk] = true;
                } else {
                    self.degrade_update[blk - self.nsn] = true;
                }
            }
            if blk < self.nsn {
                self.push_event(rank, OocEventKind::EvictPanel(blk));
            } else {
                self.arena_cur -= native;
                self.push_event(rank, OocEventKind::EvictUpdate(blk - self.nsn));
            }
        }
        Ok(())
    }
}

/// Build the out-of-core schedule for `budget_bytes` of device residency.
///
/// Fails with [`OocError::BudgetTooSmall`] when the budget is below
/// [`min_feasible_budget`]; a budget of [`in_core_bytes`] or more yields a
/// plan with no transfers at all (budgeted execution then trivially
/// matches the in-core driver).
pub fn plan_ooc(
    symbolic: &SymbolicFactor,
    elem_bytes: usize,
    budget_bytes: usize,
    ladder: PrecisionLadder,
    tiers: &TierParams,
) -> Result<OocPlan, OocError> {
    let nsn = symbolic.num_supernodes();
    let min_feasible = min_feasible_budget(symbolic, elem_bytes);
    if budget_bytes < min_feasible {
        return Err(OocError::BudgetTooSmall { budget: budget_bytes, required: min_feasible });
    }

    let mut rank = vec![0usize; nsn];
    for (r, &sn) in symbolic.postorder.iter().enumerate() {
        rank[sn] = r;
    }

    let mut block_elems = vec![0usize; 2 * nsn];
    let mut key = vec![0usize; 2 * nsn];
    for (sn, info) in symbolic.supernodes.iter().enumerate() {
        block_elems[sn] = info.front_size() * info.k();
        let m = info.m();
        block_elems[nsn + sn] = m * m;
        // Panels are only re-touched by the solve: order them after every
        // update, latest-finished first out.
        key[sn] = nsn + rank[sn];
        if m > 0 {
            // An update's next touch is its parent's elimination step.
            key[nsn + sn] = rank[info.parent];
        }
    }

    let mut st = PlanState {
        nsn,
        elem_bytes,
        enc_bytes: ladder.stored_bytes(elem_bytes),
        budget: budget_bytes,
        tiers,
        ladder,
        block_elems,
        key,
        spilled: vec![None; 2 * nsn],
        evictable: BTreeSet::new(),
        cur: 0,
        arena_cur: 0,
        host_used: 0,
        ops: Vec::new(),
        events: Vec::new(),
        stats: OocStats {
            budget_bytes,
            elem_bytes,
            ladder,
            logical_peak_bytes: in_core_bytes(symbolic, elem_bytes),
            min_feasible_bytes: min_feasible,
            ..OocStats::default()
        },
        degrade_panel: vec![false; nsn],
        degrade_update: vec![false; nsn],
        arena_step_peak: 0,
    };

    let mut step_io = Vec::with_capacity(nsn);
    let mut arena_step_resident = Vec::with_capacity(nsn);

    for (r, &sn) in symbolic.postorder.iter().enumerate() {
        st.arena_step_peak = st.arena_cur;
        let info = &symbolic.supernodes[sn];
        let s = info.front_size();
        let k = info.k();
        let m = info.m();

        // Allocate the front first: assembly streams each child's update
        // into it one at a time.
        st.make_room(s * s * elem_bytes, r)?;
        st.cur += s * s * elem_bytes;
        st.arena_cur += s * s * elem_bytes;
        st.push_event(r, OocEventKind::AllocFront(sn));

        // Consume the children in child order: reload each spilled one
        // just before its extend-add, after which the block dies — only
        // one child update is ever pinned alongside the front. Siblings
        // not yet consumed stay evictable (their next-touch key is the
        // current rank, the nearest touch of anything in the queue, so
        // Belady victimises them only as a last resort).
        for &c in &symbolic.children[sn] {
            let blk = nsn + c;
            if st.block_elems[blk] == 0 {
                continue;
            }
            let native = st.native(blk);
            if let Some(tier) = st.spilled[blk] {
                let enc = st.encoded(blk);
                st.make_room(native, r)?;
                st.spilled[blk] = None;
                st.cur += native;
                st.arena_cur += native;
                if tier == SpillTier::Host {
                    st.host_used -= enc;
                    st.stats.host_bytes_in += enc;
                } else {
                    st.stats.disk_bytes_in += enc;
                }
                st.stats.loads += 1;
                st.stats.spill_seconds += tiers.transfer_seconds(tier, false, enc);
                st.ops.push(IoOp { tier, write: false, bytes: enc });
                st.push_event(r, OocEventKind::LoadUpdate(c));
            } else {
                st.evictable.remove(&(st.key[blk], blk));
            }
            st.cur -= native;
            st.arena_cur -= native;
            st.push_event(r, OocEventKind::ConsumeUpdate(c));
        }

        // The panel's slab slot.
        st.make_room(s * k * elem_bytes, r)?;
        st.cur += s * k * elem_bytes;
        st.push_event(r, OocEventKind::AllocPanel(sn));

        // Retire: the front compacts into the m×m update (in place —
        // `pop_and_compact` copies within the freed region), and the
        // finished panel plus the new update become evictable.
        st.cur -= (s * s - m * m) * elem_bytes;
        st.arena_cur -= (s * s - m * m) * elem_bytes;
        if m > 0 {
            st.evictable.insert((st.key[nsn + sn], nsn + sn));
        }
        st.evictable.insert((st.key[sn], sn));
        st.push_event(r, OocEventKind::Retire(sn));

        step_io.push(std::mem::take(&mut st.ops));
        arena_step_resident.push(st.arena_step_peak);
    }

    let panel_tier: Vec<Option<SpillTier>> = st.spilled[..nsn].to_vec();
    st.stats.panels_spilled_at_end = panel_tier.iter().filter(|t| t.is_some()).count();

    Ok(OocPlan {
        stats: st.stats,
        rank,
        step_io,
        arena_step_resident,
        degrade_panel: st.degrade_panel,
        degrade_update: st.degrade_update,
        panel_tier,
        host_used_end: st.host_used,
        events: st.events,
    })
}

/// What the streaming solve rehearsal measured.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StreamSolveStats {
    /// Right-hand sides solved per sweep.
    pub nrhs: usize,
    /// Panel reloads across both sweeps.
    pub loads: usize,
    /// Encoded bytes streamed in.
    pub bytes_in: usize,
    /// Encoded bytes written out by solve-time evictions.
    pub bytes_out: usize,
    /// Makespan of the forward sweep (compute/IO overlapped).
    pub forward_seconds: f64,
    /// Makespan of the backward sweep.
    pub backward_seconds: f64,
    /// Total kernel time across both sweeps (what a fully-resident solve
    /// would cost).
    pub compute_seconds: f64,
    /// Total transfer time (what a no-overlap schedule would add).
    pub io_seconds: f64,
    /// Peak panel residency during the sweeps (≤ budget).
    pub resident_peak_bytes: usize,
}

/// Model the forward+backward solve sweeps of a budgeted factor as
/// streaming passes and charge the makespan on `host`.
///
/// Panels are touched in postorder (forward) then reverse postorder
/// (backward) — sequential runs, so spilled panels are prefetched with
/// look-ahead: each reload leases a staging buffer from `pool` (the PR 5
/// growth-only pinned policy, [`PinnedAllocModel`] costs) and the IO
/// engine runs up to the pool's generation depth ahead of compute.
/// Consumed panels are evicted free when a tier copy exists (spilled
/// panels are clean) and written back otherwise. Charges land on `host`:
/// pinned growth immediately, then one `sync_to` to the overlapped
/// makespan. The numeric sweeps themselves are unchanged — this models
/// *when* data moves, never *what* it holds.
pub fn rehearse_stream_solve(
    symbolic: &SymbolicFactor,
    plan: &OocPlan,
    elem_bytes: usize,
    nrhs: usize,
    tiers: &TierParams,
    host: &mut HostClock,
    pool: &mut PinnedPool,
) -> StreamSolveStats {
    let nsn = symbolic.num_supernodes();
    let enc_bytes = plan.stats.ladder.stored_bytes(elem_bytes);
    let depth = pool.generations().max(1);
    let mut stats = StreamSolveStats { nrhs, ..StreamSolveStats::default() };

    // Per-supernode sweep kernel cost, measured on a twin clock so the
    // session clock only moves by the final overlapped makespan.
    let mut twin = HostClock::new(host.config().clone());
    let mut compute = vec![0.0f64; nsn];
    for (sn, info) in symbolic.supernodes.iter().enumerate() {
        let t0 = twin.now();
        twin.charge_kernel(KernelKind::Trsm, nrhs, 0, info.k());
        if info.m() > 0 {
            twin.charge_kernel(KernelKind::Gemm, info.m(), nrhs, info.k());
        }
        compute[sn] = twin.now() - t0;
        // Forward and backward sweeps charge the same kernel shapes
        // (transposed triangles, identical op counts).
        stats.compute_seconds += 2.0 * compute[sn];
    }

    let panel_native =
        |sn: usize| symbolic.supernodes[sn].front_size() * symbolic.supernodes[sn].k() * elem_bytes;
    let panel_enc =
        |sn: usize| symbolic.supernodes[sn].front_size() * symbolic.supernodes[sn].k() * enc_bytes;

    // Residency state across both sweeps.
    let mut tier_copy: Vec<Option<SpillTier>> = plan.panel_tier.clone();
    let mut resident: Vec<bool> = tier_copy.iter().map(|t| t.is_none()).collect();
    let mut host_used = plan.host_used_end;
    let mut resident_bytes: usize =
        (0..nsn).map(|sn| if resident[sn] { panel_native(sn) } else { 0 }).sum();
    stats.resident_peak_bytes = resident_bytes;
    let budget = plan.stats.budget_bytes.max(resident_bytes);

    // One sweep: visit panels in `order`; `touched[sn]` marks panels this
    // sweep is done with (evicted free — their data is dead for the sweep
    // or clean on a tier). Returns the sweep makespan.
    let mut sweep = |order: &[usize],
                     touched: &mut [bool],
                     stats: &mut StreamSolveStats,
                     host: &mut HostClock,
                     pool: &mut PinnedPool| {
        let mut io_t = 0.0f64;
        let mut t = 0.0f64;
        let mut slot_free = std::collections::VecDeque::from(vec![0.0f64; depth]);
        for &sn in order {
            let mut ready = 0.0f64;
            let mut loaded = false;
            if !resident[sn] {
                let tier = tier_copy[sn].expect("non-resident panel must have a tier copy");
                // Make room: drop sweep-finished panels first (free),
                // then farthest-next-touch unfinished ones (write-back).
                let native = panel_native(sn);
                while resident_bytes + native > budget {
                    let victim = (0..nsn)
                        .filter(|&v| resident[v] && touched[v])
                        .min_by_key(|&v| plan.rank[v])
                        .or_else(|| {
                            (0..nsn)
                                .filter(|&v| resident[v] && !touched[v] && v != sn)
                                .min_by_key(|&v| plan.rank[v])
                        })
                        .expect("a resident panel must exist to evict");
                    resident[victim] = false;
                    resident_bytes -= panel_native(victim);
                    if tier_copy[victim].is_none() {
                        let enc = panel_enc(victim);
                        let vt = if host_used + enc <= tiers.host_capacity {
                            host_used += enc;
                            SpillTier::Host
                        } else {
                            SpillTier::Disk
                        };
                        tier_copy[victim] = Some(vt);
                        let dur = tiers.transfer_seconds(vt, true, enc);
                        io_t += dur;
                        stats.io_seconds += dur;
                        stats.bytes_out += enc;
                    }
                }
                let enc = panel_enc(sn);
                let dur = tiers.transfer_seconds(tier, false, enc);
                // Lease the staging generation (growth-only pinned cost on
                // the session clock), stream, retire.
                let slot = pool.lease(enc.div_ceil(4), host);
                let free_at = slot_free.pop_front().unwrap_or(0.0);
                io_t = io_t.max(free_at) + dur;
                ready = io_t;
                pool.retire_now(slot, host);
                resident[sn] = true;
                resident_bytes += native;
                stats.resident_peak_bytes = stats.resident_peak_bytes.max(resident_bytes);
                stats.loads += 1;
                stats.bytes_in += enc;
                stats.io_seconds += dur;
                loaded = true;
            }
            t = t.max(ready) + compute[sn];
            if loaded {
                // The staging slot frees when compute consumes the panel.
                slot_free.push_back(t);
            }
            touched[sn] = true;
        }
        t
    };

    let forward_order: Vec<usize> = symbolic.postorder.clone();
    let backward_order: Vec<usize> = symbolic.postorder.iter().rev().copied().collect();

    let mut touched = vec![false; nsn];
    stats.forward_seconds = sweep(&forward_order, &mut touched, &mut stats, host, pool);
    let mut touched = vec![false; nsn];
    stats.backward_seconds = sweep(&backward_order, &mut touched, &mut stats, host, pool);

    let start = host.now();
    host.sync_to(start + stats.forward_seconds + stats.backward_seconds);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_gpusim::xeon_5160_core;
    use mf_sparse::{analyze, AmalgamationOptions, OrderingKind};

    fn test_symbolic() -> SymbolicFactor {
        let a = mf_matgen::laplacian_3d(7, 7, 7, mf_matgen::Stencil::Faces);
        analyze(&a, OrderingKind::NestedDissection, Some(&AmalgamationOptions::default()))
            .unwrap()
            .symbolic
    }

    #[test]
    fn ladder_roundtrips_and_saturates() {
        for lad in [PrecisionLadder::Bf16, PrecisionLadder::F16] {
            // Powers of two and small integers are exact in both formats.
            for x in [0.0, 1.0, -2.0, 0.5, 1024.0, -0.25] {
                assert_eq!(lad.store_and_load(x), x, "{lad:?} should keep {x} exact");
            }
            // Idempotent: a second round trip changes nothing.
            let once = lad.store_and_load(std::f64::consts::PI);
            assert_eq!(lad.store_and_load(once), once);
            assert!((once - std::f64::consts::PI).abs() < 2e-2);
        }
        // f16 saturates instead of overflowing to infinity.
        assert_eq!(PrecisionLadder::F16.store_and_load(1e9), 65504.0);
        assert_eq!(PrecisionLadder::F16.store_and_load(-1e9), -65504.0);
        assert!(PrecisionLadder::Bf16.store_and_load(f32::MAX as f64).is_finite());
        // Subnormal halves survive the trip.
        let tiny = PrecisionLadder::F16.store_and_load(6e-8);
        assert!(tiny > 0.0 && tiny < 1e-7);
        // RNE: 1 + 2^-11 is halfway in f16 (10-bit mantissa) and must
        // round to the even neighbour, 1.0.
        assert_eq!(PrecisionLadder::F16.store_and_load(1.0 + 2f64.powi(-11)), 1.0);
        // Off is the identity.
        assert_eq!(PrecisionLadder::Off.store_and_load(std::f64::consts::E), std::f64::consts::E);
    }

    #[test]
    fn degrade_slice_matches_scalar_roundtrip() {
        let mut xs: Vec<f32> = (0..64).map(|i| (i as f32).sin() * 3.0).collect();
        let orig = xs.clone();
        PrecisionLadder::Bf16.degrade_slice(&mut xs);
        for (d, o) in xs.iter().zip(&orig) {
            assert_eq!(*d as f64, PrecisionLadder::Bf16.store_and_load(*o as f64));
        }
        // f64 inputs go through the f32 front end.
        let mut ys = [std::f64::consts::PI];
        PrecisionLadder::F16.degrade_slice(&mut ys);
        assert_eq!(ys[0], PrecisionLadder::F16.store_and_load(std::f64::consts::PI));
    }

    #[test]
    fn full_budget_plans_no_traffic() {
        let sym = test_symbolic();
        let bound = in_core_bytes(&sym, 4);
        let plan = plan_ooc(&sym, 4, bound, PrecisionLadder::Off, &TierParams::default()).unwrap();
        assert_eq!(plan.stats.evictions, 0);
        assert_eq!(plan.stats.loads, 0);
        assert_eq!(plan.stats.traffic_bytes(), 0);
        assert_eq!(plan.stats.panels_spilled_at_end, 0);
        assert!(plan.step_io.iter().all(|s| s.is_empty()));
        assert!(plan.degrade_panel.iter().all(|&d| !d));
        assert!(plan.stats.resident_peak_bytes <= bound);
    }

    #[test]
    fn tight_budget_spills_and_respects_residency() {
        let sym = test_symbolic();
        let bound = in_core_bytes(&sym, 4);
        let min = min_feasible_budget(&sym, 4);
        assert!(min <= bound);
        let budget = (bound * 3 / 10).max(min);
        let plan = plan_ooc(&sym, 4, budget, PrecisionLadder::Off, &TierParams::default()).unwrap();
        assert!(plan.stats.evictions > 0, "30% budget must evict");
        assert!(plan.stats.panels_spilled_at_end > 0);
        assert!(plan.events.iter().all(|e| e.resident_bytes <= budget));
        assert!(plan.stats.resident_peak_bytes <= budget);
        assert!(plan.stats.arena_resident_peak_bytes <= plan.stats.resident_peak_bytes);
        // Loads only ever re-fetch spilled updates, never panels.
        assert!(plan.stats.loads <= plan.stats.evictions);
        assert!(plan.stats.spill_seconds > 0.0);
        // Host tier fills before disk is touched.
        if plan.stats.disk_bytes_out > 0 {
            assert!(plan.stats.host_bytes_out > 0);
        }
    }

    #[test]
    fn infeasible_budget_is_typed() {
        let sym = test_symbolic();
        let min = min_feasible_budget(&sym, 4);
        match plan_ooc(&sym, 4, min - 1, PrecisionLadder::Off, &TierParams::default()) {
            Err(OocError::BudgetTooSmall { budget, required }) => {
                assert_eq!(budget, min - 1);
                assert_eq!(required, min);
            }
            other => panic!("expected BudgetTooSmall, got {other:?}"),
        }
        // At exactly the minimum the plan must succeed.
        assert!(plan_ooc(&sym, 4, min, PrecisionLadder::Off, &TierParams::default()).is_ok());
    }

    #[test]
    fn plan_is_deterministic_and_ladder_halves_traffic() {
        let sym = test_symbolic();
        let bound = in_core_bytes(&sym, 4);
        let budget = (bound * 3 / 10).max(min_feasible_budget(&sym, 4));
        let tiers = TierParams::default();
        let a = plan_ooc(&sym, 4, budget, PrecisionLadder::Off, &tiers).unwrap();
        let b = plan_ooc(&sym, 4, budget, PrecisionLadder::Off, &tiers).unwrap();
        assert_eq!(a, b, "the plan is a pure function of its inputs");
        let bf = plan_ooc(&sym, 4, budget, PrecisionLadder::Bf16, &tiers).unwrap();
        // Same schedule, half the encoded bytes per f32 scalar.
        assert_eq!(bf.stats.evictions, a.stats.evictions);
        assert_eq!(bf.stats.traffic_bytes() * 2, a.stats.traffic_bytes());
        // Every spilled block is flagged for degradation, and only those.
        for sn in 0..sym.num_supernodes() {
            if bf.panel_tier[sn].is_some() {
                assert!(bf.degrade_panel[sn]);
            }
        }
        assert!(bf.degrade_panel.iter().any(|&d| d));
        assert!(a.degrade_panel.iter().all(|&d| !d), "ladder off never degrades");
    }

    #[test]
    fn stream_solve_rehearsal_overlaps_and_charges() {
        let sym = test_symbolic();
        let bound = in_core_bytes(&sym, 4);
        let tiers = TierParams::default();
        let budget = (bound * 3 / 10).max(min_feasible_budget(&sym, 4));
        let plan = plan_ooc(&sym, 4, budget, PrecisionLadder::Off, &tiers).unwrap();
        assert!(plan.stats.panels_spilled_at_end > 0);
        let mut host = HostClock::new(xeon_5160_core());
        let mut pool = PinnedPool::new(2);
        pool.set_virtual(true);
        let st = rehearse_stream_solve(&sym, &plan, 4, 4, &tiers, &mut host, &mut pool);
        assert!(st.loads >= plan.stats.panels_spilled_at_end, "both sweeps reload spilled panels");
        assert!(st.bytes_in > 0);
        assert!(st.forward_seconds > 0.0 && st.backward_seconds > 0.0);
        // Overlap: each sweep beats the serialized io+compute sum, and is
        // at least as long as either engine alone.
        assert!(st.forward_seconds + st.backward_seconds <= st.compute_seconds + st.io_seconds);
        assert!(st.forward_seconds + st.backward_seconds >= st.compute_seconds);
        assert!(st.resident_peak_bytes <= budget);
        // The clock carries the makespan plus the pinned staging growth
        // charged by the leases.
        assert!(host.now() >= st.forward_seconds + st.backward_seconds);

        // A fully-resident factor streams nothing and costs pure compute.
        let full = plan_ooc(&sym, 4, bound, PrecisionLadder::Off, &tiers).unwrap();
        let mut host2 = HostClock::new(xeon_5160_core());
        let mut pool2 = PinnedPool::new(2);
        let st2 = rehearse_stream_solve(&sym, &full, 4, 4, &tiers, &mut host2, &mut pool2);
        assert_eq!(st2.loads, 0);
        assert!((st2.forward_seconds + st2.backward_seconds - st2.compute_seconds).abs() < 1e-12);
    }
}
