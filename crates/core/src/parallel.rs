//! Deterministic parallel-execution model: list scheduling of the
//! supernodal task DAG over multiple workers.
//!
//! The paper's Table VII compares against a 4-thread WSMP run and reports a
//! 2-thread/2-GPU configuration. Both are *makespan* quantities of the
//! task-parallel elimination-tree traversal. We reproduce them with a
//! deterministic list schedule on per-worker virtual timelines:
//!
//! * a supernode's task becomes ready when all children finished;
//! * ready tasks are assigned largest-bottom-level first to the earliest
//!   free worker;
//! * large tasks are *moldable*: when workers idle and the ready queue is
//!   shorter than the worker count, a task may span several workers with a
//!   bounded-efficiency speedup — modelling WSMP's intra-front parallel
//!   BLAS near the root of the tree, without which tree-only parallelism
//!   stalls on the sequential root front.

use mf_sparse::symbolic::SymbolicFactor;

/// Intra-task (moldable) parallelism model.
#[derive(Debug, Clone, Copy)]
pub struct MoldableModel {
    /// Parallel efficiency exponent: `p` workers give speedup `p^eff`.
    pub efficiency: f64,
    /// Op count granting one extra worker of useful width (caps tiny tasks
    /// at width 1).
    pub ops_per_worker: f64,
}

impl Default for MoldableModel {
    fn default() -> Self {
        MoldableModel { efficiency: 0.9, ops_per_worker: 2.0e7 }
    }
}

/// Outcome of a schedule simulation.
#[derive(Debug, Clone)]
pub struct ScheduleResult {
    /// Completion time of the last task.
    pub makespan: f64,
    /// Busy time per worker.
    pub busy: Vec<f64>,
    /// Serial time (Σ durations) for reference.
    pub serial_time: f64,
}

impl ScheduleResult {
    /// Speedup over serial execution of the same task durations.
    pub fn speedup(&self) -> f64 {
        self.serial_time / self.makespan
    }

    /// Mean worker utilisation.
    pub fn utilization(&self) -> f64 {
        let busy: f64 = self.busy.iter().sum();
        busy / (self.makespan * self.busy.len() as f64)
    }
}

/// Simulate a list schedule of the supernodal tree with per-task durations
/// (`durations[sn]`, seconds) and per-task op counts (`ops[sn]`, for the
/// moldable width cap) on `workers` identical workers.
pub fn simulate_tree_schedule(
    symbolic: &SymbolicFactor,
    durations: &[f64],
    ops: &[f64],
    workers: usize,
    moldable: Option<MoldableModel>,
) -> ScheduleResult {
    let nsn = symbolic.num_supernodes();
    assert_eq!(durations.len(), nsn);
    assert_eq!(ops.len(), nsn);
    assert!(workers >= 1);
    let serial_time: f64 = durations.iter().sum();

    // Bottom level: longest downstream chain (task + ancestors) — the
    // classic priority for tree DAGs.
    let mut blevel = vec![0.0f64; nsn];
    for &sn in symbolic.postorder.iter().rev() {
        let parent = symbolic.supernodes[sn].parent;
        let up = if parent == usize::MAX { 0.0 } else { blevel[parent] };
        blevel[sn] = durations[sn] + up;
    }

    let mut pending_children: Vec<usize> = (0..nsn).map(|s| symbolic.children[s].len()).collect();
    let mut ready_time = vec![0.0f64; nsn];
    // Ready pool (small; linear scans are fine at our scale).
    let mut ready: Vec<usize> = (0..nsn).filter(|&s| pending_children[s] == 0).collect();
    let mut worker_free = vec![0.0f64; workers];
    let mut busy = vec![0.0f64; workers];
    let mut finish = vec![0.0f64; nsn];
    let mut scheduled = 0usize;

    while scheduled < nsn {
        // Highest-priority ready task.
        let (ri, &sn) = ready
            .iter()
            .enumerate()
            .max_by(|a, b| blevel[*a.1].total_cmp(&blevel[*b.1]))
            .expect("DAG must have a ready task");
        ready.swap_remove(ri);

        // Worker choice: earliest free. Moldable width: large fronts run
        // parallel BLAS across all workers (WSMP's intra-front parallelism),
        // capped by the task's op count — at the paper's million-row scale
        // tree parallelism carries the bottom of the tree, but near the root
        // (and at our scaled-down sizes, almost everywhere) molding is what
        // produces the multi-thread speedup.
        let mut order: Vec<usize> = (0..workers).collect();
        order.sort_by(|&a, &b| worker_free[a].total_cmp(&worker_free[b]));
        let width = match &moldable {
            Some(m) => {
                let cap = (ops[sn] / m.ops_per_worker).floor().max(1.0) as usize;
                cap.min(workers)
            }
            None => 1,
        };
        let chosen = &order[..width];
        // Task starts when the ready condition holds and all chosen workers
        // are free.
        let start = chosen.iter().map(|&w| worker_free[w]).fold(ready_time[sn], f64::max);
        let dur = match (&moldable, width > 1) {
            (Some(m), true) => durations[sn] / (width as f64).powf(m.efficiency),
            _ => durations[sn],
        };
        let end = start + dur;
        for &w in chosen {
            worker_free[w] = end;
            busy[w] += dur;
        }
        finish[sn] = end;
        scheduled += 1;

        let parent = symbolic.supernodes[sn].parent;
        if parent != usize::MAX {
            pending_children[parent] -= 1;
            ready_time[parent] = ready_time[parent].max(end);
            if pending_children[parent] == 0 {
                ready.push(parent);
            }
        }
    }

    let makespan = finish.iter().fold(0.0f64, |a, &b| a.max(b));
    ScheduleResult { makespan, busy, serial_time }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_matgen::{laplacian_2d, laplacian_3d, Stencil};
    use mf_sparse::symbolic::analyze;
    use mf_sparse::{AmalgamationOptions, OrderingKind};

    fn symbolic_3d() -> SymbolicFactor {
        let a = laplacian_3d(8, 8, 8, Stencil::Faces);
        analyze(&a, OrderingKind::NestedDissection, Some(&AmalgamationOptions::default())).symbolic
    }

    fn uniform_durations(sym: &SymbolicFactor) -> (Vec<f64>, Vec<f64>) {
        let d: Vec<f64> = sym.supernodes.iter().map(|s| 1e-4 + s.flops().total() / 1e10).collect();
        let o: Vec<f64> = sym.supernodes.iter().map(|s| s.flops().total()).collect();
        (d, o)
    }

    #[test]
    fn one_worker_equals_serial() {
        let sym = symbolic_3d();
        let (d, o) = uniform_durations(&sym);
        let r = simulate_tree_schedule(&sym, &d, &o, 1, None);
        assert!((r.makespan - r.serial_time).abs() < 1e-9);
        assert!((r.speedup() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn more_workers_never_slower() {
        let sym = symbolic_3d();
        let (d, o) = uniform_durations(&sym);
        let mut prev = f64::INFINITY;
        for w in [1, 2, 4, 8] {
            let r = simulate_tree_schedule(&sym, &d, &o, w, None);
            assert!(r.makespan <= prev + 1e-12, "{w} workers slower");
            prev = r.makespan;
        }
    }

    #[test]
    fn speedup_bounded_by_critical_path_without_molding() {
        let sym = symbolic_3d();
        let (d, o) = uniform_durations(&sym);
        // Critical path = max over leaves of root-to-leaf duration chain.
        let mut cp = vec![0.0f64; sym.num_supernodes()];
        for &sn in sym.postorder.iter().rev() {
            let p = sym.supernodes[sn].parent;
            cp[sn] = d[sn] + if p == usize::MAX { 0.0 } else { cp[p] };
        }
        let critical: f64 = cp.iter().fold(0.0f64, |a, &b| a.max(b));
        let r = simulate_tree_schedule(&sym, &d, &o, 64, None);
        assert!(r.makespan >= critical - 1e-12);
    }

    #[test]
    fn molding_beats_tree_only_parallelism() {
        // Craft a workload whose root front dominates (the situation near
        // the top of a large 3-D elimination tree): molding must shorten it.
        let sym = symbolic_3d();
        let (mut d, mut o) = uniform_durations(&sym);
        let root = *sym.postorder.last().unwrap();
        d[root] = d.iter().sum::<f64>(); // root as heavy as everything else
        o[root] = 1e9;
        let plain = simulate_tree_schedule(&sym, &d, &o, 4, None);
        let model = MoldableModel { efficiency: 0.9, ops_per_worker: 1e7 };
        let molded = simulate_tree_schedule(&sym, &d, &o, 4, Some(model));
        assert!(
            molded.makespan < plain.makespan,
            "molding should shorten the root bottleneck: {} vs {}",
            molded.makespan,
            plain.makespan
        );
    }

    #[test]
    fn four_thread_speedup_in_papers_range() {
        // The paper's 4-thread WSMP column shows 2.7–4.3× on 3-D problems.
        let sym = symbolic_3d();
        let (d, o) = uniform_durations(&sym);
        let model = MoldableModel { efficiency: 0.9, ops_per_worker: 1e4 };
        let r = simulate_tree_schedule(&sym, &d, &o, 4, Some(model));
        let s = r.speedup();
        assert!(s > 2.0 && s <= 4.0, "4-worker speedup {s}");
    }

    #[test]
    fn chain_tree_gains_only_from_molding() {
        // A pure chain (tridiagonal-like) has no tree parallelism at all.
        let a = laplacian_2d(60, 1, Stencil::Faces);
        let sym = analyze(&a, OrderingKind::Natural, None).symbolic;
        let d: Vec<f64> = vec![1.0; sym.num_supernodes()];
        let o: Vec<f64> = vec![1.0; sym.num_supernodes()];
        let r = simulate_tree_schedule(&sym, &d, &o, 4, None);
        assert!((r.makespan - r.serial_time).abs() < 1e-9, "chain must serialise");
    }

    #[test]
    fn utilization_at_most_one() {
        let sym = symbolic_3d();
        let (d, o) = uniform_durations(&sym);
        for w in [1, 2, 4] {
            let r = simulate_tree_schedule(&sym, &d, &o, w, Some(MoldableModel::default()));
            assert!(r.utilization() <= 1.0 + 1e-9);
            assert!(r.utilization() > 0.2);
        }
    }
}
