//! Parallel execution of the supernodal task DAG — both the *model* and
//! the *real thing*.
//!
//! Two complementary halves:
//!
//! 1. [`simulate_tree_schedule`] — the deterministic list-schedule model of
//!    the paper's Table VII (4-thread WSMP column, 2-thread/2-GPU row):
//!    per-worker virtual timelines, largest-bottom-level-first priorities,
//!    and moldable large tasks standing in for intra-front parallel BLAS.
//! 2. [`factor_permuted_parallel`] — a real wall-clock parallel numeric
//!    factorization on the `mf-runtime` work-stealing scheduler: every
//!    supernode is a task whose remaining-children counter releases the
//!    parent, child update matrices are buffered and extend-added in
//!    postorder child rank (so the factor is **bitwise identical** to
//!    [`factor_permuted`](crate::factor::factor_permuted) at every worker
//!    count), and a shared [`ThreadBudget`] arbitrates hardware threads
//!    between tree-level workers and the dense engine's column-slab
//!    threading. Large CPU fronts do not run as one monolithic task:
//!    their tile DAG (`assemble → potrf/trsm/syrk/gemm tiles → extract`)
//!    is spliced into the task graph so idle workers steal tile tasks
//!    *inside* the front instead of starving under the root.
//!
//! The model predicts; the runtime measures. `mf-bench`'s
//! `factor_parallel` bench writes both curves side by side
//! (`BENCH_factor.json`) so the simulated speedups stay honest.

use crate::factor::{
    fu_err_to_factor, process_supernode, CholeskyFactor, FactorError, FactorOptions, FrontStorage,
};
use crate::frontal::{
    assemble_front_into, charge_panel_extract, charge_update_extract, copy_update_packed,
    extract_panel_copy, extract_panel_into, ChildUpdate, Front,
};
use crate::fu::{
    dispatch_fu, enqueue_downloads, finish_fu, try_dispatch_gpu, FuContext, FuPending,
};
use crate::pinned_pool::PinnedPool;
use crate::policy::PolicyKind;
use crate::stats::{FactorStats, FuRecord, TaskKind, TaskRecord};
use crate::tile::{exec_tile_task, FrontView, TileKernel, TilePlan, TilingOptions};
use mf_dense::{FuFlops, Scalar};
use mf_gpusim::{exact_ops, CpuConfig, GpuUtilization, Machine};
use mf_runtime::{Runtime, TaskGraph, ThreadBudget};
use mf_sparse::symbolic::SymbolicFactor;
use mf_sparse::{Permutation, SymCsc};
use std::sync::Mutex;
use std::time::Instant;

/// Intra-task (moldable) parallelism model.
#[derive(Debug, Clone, Copy)]
pub struct MoldableModel {
    /// Parallel efficiency exponent: `p` workers give speedup `p^eff`.
    pub efficiency: f64,
    /// Op count granting one extra worker of useful width (caps tiny tasks
    /// at width 1).
    pub ops_per_worker: f64,
}

impl Default for MoldableModel {
    fn default() -> Self {
        MoldableModel { efficiency: 0.9, ops_per_worker: 2.0e7 }
    }
}

/// Outcome of a schedule simulation.
#[derive(Debug, Clone)]
pub struct ScheduleResult {
    /// Completion time of the last task.
    pub makespan: f64,
    /// Busy time per worker.
    pub busy: Vec<f64>,
    /// Serial time (Σ durations) for reference.
    pub serial_time: f64,
    /// Longest dependency chain (duration-weighted) — the lower bound no
    /// worker count can beat. By construction
    /// `critical_path ≤ makespan ≤ serial_time`.
    pub critical_path: f64,
}

impl ScheduleResult {
    /// Speedup over serial execution of the same task durations.
    pub fn speedup(&self) -> f64 {
        self.serial_time / self.makespan
    }

    /// Mean worker utilisation.
    pub fn utilization(&self) -> f64 {
        let busy: f64 = self.busy.iter().sum();
        busy / (self.makespan * self.busy.len() as f64)
    }
}

/// Simulate a list schedule of the supernodal tree with per-task durations
/// (`durations[sn]`, seconds) and per-task op counts (`ops[sn]`, for the
/// moldable width cap) on `workers` identical workers.
pub fn simulate_tree_schedule(
    symbolic: &SymbolicFactor,
    durations: &[f64],
    ops: &[f64],
    workers: usize,
    moldable: Option<MoldableModel>,
) -> ScheduleResult {
    let nsn = symbolic.num_supernodes();
    assert_eq!(durations.len(), nsn);
    assert_eq!(ops.len(), nsn);
    assert!(workers >= 1);
    let serial_time: f64 = durations.iter().sum();

    // Bottom level: longest downstream chain (task + ancestors) — the
    // classic priority for tree DAGs.
    let mut blevel = vec![0.0f64; nsn];
    for &sn in symbolic.postorder.iter().rev() {
        let parent = symbolic.supernodes[sn].parent;
        let up = if parent == usize::MAX { 0.0 } else { blevel[parent] };
        blevel[sn] = durations[sn] + up;
    }

    let mut pending_children: Vec<usize> = (0..nsn).map(|s| symbolic.children[s].len()).collect();
    let mut ready_time = vec![0.0f64; nsn];
    // Ready pool (small; linear scans are fine at our scale).
    let mut ready: Vec<usize> = (0..nsn).filter(|&s| pending_children[s] == 0).collect();
    let mut worker_free = vec![0.0f64; workers];
    let mut busy = vec![0.0f64; workers];
    let mut finish = vec![0.0f64; nsn];
    let mut scheduled = 0usize;

    while scheduled < nsn {
        // Highest-priority ready task.
        let (ri, &sn) = ready
            .iter()
            .enumerate()
            .max_by(|a, b| blevel[*a.1].total_cmp(&blevel[*b.1]))
            .expect("DAG must have a ready task");
        ready.swap_remove(ri);

        // Worker choice: earliest free. Moldable width: large fronts run
        // parallel BLAS across all workers (WSMP's intra-front parallelism),
        // capped by the task's op count — at the paper's million-row scale
        // tree parallelism carries the bottom of the tree, but near the root
        // (and at our scaled-down sizes, almost everywhere) molding is what
        // produces the multi-thread speedup.
        let mut order: Vec<usize> = (0..workers).collect();
        order.sort_by(|&a, &b| worker_free[a].total_cmp(&worker_free[b]));
        let width = match &moldable {
            Some(m) => {
                let cap = (ops[sn] / m.ops_per_worker).floor().max(1.0) as usize;
                cap.min(workers)
            }
            None => 1,
        };
        let chosen = &order[..width];
        // Task starts when the ready condition holds and all chosen workers
        // are free.
        let start = chosen.iter().map(|&w| worker_free[w]).fold(ready_time[sn], f64::max);
        let dur = match (&moldable, width > 1) {
            (Some(m), true) => durations[sn] / (width as f64).powf(m.efficiency),
            _ => durations[sn],
        };
        let end = start + dur;
        for &w in chosen {
            worker_free[w] = end;
            busy[w] += dur;
        }
        finish[sn] = end;
        scheduled += 1;

        let parent = symbolic.supernodes[sn].parent;
        if parent != usize::MAX {
            pending_children[parent] -= 1;
            ready_time[parent] = ready_time[parent].max(end);
            if pending_children[parent] == 0 {
                ready.push(parent);
            }
        }
    }

    let makespan = finish.iter().fold(0.0f64, |a, &b| a.max(b));
    let critical_path = blevel.iter().fold(0.0f64, |a, &b| a.max(b));
    ScheduleResult { makespan, busy, serial_time, critical_path }
}

/// Simulate a width-1 list schedule of the **combined** tree + tile task
/// DAG on `workers` identical workers — the model behind the
/// `tiled_vs_tree_speedup` numbers in `BENCH_factor.json`.
///
/// Every supernode the recorded run executed as CPU P1 whose shape yields
/// a plan under `tiling` is expanded into its tile tasks, with dims-only
/// durations from `cpu`'s kernel curves (the very same curves the drivers
/// charge, so the expansion's serial sum matches the recorded `total` up
/// to rounding). Unexpanded supernodes keep their recorded `total` as one
/// task. Durations follow [`durations_by_supernode`]'s convention (kernel
/// time only), making tree-only and tiled makespans directly comparable.
///
/// No molding: where [`simulate_tree_schedule`] needs the moldable-BLAS
/// *model* to fill idle workers near the root, the tile DAG provides that
/// parallelism explicitly — which is exactly the comparison the bench
/// draws.
pub fn simulate_tiled_schedule(
    symbolic: &SymbolicFactor,
    stats: &FactorStats,
    tiling: &TilingOptions,
    cpu: &CpuConfig,
    workers: usize,
) -> ScheduleResult {
    let nsn = symbolic.num_supernodes();
    assert!(workers >= 1);
    let mut policy: Vec<Option<PolicyKind>> = vec![None; nsn];
    let mut dur_sn = vec![0.0f64; nsn];
    for r in &stats.records {
        policy[r.sn] = Some(r.policy);
        dur_sn[r.sn] = r.total;
    }
    let mut plans: Vec<Option<TilePlan>> = vec![None; nsn];
    for sn in 0..nsn {
        if policy[sn] == Some(PolicyKind::P1) {
            let info = &symbolic.supernodes[sn];
            plans[sn] = tiling.plan(info.front_size(), info.k());
        }
    }

    // Flatten into one DAG: per supernode either a single node or its tile
    // tasks; tree edges connect a child's terminal nodes to the parent's
    // root node(s).
    let mut base = vec![0usize; nsn];
    let mut dur: Vec<f64> = Vec::new();
    let mut deps: Vec<Vec<usize>> = Vec::new();
    for sn in 0..nsn {
        base[sn] = dur.len();
        match &plans[sn] {
            None => {
                dur.push(dur_sn[sn]);
                deps.push(Vec::new());
            }
            Some(p) => {
                for idx in 0..p.len() {
                    let (kind, m, n, k) = p.charge_args(idx);
                    dur.push(cpu.kernels.curve(kind).time(exact_ops(kind, m, n, k)));
                    deps.push(p.deps[idx].iter().map(|&q| base[sn] + q as usize).collect());
                }
            }
        }
    }
    for sn in 0..nsn {
        let parent = symbolic.supernodes[sn].parent;
        if parent == usize::MAX {
            continue;
        }
        let child_exits: Vec<usize> = match &plans[sn] {
            None => vec![base[sn]],
            Some(p) => p.terminals().iter().map(|&t| base[sn] + t as usize).collect(),
        };
        match &plans[parent] {
            None => deps[base[parent]].extend(&child_exits),
            Some(p) => {
                for (idx, pre) in p.deps.iter().enumerate() {
                    if pre.is_empty() {
                        deps[base[parent] + idx].extend(&child_exits);
                    }
                }
            }
        }
    }

    let n = dur.len();
    let serial_time: f64 = dur.iter().sum();
    let mut indeg: Vec<usize> = deps.iter().map(|d| d.len()).collect();
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (t, pre) in deps.iter().enumerate() {
        for &q in pre {
            dependents[q].push(t);
        }
    }
    // Topological order (Kahn), then bottom levels in reverse.
    let mut topo: Vec<usize> = Vec::with_capacity(n);
    let mut queue: Vec<usize> = (0..n).filter(|&t| indeg[t] == 0).collect();
    let mut remaining = indeg.clone();
    while let Some(t) = queue.pop() {
        topo.push(t);
        for &d in &dependents[t] {
            remaining[d] -= 1;
            if remaining[d] == 0 {
                queue.push(d);
            }
        }
    }
    debug_assert_eq!(topo.len(), n, "combined DAG must be acyclic");
    let mut blevel = vec![0.0f64; n];
    for &t in topo.iter().rev() {
        let down = dependents[t].iter().map(|&d| blevel[d]).fold(0.0f64, f64::max);
        blevel[t] = dur[t] + down;
    }
    let critical_path = blevel.iter().fold(0.0f64, |a, &b| a.max(b));

    // Priority queue on (blevel, reverse id) — deterministic tie-break.
    struct Prio(f64, usize);
    impl PartialEq for Prio {
        fn eq(&self, o: &Self) -> bool {
            self.0 == o.0 && self.1 == o.1
        }
    }
    impl Eq for Prio {}
    impl PartialOrd for Prio {
        fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(o))
        }
    }
    impl Ord for Prio {
        fn cmp(&self, o: &Self) -> std::cmp::Ordering {
            self.0.total_cmp(&o.0).then(o.1.cmp(&self.1))
        }
    }
    let mut ready = std::collections::BinaryHeap::new();
    for t in 0..n {
        if indeg[t] == 0 {
            ready.push(Prio(blevel[t], t));
        }
    }
    let mut ready_time = vec![0.0f64; n];
    let mut worker_free = vec![0.0f64; workers];
    let mut busy = vec![0.0f64; workers];
    let mut makespan = 0.0f64;
    while let Some(Prio(_, t)) = ready.pop() {
        let w = (0..workers)
            .min_by(|&x, &y| worker_free[x].total_cmp(&worker_free[y]))
            .expect("at least one worker");
        let start = ready_time[t].max(worker_free[w]);
        let end = start + dur[t];
        worker_free[w] = end;
        busy[w] += dur[t];
        makespan = makespan.max(end);
        for &d in &dependents[t] {
            ready_time[d] = ready_time[d].max(end);
            indeg[d] -= 1;
            if indeg[d] == 0 {
                ready.push(Prio(blevel[d], d));
            }
        }
    }
    ScheduleResult { makespan, busy, serial_time, critical_path }
}

/// Per-supernode `(durations, ops)` vectors extracted from a recorded run —
/// exactly the inputs [`simulate_tree_schedule`] wants. The run must have
/// covered every supernode with `record_stats: true`; unrecorded supernodes
/// get zero duration.
pub fn durations_by_supernode(
    symbolic: &SymbolicFactor,
    stats: &FactorStats,
) -> (Vec<f64>, Vec<f64>) {
    let nsn = symbolic.num_supernodes();
    let mut durations = vec![0.0f64; nsn];
    let mut ops = vec![0.0f64; nsn];
    for r in &stats.records {
        durations[r.sn] = r.total;
        ops[r.sn] = FuFlops::new(r.m, r.k).total();
    }
    (durations, ops)
}

/// Options for the wall-clock parallel driver
/// [`factor_permuted_parallel`].
#[derive(Debug, Clone)]
pub struct ParallelOptions {
    /// Total hardware-thread budget shared between tree-level workers and
    /// the dense engine's column-slab threading. Each task grabs
    /// `budget / active_workers` kernel threads for its duration, so leaf
    /// phases (many small fronts in flight) run narrow kernels across many
    /// workers while the root front (last task standing) runs the full-width
    /// kernel alone. Defaults to the machine's available parallelism.
    pub thread_budget: usize,
}

impl Default for ParallelOptions {
    fn default() -> Self {
        let t = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        ParallelOptions { thread_budget: t }
    }
}

/// Per-worker mutable state for the parallel driver. Workers never share any
/// of this; the only cross-worker traffic is the buffered update-matrix
/// hand-off guarded by per-supernode mutexes.
struct WorkerCtx<'m, T> {
    machine: &'m mut Machine,
    pool: PinnedPool,
    /// This worker's index — stamped into [`TaskRecord`]s.
    wid: usize,
    /// `(postorder_rank, record)` pairs, merged into postorder at the end.
    records: Vec<(usize, FuRecord)>,
    /// Per-task records at tile granularity, merged at the end.
    tasks: Vec<TaskRecord>,
    oom: usize,
    /// Reusable front storage sized to the largest front in the tree
    /// (arena mode; empty in the per-front heap reference mode).
    front_buf: Vec<T>,
    /// Reusable extend-add row-relocation scratch.
    rel: Vec<usize>,
    /// Largest front (scalars) this worker assembled.
    peak_front: usize,
    /// Front-storage heap allocations this worker performed.
    allocs: u64,
    /// Pipelined mode: this worker's fronts with downloads still
    /// outstanding on its own device — `(sn, pending, (s, k, m))`, oldest
    /// first. Data is already extracted (the simulator computes numerics
    /// eagerly); only the d2h completion wait and the extraction charges
    /// are deferred.
    inflight: Vec<(usize, FuPending, (usize, usize, usize))>,
}

/// Finish one of a worker's in-flight fronts: host waits on its `done`
/// event, device buffers free, and the deferred extraction charges land in
/// the drain driver's per-front order.
fn finish_worker_inflight<T: Scalar>(
    machine: &mut Machine,
    pool: &mut PinnedPool,
    opts: &FactorOptions,
    mut pending: FuPending,
    (s, k, m): (usize, usize, usize),
) {
    let mut ctx = FuContext {
        machine: &mut *machine,
        pool,
        panel_width: opts.panel_width,
        copy_optimized: opts.copy_optimized,
        timing_only: false,
        kernel_threads: None,
        tiling: opts.tiling,
    };
    finish_fu(&mut pending, &mut ctx);
    charge_panel_extract::<T>(s, k, &mut machine.host);
    charge_update_extract::<T>(m, &mut machine.host);
}

/// Raw-pointer view of the factor slab letting workers write their
/// supernode's panel region directly. Sound because panel regions are
/// pairwise disjoint (`panel_ptr` is a prefix sum), each region is written
/// by exactly the worker running that supernode, and nothing reads the slab
/// until the runtime joins its workers.
struct SharedSlab<T> {
    ptr: *mut T,
    len: usize,
}

unsafe impl<T: Send> Send for SharedSlab<T> {}
unsafe impl<T: Send> Sync for SharedSlab<T> {}

impl<T> SharedSlab<T> {
    fn new(slab: &mut [T]) -> Self {
        SharedSlab { ptr: slab.as_mut_ptr(), len: slab.len() }
    }

    /// Mutable view of `off..off + len`.
    ///
    /// # Safety
    /// The caller must guarantee no other live reference overlaps the
    /// range — here, the task graph runs each supernode exactly once and
    /// panel ranges never overlap.
    #[allow(clippy::mut_from_ref)]
    unsafe fn slice_mut(&self, off: usize, len: usize) -> &mut [T] {
        debug_assert!(off + len <= self.len);
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(off), len) }
    }
}

/// Factor an already-permuted matrix in parallel across the elimination
/// tree, one worker thread per entry of `machines`.
///
/// The supernodal task DAG (child supernodes block their parent) runs on the
/// `mf-runtime` work-stealing scheduler. Each worker owns one [`Machine`]
/// (its simulated CPU+GPU node) and one [`PinnedPool`]; child update
/// matrices are buffered per supernode and consumed by the parent's
/// extend-add in postorder child rank — the same order and the same
/// [`process_supernode`] body as the serial driver, which makes the result
/// **bitwise identical** to [`crate::factor::factor_permuted`] at every
/// worker count.
///
/// Fronts the serial driver would run through the canonical tiled CPU body
/// (P1-selected, at or above [`crate::tile::TilingOptions::min_front`],
/// non-pipelined) are expanded in the task graph into their
/// [`TilePlan`]'s tile DAG bracketed by assemble/extract tasks; tile tasks
/// are pushed onto the executing worker's own deque and stolen by idle
/// siblings. The plan's dependency lists fix the per-tile reduction order
/// (updates applied in ascending pivot-tile order), so the factor bits
/// never depend on the schedule.
///
/// Returned [`FactorStats`]: `records` are merged back into postorder,
/// `total_time` is the maximum per-worker simulated clock, and `wall_time`
/// is the real measured wall-clock of this call — the quantity the
/// `factor_parallel` bench compares against [`simulate_tree_schedule`]'s
/// predicted makespan.
pub fn factor_permuted_parallel<T: Scalar>(
    a: &SymCsc<T>,
    symbolic: &SymbolicFactor,
    perm: &Permutation,
    machines: &mut [Machine],
    opts: &FactorOptions,
    par: &ParallelOptions,
) -> Result<(CholeskyFactor<T>, FactorStats), FactorError> {
    let workers = machines.len();
    assert!(workers >= 1, "need at least one worker machine");
    // Multi-device runs route to the cooperative multi-GPU driver: devices
    // are dealt round-robin over the GPU-bearing machines, and
    // `ParallelOptions` (a tree-level work-stealing knob) does not apply.
    if opts.memory_budget.is_none()
        && opts.devices.count > 1
        && opts.pipeline.enabled
        && machines.iter().any(|m| m.gpu.is_some())
    {
        return crate::multigpu::factor_permuted_parallel_multigpu(
            a, symbolic, perm, machines, opts,
        );
    }
    let nsn = symbolic.num_supernodes();
    let wall0 = Instant::now();

    // Budgeted runs consume the same deterministic out-of-core schedule as
    // the serial driver: the plan decides residency and which blocks get
    // ladder-degraded; workers only replay its transfers and apply its
    // flags, so the factor bits cannot depend on worker count.
    let ooc_plan = match opts.memory_budget {
        Some(budget) => {
            Some(crate::ooc::plan_ooc(symbolic, T::BYTES, budget, opts.ladder, &opts.tiers)?)
        }
        None => None,
    };

    // Postorder rank of each supernode: its execution position in the
    // serial driver. Used to merge stats and to pick the serial-first error.
    let mut rank = vec![0usize; nsn];
    for (r, &sn) in symbolic.postorder.iter().enumerate() {
        rank[sn] = r;
    }
    let parents: Vec<usize> = symbolic.supernodes.iter().map(|s| s.parent).collect();

    // Pipelined dispatch (per worker, against its own device). Per-call
    // records are not collected in this mode — with fronts overlapping on
    // the device, per-front time attribution is ill-defined. A memory
    // budget forces the drain schedule (see `factor_permuted`).
    let pipelined = opts.pipeline.enabled && ooc_plan.is_none();

    // Intra-front tile expansion: fronts the serial driver runs through the
    // canonical tiled CPU body (`fu_p1` at or above the tiling threshold)
    // get their tile DAG spliced into the task graph, so idle workers steal
    // *inside* the front instead of starving under the root. Eligibility is
    // decided from the symbolic structure and the policy selector alone —
    // deterministic and known before the run starts.
    let mut plans: Vec<Option<TilePlan>> = vec![None; nsn];
    if !pipelined && opts.tiling.enabled {
        for (sn, plan) in plans.iter_mut().enumerate() {
            let info = &symbolic.supernodes[sn];
            if opts.selector.choose(sn, info.m(), info.k()) == PolicyKind::P1 {
                *plan = opts.tiling.plan(info.front_size(), info.k());
            }
        }
    }

    /// One node of the combined tree + tile task graph.
    #[derive(Clone, Copy)]
    enum NodeTask {
        /// An unexpanded supernode: assemble + factor-update + extract.
        Whole(usize),
        /// Assembly (extend-add) of an expanded front.
        Assemble(usize),
        /// Tile task `idx` of an expanded front's [`TilePlan`].
        Tile(usize, u32),
        /// Panel/update extraction of an expanded front — the exit barrier
        /// its parent's entry task waits on.
        Extract(usize),
    }

    // Node ids: each unexpanded supernode is one `Whole` node; an expanded
    // supernode contributes `Assemble`, its tile tasks (plan order), then
    // `Extract`, contiguously. Tree edges connect a child's exit node to
    // its parent's entry node; tile-DAG edges are the plan's dependency
    // lists shifted to graph ids.
    let mut node_of: Vec<NodeTask> = Vec::new();
    let mut entry_of = vec![0usize; nsn];
    for sn in 0..nsn {
        entry_of[sn] = node_of.len();
        match &plans[sn] {
            None => node_of.push(NodeTask::Whole(sn)),
            Some(p) => {
                node_of.push(NodeTask::Assemble(sn));
                for t in 0..p.len() as u32 {
                    node_of.push(NodeTask::Tile(sn, t));
                }
                node_of.push(NodeTask::Extract(sn));
            }
        }
    }
    let exit_of = |sn: usize| entry_of[sn] + plans[sn].as_ref().map_or(0, |p| p.len() + 1);
    let sn_of = |t: usize| match node_of[t] {
        NodeTask::Whole(sn)
        | NodeTask::Assemble(sn)
        | NodeTask::Tile(sn, _)
        | NodeTask::Extract(sn) => sn,
    };
    let mut graph = TaskGraph::new(node_of.len());
    for sn in 0..nsn {
        if parents[sn] != usize::MAX {
            graph.add_dependency(entry_of[parents[sn]], exit_of(sn));
        }
        if let Some(p) = &plans[sn] {
            let base = entry_of[sn] + 1;
            for (t, pre) in p.deps.iter().enumerate() {
                if pre.is_empty() {
                    graph.add_dependency(base + t, entry_of[sn]);
                }
                for &q in pre {
                    graph.add_dependency(base + t, base + q as usize);
                }
            }
            let exit = exit_of(sn);
            for t in p.terminals() {
                graph.add_dependency(exit, base + t as usize);
            }
        }
    }
    let graph = graph;

    // Factor storage: one contiguous slab; workers write their supernode's
    // panel region in place (regions are disjoint by construction).
    let panel_ptr = symbolic.panel_ptr();
    let mut slab = vec![T::ZERO; symbolic.factor_slab_len()];
    let slab_view = SharedSlab::new(&mut slab);

    // Dedicated storage for expanded fronts. Tile tasks on several workers
    // address one front concurrently, so these fronts cannot live in any
    // single worker's reusable buffer: each gets its own heap buffer behind
    // a raw [`FrontView`] for the whole run (assembly and extraction bound
    // its actual lifetime through the task graph).
    let mut tile_bufs: Vec<Vec<T>> = Vec::new();
    let mut views: Vec<Option<FrontView<T>>> = vec![None; nsn];
    for sn in 0..nsn {
        if let Some(p) = &plans[sn] {
            let mut buf = vec![T::ZERO; p.s * p.s];
            views[sn] = Some(FrontView::new(&mut buf, p.s));
            tile_bufs.push(buf);
        }
    }

    let arena_mode = opts.front_storage == FrontStorage::Arena;

    // Hand-off buffers. A child's slot is written exactly once (by the
    // worker that ran the child) and taken exactly once (by the worker that
    // runs the parent, after the dependency counter ordered the two), so
    // the mutexes are uncontended in practice. Cross-worker updates cannot
    // obey one worker's stack discipline, so they travel in transient
    // per-edge buffers dropped after the parent's extend-add (the system
    // allocator's thread cache recycles them more cheaply than an explicit
    // free list here); update rows come from the shared symbolic structure.
    let updates: Vec<Mutex<Option<Vec<T>>>> = (0..nsn).map(|_| Mutex::new(None)).collect();

    let budget = ThreadBudget::new(par.thread_budget);
    let saved_cap = mf_dense::thread_cap();

    let states: Vec<WorkerCtx<'_, T>> = machines
        .iter_mut()
        .enumerate()
        .map(|(wid, machine)| {
            machine.set_recording(opts.record_stats && !(pipelined && machine.gpu.is_some()));
            let pool =
                if opts.pinned_reuse { PinnedPool::new(2) } else { PinnedPool::without_reuse(2) };
            WorkerCtx {
                machine,
                pool,
                wid,
                records: Vec::new(),
                tasks: Vec::new(),
                oom: 0,
                front_buf: Vec::new(),
                rel: Vec::new(),
                peak_front: 0,
                allocs: 0,
                inflight: Vec::new(),
            }
        })
        .collect();

    let runtime = Runtime::new(workers);
    let (mut states, errors) = runtime.run(&graph, states, |st: &mut WorkerCtx<'_, T>, t| {
        // Budgeted runs replay the supernode's planned spill transfers on
        // the executing worker's clock at its entry task.
        if let Some(plan) = &ooc_plan {
            if let NodeTask::Whole(sn) | NodeTask::Assemble(sn) = node_of[t] {
                crate::factor::replay_step_io(plan, plan.rank[sn], st.machine, opts);
            }
        }
        let sn = match node_of[t] {
            NodeTask::Whole(sn) => sn,
            NodeTask::Assemble(sn) => {
                // Gather buffered child updates in postorder child rank and
                // extend-add into the front's dedicated buffer — exactly the
                // serial assembly, just hoisted into its own task so tile
                // tasks can start the moment it completes.
                let info = &symbolic.supernodes[sn];
                let kids = &symbolic.children[sn];
                let mut child_bufs: Vec<(usize, Vec<T>)> = Vec::with_capacity(kids.len());
                for &c in kids {
                    let taken =
                        updates[c].lock().unwrap_or_else(|poison| poison.into_inner()).take();
                    match taken {
                        Some(u) => child_bufs.push((c, u)),
                        None => return Err(FactorError::WorkerLost { supernode: sn }),
                    }
                }
                let children = child_bufs.iter().map(|(c, d)| {
                    let ci = &symbolic.supernodes[*c];
                    let cm = ci.m();
                    ChildUpdate { rows: ci.update_rows(), data: &d[..cm * cm] }
                });
                let view = views[sn].expect("expanded front has a view");
                // SAFETY: the task graph orders this task before every tile
                // task of `sn`; nothing else touches the buffer yet.
                let front_data = unsafe { view.as_mut_slice() };
                let t0 = st.machine.host.now();
                assemble_front_into(
                    a,
                    info,
                    children,
                    front_data,
                    &mut st.rel,
                    &mut st.machine.host,
                );
                if opts.record_stats {
                    let _ = st.machine.take_records();
                    st.tasks.push(TaskRecord {
                        sn,
                        worker: st.wid,
                        kind: TaskKind::Assemble,
                        seq: 0,
                        duration: st.machine.host.now() - t0,
                    });
                }
                return Ok(());
            }
            NodeTask::Tile(sn, idx) => {
                let plan = plans[sn].as_ref().expect("expanded front has a plan");
                let view = views[sn].expect("expanded front has a view");
                let idx = idx as usize;
                // Tile kernels thread through the dense engine's global cap,
                // arbitrated by the same budget as whole-supernode tasks —
                // the two parallelism layers never oversubscribe.
                let width = budget.begin();
                mf_dense::set_num_threads(width);
                // SAFETY: the graph embeds the plan's dependency lists, so
                // every task ordered against `idx` has completed and no
                // conflicting task runs concurrently.
                let r = unsafe { exec_tile_task(view, plan, idx, &mut st.machine.host, false) };
                budget.end();
                if opts.record_stats {
                    let _ = st.machine.take_records();
                }
                match r {
                    Ok(duration) => {
                        if opts.record_stats {
                            let kind = match plan.tasks[idx] {
                                TileKernel::Potrf { .. } => TaskKind::Potrf,
                                TileKernel::Trsm { .. } => TaskKind::Trsm,
                                TileKernel::Syrk { .. } => TaskKind::Syrk,
                                TileKernel::Gemm { .. } => TaskKind::Gemm,
                            };
                            st.tasks.push(TaskRecord {
                                sn,
                                worker: st.wid,
                                kind,
                                seq: idx + 1,
                                duration,
                            });
                        }
                        return Ok(());
                    }
                    Err(e) => {
                        return Err(fu_err_to_factor(symbolic.supernodes[sn].col_start, e));
                    }
                }
            }
            NodeTask::Extract(sn) => {
                let info = &symbolic.supernodes[sn];
                let (s, k, m) = (info.front_size(), info.k(), info.m());
                let plan_len = plans[sn].as_ref().expect("expanded front has a plan").len();
                let view = views[sn].expect("expanded front has a view");
                // SAFETY: ordered after every tile task of `sn`; the buffer
                // is this task's alone from here on.
                let front_data = unsafe { view.as_mut_slice() };
                // SAFETY: this supernode's panel region belongs to this
                // task alone.
                let panel_out = unsafe {
                    slab_view.slice_mut(panel_ptr[sn], panel_ptr[sn + 1] - panel_ptr[sn])
                };
                let t0 = st.machine.host.now();
                {
                    let front = Front { s, k, data: &mut *front_data };
                    extract_panel_into(&front, panel_out, &mut st.machine.host);
                }
                if let Some(plan) = &ooc_plan {
                    if plan.degrade_panel[sn] {
                        opts.ladder.degrade_slice(panel_out);
                    }
                }
                charge_update_extract::<T>(m, &mut st.machine.host);
                if m > 0 {
                    st.allocs += 1;
                    let mut u = vec![T::ZERO; m * m];
                    copy_update_packed(front_data, s, k, &mut u);
                    if let Some(plan) = &ooc_plan {
                        if plan.degrade_update[sn] {
                            opts.ladder.degrade_slice(&mut u);
                        }
                    }
                    *updates[sn].lock().unwrap_or_else(|poison| poison.into_inner()) = Some(u);
                }
                if opts.record_stats {
                    let _ = st.machine.take_records();
                    st.tasks.push(TaskRecord {
                        sn,
                        worker: st.wid,
                        kind: TaskKind::Extract,
                        seq: plan_len + 1,
                        duration: st.machine.host.now() - t0,
                    });
                }
                return Ok(());
            }
        };
        let info = &symbolic.supernodes[sn];
        let (s, k, m) = (info.front_size(), info.k(), info.m());
        // Gather buffered child updates in postorder child rank — the order
        // the serial driver consumes them, which keeps the extend-add
        // reduction (and hence the factor bits) identical. The dependency
        // counters guarantee every slot is filled before this task runs; a
        // missing or poisoned slot means a worker died mid-task, which is
        // surfaced as a structured error (still selected by minimal
        // postorder rank below) rather than a cascading panic.
        let kids = &symbolic.children[sn];
        if pipelined && st.machine.gpu.is_some() {
            // Event-wait on this worker's in-flight fronts that are
            // children of `sn` — a wait on each child's d2h completion
            // event, not a device drain. Children run by other workers
            // carry no timing edge here: worker timelines are independent,
            // exactly as in the drain parallel driver.
            let mut j = 0;
            while j < st.inflight.len() {
                if kids.contains(&st.inflight[j].0) {
                    let (_, pending, dims) = st.inflight.remove(j);
                    finish_worker_inflight::<T>(st.machine, &mut st.pool, opts, pending, dims);
                } else {
                    j += 1;
                }
            }
        }
        let mut child_bufs: Vec<(usize, Vec<T>)> = Vec::with_capacity(kids.len());
        for &c in kids {
            let taken = updates[c].lock().unwrap_or_else(|poison| poison.into_inner()).take();
            match taken {
                Some(u) => child_bufs.push((c, u)),
                None => return Err(FactorError::WorkerLost { supernode: sn }),
            }
        }
        let mut heap_front = if arena_mode {
            Vec::new()
        } else {
            st.allocs += 1;
            vec![T::ZERO; s * s]
        };
        let front_data: &mut [T] = if arena_mode {
            // Grow this worker's reusable buffer to the largest front it has
            // seen — most workers never run the root, so lazy growth keeps
            // each buffer at its own subtree's maximum. Reuse without
            // re-zeroing is safe: assembly re-zeroes the lower trapezoid it
            // references and nothing reads the rest.
            if st.front_buf.len() < s * s {
                st.allocs += 1;
                st.front_buf = vec![T::ZERO; s * s];
            }
            &mut st.front_buf[..s * s]
        } else {
            &mut heap_front
        };
        st.peak_front = st.peak_front.max(s * s);
        // SAFETY: this supernode's panel region belongs to this task alone.
        let panel_out =
            unsafe { slab_view.slice_mut(panel_ptr[sn], panel_ptr[sn + 1] - panel_ptr[sn]) };
        let children = child_bufs.iter().map(|(c, d)| {
            let ci = &symbolic.supernodes[*c];
            let cm = ci.m();
            ChildUpdate { rows: ci.update_rows(), data: &d[..cm * cm] }
        });
        let width = budget.begin();
        if pipelined && st.machine.gpu.is_some() {
            // Pipelined per-worker dispatch: phases 1+2 run here; the
            // host-blocking phase 3 is deferred until a dependent task, the
            // depth limit, or the end-of-run drain forces it — so this
            // worker's CPU work on later tasks overlaps its own device.
            let mut front = assemble_front_into(
                a,
                info,
                children,
                &mut *front_data,
                &mut st.rel,
                &mut st.machine.host,
            );
            let policy = opts.selector.choose(sn, m, k);
            let dispatched = {
                let mut ctx = FuContext {
                    machine: &mut *st.machine,
                    pool: &mut st.pool,
                    panel_width: opts.panel_width,
                    copy_optimized: opts.copy_optimized,
                    timing_only: false,
                    kernel_threads: Some(width),
                    tiling: opts.tiling,
                };
                try_dispatch_gpu(&mut front, policy, &mut ctx)
            };
            let dispatched = match dispatched {
                Ok(d) => d,
                Err(e) => {
                    budget.end();
                    return Err(fu_err_to_factor(info.col_start, e));
                }
            };
            let mut pending = match dispatched {
                Some(p) => p,
                None => {
                    // Device OOM: reach the drain driver's empty-device
                    // state on this worker's device before retrying, so
                    // P1-fallback decisions match it.
                    while !st.inflight.is_empty() {
                        let (_, p, dims) = st.inflight.remove(0);
                        finish_worker_inflight::<T>(st.machine, &mut st.pool, opts, p, dims);
                    }
                    let retried = {
                        let mut ctx = FuContext {
                            machine: &mut *st.machine,
                            pool: &mut st.pool,
                            panel_width: opts.panel_width,
                            copy_optimized: opts.copy_optimized,
                            timing_only: false,
                            kernel_threads: Some(width),
                            tiling: opts.tiling,
                        };
                        dispatch_fu(&mut front, policy, &mut ctx)
                    };
                    match retried {
                        Ok(p) => p,
                        Err(e) => {
                            budget.end();
                            return Err(fu_err_to_factor(info.col_start, e));
                        }
                    }
                }
            };
            {
                let mut ctx = FuContext {
                    machine: &mut *st.machine,
                    pool: &mut st.pool,
                    panel_width: opts.panel_width,
                    copy_optimized: opts.copy_optimized,
                    timing_only: false,
                    kernel_threads: Some(width),
                    tiling: opts.tiling,
                };
                enqueue_downloads(&mut front, &mut pending, &mut ctx);
            }
            budget.end();
            if pending.oom_fallback() {
                st.oom += 1;
            }
            // Extract now — the data exists (the simulator computes
            // numerics eagerly at enqueue); only time is outstanding. The
            // charge split matches the serial pipelined driver: inline for
            // fronts with nothing outstanding, deferred to finish for the
            // rest.
            let outstanding = !pending.is_done();
            if outstanding {
                extract_panel_copy(&front, panel_out);
            } else {
                extract_panel_into(&front, panel_out, &mut st.machine.host);
                charge_update_extract::<T>(m, &mut st.machine.host);
            }
            if m > 0 {
                st.allocs += 1;
                let mut u = vec![T::ZERO; m * m];
                copy_update_packed(front_data, s, k, &mut u);
                *updates[sn].lock().unwrap_or_else(|poison| poison.into_inner()) = Some(u);
            }
            if outstanding {
                st.inflight.push((sn, pending, (s, k, m)));
                while st.inflight.len() > opts.pipeline.depth {
                    let (_, p, dims) = st.inflight.remove(0);
                    finish_worker_inflight::<T>(st.machine, &mut st.pool, opts, p, dims);
                }
            }
            return Ok(());
        }
        let out = process_supernode(
            a,
            symbolic,
            sn,
            children,
            front_data,
            panel_out,
            &mut st.rel,
            st.machine,
            &mut st.pool,
            opts,
            Some(width),
        );
        budget.end();
        let out = out?;
        if out.oom_fallback {
            st.oom += 1;
        }
        if let Some(rec) = out.record {
            st.tasks.push(TaskRecord {
                sn,
                worker: st.wid,
                kind: TaskKind::Whole,
                seq: 0,
                duration: rec.total,
            });
            st.records.push((rank[sn], rec));
        }
        if let Some(plan) = &ooc_plan {
            if plan.degrade_panel[sn] {
                opts.ladder.degrade_slice(panel_out);
            }
        }
        if m > 0 {
            st.allocs += 1;
            let mut u = vec![T::ZERO; m * m];
            copy_update_packed(front_data, s, k, &mut u);
            if let Some(plan) = &ooc_plan {
                if plan.degrade_update[sn] {
                    opts.ladder.degrade_slice(&mut u);
                }
            }
            *updates[sn].lock().unwrap_or_else(|poison| poison.into_inner()) = Some(u);
        }
        Ok(())
    });

    // Workers widened the process-global dense-engine cap while running;
    // restore whatever the caller had configured.
    mf_dense::set_num_threads(saved_cap);

    // Pipelined mode: drain any fronts still in flight (timing only — the
    // data landed at enqueue time), so per-worker clocks include their d2h
    // completions.
    for st in states.iter_mut() {
        while !st.inflight.is_empty() {
            let (_, p, dims) = st.inflight.remove(0);
            finish_worker_inflight::<T>(st.machine, &mut st.pool, opts, p, dims);
        }
    }

    // front_alloc_events starts at 1 for the factor slab, plus one
    // dedicated buffer per tile-expanded front.
    let mut stats =
        FactorStats { front_alloc_events: 1 + tile_bufs.len() as u64, ..Default::default() };
    for p in plans.iter().flatten() {
        stats.peak_front_bytes = stats.peak_front_bytes.max(p.s * p.s * T::BYTES);
    }
    for st in states.iter_mut() {
        stats.total_time = stats.total_time.max(st.machine.elapsed());
        stats.oom_fallbacks += st.oom;
        stats.peak_front_bytes = stats.peak_front_bytes.max(st.peak_front * T::BYTES);
        stats.front_alloc_events += st.allocs;
        st.machine.set_recording(false);
    }
    // Aggregate GPU engine accounting across worker devices, measured
    // against the run's makespan (busy seconds sum; `gpus` counts devices,
    // so utilization stays normalised per engine).
    stats.gpu = states.iter().fold(None::<GpuUtilization>, |acc, st| {
        match (acc, st.machine.gpu.as_ref()) {
            (None, Some(g)) => Some(g.utilization(stats.total_time)),
            (Some(mut u), Some(g)) => {
                u.merge(&g.utilization(stats.total_time));
                Some(u)
            }
            (acc, None) => acc,
        }
    });
    // On failure report the error the serial driver would have hit first:
    // minimal postorder rank, then minimal task id — within one expanded
    // front task ids follow the canonical tile order, and the pivot-tile
    // chain guarantees the earliest failing pivot tile is the one that ran.
    if let Some((_, err)) = errors.into_iter().min_by_key(|&(t, _)| (rank[sn_of(t)], t)) {
        return Err(err);
    }
    // Synthesize one FuRecord per expanded front from its task records so
    // `records` covers every supernode exactly as the serial driver does:
    // kernel buckets summed by kind, `total` the sum of tile-kernel
    // durations (the serial body's t0→t1 span), extraction excluded
    // (`t_copy = 0` on the CPU path, as in the serial record).
    let mut task_records: Vec<TaskRecord> =
        states.iter_mut().flat_map(|st| std::mem::take(&mut st.tasks)).collect();
    task_records.sort_by(|x, y| (rank[x.sn], x.seq).cmp(&(rank[y.sn], y.seq)));
    let mut synth: Vec<(usize, FuRecord)> = Vec::new();
    let mut i = 0;
    while i < task_records.len() {
        let sn = task_records[i].sn;
        let mut j = i;
        while j < task_records.len() && task_records[j].sn == sn {
            j += 1;
        }
        if plans[sn].is_some() {
            let info = &symbolic.supernodes[sn];
            let mut rec = FuRecord {
                sn,
                m: info.m(),
                k: info.k(),
                policy: PolicyKind::P1,
                total: 0.0,
                t_potrf: 0.0,
                t_trsm: 0.0,
                t_syrk: 0.0,
                t_copy: 0.0,
                t_assemble: 0.0,
            };
            for t in &task_records[i..j] {
                match t.kind {
                    TaskKind::Assemble => rec.t_assemble += t.duration,
                    TaskKind::Potrf => {
                        rec.t_potrf += t.duration;
                        rec.total += t.duration;
                    }
                    TaskKind::Trsm => {
                        rec.t_trsm += t.duration;
                        rec.total += t.duration;
                    }
                    TaskKind::Syrk | TaskKind::Gemm => {
                        rec.t_syrk += t.duration;
                        rec.total += t.duration;
                    }
                    TaskKind::Whole | TaskKind::Extract => {}
                }
            }
            synth.push((rank[sn], rec));
        }
        i = j;
    }
    stats.tasks = task_records;
    let mut buffers: Vec<Vec<(usize, FuRecord)>> =
        states.iter_mut().map(|st| std::mem::take(&mut st.records)).collect();
    buffers.push(synth);
    stats.merge_worker_records(buffers);
    stats.ooc = ooc_plan.map(|p| p.stats);
    stats.wall_time = wall0.elapsed().as_secs_f64();
    drop(states);
    drop(tile_bufs);

    Ok((CholeskyFactor { symbolic: symbolic.clone(), perm: perm.clone(), slab, panel_ptr }, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_matgen::{laplacian_2d, laplacian_3d, Stencil};
    use mf_sparse::symbolic::analyze;
    use mf_sparse::{AmalgamationOptions, OrderingKind};

    fn symbolic_3d() -> SymbolicFactor {
        let a = laplacian_3d(8, 8, 8, Stencil::Faces);
        analyze(&a, OrderingKind::NestedDissection, Some(&AmalgamationOptions::default()))
            .unwrap()
            .symbolic
    }

    fn uniform_durations(sym: &SymbolicFactor) -> (Vec<f64>, Vec<f64>) {
        let d: Vec<f64> = sym.supernodes.iter().map(|s| 1e-4 + s.flops().total() / 1e10).collect();
        let o: Vec<f64> = sym.supernodes.iter().map(|s| s.flops().total()).collect();
        (d, o)
    }

    #[test]
    fn one_worker_equals_serial() {
        let sym = symbolic_3d();
        let (d, o) = uniform_durations(&sym);
        let r = simulate_tree_schedule(&sym, &d, &o, 1, None);
        assert!((r.makespan - r.serial_time).abs() < 1e-9);
        assert!((r.speedup() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn more_workers_never_slower() {
        let sym = symbolic_3d();
        let (d, o) = uniform_durations(&sym);
        let mut prev = f64::INFINITY;
        for w in [1, 2, 4, 8] {
            let r = simulate_tree_schedule(&sym, &d, &o, w, None);
            assert!(r.makespan <= prev + 1e-12, "{w} workers slower");
            prev = r.makespan;
        }
    }

    #[test]
    fn speedup_bounded_by_critical_path_without_molding() {
        let sym = symbolic_3d();
        let (d, o) = uniform_durations(&sym);
        // Critical path = max over leaves of root-to-leaf duration chain.
        let mut cp = vec![0.0f64; sym.num_supernodes()];
        for &sn in sym.postorder.iter().rev() {
            let p = sym.supernodes[sn].parent;
            cp[sn] = d[sn] + if p == usize::MAX { 0.0 } else { cp[p] };
        }
        let critical: f64 = cp.iter().fold(0.0f64, |a, &b| a.max(b));
        let r = simulate_tree_schedule(&sym, &d, &o, 64, None);
        assert!(r.makespan >= critical - 1e-12);
    }

    #[test]
    fn molding_beats_tree_only_parallelism() {
        // Craft a workload whose root front dominates (the situation near
        // the top of a large 3-D elimination tree): molding must shorten it.
        let sym = symbolic_3d();
        let (mut d, mut o) = uniform_durations(&sym);
        let root = *sym.postorder.last().unwrap();
        d[root] = d.iter().sum::<f64>(); // root as heavy as everything else
        o[root] = 1e9;
        let plain = simulate_tree_schedule(&sym, &d, &o, 4, None);
        let model = MoldableModel { efficiency: 0.9, ops_per_worker: 1e7 };
        let molded = simulate_tree_schedule(&sym, &d, &o, 4, Some(model));
        assert!(
            molded.makespan < plain.makespan,
            "molding should shorten the root bottleneck: {} vs {}",
            molded.makespan,
            plain.makespan
        );
    }

    #[test]
    fn four_thread_speedup_in_papers_range() {
        // The paper's 4-thread WSMP column shows 2.7–4.3× on 3-D problems.
        let sym = symbolic_3d();
        let (d, o) = uniform_durations(&sym);
        let model = MoldableModel { efficiency: 0.9, ops_per_worker: 1e4 };
        let r = simulate_tree_schedule(&sym, &d, &o, 4, Some(model));
        let s = r.speedup();
        assert!(s > 2.0 && s <= 4.0, "4-worker speedup {s}");
    }

    #[test]
    fn chain_tree_gains_only_from_molding() {
        // A pure chain (tridiagonal-like) has no tree parallelism at all.
        let a = laplacian_2d(60, 1, Stencil::Faces);
        let sym = analyze(&a, OrderingKind::Natural, None).unwrap().symbolic;
        let d: Vec<f64> = vec![1.0; sym.num_supernodes()];
        let o: Vec<f64> = vec![1.0; sym.num_supernodes()];
        let r = simulate_tree_schedule(&sym, &d, &o, 4, None);
        assert!((r.makespan - r.serial_time).abs() < 1e-9, "chain must serialise");
    }

    #[test]
    fn utilization_at_most_one() {
        let sym = symbolic_3d();
        let (d, o) = uniform_durations(&sym);
        for w in [1, 2, 4] {
            let r = simulate_tree_schedule(&sym, &d, &o, w, Some(MoldableModel::default()));
            assert!(r.utilization() <= 1.0 + 1e-9);
            assert!(r.utilization() > 0.2);
        }
    }

    use crate::factor::factor_permuted;
    use crate::policy::BaselineThresholds;
    use crate::PolicySelector;

    fn machines(n: usize) -> Vec<Machine> {
        (0..n).map(|_| Machine::paper_node()).collect()
    }

    #[test]
    fn parallel_factor_is_bitwise_serial() {
        let a = laplacian_2d(14, 11, Stencil::Faces);
        let analysis =
            analyze(&a, OrderingKind::NestedDissection, Some(&AmalgamationOptions::default()))
                .unwrap();
        let opts = FactorOptions {
            selector: PolicySelector::Baseline(BaselineThresholds::default()),
            record_stats: true,
            ..Default::default()
        };
        let mut serial = Machine::paper_node();
        let (fs, ss) = factor_permuted(
            &analysis.permuted.0,
            &analysis.symbolic,
            &analysis.perm,
            &mut serial,
            &opts,
        )
        .unwrap();
        for w in [1usize, 3] {
            let mut ms = machines(w);
            let (fp, sp) = factor_permuted_parallel(
                &analysis.permuted.0,
                &analysis.symbolic,
                &analysis.perm,
                &mut ms,
                &opts,
                &ParallelOptions { thread_budget: 2 },
            )
            .unwrap();
            assert_eq!(fs.slab.len(), fp.slab.len());
            assert!(fs.slab.iter().zip(&fp.slab).all(|(x, y)| x.to_bits() == y.to_bits()));
            // Stats merge back into postorder, covering every supernode.
            assert_eq!(sp.records.len(), ss.records.len());
            assert!(sp.records.iter().zip(&ss.records).all(|(x, y)| x.sn == y.sn));
            assert!(sp.total_time > 0.0);
            assert!(sp.wall_time > 0.0);
        }
    }

    #[test]
    fn tiled_simulation_respects_bounds_and_beats_tree_only() {
        use crate::tile::TilingOptions;
        let a = laplacian_3d(9, 9, 9, Stencil::Faces);
        let analysis =
            analyze(&a, OrderingKind::NestedDissection, Some(&AmalgamationOptions::default()))
                .unwrap();
        let opts = FactorOptions {
            selector: PolicySelector::Fixed(PolicyKind::P1),
            record_stats: true,
            tiling: TilingOptions { enabled: true, tile: 16, min_front: 48 },
            ..Default::default()
        };
        let mut machine = Machine::paper_node();
        let (_, stats) = factor_permuted(
            &analysis.permuted.0,
            &analysis.symbolic,
            &analysis.perm,
            &mut machine,
            &opts,
        )
        .unwrap();
        let cpu = machine.host.config().clone();
        let (d, o) = durations_by_supernode(&analysis.symbolic, &stats);
        let mut prev = f64::INFINITY;
        for w in [1usize, 2, 4, 8] {
            let r = simulate_tiled_schedule(&analysis.symbolic, &stats, &opts.tiling, &cpu, w);
            assert!(
                r.critical_path <= r.makespan + 1e-12 && r.makespan <= r.serial_time + 1e-12,
                "bounds violated at {w} workers: cp={} mk={} ser={}",
                r.critical_path,
                r.makespan,
                r.serial_time
            );
            assert!(r.makespan <= prev + 1e-12, "{w} workers slower than fewer");
            prev = r.makespan;
            if w == 1 {
                assert!(
                    (r.makespan - r.serial_time).abs() <= 1e-9 * r.serial_time,
                    "1 worker must serialise"
                );
            }
            // The tile DAG's expanded serial time tracks the recorded
            // per-front totals (same curves, same shapes).
            let rec_serial: f64 = d.iter().sum();
            assert!(
                (r.serial_time - rec_serial).abs() <= 1e-6 * rec_serial,
                "expanded serial {} vs recorded {}",
                r.serial_time,
                rec_serial
            );
            if w == 8 {
                let tree = simulate_tree_schedule(&analysis.symbolic, &d, &o, w, None);
                assert!(
                    r.speedup() > tree.speedup(),
                    "tile DAG must beat tree-only at {w} workers: {} vs {}",
                    r.speedup(),
                    tree.speedup()
                );
            }
        }
    }

    #[test]
    fn parallel_tiled_expansion_is_bitwise_serial() {
        use crate::tile::TilingOptions;
        let a = laplacian_3d(7, 7, 7, Stencil::Faces);
        let analysis =
            analyze(&a, OrderingKind::NestedDissection, Some(&AmalgamationOptions::default()))
                .unwrap();
        let opts = FactorOptions {
            selector: PolicySelector::Fixed(PolicyKind::P1),
            record_stats: true,
            tiling: TilingOptions { enabled: true, tile: 8, min_front: 24 },
            ..Default::default()
        };
        // The lowered threshold must actually expand some fronts.
        let expanded = analysis
            .symbolic
            .supernodes
            .iter()
            .filter(|s| opts.tiling.plan(s.front_size(), s.k()).is_some())
            .count();
        assert!(expanded > 0, "test must cover the expanded path");
        let mut serial = Machine::paper_node();
        let (fs, ss) = factor_permuted(
            &analysis.permuted.0,
            &analysis.symbolic,
            &analysis.perm,
            &mut serial,
            &opts,
        )
        .unwrap();
        for w in [1usize, 2, 4] {
            let mut ms = machines(w);
            let (fp, sp) = factor_permuted_parallel(
                &analysis.permuted.0,
                &analysis.symbolic,
                &analysis.perm,
                &mut ms,
                &opts,
                &ParallelOptions { thread_budget: 2 },
            )
            .unwrap();
            assert!(
                fs.slab.iter().zip(&fp.slab).all(|(x, y)| x.to_bits() == y.to_bits()),
                "tiled parallel ({w} workers) must be bitwise-identical to serial"
            );
            // Synthesized per-front records restore full serial coverage.
            assert_eq!(sp.records.len(), ss.records.len());
            assert!(sp
                .records
                .iter()
                .zip(&ss.records)
                .all(|(x, y)| x.sn == y.sn && x.policy == y.policy));
            // Task records: one assemble + one extract per expanded front,
            // tile tasks in between, all stamped with a valid worker.
            use crate::stats::TaskKind;
            let n_assemble = sp.tasks.iter().filter(|t| t.kind == TaskKind::Assemble).count();
            let n_extract = sp.tasks.iter().filter(|t| t.kind == TaskKind::Extract).count();
            assert_eq!(n_assemble, expanded);
            assert_eq!(n_extract, expanded);
            assert!(sp.tasks.iter().all(|t| t.worker < w));
            let tile_time: f64 = sp
                .tasks
                .iter()
                .filter(|t| {
                    matches!(
                        t.kind,
                        TaskKind::Potrf | TaskKind::Trsm | TaskKind::Syrk | TaskKind::Gemm
                    )
                })
                .map(|t| t.duration)
                .sum();
            assert!(tile_time > 0.0, "tile tasks must charge kernel time");
        }
    }

    #[test]
    fn parallel_error_matches_serial_column() {
        use mf_sparse::Triplet;
        let mut t = Triplet::new(6);
        for i in 0..6 {
            t.push(i, i, if i == 3 { -5.0 } else { 4.0 });
            if i + 1 < 6 {
                t.push(i + 1, i, -1.0);
            }
        }
        let a = t.assemble();
        let analysis = analyze(&a, OrderingKind::Natural, None).unwrap();
        let mut ms = machines(2);
        let err = factor_permuted_parallel(
            &analysis.permuted.0,
            &analysis.symbolic,
            &analysis.perm,
            &mut ms,
            &FactorOptions::default(),
            &ParallelOptions::default(),
        )
        .unwrap_err();
        assert_eq!(err, crate::FactorError::NotPositiveDefinite { column: 3 });
    }

    #[test]
    fn parallel_pipelined_is_bitwise_drain() {
        use crate::factor::PipelineOptions;
        use crate::policy::PolicyKind;
        let a = laplacian_3d(6, 6, 5, Stencil::Faces);
        let analysis =
            analyze(&a, OrderingKind::NestedDissection, Some(&AmalgamationOptions::default()))
                .unwrap();
        let drain =
            FactorOptions { selector: PolicySelector::Fixed(PolicyKind::P4), ..Default::default() };
        let piped = FactorOptions { pipeline: PipelineOptions::pipelined(), ..drain.clone() };
        let mut serial = Machine::paper_node();
        let (fs, _) = factor_permuted(
            &analysis.permuted.0,
            &analysis.symbolic,
            &analysis.perm,
            &mut serial,
            &drain,
        )
        .unwrap();
        for w in [1usize, 2, 4] {
            let mut ms = machines(w);
            let (fp, sp) = factor_permuted_parallel(
                &analysis.permuted.0,
                &analysis.symbolic,
                &analysis.perm,
                &mut ms,
                &piped,
                &ParallelOptions { thread_budget: 2 },
            )
            .unwrap();
            assert_eq!(fs.slab.len(), fp.slab.len());
            assert!(
                fs.slab.iter().zip(&fp.slab).all(|(x, y)| x.to_bits() == y.to_bits()),
                "pipelined parallel ({w} workers) must be bitwise-identical to serial drain"
            );
            let gpu = sp.gpu.expect("GPU utilization must be aggregated");
            assert_eq!(gpu.gpus, w, "one device per worker");
            assert!(gpu.busy_fraction() > 0.0 && gpu.busy_fraction() <= 1.0 + 1e-9);
            assert!(sp.total_time > 0.0);
        }
    }

    #[test]
    fn durations_cover_recorded_run() {
        let a = laplacian_2d(10, 10, Stencil::Faces);
        let analysis =
            analyze(&a, OrderingKind::NestedDissection, Some(&AmalgamationOptions::default()))
                .unwrap();
        let mut machine = Machine::paper_node();
        let opts = FactorOptions { record_stats: true, ..Default::default() };
        let (_, stats) = factor_permuted(
            &analysis.permuted.0,
            &analysis.symbolic,
            &analysis.perm,
            &mut machine,
            &opts,
        )
        .unwrap();
        let (d, o) = durations_by_supernode(&analysis.symbolic, &stats);
        assert_eq!(d.len(), analysis.symbolic.num_supernodes());
        assert!(d.iter().all(|&x| x > 0.0));
        assert!(o.iter().all(|&x| x > 0.0));
        let total: f64 = d.iter().sum();
        assert!((total - stats.sum(|r| r.total)).abs() < 1e-12);
    }
}
