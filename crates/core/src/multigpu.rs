//! The multi-GPU execution layer (DESIGN.md §4.13): proportional mapping of
//! elimination-subtree regions onto a [`DeviceSet`], peer-copy extend-add of
//! cross-device contribution blocks, and a global look-ahead window that
//! keeps every device fed while remote children are still in flight.
//!
//! # Mapping
//!
//! [`proportional_map`] splits the elimination forest Geist–Ng style on the
//! symbolic per-subtree work estimates: starting from the roots, the
//! heaviest chunk is repeatedly replaced by its children until every chunk
//! is at or below `total / ndev` (and there are at least `ndev` chunks),
//! then chunks are LPT-assigned to the least-loaded device. Split nodes —
//! the *separator frontier* — ride with their heaviest child's device, so
//! the top of the tree stays where most of its operands already live.
//!
//! # Execution
//!
//! Each device factors its region with the existing pipelined three-phase
//! front machinery ([`crate::fu`]), driven in an interleaved issue order
//! (round-robin over per-device postorder queues) so that a front uploads
//! to one device while another device's kernels run. Above the frontier, a
//! front whose children were factored on *other* devices consumes their
//! packed `m × m` contribution blocks via [`DeviceSet::p2p`] peer copies —
//! event-chained, on the dedicated peer engine — instead of the
//! d2h → host-assemble → h2d staging round-trip; the producing front's
//! update download (and its host-side apply charge) is skipped entirely
//! ([`enqueue_downloads_keep_update`]).
//!
//! # Determinism
//!
//! Host f32/f64 numerics are untouched: every front assembles from `A` plus
//! its children's packed updates in fixed postorder child rank, and runs the
//! exact per-front kernel sequence of the serial drain driver, so factor
//! slabs are **bitwise identical** to the serial, pipelined and parallel
//! drivers at every `(workers × devices)` combination. The peer-copy path
//! changes only *simulated time*: the simulator's transfers are eager
//! memcpys, so reading the still-device-resident update block yields the
//! same bytes the download path would have produced (pinned by
//! `fu::tests::keep_update_path_is_bitwise_identical_to_download_path`).
//! Device-OOM retry first drains the device to the serial driver's
//! empty-device state, so P1-fallback decisions — the one place scheduling
//! could touch numerics — match the drain driver exactly.

use crate::factor::{fu_ctx, fu_err_to_factor, CholeskyFactor, FactorError, FactorOptions};
use crate::frontal::{
    assemble_front_into, charge_panel_extract, charge_update_extract, copy_update_packed,
    extract_panel_copy, extract_panel_into, ChildUpdate, Front,
};
use crate::fu::{
    dispatch_fu, enqueue_downloads, enqueue_downloads_keep_update, finish_fu, try_dispatch_gpu,
    FuPending, RemoteUpdate, S_COMPUTE, S_COPY,
};
use crate::pinned_pool::PinnedPool;
use crate::policy::PolicyKind;
use crate::stats::FactorStats;
use mf_dense::Scalar;
use mf_gpusim::{CopyMode, DevMat, DeviceSet, Gpu, GpuUtilization, Machine};
use mf_sparse::symbolic::SymbolicFactor;
use mf_sparse::{Permutation, SymCsc};

/// Stream id for incoming peer copies on each device (S_COMPUTE and S_COPY
/// keep the single-device meanings).
const S_PEER: usize = 2;

/// Multi-device execution options, carried on
/// [`FactorOptions::devices`](crate::factor::FactorOptions::devices).
///
/// With `count > 1` on a GPU machine with pipelining enabled,
/// `factor_permuted`/`factor_permuted_parallel` route to the multi-GPU
/// driver: the machine's device becomes device 0 of a [`DeviceSet`] of
/// `count` identically-configured devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiGpuOptions {
    /// Number of simulated devices. `1` (the default) keeps the
    /// single-device drivers.
    pub count: usize,
    /// Global look-ahead window: maximum fronts with downloads outstanding
    /// across the whole device set before the oldest is finished (never
    /// below the device count, so every device can hold work).
    pub look_ahead: usize,
    /// Consume cross-device child updates via peer copies instead of host
    /// staging. Off, every contribution block round-trips through the host
    /// exactly as the single-device drivers do (an ablation knob — bits
    /// never change either way).
    pub peer_extend_add: bool,
}

impl Default for MultiGpuOptions {
    fn default() -> Self {
        MultiGpuOptions { count: 1, look_ahead: 8, peer_extend_add: true }
    }
}

impl MultiGpuOptions {
    /// `count` devices with the default look-ahead and peer extend-add on.
    pub fn devices(count: usize) -> Self {
        MultiGpuOptions { count, ..Default::default() }
    }
}

/// The proportional (Geist–Ng) device mapping of one elimination forest.
#[derive(Debug, Clone)]
pub struct DeviceMap {
    /// Owning device of each supernode.
    pub device_of: Vec<usize>,
    /// Global issue order: a topological order of the forest that
    /// round-robins over the per-device postorder queues, so consecutive
    /// fronts land on different devices whenever their dependencies allow.
    pub issue_order: Vec<usize>,
    /// Mapped work (symbolic flop estimate) per device.
    pub load: Vec<f64>,
}

/// Split the elimination forest into per-device regions proportional to the
/// symbolic work estimates (see the module docs). Deterministic: ties break
/// on the lower supernode / device index.
pub fn proportional_map(symbolic: &SymbolicFactor, ndev: usize) -> DeviceMap {
    assert!(ndev >= 1, "need at least one device");
    let nsn = symbolic.num_supernodes();
    let mut own = vec![0.0f64; nsn];
    let mut work = vec![0.0f64; nsn];
    for &sn in &symbolic.postorder {
        own[sn] = symbolic.supernodes[sn].flops().total().max(1.0);
        work[sn] = own[sn] + symbolic.children[sn].iter().map(|&c| work[c]).sum::<f64>();
    }
    let roots: Vec<usize> =
        (0..nsn).filter(|&sn| symbolic.supernodes[sn].parent == usize::MAX).collect();
    let total: f64 = roots.iter().map(|&r| work[r]).sum();
    let target = total / ndev as f64;

    // Chunking: replace the heaviest splittable chunk by its children until
    // every chunk fits the proportional target (and there are enough
    // chunks to cover the devices). Split nodes form the frontier.
    let mut chunks = roots;
    let mut frontier = vec![false; nsn];
    if ndev > 1 {
        loop {
            let cand = chunks
                .iter()
                .copied()
                .filter(|&c| !symbolic.children[c].is_empty())
                .max_by(|&x, &y| work[x].total_cmp(&work[y]).then(y.cmp(&x)));
            let Some(c) = cand else { break };
            if work[c] <= target && chunks.len() >= ndev {
                break;
            }
            chunks.retain(|&x| x != c);
            frontier[c] = true;
            chunks.extend(symbolic.children[c].iter().copied());
        }
    }

    // LPT assignment: heaviest chunk first onto the least-loaded device.
    chunks.sort_by(|&x, &y| work[y].total_cmp(&work[x]).then(x.cmp(&y)));
    let mut device_of = vec![0usize; nsn];
    let mut load = vec![0.0f64; ndev];
    for &c in &chunks {
        let d = (0..ndev).min_by(|&x, &y| load[x].total_cmp(&load[y]).then(x.cmp(&y))).unwrap();
        let mut stack = vec![c];
        while let Some(sn) = stack.pop() {
            device_of[sn] = d;
            stack.extend(symbolic.children[sn].iter().copied());
        }
        load[d] += work[c];
    }
    // Frontier nodes ride with their heaviest child (processed in postorder
    // so a frontier child's own device is final before its frontier parent).
    for &sn in &symbolic.postorder {
        if !frontier[sn] {
            continue;
        }
        let d = symbolic.children[sn]
            .iter()
            .copied()
            .max_by(|&x, &y| work[x].total_cmp(&work[y]).then(y.cmp(&x)))
            .map_or(0, |c| device_of[c]);
        device_of[sn] = d;
        load[d] += own[sn];
    }

    // Interleaved issue order: per-device postorder queues, issuing at most
    // one ready head per device per round. The globally postorder-minimal
    // unissued supernode always sits at its queue head with every child
    // issued, so each round issues at least one front — no deadlock.
    let mut queues: Vec<Vec<usize>> = vec![Vec::new(); ndev];
    for &sn in &symbolic.postorder {
        queues[device_of[sn]].push(sn);
    }
    let mut heads = vec![0usize; ndev];
    let mut issued = vec![false; nsn];
    let mut issue_order = Vec::with_capacity(nsn);
    while issue_order.len() < nsn {
        let mut any = false;
        for d in 0..ndev {
            if heads[d] < queues[d].len() {
                let sn = queues[d][heads[d]];
                if symbolic.children[sn].iter().all(|&c| issued[c]) {
                    issued[sn] = true;
                    issue_order.push(sn);
                    heads[d] += 1;
                    any = true;
                }
            }
        }
        debug_assert!(any, "issue order stalled — forest is not topologically consistent");
        if !any {
            // Unreachable for well-formed forests; keep release builds safe.
            for &sn in &symbolic.postorder {
                if !issued[sn] {
                    issued[sn] = true;
                    issue_order.push(sn);
                }
            }
        }
    }
    DeviceMap { device_of, issue_order, load }
}

/// A dispatched front whose downloads are not enqueued yet (per-lane
/// dispatch-before-flush staging, as the single-device pipelined driver).
struct MgStaged<T> {
    sn: usize,
    buf: Vec<T>,
    pending: FuPending,
}

/// A flushed front: downloads (or the peer-export) enqueued, panel and
/// update extracted eagerly, extraction charges deferred to finish.
struct MgInflight {
    sn: usize,
    lane: usize,
    /// `(s, k, m)`.
    dims: (usize, usize, usize),
    /// Update block exported device-side: its extract charge is skipped —
    /// the bytes never cross to the host.
    exported: bool,
    pending: FuPending,
}

/// One driving worker: a host timeline, the lanes (devices) it owns, and
/// its staging state. The worker's [`Machine`] holds no device between fu
/// calls — lanes are taken out of `set` for exactly the duration of each
/// single-device fu call and restored immediately after.
struct WorkerState<'m, T> {
    machine: &'m mut Machine,
    set: DeviceSet,
    /// Global device ids of this worker's lanes (`devs[lane]`), ascending.
    devs: Vec<usize>,
    pool: PinnedPool,
    staged: Vec<Option<MgStaged<T>>>,
    inflight: Vec<MgInflight>,
}

/// Whole-run state of the multi-GPU driver.
struct MgRun<'a, 'm, T> {
    a: &'a SymCsc<T>,
    symbolic: &'a SymbolicFactor,
    opts: &'a FactorOptions,
    map: DeviceMap,
    /// Driving worker of each global device.
    worker_of: Vec<usize>,
    /// Lane index of each global device within its worker's set.
    lane_of: Vec<usize>,
    ws: Vec<WorkerState<'m, T>>,
    panel_ptr: Vec<usize>,
    slab: Vec<T>,
    /// Packed host-side `m × m` updates awaiting their parent's extend-add
    /// (always produced — the authoritative numerics).
    updates: Vec<Option<Vec<T>>>,
    /// Device-resident update blocks awaiting a peer-copy extend-add.
    exports: Vec<Option<RemoteUpdate>>,
    rel: Vec<usize>,
    stats: FactorStats,
    live: usize,
    peak: usize,
}

impl<T: Scalar> MgRun<'_, '_, T> {
    fn take_dev(&mut self, w: usize, lane: usize) {
        let ws = &mut self.ws[w];
        debug_assert!(ws.machine.gpu.is_none(), "device take/put must nest");
        ws.machine.gpu = Some(ws.set.take(lane));
    }

    fn put_dev(&mut self, w: usize, lane: usize) {
        let ws = &mut self.ws[w];
        let g = ws.machine.gpu.take().expect("device must be present to restore");
        ws.set.restore(lane, g);
    }

    fn run(&mut self) -> Result<(), FactorError> {
        let order = self.map.issue_order.clone();
        for sn in order {
            self.step(sn)?;
        }
        for w in 0..self.ws.len() {
            for lane in 0..self.ws[w].staged.len() {
                self.flush_lane(w, lane);
            }
            while !self.ws[w].inflight.is_empty() {
                let e = self.ws[w].inflight.remove(0);
                self.finish_entry(w, e);
            }
        }
        debug_assert!(
            self.exports.iter().all(Option::is_none),
            "every exported update must be consumed by its parent"
        );
        Ok(())
    }

    fn step(&mut self, sn: usize) -> Result<(), FactorError> {
        let symbolic = self.symbolic;
        let info = &symbolic.supernodes[sn];
        let (s, k, m) = (info.front_size(), info.k(), info.m());
        let dev = self.map.device_of[sn];
        let (w, lane) = (self.worker_of[dev], self.lane_of[dev]);
        self.ready_children(sn, w);
        let mut front_data = self.assemble(sn, w);
        let policy = self.opts.selector.choose(sn, m, k);
        self.consume_child_exports(sn, w, lane, policy);
        let mut front = Front { s, k, data: &mut front_data };
        let dispatched = {
            self.take_dev(w, lane);
            let ws = &mut self.ws[w];
            let mut ctx = fu_ctx(ws.machine, &mut ws.pool, self.opts);
            let r = try_dispatch_gpu(&mut front, policy, &mut ctx);
            self.put_dev(w, lane);
            r.map_err(|e| fu_err_to_factor(info.col_start, e))?
        };
        let pending = match dispatched {
            Some(p) => p,
            None => {
                // Device OOM: reach the drain driver's empty-device state on
                // *this* device (its own inflight work finished, stranded
                // exports evicted to the host) before retrying, so
                // P1-fallback decisions match the serial driver bitwise.
                self.flush_lane(w, lane);
                self.drain_lane(w, lane);
                self.evict_exports_on(dev);
                self.take_dev(w, lane);
                let ws = &mut self.ws[w];
                let mut ctx = fu_ctx(ws.machine, &mut ws.pool, self.opts);
                let r = dispatch_fu(&mut front, policy, &mut ctx);
                self.put_dev(w, lane);
                r.map_err(|e| fu_err_to_factor(info.col_start, e))?
            }
        };
        if pending.oom_fallback() {
            self.stats.oom_fallbacks += 1;
        }
        if pending.is_done() {
            // CPU-resident result (P1, or an m = 0 pivot): nothing in flight.
            self.extract_inline(sn, &Front { s, k, data: &mut front_data }, w);
            self.live -= s * s;
            return Ok(());
        }
        // Dispatch-before-flush: this front's upload is queued, so flushing
        // the lane's previous front cannot delay it on the copy engine.
        self.flush_lane(w, lane);
        self.ws[w].staged[lane] = Some(MgStaged { sn, buf: front_data, pending });
        self.enforce_window(w);
        Ok(())
    }

    /// Make `sn`'s child updates consumable. Children staged anywhere flush
    /// (producing their update data and, cross-device, their exports). A
    /// same-worker, non-exported in-flight child costs a host *event wait*;
    /// an exported child costs nothing here — its ordering flows through
    /// the peer-copy event on the consumer device, which is exactly the
    /// cross-device look-ahead. Children of another worker carry no timing
    /// edge (the parallel driver's convention for cross-worker hand-off).
    fn ready_children(&mut self, sn: usize, w: usize) {
        let kids = self.symbolic.children[sn].clone();
        for &c in &kids {
            let cdev = self.map.device_of[c];
            let (cw, clane) = (self.worker_of[cdev], self.lane_of[cdev]);
            if self.ws[cw].staged[clane].as_ref().is_some_and(|st| st.sn == c) {
                self.flush_lane(cw, clane);
            }
            if cw == w && self.exports[c].is_none() {
                if let Some(pos) = self.ws[w].inflight.iter().position(|e| e.sn == c) {
                    let e = self.ws[w].inflight.remove(pos);
                    self.finish_entry(w, e);
                }
            }
        }
    }

    /// Assemble `sn`'s front on worker `w`'s host, consuming its children's
    /// packed updates in postorder child rank — the numerics are byte-for-
    /// byte the serial driver's regardless of where the children ran.
    fn assemble(&mut self, sn: usize, w: usize) -> Vec<T> {
        let a = self.a;
        let symbolic = self.symbolic;
        let info = &symbolic.supernodes[sn];
        let s = info.front_size();
        let child_bufs: Vec<(usize, Vec<T>)> = symbolic.children[sn]
            .iter()
            .map(|&c| (c, self.updates[c].take().expect("child update must exist at issue")))
            .collect();
        self.stats.front_alloc_events += 1;
        let mut front_data = vec![T::ZERO; s * s];
        self.live += s * s;
        self.peak = self.peak.max(self.live);
        let children = child_bufs.iter().map(|(c, d)| ChildUpdate {
            rows: symbolic.supernodes[*c].update_rows(),
            data: &d[..],
        });
        assemble_front_into(
            a,
            info,
            children,
            &mut front_data,
            &mut self.rel,
            &mut self.ws[w].machine.host,
        );
        for (_, d) in child_bufs {
            self.live -= d.len();
        }
        front_data
    }

    /// Peer-copy every exported child update onto `sn`'s device: an `m × m`
    /// landing buffer, a [`DeviceSet::p2p`] gated on the producer's ready
    /// event, and a compute-stream wait so `sn`'s kernels observe the
    /// scattered update. Falls back to host staging when the parent runs on
    /// the CPU or the landing allocation does not fit. Data-wise this is a
    /// no-op — the host already holds the authoritative update — so only
    /// the simulated timeline moves.
    fn consume_child_exports(&mut self, sn: usize, w: usize, lane: usize, policy: PolicyKind) {
        let kids = self.symbolic.children[sn].clone();
        for &c in &kids {
            let Some(ru) = self.exports[c].take() else { continue };
            let cdev = self.map.device_of[c];
            let clane = self.lane_of[cdev];
            debug_assert_eq!(self.worker_of[cdev], w, "exports never cross workers");
            if policy == PolicyKind::P1 || clane == lane {
                self.evict_one(w, clane, ru);
                continue;
            }
            let ws = &mut self.ws[w];
            match ws.set.device_mut(lane).alloc(ru.m * ru.m) {
                Ok(dst) => {
                    let dst_stream = ws.set.device_mut(lane).stream(S_PEER);
                    let ev = ws.set.p2p(
                        clane,
                        ru.view,
                        lane,
                        dst_stream,
                        DevMat::whole(dst, ru.m),
                        ru.m,
                        ru.m,
                        ru.ready,
                        &mut ws.machine.host,
                    );
                    let cs = ws.set.device_mut(lane).stream(S_COMPUTE);
                    ws.set.device_mut(lane).wait_event(cs, ev);
                    // The copy's timing is scheduled; the allocator is
                    // timeless, so free both endpoints now — `sn`'s own
                    // dispatch must see the same free memory the serial
                    // drain driver would.
                    let _ = ws.set.device_mut(lane).free(dst);
                    let _ = ws.set.device_mut(clane).free(ru.buf);
                }
                Err(_) => self.evict_one(w, clane, ru),
            }
        }
    }

    /// Phase 2 for a lane's staged front. When the parent lives on another
    /// device of the same worker and will itself run on the GPU, the update
    /// block stays device-resident as a [`RemoteUpdate`] export and its d2h
    /// is skipped; otherwise the normal event-gated downloads enqueue.
    /// Either way the panel and the (host-authoritative) packed update are
    /// extracted eagerly, with the host charges deferred to finish.
    fn flush_lane(&mut self, w: usize, lane: usize) {
        let Some(MgStaged { sn, mut buf, mut pending }) = self.ws[w].staged[lane].take() else {
            return;
        };
        let symbolic = self.symbolic;
        let info = &symbolic.supernodes[sn];
        let (s, k, m) = (info.front_size(), info.k(), info.m());
        let parent = info.parent;
        let export = self.opts.devices.peer_extend_add
            && m > 0
            && parent != usize::MAX
            && self.map.device_of[parent] != self.map.device_of[sn]
            && self.worker_of[self.map.device_of[parent]] == w
            && {
                let pi = &symbolic.supernodes[parent];
                self.opts.selector.choose(parent, pi.m(), pi.k()) != PolicyKind::P1
            };
        self.take_dev(w, lane);
        let remote = {
            let ws = &mut self.ws[w];
            let mut ctx = fu_ctx(ws.machine, &mut ws.pool, self.opts);
            let mut front = Front { s, k, data: &mut buf };
            if export {
                enqueue_downloads_keep_update(&mut front, &mut pending, &mut ctx)
            } else {
                enqueue_downloads(&mut front, &mut pending, &mut ctx);
                None
            }
        };
        self.put_dev(w, lane);
        let (p0, p1) = (self.panel_ptr[sn], self.panel_ptr[sn + 1]);
        extract_panel_copy(&Front { s, k, data: &mut buf }, &mut self.slab[p0..p1]);
        if m > 0 {
            self.stats.front_alloc_events += 1;
            let mut u = vec![T::ZERO; m * m];
            copy_update_packed(&buf, s, k, &mut u);
            self.live += m * m;
            self.updates[sn] = Some(u);
        }
        self.live -= s * s;
        let exported = remote.is_some();
        if let Some(ru) = remote {
            self.exports[sn] = Some(ru);
        }
        self.ws[w].inflight.push(MgInflight { sn, lane, dims: (s, k, m), exported, pending });
    }

    /// Drain-path extraction for fronts with no device work outstanding.
    fn extract_inline(&mut self, sn: usize, front: &Front<'_, T>, w: usize) {
        let info = &self.symbolic.supernodes[sn];
        let (s, k, m) = (info.front_size(), info.k(), info.m());
        let (p0, p1) = (self.panel_ptr[sn], self.panel_ptr[sn + 1]);
        extract_panel_into(front, &mut self.slab[p0..p1], &mut self.ws[w].machine.host);
        charge_update_extract::<T>(m, &mut self.ws[w].machine.host);
        if m > 0 {
            self.stats.front_alloc_events += 1;
            let mut u = vec![T::ZERO; m * m];
            copy_update_packed(front.data, s, k, &mut u);
            self.live += m * m;
            self.updates[sn] = Some(u);
        }
    }

    /// Phase 3 for one in-flight entry: host event wait, device buffers
    /// free, deferred extraction charges. An exported entry skips the
    /// update-extract charge — its block never crossed to the host.
    fn finish_entry(&mut self, w: usize, e: MgInflight) {
        let MgInflight { lane, dims: (s, k, m), exported, mut pending, .. } = e;
        self.take_dev(w, lane);
        {
            let ws = &mut self.ws[w];
            let mut ctx = fu_ctx(ws.machine, &mut ws.pool, self.opts);
            finish_fu(&mut pending, &mut ctx);
        }
        self.put_dev(w, lane);
        let host = &mut self.ws[w].machine.host;
        charge_panel_extract::<T>(s, k, host);
        if !exported {
            charge_update_extract::<T>(m, host);
        }
    }

    /// Finish every in-flight entry running on one lane (FIFO within it).
    fn drain_lane(&mut self, w: usize, lane: usize) {
        let mut j = 0;
        while j < self.ws[w].inflight.len() {
            if self.ws[w].inflight[j].lane == lane {
                let e = self.ws[w].inflight.remove(j);
                self.finish_entry(w, e);
            } else {
                j += 1;
            }
        }
    }

    /// Host-staging fallback for one exported update: an event-gated d2h
    /// into a pooled pinned slot (bytes already live on the host — only the
    /// transfer's simulated time matters) plus the update-extract charge
    /// its producer skipped, then the device buffer frees.
    fn evict_one(&mut self, w: usize, src_lane: usize, ru: RemoteUpdate) {
        self.take_dev(w, src_lane);
        {
            let ws = &mut self.ws[w];
            let slot = ws.pool.lease(ru.m * ru.m, &mut ws.machine.host);
            let (host, gpu) = ws.machine.host_and_gpu().expect("lane device present");
            let copy = gpu.stream(S_COPY);
            gpu.wait_event(copy, ru.ready);
            gpu.d2h(
                copy,
                ru.view,
                ru.m,
                ru.m,
                ws.pool.slot_mut(slot),
                ru.m,
                true,
                CopyMode::Async,
                host,
            );
            let ev = gpu.record_event(copy);
            ws.pool.retire(slot, ev.0, host);
            let _ = gpu.free(ru.buf);
            charge_update_extract::<T>(ru.m, host);
        }
        self.put_dev(w, src_lane);
    }

    /// Evict every stranded export resident on global device `dev` (frees
    /// its memory ahead of an OOM retry on that device).
    fn evict_exports_on(&mut self, dev: usize) {
        for c in 0..self.exports.len() {
            if self.exports[c].is_some() && self.map.device_of[c] == dev {
                let ru = self.exports[c].take().expect("checked above");
                self.evict_one(self.worker_of[dev], self.lane_of[dev], ru);
            }
        }
    }

    /// Enforce the global look-ahead window on worker `w`: finish oldest
    /// entries until at most `max(look_ahead, lanes)` remain outstanding.
    fn enforce_window(&mut self, w: usize) {
        let window = self.opts.devices.look_ahead.max(self.ws[w].staged.len());
        while self.ws[w].inflight.len() > window {
            let e = self.ws[w].inflight.remove(0);
            self.finish_entry(w, e);
        }
    }
}

/// Single-machine multi-GPU entry: the machine's device drives lane 0 of a
/// [`DeviceSet`] of `opts.devices.count` identical devices, all fed from
/// this machine's host timeline. Reached from
/// [`crate::factor::factor_permuted`] when `devices.count > 1` with
/// pipelining enabled on a GPU machine.
pub fn factor_permuted_multigpu<T: Scalar>(
    a: &SymCsc<T>,
    symbolic: &SymbolicFactor,
    perm: &Permutation,
    machine: &mut Machine,
    opts: &FactorOptions,
) -> Result<(CholeskyFactor<T>, FactorStats), FactorError> {
    factor_permuted_parallel_multigpu(a, symbolic, perm, std::slice::from_mut(machine), opts)
}

/// Multi-worker multi-GPU entry: devices are dealt round-robin over the
/// GPU-bearing machines (device `d` → worker `d mod workers`), each worker
/// cooperatively driving its lanes with the per-lane pipelined machinery.
///
/// Worker host timelines are independent — cross-worker child hand-offs
/// carry no timing edge, exactly the work-stealing parallel driver's
/// convention — so a sequential cooperative schedule reproduces the same
/// per-worker clocks a threaded interleaving would, and the reported
/// `total_time` is the max over workers after all devices drain. Factor
/// slabs are bitwise identical to the serial driver at every
/// `(workers × devices)` combination (see the module docs).
pub fn factor_permuted_parallel_multigpu<T: Scalar>(
    a: &SymCsc<T>,
    symbolic: &SymbolicFactor,
    perm: &Permutation,
    machines: &mut [Machine],
    opts: &FactorOptions,
) -> Result<(CholeskyFactor<T>, FactorStats), FactorError> {
    let ndev = opts.devices.count.max(1);
    let nsn = symbolic.num_supernodes();
    let wall0 = std::time::Instant::now();
    let mut drivers: Vec<&mut Machine> = machines.iter_mut().filter(|m| m.gpu.is_some()).collect();
    assert!(!drivers.is_empty(), "multi-GPU factorization needs a GPU machine");
    drivers.truncate(ndev);
    let nw = drivers.len();

    let mut worker_of = vec![0usize; ndev];
    let mut lane_of = vec![0usize; ndev];
    let mut devs_per_worker: Vec<Vec<usize>> = vec![Vec::new(); nw];
    for d in 0..ndev {
        let w = d % nw;
        worker_of[d] = w;
        lane_of[d] = devs_per_worker[w].len();
        devs_per_worker[w].push(d);
    }

    let mut ws: Vec<WorkerState<'_, T>> = Vec::with_capacity(nw);
    for (w, machine) in drivers.into_iter().enumerate() {
        let own = machine.gpu.take().expect("driver machines carry a device");
        let cfg = own.config().clone();
        let mut gpus = vec![own];
        for _ in 1..devs_per_worker[w].len() {
            gpus.push(Gpu::new(cfg.clone()));
        }
        let nlanes = gpus.len();
        ws.push(WorkerState {
            machine,
            set: DeviceSet::from_gpus(gpus),
            devs: devs_per_worker[w].clone(),
            pool: if opts.pinned_reuse { PinnedPool::new(2) } else { PinnedPool::without_reuse(2) },
            staged: (0..nlanes).map(|_| None).collect(),
            inflight: Vec::new(),
        });
    }

    let mut run = MgRun {
        a,
        symbolic,
        opts,
        map: proportional_map(symbolic, ndev),
        worker_of,
        lane_of,
        ws,
        panel_ptr: symbolic.panel_ptr(),
        slab: vec![T::ZERO; symbolic.factor_slab_len()],
        updates: (0..nsn).map(|_| None).collect(),
        exports: (0..nsn).map(|_| None).collect(),
        rel: Vec::new(),
        stats: FactorStats { front_alloc_events: 1, ..Default::default() },
        live: 0,
        peak: 0,
    };
    let result = run.run();

    // Stats and device restoration happen whether or not the run errored,
    // so callers always get their machines back intact.
    let mut total = 0.0f64;
    for ws in run.ws.iter_mut() {
        ws.set.sync_all(&mut ws.machine.host);
        total = total.max(ws.machine.host.now());
    }
    let mut per_dev = vec![GpuUtilization::default(); ndev];
    let mut agg = GpuUtilization::default();
    let mut peer = 0usize;
    for wsi in run.ws.iter() {
        for (lane, &d) in wsi.devs.iter().enumerate() {
            let u = wsi.set.device(lane).utilization(total);
            agg.merge(&u);
            per_dev[d] = u;
        }
        peer += wsi.set.peer_bytes();
    }
    let MgRun { slab, panel_ptr, mut stats, ws: mut workers, peak, .. } = run;
    stats.peak_front_bytes = peak * T::BYTES;
    stats.total_time = total;
    stats.gpu = Some(agg);
    stats.gpu_devices = per_dev;
    stats.peer_bytes = peer;
    stats.wall_time = wall0.elapsed().as_secs_f64();
    for w in workers.iter_mut() {
        debug_assert!(w.machine.gpu.is_none());
        w.machine.gpu = Some(w.set.take(0));
    }
    drop(workers);
    result?;
    Ok((CholeskyFactor { symbolic: symbolic.clone(), perm: perm.clone(), slab, panel_ptr }, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factor::{factor_permuted, FactorOptions, PipelineOptions, PolicySelector};
    use crate::parallel::{factor_permuted_parallel, ParallelOptions};
    use crate::policy::BaselineThresholds;
    use mf_matgen::{laplacian_3d, Stencil};
    use mf_sparse::symbolic::{analyze, Analysis};
    use mf_sparse::{AmalgamationOptions, OrderingKind, Triplet};

    fn grid_analysis(nx: usize, ny: usize, nz: usize) -> Analysis {
        let a = laplacian_3d(nx, ny, nz, Stencil::Faces);
        analyze(&a, OrderingKind::NestedDissection, Some(&AmalgamationOptions::default())).unwrap()
    }

    fn bits(slab: &[f32]) -> Vec<u32> {
        slab.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn proportional_map_covers_and_respects_topology() {
        let analysis = grid_analysis(6, 6, 6);
        let symbolic = &analysis.symbolic;
        let nsn = symbolic.num_supernodes();
        let total_work: f64 =
            (0..nsn).map(|sn| symbolic.supernodes[sn].flops().total().max(1.0)).sum();
        for ndev in [1usize, 2, 3, 4, 8] {
            let map = proportional_map(symbolic, ndev);
            assert_eq!(map.device_of.len(), nsn);
            assert!(map.device_of.iter().all(|&d| d < ndev));
            assert_eq!(map.load.len(), ndev);
            // The issue order is a topological permutation of the forest.
            assert_eq!(map.issue_order.len(), nsn);
            let mut seen = vec![false; nsn];
            for &sn in &map.issue_order {
                assert!(!seen[sn], "duplicate issue of {sn}");
                for &c in &symbolic.children[sn] {
                    assert!(seen[c], "child {c} must issue before parent {sn}");
                }
                seen[sn] = true;
            }
            // Load accounting covers the whole forest.
            let mapped: f64 = map.load.iter().sum();
            assert!((mapped - total_work).abs() < 1e-6 * total_work.max(1.0));
            if ndev == 1 {
                assert_eq!(map.issue_order, symbolic.postorder, "1 device ⇒ pure postorder");
            } else {
                // Every device gets real work on this forest.
                assert!(map.load.iter().all(|&l| l > 0.0), "empty device: {:?}", map.load);
            }
        }
    }

    #[test]
    fn multigpu_matches_serial_drain_bitwise_with_peer_traffic() {
        let analysis = grid_analysis(7, 6, 6);
        let a32: SymCsc<f32> = analysis.permuted.0.cast();
        let run = |devices: MultiGpuOptions, pipeline: PipelineOptions| {
            let mut machine = Machine::paper_node();
            let opts = FactorOptions {
                selector: PolicySelector::Fixed(PolicyKind::P4),
                pipeline,
                devices,
                ..Default::default()
            };
            factor_permuted(&a32, &analysis.symbolic, &analysis.perm, &mut machine, &opts)
                .inspect(|_| {
                    assert!(machine.gpu.is_some(), "machine must get its device back");
                })
                .unwrap()
        };
        let (fd, _) = run(MultiGpuOptions::default(), PipelineOptions::default());
        for ndev in [2usize, 4] {
            let (fm, sm) = run(MultiGpuOptions::devices(ndev), PipelineOptions::pipelined());
            assert_eq!(
                bits(&fd.slab),
                bits(&fm.slab),
                "{ndev}-device factor must match the drain driver bitwise"
            );
            assert_eq!(sm.gpu_devices.len(), ndev);
            assert!(sm.peer_bytes > 0, "cross-device fronts must move peer traffic");
            let busy = sm.gpu_devices.iter().filter(|u| u.busy_fraction() > 0.0).count();
            assert!(busy >= 2, "at least two devices must do work, got {busy}");
        }
    }

    #[test]
    fn multigpu_beats_single_device_pipelined_on_gpu_heavy_grids() {
        let analysis = grid_analysis(9, 9, 8);
        let a32: SymCsc<f32> = analysis.permuted.0.cast();
        let run = |ndev: usize| {
            let mut machine = Machine::paper_node();
            let opts = FactorOptions {
                selector: PolicySelector::Fixed(PolicyKind::P4),
                copy_optimized: true,
                pipeline: PipelineOptions::pipelined(),
                devices: MultiGpuOptions::devices(ndev),
                ..Default::default()
            };
            let (_, stats) =
                factor_permuted(&a32, &analysis.symbolic, &analysis.perm, &mut machine, &opts)
                    .unwrap();
            stats.total_time
        };
        let t1 = run(1);
        let t2 = run(2);
        assert!(t2 < t1, "2 devices ({t2:.6e}) must beat 1 ({t1:.6e})");
    }

    #[test]
    fn multigpu_parallel_entry_matches_serial_bitwise() {
        let analysis = grid_analysis(6, 6, 6);
        let a32: SymCsc<f32> = analysis.permuted.0.cast();
        let serial = {
            let mut machine = Machine::paper_node();
            let opts = FactorOptions {
                selector: PolicySelector::Baseline(BaselineThresholds::default()),
                ..Default::default()
            };
            factor_permuted(&a32, &analysis.symbolic, &analysis.perm, &mut machine, &opts)
                .unwrap()
                .0
        };
        for (workers, ndev) in [(2usize, 2usize), (2, 4), (3, 2)] {
            let mut machines: Vec<Machine> = (0..workers).map(|_| Machine::paper_node()).collect();
            let opts = FactorOptions {
                selector: PolicySelector::Baseline(BaselineThresholds::default()),
                pipeline: PipelineOptions::pipelined(),
                devices: MultiGpuOptions::devices(ndev),
                ..Default::default()
            };
            let (fm, sm) = factor_permuted_parallel(
                &a32,
                &analysis.symbolic,
                &analysis.perm,
                &mut machines,
                &opts,
                &ParallelOptions::default(),
            )
            .unwrap();
            assert_eq!(
                bits(&serial.slab),
                bits(&fm.slab),
                "{workers} workers × {ndev} devices must match serial bitwise"
            );
            assert_eq!(sm.gpu_devices.len(), ndev);
            assert!(machines.iter().all(|m| m.gpu.is_some()));
        }
    }

    #[test]
    fn multigpu_oom_fallbacks_match_drain_driver() {
        let analysis = grid_analysis(6, 6, 5);
        let a32: SymCsc<f32> = analysis.permuted.0.cast();
        let run = |devices: MultiGpuOptions, pipeline: PipelineOptions| {
            let mut cfg = mf_gpusim::tesla_t10();
            cfg.mem_bytes = 2_000; // 500 f32 elements — only small fronts fit
            let mut machine = Machine::with_gpu(mf_gpusim::xeon_5160_core(), cfg);
            let opts = FactorOptions {
                selector: PolicySelector::Fixed(PolicyKind::P4),
                pipeline,
                devices,
                ..Default::default()
            };
            factor_permuted(&a32, &analysis.symbolic, &analysis.perm, &mut machine, &opts).unwrap()
        };
        let (fd, sd) = run(MultiGpuOptions::default(), PipelineOptions::default());
        assert!(sd.oom_fallbacks > 0, "test needs OOM pressure to be meaningful");
        for ndev in [2usize, 4] {
            let (fm, sm) = run(MultiGpuOptions::devices(ndev), PipelineOptions::pipelined());
            assert_eq!(sm.oom_fallbacks, sd.oom_fallbacks, "{ndev}-device OOM decisions");
            assert_eq!(bits(&fd.slab), bits(&fm.slab), "{ndev}-device OOM bits");
        }
    }

    #[test]
    fn multigpu_indefinite_matrix_reports_same_column() {
        let mut t = Triplet::new(8);
        for i in 0..8 {
            t.push(i, i, if i == 5 { -3.0 } else { 4.0 });
            if i + 1 < 8 {
                t.push(i + 1, i, -1.0);
            }
        }
        let a = t.assemble();
        let analysis = analyze(&a, OrderingKind::Natural, None).unwrap();
        let mut machine = Machine::paper_node();
        let opts = FactorOptions {
            selector: PolicySelector::Fixed(PolicyKind::P4),
            pipeline: PipelineOptions::pipelined(),
            devices: MultiGpuOptions::devices(2),
            ..Default::default()
        };
        let err = factor_permuted(
            &analysis.permuted.0,
            &analysis.symbolic,
            &analysis.perm,
            &mut machine,
            &opts,
        )
        .unwrap_err();
        assert_eq!(err, FactorError::NotPositiveDefinite { column: 5 });
        assert!(machine.gpu.is_some(), "error path must restore the device");
    }
}
