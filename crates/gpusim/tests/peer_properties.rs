//! Property tests for the peer-copy (`d2d`) primitive.
//!
//! Two contracts the multi-GPU driver leans on:
//!
//! 1. **Event semantics** — the event a peer copy returns is *forward-only*
//!    (never earlier than the wait event it was gated on, never earlier than
//!    the issue time) and *transitive* (a chain of copies each waiting on
//!    the previous one yields non-decreasing completion times, across any
//!    device sequence). Because [`Event`] is an absolute simulated
//!    timestamp, cross-device waits compose as a plain `max` — these
//!    properties are what make that composition sound.
//!
//! 2. **Bitwise data fidelity** — a block staged h2d onto one device and
//!    peer-copied to another reads back d2h bitwise identical to the host
//!    source, for arbitrary shapes, strides, and sub-view offsets. The
//!    multi-GPU extend-add path replaces a d2h→host→h2d bounce with exactly
//!    this route, so fidelity here is a prerequisite of the driver's
//!    bitwise-determinism guarantee.

use mf_gpusim::{tesla_t10, xeon_5160_core, CopyMode, DevMat, DeviceSet, Event, Gpu, HostClock};
use proptest::prelude::*;

fn host() -> HostClock {
    HostClock::new(xeon_5160_core())
}

/// Deterministic pseudo-random f32 payload (splitmix-style), bit-diverse so
/// equality checks are meaningful.
fn payload(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            // Map to a finite, sign-varied float; keep exponent moderate so
            // the value survives f32 round-trips unchanged (it is f32 end
            // to end anyway — bitwise is bitwise).
            let v = ((state >> 40) as f64 / (1u64 << 24) as f64) - 0.5;
            (v * 1000.0) as f32
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A chain of peer copies bouncing between random devices, each gated
    /// on the previous copy's completion event, yields non-decreasing
    /// completion times; every returned event respects the wait event and
    /// the issue time; and both endpoints' peer engines serialise (their
    /// busy times only grow).
    #[test]
    fn peer_copy_events_are_forward_only_and_transitive(
        ndev in 2usize..5,
        hops in 1usize..12,
        rows in 1usize..40,
        cols in 1usize..12,
        extra_wait in 0u8..2,
        seed in 0u64..1_000_000,
    ) {
        let mut set = DeviceSet::uniform(tesla_t10(), ndev);
        let mut hc = host();
        let len = rows * cols;
        // One buffer per device, device 0 seeded with data.
        let mut bufs = Vec::new();
        for d in 0..ndev {
            bufs.push(set.device_mut(d).alloc(len).unwrap());
        }
        let src = payload(len, seed);
        let mut ev = {
            let g = set.device_mut(0);
            let view = DevMat::whole(bufs[0], rows);
            let s = g.stream(1);
            g.h2d(s, view, rows, cols, &src, rows, true, CopyMode::Async, &mut hc);
            g.record_event(s)
        };
        let mut cur = 0usize;
        let mut prev_end = ev.0;
        for hop in 0..hops {
            let nxt = (cur + 1 + (seed as usize + hop) % (ndev - 1)) % ndev;
            // Occasionally gate on an artificially *late* event too: the
            // copy must still be forward-only with respect to it.
            let wait = if extra_wait == 1 && hop == hops / 2 {
                Event(ev.0 + 0.5)
            } else {
                ev
            };
            let sview = DevMat::whole(bufs[cur], rows);
            let dview = DevMat::whole(bufs[nxt], rows);
            let dst_stream = set.device_mut(nxt).stream(2);
            let done = set.p2p(cur, sview, nxt, dst_stream, dview, rows, cols, wait, &mut hc);
            // Forward-only: completion is strictly after the gate (the link
            // has nonzero latency) and never before the issue point.
            prop_assert!(done.0 > wait.0, "hop {hop}: event {} not after wait {}", done.0, wait.0);
            prop_assert!(done.0 >= hc.now());
            // Transitive: the chain's completion times never go backwards.
            prop_assert!(done.0 >= prev_end, "hop {hop}: chain went backwards");
            // The destination stream observed the copy.
            prop_assert!(set.device(nxt).stream_tail(dst_stream) >= done.0);
            prev_end = done.0;
            ev = done;
            cur = nxt;
        }
        // Peer engines on every device are free no later than the last hop
        // completed (serialisation: the chain is the only peer traffic).
        for d in 0..ndev {
            let g = set.device(d);
            prop_assert!(g.peer_busy() <= prev_end + 1e-12);
        }
        // Traffic is accounted on destinations only, once per hop.
        let total: usize = (0..ndev).map(|d| set.device(d).peer_bytes()).sum();
        prop_assert_eq!(total, hops * rows * cols * 4);
    }

    /// h2d onto device A, peer copy of a sub-view into a padded view on
    /// device B, d2h back out: the block read back is bitwise identical to
    /// the staged source for arbitrary shapes, paddings and offsets.
    #[test]
    fn d2d_after_h2d_roundtrip_is_bitwise(
        rows in 1usize..48,
        cols in 1usize..16,
        src_pad in 0usize..4,
        dst_pad in 0usize..4,
        di in 0usize..3,
        dj in 0usize..3,
        seed in 0u64..1_000_000,
    ) {
        let mut hc = host();
        let mut a = Gpu::new(tesla_t10());
        let mut b = Gpu::new(tesla_t10());
        let lda = rows + src_pad;
        let ldb = rows + di + dst_pad;
        let src = payload(lda * cols, seed);
        let abuf = a.alloc(lda * cols).unwrap();
        let bbuf = b.alloc(ldb * (cols + dj)).unwrap();
        let aview = DevMat::whole(abuf, lda);
        let s_up = a.stream(1);
        a.h2d(s_up, aview, rows, cols, &src, lda, true, CopyMode::Async, &mut hc);
        let staged = a.record_event(s_up);
        // Peer-copy into an offset sub-view of B's padded buffer, gated on
        // the upload event — the route the multi-GPU extend-add takes.
        let bview = DevMat::whole(bbuf, ldb).offset(di, dj);
        let s_peer = b.stream(2);
        let done = Gpu::p2p(&mut a, aview, &mut b, s_peer, bview, rows, cols, staged, &mut hc);
        prop_assert!(done.0 >= staged.0);
        let mut out = vec![0.0f32; rows * cols];
        let s_down = b.stream(1);
        b.wait_event(s_down, done);
        b.d2h(s_down, bview, rows, cols, &mut out, rows, true, CopyMode::Async, &mut hc);
        for j in 0..cols {
            for i in 0..rows {
                let got = out[i + j * rows].to_bits();
                let want = src[i + j * lda].to_bits();
                prop_assert!(got == want, "({i},{j}) differs bitwise: {got:#x} vs {want:#x}");
            }
        }
    }
}
