//! # mf-gpusim — a calibrated GPU device model
//!
//! The substitute for the paper's Tesla T10 + CUBLAS 2.3 stack (see
//! DESIGN.md §1). It provides:
//!
//! * [`calib`] — latency/throughput curves calibrated to the paper's
//!   Table III and the crossover points of Figures 7/8; presets for the
//!   Tesla T10, one Xeon 5160 core, and a hypothetical Fermi-class device;
//! * [`Gpu`] — a device with in-order streams, events, a compute engine and
//!   a copy engine that overlap, PCIe transfer costs (pageable vs pinned),
//!   and a bounded device-memory allocator;
//! * [`HostClock`] — the host's virtual timeline, charging CPU kernels from
//!   calibrated f64 curves and modelling pinned-allocation costs;
//! * CUBLAS-like kernels (`trsm`, `syrk`, `gemm_nt`, `panel_potrf`) that
//!   **compute real f32 numerics** while charging simulated time — accuracy
//!   experiments downstream are genuine, not modelled.
//!
//! Simulated time, not wall time, is the metric every experiment reports;
//! that is what makes the reproduction hardware-independent.

pub mod calib;
pub mod device;
pub mod host;
pub mod memory;
pub mod profile;
pub mod tier;

pub use calib::{
    exact_ops, fermi_like, tesla_t10, xeon_5160_core, CpuConfig, GpuConfig, KernelKind,
    KernelRates, PcieModel, PinnedAllocModel, RateCurve,
};
pub use device::{CopyMode, DeviceSet, Event, Gpu, Stream};
pub use host::{HostClock, ISSUE_OVERHEAD};
pub use memory::{DevBuf, DevMat, DeviceOom, InvalidBuffer};
pub use profile::{Component, GpuUtilization, ProfileRecord, ProfileSummary};
pub use tier::{SpillTier, TierParams, DEFAULT_DEVICE_BUDGET};

/// An operation that needs a device ran on a machine without one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoGpu;

impl core::fmt::Display for NoGpu {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "machine has no GPU")
    }
}

impl std::error::Error for NoGpu {}

/// A host/device pair with aligned virtual timelines — the "machine" on
/// which a factorization executes. Multi-GPU configurations either hold one
/// [`Machine`] per worker (per-worker timelines combined by the list
/// scheduler in `mf-core::parallel`) or drive a [`DeviceSet`] of several
/// devices from one host timeline (`mf-core::multigpu`).
#[derive(Debug)]
pub struct Machine {
    /// Host timeline.
    pub host: HostClock,
    /// The device, if this worker has one.
    pub gpu: Option<Gpu>,
}

impl Machine {
    /// A CPU-only machine.
    pub fn cpu_only(cpu: CpuConfig) -> Self {
        Machine { host: HostClock::new(cpu), gpu: None }
    }

    /// A CPU + GPU machine.
    pub fn with_gpu(cpu: CpuConfig, gpu: GpuConfig) -> Self {
        Machine { host: HostClock::new(cpu), gpu: Some(Gpu::new(gpu)) }
    }

    /// The paper's experimental node: one Xeon 5160 core + one Tesla T10.
    pub fn paper_node() -> Self {
        Machine::with_gpu(calib::xeon_5160_core(), calib::tesla_t10())
    }

    /// Shared access to the device, or [`NoGpu`] on a CPU-only machine.
    pub fn gpu_ref(&self) -> Result<&Gpu, NoGpu> {
        self.gpu.as_ref().ok_or(NoGpu)
    }

    /// Exclusive access to the device, or [`NoGpu`] on a CPU-only machine.
    pub fn gpu_mut(&mut self) -> Result<&mut Gpu, NoGpu> {
        self.gpu.as_mut().ok_or(NoGpu)
    }

    /// Split-borrow both timelines at once — GPU enqueue calls need
    /// `&mut Gpu` and `&mut HostClock` simultaneously.
    pub fn host_and_gpu(&mut self) -> Result<(&mut HostClock, &mut Gpu), NoGpu> {
        match self.gpu.as_mut() {
            Some(g) => Ok((&mut self.host, g)),
            None => Err(NoGpu),
        }
    }

    /// Total elapsed simulated time (host view, after a full sync).
    pub fn elapsed(&mut self) -> f64 {
        if let Some(gpu) = self.gpu.as_mut() {
            let host = &mut self.host;
            gpu.sync_all(host);
        }
        self.host.now()
    }

    /// Enable/disable profiling on both timelines.
    pub fn set_recording(&mut self, on: bool) {
        self.host.set_recording(on);
        if let Some(g) = self.gpu.as_mut() {
            g.set_recording(on);
        }
    }

    /// Drain records from both timelines, merged and sorted by start time.
    pub fn take_records(&mut self) -> Vec<ProfileRecord> {
        let mut r = self.host.take_records();
        if let Some(g) = self.gpu.as_mut() {
            r.extend(g.take_records());
        }
        r.sort_by(|a, b| a.start.total_cmp(&b.start));
        r
    }

    /// Reset both clocks to zero.
    pub fn reset(&mut self) {
        self.host.reset();
        if let Some(g) = self.gpu.as_mut() {
            g.reset_clock();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_presets() {
        let mut m = Machine::paper_node();
        assert!(m.gpu.is_some());
        assert_eq!(m.elapsed(), 0.0);
        let mut c = Machine::cpu_only(xeon_5160_core());
        assert!(c.gpu.is_none());
        c.host.charge_kernel(KernelKind::Syrk, 0, 100, 100);
        assert!(c.elapsed() > 0.0);
    }

    #[test]
    fn records_merge_sorted() {
        let mut m = Machine::paper_node();
        m.set_recording(true);
        m.host.charge_kernel(KernelKind::Potrf, 0, 64, 0);
        let (host, gpu) = m.host_and_gpu().unwrap();
        let buf = gpu.alloc(64 * 64).unwrap();
        let s0 = gpu.default_stream();
        let v = DevMat::whole(buf, 64);
        gpu.syrk(s0, v, v, 64, 32, host);
        let recs = m.take_records();
        assert_eq!(recs.len(), 2);
        assert!(recs.windows(2).all(|w| w[0].start <= w[1].start));
    }

    #[test]
    fn gpu_accessors_surface_no_gpu() {
        let mut m = Machine::cpu_only(xeon_5160_core());
        assert_eq!(m.gpu_ref().unwrap_err(), NoGpu);
        assert_eq!(m.gpu_mut().unwrap_err(), NoGpu);
        assert_eq!(m.host_and_gpu().unwrap_err(), NoGpu);
        let mut p = Machine::paper_node();
        assert!(p.gpu_ref().is_ok());
        let (host, gpu) = p.host_and_gpu().unwrap();
        let buf = gpu.alloc(16).unwrap();
        let s0 = gpu.default_stream();
        let v = DevMat::whole(buf, 4);
        gpu.syrk(s0, v, v, 4, 2, host);
        assert!(p.elapsed() > 0.0);
    }

    #[test]
    fn reset_zeroes_time() {
        let mut m = Machine::paper_node();
        m.host.advance(5.0);
        m.reset();
        assert_eq!(m.elapsed(), 0.0);
    }
}
