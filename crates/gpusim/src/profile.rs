//! Per-call profiling records.
//!
//! Every simulated operation (CPU kernel, GPU kernel, transfer, pinned
//! allocation) can emit a [`ProfileRecord`]; the factorization layer joins
//! them per F-U call to produce the paper's Figures 2, 5, 6 and Table IV,
//! and the auto-tuner consumes the per-call timings as training data.

use crate::calib::KernelKind;

/// What an interval of simulated time was spent on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Component {
    /// A dense kernel on the host CPU.
    CpuKernel(KernelKind),
    /// A dense kernel on the GPU.
    GpuKernel(KernelKind),
    /// Host→device transfer.
    CopyH2D,
    /// Device→host transfer.
    CopyD2H,
    /// Device→device peer transfer over the p2p link.
    CopyP2P,
    /// Pinned host memory allocation.
    PinnedAlloc,
    /// Host-side memory operation (extend-add assembly, packing).
    HostMemop,
}

/// One timed operation.
#[derive(Debug, Clone, Copy)]
pub struct ProfileRecord {
    /// The operation class.
    pub component: Component,
    /// Floating-point operations (0 for transfers).
    pub ops: f64,
    /// Bytes moved (0 for kernels).
    pub bytes: usize,
    /// Start time, seconds.
    pub start: f64,
    /// End time, seconds.
    pub end: f64,
}

impl ProfileRecord {
    /// Duration in seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }

    /// Achieved rate in flop/s (kernels only).
    pub fn rate(&self) -> f64 {
        if self.ops > 0.0 && self.duration() > 0.0 {
            self.ops / self.duration()
        } else {
            0.0
        }
    }
}

/// Engine busy/idle accounting for one or more devices over a span of
/// simulated time — the GPU-utilization section the pipelined dispatch
/// layer surfaces through `FactorStats`. For multi-worker runs, per-device
/// busy times are summed and `gpus` counts the devices, so utilization is
/// normalised per engine.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GpuUtilization {
    /// Σ compute-engine busy seconds across the counted devices.
    pub compute_busy: f64,
    /// Σ copy-engine busy seconds across the counted devices.
    pub copy_busy: f64,
    /// The span (makespan) the busy time is measured against, seconds.
    pub span: f64,
    /// Number of devices aggregated.
    pub gpus: usize,
}

impl GpuUtilization {
    /// Fold another device's accounting into this one (parallel drivers
    /// aggregate one entry per worker machine).
    pub fn merge(&mut self, other: &GpuUtilization) {
        self.compute_busy += other.compute_busy;
        self.copy_busy += other.copy_busy;
        self.span = self.span.max(other.span);
        self.gpus += other.gpus;
    }

    fn denom(&self) -> f64 {
        self.span * (self.gpus.max(1)) as f64
    }

    /// Fraction of the span the compute engines were busy (0..=1).
    pub fn compute_utilization(&self) -> f64 {
        if self.span > 0.0 {
            self.compute_busy / self.denom()
        } else {
            0.0
        }
    }

    /// Fraction of the span the copy engines were busy (0..=1).
    pub fn copy_utilization(&self) -> f64 {
        if self.span > 0.0 {
            self.copy_busy / self.denom()
        } else {
            0.0
        }
    }

    /// Fraction of the span *either* engine was busy, upper-bounded by
    /// engine-sum (engines overlap, so this saturates at 1).
    pub fn busy_fraction(&self) -> f64 {
        (self.compute_utilization() + self.copy_utilization()).min(1.0)
    }

    /// Fraction of the span the compute engines sat idle — the quantity the
    /// inter-supernode pipeline exists to shrink.
    pub fn compute_idle_fraction(&self) -> f64 {
        1.0 - self.compute_utilization()
    }
}

/// Aggregate statistics over a batch of records.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProfileSummary {
    /// Total kernel time on the CPU.
    pub cpu_kernel_time: f64,
    /// Total kernel time on the GPU.
    pub gpu_kernel_time: f64,
    /// Total transfer time (both directions).
    pub copy_time: f64,
    /// Total pinned-allocation time.
    pub pinned_time: f64,
    /// Total host memop time.
    pub memop_time: f64,
}

impl ProfileSummary {
    /// Summarise a slice of records.
    pub fn from_records(records: &[ProfileRecord]) -> Self {
        let mut s = ProfileSummary::default();
        for r in records {
            let d = r.duration();
            match r.component {
                Component::CpuKernel(_) => s.cpu_kernel_time += d,
                Component::GpuKernel(_) => s.gpu_kernel_time += d,
                Component::CopyH2D | Component::CopyD2H | Component::CopyP2P => s.copy_time += d,
                Component::PinnedAlloc => s.pinned_time += d,
                Component::HostMemop => s.memop_time += d,
            }
        }
        s
    }

    /// Grand total of categorised time.
    pub fn total(&self) -> f64 {
        self.cpu_kernel_time
            + self.gpu_kernel_time
            + self.copy_time
            + self.pinned_time
            + self.memop_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_buckets() {
        let recs = vec![
            ProfileRecord {
                component: Component::CpuKernel(KernelKind::Potrf),
                ops: 1e6,
                bytes: 0,
                start: 0.0,
                end: 1.0,
            },
            ProfileRecord {
                component: Component::GpuKernel(KernelKind::Syrk),
                ops: 1e8,
                bytes: 0,
                start: 1.0,
                end: 1.5,
            },
            ProfileRecord {
                component: Component::CopyH2D,
                ops: 0.0,
                bytes: 100,
                start: 0.0,
                end: 0.25,
            },
            ProfileRecord {
                component: Component::CopyD2H,
                ops: 0.0,
                bytes: 100,
                start: 0.5,
                end: 0.75,
            },
            ProfileRecord {
                component: Component::PinnedAlloc,
                ops: 0.0,
                bytes: 10,
                start: 0.0,
                end: 0.1,
            },
        ];
        let s = ProfileSummary::from_records(&recs);
        assert_eq!(s.cpu_kernel_time, 1.0);
        assert_eq!(s.gpu_kernel_time, 0.5);
        assert_eq!(s.copy_time, 0.5);
        assert!((s.total() - 2.1).abs() < 1e-12);
    }

    #[test]
    fn rate_computation() {
        let r = ProfileRecord {
            component: Component::GpuKernel(KernelKind::Gemm),
            ops: 2e9,
            bytes: 0,
            start: 0.0,
            end: 0.01,
        };
        assert!((r.rate() - 2e11).abs() < 1.0);
        let t = ProfileRecord {
            component: Component::CopyH2D,
            ops: 0.0,
            bytes: 8,
            start: 0.0,
            end: 0.01,
        };
        assert_eq!(t.rate(), 0.0);
    }
}
