//! The host timeline: virtual clock, CPU kernel charging, pinned memory.
//!
//! The host executes CPU kernels synchronously (time charged from the
//! calibrated [`CpuConfig`] curves) and issues GPU work asynchronously
//! (a small issue overhead, with synchronisation points pulling the host
//! clock forward to the relevant stream tail).

use crate::calib::{exact_ops, CpuConfig, KernelKind};
use crate::profile::{Component, ProfileRecord};

/// Cost of issuing one asynchronous GPU command from the host.
pub const ISSUE_OVERHEAD: f64 = 1.5e-6;

/// The host CPU's virtual timeline.
#[derive(Debug, Clone)]
pub struct HostClock {
    cfg: CpuConfig,
    now: f64,
    pinned_bytes: usize,
    pinned_peak: usize,
    records: Vec<ProfileRecord>,
    recording: bool,
}

impl HostClock {
    /// A fresh host timeline at t = 0.
    pub fn new(cfg: CpuConfig) -> Self {
        HostClock {
            cfg,
            now: 0.0,
            pinned_bytes: 0,
            pinned_peak: 0,
            records: Vec::new(),
            recording: false,
        }
    }

    /// The CPU configuration.
    pub fn config(&self) -> &CpuConfig {
        &self.cfg
    }

    /// Current virtual time in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Enable/disable per-call profile recording.
    pub fn set_recording(&mut self, on: bool) {
        self.recording = on;
    }

    /// Drain recorded profile entries.
    pub fn take_records(&mut self) -> Vec<ProfileRecord> {
        std::mem::take(&mut self.records)
    }

    /// Advance the clock by an arbitrary duration (host-side bookkeeping
    /// such as extend-add assembly, charged by the caller).
    pub fn advance(&mut self, seconds: f64) {
        debug_assert!(seconds >= 0.0 && seconds.is_finite());
        self.now += seconds;
    }

    /// Pull the clock forward to `t` (synchronisation with a device event);
    /// no-op if `t` is in the past.
    pub fn sync_to(&mut self, t: f64) {
        if t > self.now {
            self.now = t;
        }
    }

    /// Charge the issue overhead of one asynchronous device command.
    pub fn charge_issue(&mut self) {
        self.now += ISSUE_OVERHEAD;
    }

    /// Charge a CPU dense kernel of the given dims (see
    /// [`exact_ops`] for the dim conventions); returns the duration.
    pub fn charge_kernel(&mut self, kind: KernelKind, m: usize, n: usize, k: usize) -> f64 {
        let ops = exact_ops(kind, m, n, k);
        let dur = self.cfg.kernels.curve(kind).time(ops);
        let start = self.now;
        self.now += dur;
        if self.recording {
            self.records.push(ProfileRecord {
                component: Component::CpuKernel(kind),
                ops,
                bytes: 0,
                start,
                end: self.now,
            });
        }
        dur
    }

    /// Charge a host memory operation at `bytes / bw` where `bw` models
    /// memcpy/assembly bandwidth (used for extend-add and packing).
    pub fn charge_memop(&mut self, bytes: usize, bw: f64) -> f64 {
        let dur = bytes as f64 / bw;
        let start = self.now;
        self.now += dur;
        if self.recording {
            self.records.push(ProfileRecord {
                component: Component::HostMemop,
                ops: 0.0,
                bytes,
                start,
                end: self.now,
            });
        }
        dur
    }

    /// What [`Self::alloc_pinned`] would charge for `bytes`, without
    /// performing it — lets the staging pool weigh growing a new pinned
    /// generation against waiting for an in-flight one to complete.
    pub fn pinned_alloc_cost(&self, bytes: usize) -> f64 {
        self.cfg.pinned_alloc.time(bytes)
    }

    /// Allocate pinned host memory: charges the allocation cost and tracks
    /// the footprint. Returns the duration charged.
    pub fn alloc_pinned(&mut self, bytes: usize) -> f64 {
        let dur = self.cfg.pinned_alloc.time(bytes);
        self.now += dur;
        self.pinned_bytes += bytes;
        self.pinned_peak = self.pinned_peak.max(self.pinned_bytes);
        if self.recording {
            self.records.push(ProfileRecord {
                component: Component::PinnedAlloc,
                ops: 0.0,
                bytes,
                start: self.now - dur,
                end: self.now,
            });
        }
        dur
    }

    /// Release pinned host memory (free is cheap; no time charged).
    pub fn free_pinned(&mut self, bytes: usize) {
        debug_assert!(bytes <= self.pinned_bytes);
        self.pinned_bytes -= bytes;
    }

    /// Currently pinned bytes.
    pub fn pinned_bytes(&self) -> usize {
        self.pinned_bytes
    }

    /// Peak pinned bytes.
    pub fn pinned_peak(&self) -> usize {
        self.pinned_peak
    }

    /// Reset the clock to zero, keeping configuration and allocations.
    pub fn reset(&mut self) {
        self.now = 0.0;
        self.records.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calib::xeon_5160_core;

    #[test]
    fn kernel_charging_advances_clock() {
        let mut h = HostClock::new(xeon_5160_core());
        let d = h.charge_kernel(KernelKind::Syrk, 0, 100, 50);
        assert!(d > 0.0);
        assert_eq!(h.now(), d);
        let d2 = h.charge_kernel(KernelKind::Potrf, 0, 64, 0);
        assert!((h.now() - (d + d2)).abs() < 1e-15);
    }

    #[test]
    fn sync_only_moves_forward() {
        let mut h = HostClock::new(xeon_5160_core());
        h.advance(1.0);
        h.sync_to(0.5);
        assert_eq!(h.now(), 1.0);
        h.sync_to(2.0);
        assert_eq!(h.now(), 2.0);
    }

    #[test]
    fn pinned_tracking() {
        let mut h = HostClock::new(xeon_5160_core());
        let d = h.alloc_pinned(1 << 20);
        assert!(d > 1e-4, "pinned alloc must be expensive: {d}");
        assert_eq!(h.pinned_bytes(), 1 << 20);
        h.alloc_pinned(512);
        assert_eq!(h.pinned_peak(), (1 << 20) + 512);
        h.free_pinned(1 << 20);
        assert_eq!(h.pinned_bytes(), 512);
    }

    #[test]
    fn recording_captures_components() {
        let mut h = HostClock::new(xeon_5160_core());
        h.set_recording(true);
        h.charge_kernel(KernelKind::Trsm, 10, 0, 5);
        h.charge_memop(4096, 4.0e9);
        let recs = h.take_records();
        assert_eq!(recs.len(), 2);
        assert!(matches!(recs[0].component, Component::CpuKernel(KernelKind::Trsm)));
        assert!(matches!(recs[1].component, Component::HostMemop));
        assert!(recs[0].end <= recs[1].start + 1e-15);
    }

    #[test]
    fn bigger_kernels_cost_more() {
        let mut h = HostClock::new(xeon_5160_core());
        let small = h.charge_kernel(KernelKind::Syrk, 0, 10, 10);
        let big = h.charge_kernel(KernelKind::Syrk, 0, 1000, 100);
        assert!(big > small * 10.0);
    }
}
