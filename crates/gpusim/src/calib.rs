//! Calibrated performance models for the simulated devices.
//!
//! Every kernel's cost follows a two-parameter latency/throughput curve
//!
//! ```text
//! time(ops)  = launch + (ops + half_sat) / asymptote
//! rate(ops)  = asymptote · ops / (ops + half_sat)
//! ```
//!
//! which reproduces the ramp-to-asymptote shape of the paper's Figures 4, 7
//! and 8. The constants below are calibrated so that
//!
//! * asymptotic rates match Table III (CPU f64: potrf 8.84, trsm 9.24,
//!   syrk 10.02 GFlop/s; GPU f32: trsm 153.7, syrk 159.7 GFlop/s),
//! * the trsm CPU/GPU crossover without copies falls near 4 × 10⁵ ops and
//!   with copies near 3 × 10⁶ ops (Fig. 7),
//! * the syrk crossover without copies falls near 1.5 × 10⁵ ops, and with
//!   copies there is no clear winner across 10⁶–10⁷ ops (Fig. 8),
//! * the effective pageable PCIe bandwidth is β ≈ 1.4 GB/s (Section IV-B).
//!
//! GPU dims are quantised up to the tile size before computing effective
//! ops, giving the jagged rate curves the paper notes for CUBLAS syrk.

/// The dense kernels whose placement the policies decide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// Dense Cholesky factorization of the pivot block.
    Potrf,
    /// Triangular panel solve.
    Trsm,
    /// Symmetric rank-k update.
    Syrk,
    /// General matrix multiply (GPU panel algorithm only).
    Gemm,
    /// The lightweight w×w on-device Cholesky kernel of Section V-A1.
    PanelPotrf,
}

/// Latency/throughput cost curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateCurve {
    /// Asymptotic rate in flop/s.
    pub asymptote: f64,
    /// Op count at which half the asymptotic rate is reached.
    pub half_sat: f64,
    /// Fixed per-call overhead in seconds (kernel launch / function call).
    pub launch: f64,
}

impl RateCurve {
    /// Execution time in seconds for `ops` floating-point operations.
    pub fn time(&self, ops: f64) -> f64 {
        if ops <= 0.0 {
            return self.launch;
        }
        self.launch + (ops + self.half_sat) / self.asymptote
    }

    /// Achieved rate (flop/s) for a call of `ops` operations, including the
    /// launch overhead.
    pub fn rate(&self, ops: f64) -> f64 {
        if ops <= 0.0 {
            return 0.0;
        }
        ops / self.time(ops)
    }
}

/// Per-kernel cost curves of one processor.
#[derive(Debug, Clone, Copy)]
pub struct KernelRates {
    /// `potrf` curve.
    pub potrf: RateCurve,
    /// `trsm` curve.
    pub trsm: RateCurve,
    /// `syrk` curve.
    pub syrk: RateCurve,
    /// `gemm` curve.
    pub gemm: RateCurve,
    /// Panel `potrf` kernel (GPU only; on CPU equals `potrf`).
    pub panel_potrf: RateCurve,
}

impl KernelRates {
    /// The curve for `kind`.
    pub fn curve(&self, kind: KernelKind) -> &RateCurve {
        match kind {
            KernelKind::Potrf => &self.potrf,
            KernelKind::Trsm => &self.trsm,
            KernelKind::Syrk => &self.syrk,
            KernelKind::Gemm => &self.gemm,
            KernelKind::PanelPotrf => &self.panel_potrf,
        }
    }
}

/// PCIe transfer model.
#[derive(Debug, Clone, Copy)]
pub struct PcieModel {
    /// Effective bandwidth for pageable host memory, bytes/s (the paper's
    /// observed β ≈ 1.4 GB/s over PCIe x8).
    pub pageable_bw: f64,
    /// Effective bandwidth for pinned host memory, bytes/s.
    pub pinned_bw: f64,
    /// Per-transfer latency, seconds.
    pub latency: f64,
}

impl PcieModel {
    /// Transfer time for `bytes` bytes.
    pub fn time(&self, bytes: usize, pinned: bool) -> f64 {
        let bw = if pinned { self.pinned_bw } else { self.pageable_bw };
        self.latency + bytes as f64 / bw
    }
}

/// Cost of pinned host memory management (Section V-A2: each allocation is
/// "prohibitively expensive" for small transfers).
#[derive(Debug, Clone, Copy)]
pub struct PinnedAllocModel {
    /// Fixed cost per `cudaMallocHost`-equivalent call, seconds.
    pub base: f64,
    /// Additional cost per byte, seconds (page-locking cost).
    pub per_byte: f64,
}

impl PinnedAllocModel {
    /// Cost of allocating a pinned region of `bytes`.
    pub fn time(&self, bytes: usize) -> f64 {
        self.base + bytes as f64 * self.per_byte
    }
}

/// Full device description (Table I analogue).
#[derive(Debug, Clone)]
pub struct GpuConfig {
    /// Human-readable name.
    pub name: &'static str,
    /// Peak single-precision flop/s (for %-utilisation reports).
    pub peak_sp: f64,
    /// Peak double-precision flop/s.
    pub peak_dp: f64,
    /// Device memory capacity in bytes.
    pub mem_bytes: usize,
    /// Kernel cost curves (single precision).
    pub kernels: KernelRates,
    /// PCIe link model.
    pub pcie: PcieModel,
    /// Peer (device-to-device) link bandwidth in bytes/s: the rate of a
    /// `p2p` copy between two devices of this kind. One hop over the peer
    /// link is faster than a pinned PCIe transfer, so a d2d copy beats the
    /// d2h → host-assemble → h2d staging path it replaces.
    pub p2p_bw: f64,
    /// Tile size for dim quantisation (CUBLAS-like jaggedness).
    pub tile: usize,
}

impl GpuConfig {
    /// Effective op count for a call after tile quantisation of the dims.
    pub fn effective_ops(&self, kind: KernelKind, m: usize, n: usize, k: usize) -> f64 {
        let q = |d: usize| -> f64 {
            if d == 0 {
                0.0
            } else {
                (d.div_ceil(self.tile) * self.tile) as f64
            }
        };
        match kind {
            KernelKind::Potrf | KernelKind::PanelPotrf => q(n) * q(n) * q(n) / 3.0,
            KernelKind::Trsm => q(m) * q(k) * q(k),
            KernelKind::Syrk => q(n) * q(n) * q(k),
            KernelKind::Gemm => q(m) * q(n) * q(k),
        }
    }

    /// A hypothetical double-precision variant: kernel throughput divided by
    /// `peak_sp / peak_dp` (8× on the T10, 2× on Fermi-class parts). Used by
    /// the adaptation ablation — the tuner retrains and the policy map moves.
    pub fn double_precision_variant(&self) -> GpuConfig {
        let scale = self.peak_dp / self.peak_sp;
        let s = |c: RateCurve| RateCurve { asymptote: c.asymptote * scale, ..c };
        GpuConfig {
            name: "dp-variant",
            kernels: KernelRates {
                potrf: s(self.kernels.potrf),
                trsm: s(self.kernels.trsm),
                syrk: s(self.kernels.syrk),
                gemm: s(self.kernels.gemm),
                panel_potrf: s(self.kernels.panel_potrf),
            },
            ..self.clone()
        }
    }
}

/// CPU model: one core of the host processor, with f64 kernel curves.
#[derive(Debug, Clone)]
pub struct CpuConfig {
    /// Human-readable name.
    pub name: &'static str,
    /// Peak double-precision flop/s per core.
    pub peak_dp: f64,
    /// Kernel cost curves (double precision — WSMP's native precision).
    pub kernels: KernelRates,
    /// Pinned host memory allocation model.
    pub pinned_alloc: PinnedAllocModel,
}

/// The paper's host: one core of an Intel Xeon 5160 @ 3.0 GHz running
/// ATLAS-backed BLAS. Asymptotes from Table III.
pub fn xeon_5160_core() -> CpuConfig {
    let c = |asym_gf: f64| RateCurve { asymptote: asym_gf * 1e9, half_sat: 2.0e4, launch: 2.0e-7 };
    CpuConfig {
        name: "Xeon 5160 (1 core, f64, ATLAS)",
        peak_dp: 12.0e9,
        kernels: KernelRates {
            potrf: c(8.84),
            trsm: c(9.24),
            syrk: c(10.02),
            gemm: c(10.50),
            panel_potrf: c(8.84),
        },
        pinned_alloc: PinnedAllocModel { base: 1.5e-4, per_byte: 2.0e-10 },
    }
}

/// The paper's device: Nvidia Tesla T10 (Table I), CUBLAS 2.3, single
/// precision, PCIe x8 with observed β ≈ 1.4 GB/s pageable.
pub fn tesla_t10() -> GpuConfig {
    GpuConfig {
        name: "Tesla T10 (CUBLAS 2.3, f32)",
        peak_sp: 624.0e9,
        peak_dp: 78.0e9,
        mem_bytes: 4 << 30,
        kernels: KernelRates {
            // Offloaded full potrf is never used in the paper's policies
            // (P4 uses the panel algorithm); keep a curve anyway.
            potrf: RateCurve { asymptote: 100.0e9, half_sat: 4.0e6, launch: 5.0e-6 },
            trsm: RateCurve { asymptote: 153.7e9, half_sat: 5.8e6, launch: 5.0e-6 },
            syrk: RateCurve { asymptote: 159.7e9, half_sat: 1.8e6, launch: 5.0e-6 },
            gemm: RateCurve { asymptote: 180.0e9, half_sat: 1.5e6, launch: 5.0e-6 },
            // Lightweight w×w Cholesky kernel (Section V-A1): modest rate,
            // fast launch — it only ever sees tiny blocks.
            panel_potrf: RateCurve { asymptote: 15.0e9, half_sat: 1.0e5, launch: 4.0e-6 },
        },
        pcie: PcieModel { pageable_bw: 1.4e9, pinned_bw: 3.2e9, latency: 1.0e-5 },
        p2p_bw: 5.2e9,
        tile: 32,
    }
}

/// A Fermi-class "future GPU" preset (the paper's footnote 1): ~2× SP
/// throughput, 8× better DP ratio, faster PCIe (x16). Exercised by the
/// adaptation ablation.
pub fn fermi_like() -> GpuConfig {
    GpuConfig {
        name: "Fermi-like (hypothetical)",
        peak_sp: 1030.0e9,
        peak_dp: 515.0e9,
        mem_bytes: 6 << 30,
        kernels: KernelRates {
            potrf: RateCurve { asymptote: 220.0e9, half_sat: 3.0e6, launch: 4.0e-6 },
            trsm: RateCurve { asymptote: 330.0e9, half_sat: 4.5e6, launch: 4.0e-6 },
            syrk: RateCurve { asymptote: 350.0e9, half_sat: 1.5e6, launch: 4.0e-6 },
            gemm: RateCurve { asymptote: 400.0e9, half_sat: 1.2e6, launch: 4.0e-6 },
            panel_potrf: RateCurve { asymptote: 35.0e9, half_sat: 8.0e4, launch: 3.0e-6 },
        },
        pcie: PcieModel { pageable_bw: 3.0e9, pinned_bw: 6.0e9, latency: 8.0e-6 },
        p2p_bw: 11.0e9,
        tile: 32,
    }
}

/// Exact (non-quantised) op counts for a kernel call — used for CPU cost
/// and for reporting achieved rates the way the paper does.
pub fn exact_ops(kind: KernelKind, m: usize, n: usize, k: usize) -> f64 {
    let (m, n, k) = (m as f64, n as f64, k as f64);
    match kind {
        KernelKind::Potrf | KernelKind::PanelPotrf => n * n * n / 3.0,
        KernelKind::Trsm => m * k * k,
        KernelKind::Syrk => n * n * k,
        KernelKind::Gemm => m * n * k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_curve_saturates() {
        let c = RateCurve { asymptote: 100.0e9, half_sat: 1e6, launch: 5e-6 };
        assert!(c.rate(1e3) < 1e9, "tiny calls dominated by overhead");
        // At half_sat ops, with no launch the rate would be half.
        let r_huge = c.rate(1e12);
        assert!(r_huge > 99.0e9 && r_huge <= 100.0e9);
        // Monotone increasing.
        let mut prev = 0.0;
        for e in 2..12 {
            let r = c.rate(10f64.powi(e));
            assert!(r >= prev);
            prev = r;
        }
    }

    #[test]
    fn table3_asymptotes() {
        let cpu = xeon_5160_core();
        let gpu = tesla_t10();
        let big = 1e13;
        assert!((cpu.kernels.potrf.rate(big) / 1e9 - 8.84).abs() < 0.05);
        assert!((cpu.kernels.trsm.rate(big) / 1e9 - 9.24).abs() < 0.05);
        assert!((cpu.kernels.syrk.rate(big) / 1e9 - 10.02).abs() < 0.05);
        assert!((gpu.kernels.trsm.rate(big) / 1e9 - 153.7).abs() < 1.0);
        assert!((gpu.kernels.syrk.rate(big) / 1e9 - 159.7).abs() < 1.0);
        // Utilisation vs peak as in Table III: CPU ~73–84 %, GPU ~24–26 %.
        assert!(cpu.kernels.potrf.rate(big) / cpu.peak_dp > 0.70);
        assert!(gpu.kernels.syrk.rate(big) / gpu.peak_sp < 0.30);
    }

    /// Find the op count where two time functions cross, by bisection on a
    /// log grid.
    fn crossover(f_cpu: impl Fn(f64) -> f64, f_gpu: impl Fn(f64) -> f64) -> f64 {
        let mut prev_sign = f_cpu(1e2) < f_gpu(1e2);
        for i in 1..2000 {
            let ops = 1e2 * 10f64.powf(i as f64 * 0.005);
            let sign = f_cpu(ops) < f_gpu(ops);
            if sign != prev_sign {
                return ops;
            }
            prev_sign = sign;
        }
        f64::INFINITY
    }

    #[test]
    fn trsm_crossover_without_copy_near_4e5() {
        let cpu = xeon_5160_core();
        let gpu = tesla_t10();
        let x = crossover(|ops| cpu.kernels.trsm.time(ops), |ops| gpu.kernels.trsm.time(ops));
        assert!(x > 1.5e5 && x < 1.0e6, "crossover at {x:.3e}, expected ≈ 4e5");
    }

    #[test]
    fn trsm_crossover_with_copy_near_3e6() {
        let cpu = xeon_5160_core();
        let gpu = tesla_t10();
        // Representative shapes m = 8k (panel solves have m ≫ k): data
        // = 4·(k² + 2mk) bytes pageable.
        let x = crossover(
            |ops| {
                // ops = m·k² with m = 8k ⇒ k = (ops/8)^(1/3)
                cpu.kernels.trsm.time(ops)
            },
            |ops| {
                let k = (ops / 8.0).powf(1.0 / 3.0);
                let m = 8.0 * k;
                let bytes = 4.0 * (k * k + 2.0 * m * k);
                gpu.kernels.trsm.time(ops) + gpu.pcie.time(bytes as usize, false)
            },
        );
        assert!(x > 1.0e6 && x < 8.0e6, "crossover at {x:.3e}, expected ≈ 3e6");
    }

    #[test]
    fn syrk_crossover_without_copy_near_1_5e5() {
        let cpu = xeon_5160_core();
        let gpu = tesla_t10();
        let x = crossover(|ops| cpu.kernels.syrk.time(ops), |ops| gpu.kernels.syrk.time(ops));
        assert!(x > 0.6e5 && x < 4.0e5, "crossover at {x:.3e}, expected ≈ 1.5e5");
    }

    #[test]
    fn syrk_with_copy_ambiguous_band_1e6_to_1e7() {
        // With copy costs included the winner in 10⁶–10⁷ ops depends on the
        // aspect ratio (thin k ⇒ big m² copy): CPU wins for k = 8, GPU wins
        // for k = 128 somewhere inside the band.
        let cpu = xeon_5160_core();
        let gpu = tesla_t10();
        let gpu_time = |ops: f64, k: f64| {
            let n = (ops / k).sqrt();
            let bytes = 4.0 * n * n;
            gpu.kernels.syrk.time(ops) + gpu.pcie.time(bytes as usize, false)
        };
        let ops = 3.0e6;
        assert!(cpu.kernels.syrk.time(ops) < gpu_time(ops, 8.0), "thin k: CPU should win");
        assert!(cpu.kernels.syrk.time(ops) > gpu_time(ops, 128.0), "fat k: GPU should win");
    }

    #[test]
    fn tile_quantisation_creates_jaggedness() {
        let gpu = tesla_t10();
        // 33 columns cost the same as 64 columns (tile = 32).
        let e33 = gpu.effective_ops(KernelKind::Syrk, 0, 100, 33);
        let e64 = gpu.effective_ops(KernelKind::Syrk, 0, 100, 64);
        assert_eq!(e33, e64);
        let e32 = gpu.effective_ops(KernelKind::Syrk, 0, 100, 32);
        assert!(e32 < e33);
        // Zero dims stay zero.
        assert_eq!(gpu.effective_ops(KernelKind::Trsm, 0, 0, 32), 0.0);
    }

    #[test]
    fn pinned_transfers_beat_pageable() {
        let gpu = tesla_t10();
        let b = 10 << 20;
        assert!(gpu.pcie.time(b, true) < gpu.pcie.time(b, false));
    }

    #[test]
    fn dp_variant_scales_throughput() {
        let gpu = tesla_t10();
        let dp = gpu.double_precision_variant();
        let ratio = dp.kernels.syrk.asymptote / gpu.kernels.syrk.asymptote;
        assert!((ratio - 0.125).abs() < 1e-12, "T10 dp/sp = 1/8");
    }

    #[test]
    fn exact_ops_match_paper_formulas() {
        assert_eq!(exact_ops(KernelKind::Potrf, 0, 30, 0), 9000.0);
        assert_eq!(exact_ops(KernelKind::Trsm, 100, 0, 10), 10_000.0);
        assert_eq!(exact_ops(KernelKind::Syrk, 0, 100, 10), 100_000.0);
        assert_eq!(exact_ops(KernelKind::Gemm, 10, 20, 30), 6000.0);
    }

    #[test]
    fn pinned_alloc_cost_significant_for_small_buffers() {
        let cpu = xeon_5160_core();
        // Allocating for a 100 KB transfer costs more than the transfer
        // itself saves vs pageable — the paper's rationale for the reuse
        // pool.
        let gpu = tesla_t10();
        let bytes = 100 << 10;
        let saving = gpu.pcie.time(bytes, false) - gpu.pcie.time(bytes, true);
        assert!(cpu.pinned_alloc.time(bytes) > saving);
    }
}
